"""Shared fixtures: small circuits the tests can anneal in milliseconds."""

from __future__ import annotations

import random

import pytest

from repro.netlist import (
    Circuit,
    ContinuousAspectRatio,
    CustomCell,
    MacroCell,
    Pin,
    PinKind,
)


def make_macro_circuit(
    num_cells: int = 6,
    nets_mod: int = 8,
    seed: int = 7,
    name: str = "fixture",
) -> Circuit:
    """A deterministic all-macro circuit with boundary pins."""
    rng = random.Random(seed)
    cells = []
    for i in range(num_cells):
        w, h = rng.randint(10, 24), rng.randint(10, 24)
        pins = [
            Pin(
                f"p{k}",
                f"n{(i * 3 + k) % nets_mod}",
                PinKind.FIXED,
                offset=(round(rng.uniform(-w / 2, w / 2), 1), -h / 2),
            )
            for k in range(4)
        ]
        cells.append(MacroCell.rectangular(f"m{i}", w, h, pins))
    return Circuit(name, cells)


def make_mixed_circuit(seed: int = 11) -> Circuit:
    """Macros plus custom cells with grouped/sequenced pins."""
    base = make_macro_circuit(num_cells=5, seed=seed, name="mixed")
    cells = list(base.cells.values())
    cpins = [
        Pin("a", "n1", PinKind.EDGE),
        Pin("b", "n2", PinKind.GROUP, group="G", sides=frozenset({"top", "bottom"})),
        Pin("c", "n2", PinKind.GROUP, group="G", sides=frozenset({"top", "bottom"})),
        Pin("d", "n3", PinKind.SEQUENCE, group="S", sequence_index=0),
        Pin("e", "n3", PinKind.SEQUENCE, group="S", sequence_index=1),
        Pin("f", "n0", PinKind.FIXED, offset=(0.0, 10.0)),
    ]
    cells.append(
        CustomCell(
            "cust0",
            cpins,
            area=400.0,
            aspect=ContinuousAspectRatio(0.5, 2.0),
            sites_per_edge=4,
        )
    )
    return Circuit("mixed", cells)


@pytest.fixture
def macro_circuit() -> Circuit:
    return make_macro_circuit()


@pytest.fixture
def mixed_circuit() -> Circuit:
    return make_mixed_circuit()
