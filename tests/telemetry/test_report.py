"""The trace -> diagnostic-tables report generator."""

import json

from repro.telemetry.report import (
    acceptance_table,
    cost_table,
    load_events,
    main,
    span_paths,
    stage_summary,
    write_report,
)


def synthetic_trace():
    """A minimal but structurally faithful flow trace."""
    return [
        {"ev": "span_begin", "name": "flow", "t": 0.0, "span": 1},
        {"ev": "span_begin", "name": "stage1", "t": 0.0, "span": 2, "parent": 1},
        {"ev": "span_begin", "name": "anneal", "t": 0.1, "span": 3, "parent": 2},
        {
            "ev": "event", "name": "anneal.temperature", "t": 0.2, "span": 3,
            "step": 0, "T": 1000.0, "attempts": 100, "accepts": 90,
            "acceptance": 0.9, "cost": 500.0, "moves_per_sec": 1000.0,
            "c1": 400.0, "c2": 80.0, "c3": 20.0, "window_x": 50.0, "window_y": 40.0,
        },
        {
            "ev": "event", "name": "anneal.temperature", "t": 0.3, "span": 3,
            "step": 1, "T": 900.0, "attempts": 100, "accepts": 70,
            "acceptance": 0.7, "cost": 450.0, "moves_per_sec": 1100.0,
            "c1": 380.0, "c2": 50.0, "c3": 20.0, "window_x": 45.0, "window_y": 36.0,
        },
        {"ev": "span_end", "name": "anneal", "t": 0.4, "span": 3,
         "wall_s": 0.3, "cpu_s": 0.25, "ok": True},
        {"ev": "event", "name": "stage1.result", "t": 0.4, "span": 2,
         "teil": 123.0, "chip_area": 456.0},
        {"ev": "span_end", "name": "stage1", "t": 0.5, "span": 2,
         "wall_s": 0.5, "cpu_s": 0.4, "ok": True},
        {"ev": "span_end", "name": "flow", "t": 0.6, "span": 1,
         "wall_s": 0.6, "cpu_s": 0.5, "ok": True},
    ]


class TestSpanPaths:
    def test_paths_join_parents(self):
        paths = span_paths(synthetic_trace())
        assert paths[1] == "flow"
        assert paths[2] == "flow/stage1"
        assert paths[3] == "flow/stage1/anneal"


class TestAcceptanceTable:
    def test_rows_per_temperature(self):
        headers, rows = acceptance_table(synthetic_trace())
        assert "acceptance" in headers
        assert len(rows) == 2
        assert rows[0][headers.index("T")] == 1000.0
        assert rows[1][headers.index("acceptance")] == 0.7
        assert rows[0][headers.index("phase")] == "flow/stage1/anneal"


class TestCostTable:
    def test_components_present(self):
        headers, rows = cost_table(synthetic_trace())
        assert headers[3:7] == ["cost", "c1", "c2", "c3"]
        assert rows[0][3] == 500.0
        assert rows[1][4] == 380.0


class TestStageSummary:
    def test_aggregates_by_path(self):
        headers, rows = stage_summary(synthetic_trace())
        by_stage = {r[0]: r for r in rows}
        assert by_stage["flow"][1] == 1
        assert by_stage["flow/stage1/anneal"][2] == 0.3
        assert by_stage["flow/stage1"][3] == 0.4  # cpu_s
        assert all(r[4] == 0 for r in rows)  # no failures

    def test_failed_span_counted(self):
        events = synthetic_trace()
        events.append(
            {"ev": "span_begin", "name": "bad", "t": 0.7, "span": 9}
        )
        events.append(
            {"ev": "span_end", "name": "bad", "t": 0.8, "span": 9,
             "wall_s": 0.1, "cpu_s": 0.1, "ok": False, "error": "ValueError"}
        )
        _, rows = stage_summary(events)
        bad = next(r for r in rows if r[0] == "bad")
        assert bad[4] == 1


class TestArtifacts:
    def test_write_report_produces_csv_and_text(self, tmp_path):
        written = write_report(synthetic_trace(), tmp_path)
        assert set(written) == {
            "acceptance_vs_temperature.csv",
            "cost_vs_iteration.csv",
            "stage_costs.csv",
            "stage_summary.csv",
            "chains.csv",
            "report.txt",
        }
        acc = (tmp_path / "acceptance_vs_temperature.csv").read_text()
        assert acc.count("\n") == 3  # header + 2 rows
        text = (tmp_path / "report.txt").read_text()
        assert "Fig. 3/5" in text and "Table 4" in text

    def test_load_events_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        events = synthetic_trace()
        path.write_text("\n".join(json.dumps(e) for e in events) + "\n")
        assert load_events(path) == events
        assert load_events(events) == events

    def test_cli_main(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        path.write_text(
            "\n".join(json.dumps(e) for e in synthetic_trace()) + "\n"
        )
        out_dir = tmp_path / "out"
        assert main([str(path), "--out-dir", str(out_dir)]) == 0
        assert (out_dir / "report.txt").exists()
        captured = capsys.readouterr()
        assert "acceptance ratio vs temperature" in captured.out

    def test_cli_empty_trace_fails(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main([str(path)]) == 1


class TestTruncatedTrace:
    def test_truncated_final_line_skipped(self, tmp_path):
        """A crashed run's trace can end mid-line; the reader recovers
        everything before the torn tail."""
        events = synthetic_trace()
        text = "\n".join(json.dumps(e) for e in events)
        path = tmp_path / "t.jsonl"
        path.write_text(text[: len(text) - 20])  # cut the last line short
        loaded = load_events(path)
        assert loaded == events[:-1]

    def test_trailing_blank_lines_ignored(self, tmp_path):
        events = synthetic_trace()
        path = tmp_path / "t.jsonl"
        path.write_text(
            "\n".join(json.dumps(e) for e in events) + "\n\n\n"
        )
        assert load_events(path) == events

    def test_mid_file_corruption_still_raises(self, tmp_path):
        """Only the *final* line may be torn; garbage earlier in the
        file is real corruption and must not be silently dropped."""
        import pytest

        events = synthetic_trace()
        lines = [json.dumps(e) for e in events]
        lines[2] = lines[2][:10]  # corrupt a middle line
        path = tmp_path / "t.jsonl"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(json.JSONDecodeError):
            load_events(path)


class TestNoAnnealEvents:
    def headless_trace(self):
        """A trace with spans and flow checkpoints but no annealing."""
        return [
            {"ev": "span_begin", "name": "flow", "t": 0.0, "span": 1},
            {"ev": "event", "name": "stage1.result", "t": 0.1, "span": 1,
             "teil": 9.0, "chip_area": 10.0},
            {"ev": "span_end", "name": "flow", "t": 0.2, "span": 1,
             "wall_s": 0.2, "cpu_s": 0.1, "ok": True},
        ]

    def test_render_text_degrades_with_note(self):
        from repro.telemetry.report import render_text

        text = render_text(self.headless_trace())
        assert "no annealing events" in text
        assert "Table 4" in text  # stage summary still renders
        assert "Fig. 3/5" not in text  # acceptance table omitted

    def test_render_text_full_trace_has_no_note(self):
        from repro.telemetry.report import render_text

        assert "no annealing events" not in render_text(synthetic_trace())

    def test_cli_survives_headless_trace(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        path.write_text(
            "\n".join(json.dumps(e) for e in self.headless_trace()) + "\n"
        )
        assert main([str(path)]) == 0
        assert "no annealing events" in capsys.readouterr().out


class TestBatchedMoverTrace:
    """The report layer on a real batched-mover stage-1 trace: per-kind
    move counters land in the trace, and the attempt totals reconcile
    with the engine's ``moves_per_iteration`` scaling."""

    @classmethod
    def trace(cls):
        if not hasattr(cls, "_trace"):
            from dataclasses import replace

            from repro import TimberWolfConfig
            from repro.placement import run_stage1
            from repro.telemetry import MemorySink, Tracer, use_tracer

            from ..conftest import make_macro_circuit

            cls._config = replace(
                TimberWolfConfig.smoke(seed=3), core="array", mover="batched"
            )
            cls._circuit = make_macro_circuit()
            sink = MemorySink()
            with use_tracer(Tracer(sink)):
                run_stage1(cls._circuit, cls._config)
            cls._trace = sink.events
        return cls._trace

    def move_counters(self):
        event = next(
            e for e in self.trace() if e.get("name") == "stage1.move_metrics"
        )
        return event["counters"]

    def test_per_kind_counters_present(self):
        from repro.placement.batch import BATCH_KINDS

        counters = self.move_counters()
        for kind in BATCH_KINDS:
            assert f"moves.{kind}.attempts" in counters
            assert f"moves.{kind}.accepts" in counters
            assert counters[f"moves.{kind}.accepts"] <= (
                counters[f"moves.{kind}.attempts"]
            )

    def test_kind_attempts_sum_to_temperature_attempts(self):
        from repro.placement.batch import BATCH_KINDS

        counters = self.move_counters()
        by_kind = sum(
            counters[f"moves.{kind}.attempts"] for kind in BATCH_KINDS
        )
        by_temperature = sum(
            e["attempts"]
            for e in self.trace()
            if e.get("name") == "anneal.temperature"
        )
        assert by_kind == by_temperature > 0

    def test_moves_per_iteration_reconciles(self):
        """The engine scales the inner loop by the batched
        ``moves_per_iteration`` (ceil(N/batch) batches per A_c unit):
        the anneal span advertises exactly A_c * ceil(N/batch) inner
        steps, and each temperature's attempts fit inside that many
        batches."""
        config = self._config
        n = len(self._circuit.cells)
        mpi = max(1, -(-n // config.batch_moves))
        anneal = next(
            e for e in self.trace()
            if e.get("ev") == "span_begin" and e.get("name") == "anneal"
        )
        assert anneal["inner_moves"] == config.attempts_per_cell * mpi
        steps = [
            e for e in self.trace() if e.get("name") == "anneal.temperature"
        ]
        assert steps
        ceiling = anneal["inner_moves"] * config.batch_moves
        assert all(0 < e["attempts"] <= ceiling for e in steps)

    def test_acceptance_table_covers_batched_steps(self):
        headers, rows = acceptance_table(self.trace())
        steps = [
            e for e in self.trace() if e.get("name") == "anneal.temperature"
        ]
        assert len(rows) == len(steps)
        acc = headers.index("acceptance")
        assert all(0.0 <= row[acc] <= 1.0 for row in rows)

    def test_render_text_handles_batched_trace(self):
        from repro.telemetry.report import render_text

        text = render_text(self.trace())
        assert "acceptance" in text
