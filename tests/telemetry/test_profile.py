"""The sampling profiler: sampling, collapsed output, attribution."""

import threading
import time

import pytest

from repro.telemetry.profile import (
    SamplingProfiler,
    attribution_from_collapsed,
    parse_collapsed,
)


def spin(seconds):
    """Busy-work with a recognizable frame for the sampler to catch."""
    deadline = time.monotonic() + seconds
    total = 0
    while time.monotonic() < deadline:
        total += sum(range(200))
    return total


class TestSampling:
    def test_captures_samples_from_calling_thread(self):
        prof = SamplingProfiler(hz=500)
        with prof:
            spin(0.25)
        assert prof.sample_count > 10
        assert any("spin" in frame for stack in prof.samples for frame in stack)

    def test_stacks_are_root_first(self):
        prof = SamplingProfiler(hz=500)
        with prof:
            spin(0.2)
        stack = next(
            s for s in prof.samples if any("spin" in f for f in s)
        )
        spin_idx = next(i for i, f in enumerate(stack) if "spin" in f)
        # The test runner's frames sit above (before) spin, never below.
        assert spin_idx >= 1

    def test_stop_is_idempotent_and_accumulates_wall(self):
        prof = SamplingProfiler(hz=200)
        prof.start()
        spin(0.05)
        prof.stop()
        prof.stop()
        assert prof.wall_seconds > 0
        assert not prof.running

    def test_profiling_another_thread(self):
        stop = threading.Event()
        worker = threading.Thread(target=lambda: spin(0.3))
        worker.start()
        prof = SamplingProfiler(hz=500, thread_id=worker.ident)
        with prof:
            worker.join()
        stop.set()
        assert prof.sample_count > 0

    def test_invalid_hz_rejected(self):
        with pytest.raises(ValueError):
            SamplingProfiler(hz=0)


class TestCollapsed:
    def profiled(self):
        prof = SamplingProfiler(hz=500)
        with prof:
            spin(0.2)
        return prof

    def test_collapsed_lines_carry_counts(self):
        text = self.profiled().collapsed()
        assert text
        for line in text.strip().splitlines():
            stack, _, count = line.rpartition(" ")
            assert ";" in stack or stack  # at least one frame
            assert count.isdigit()

    def test_parse_round_trips(self):
        prof = self.profiled()
        assert parse_collapsed(prof.collapsed()) == prof._samples

    def test_parse_skips_torn_lines(self):
        samples = parse_collapsed("a;b 3\ngarbage-without-count\n\nc 2\nd x\n")
        assert samples == {("a", "b"): 3, ("c",): 2}

    def test_write(self, tmp_path):
        prof = self.profiled()
        out = prof.write(tmp_path / "p.collapsed")
        assert parse_collapsed(out.read_text()) == prof._samples


class TestAttribution:
    COLLAPSED = "\n".join(
        [
            "main;repro.flow.run;repro.placement.stage1.run_stage1;"
            "repro.placement.batch.step 60",
            "main;repro.flow.run;repro.placement.refine.run_refinement;"
            "repro.routing.router.route;repro.routing.mpaths.dijkstra 30",
            "main;idle.wait 10",
        ]
    )

    def test_stage_buckets(self):
        doc = attribution_from_collapsed(self.COLLAPSED)
        assert doc["samples"] == 100
        assert doc["stages"]["stage1"]["samples"] == 60
        assert doc["stages"]["stage2"]["samples"] == 30
        assert doc["stages"]["other"]["samples"] == 10
        assert doc["stages"]["stage1"]["pct"] == 60.0

    def test_kernel_buckets(self):
        doc = attribution_from_collapsed(self.COLLAPSED)
        assert doc["kernels"]["batch_kernel"]["samples"] == 60
        assert doc["kernels"]["router"]["samples"] == 30

    def test_hot_frames_are_leaves(self):
        doc = attribution_from_collapsed(self.COLLAPSED)
        assert doc["hot_frames"]["repro.placement.batch.step"]["samples"] == 60

    def test_outermost_stage_wins(self):
        # A router frame under run_stage1 still counts as stage1: the
        # first marker in STAGE_MARKERS order owns the sample.
        doc = attribution_from_collapsed(
            "m;repro.placement.stage1.run_stage1;repro.routing.router.route 5"
        )
        assert doc["stages"] == {"stage1": {"samples": 5, "pct": 100.0}}

    def test_live_profiler_summary(self):
        prof = SamplingProfiler(hz=500)
        with prof:
            spin(0.1)
        doc = prof.summary()
        assert doc["samples"] == prof.sample_count
        assert doc["distinct_stacks"] == len(prof.samples)
        assert "stages" in doc and "hot_frames" in doc
