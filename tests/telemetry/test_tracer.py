"""Tracer, sink, and span semantics."""

import json

import pytest

from repro.telemetry import (
    NULL_TRACER,
    FileSink,
    MemorySink,
    NullSink,
    Tracer,
    current_tracer,
    use_tracer,
)


class TestSinks:
    def test_null_sink_disables_tracer(self):
        tracer = Tracer(NullSink())
        assert not tracer.enabled

    def test_default_tracer_is_disabled(self):
        assert not Tracer().enabled

    def test_memory_sink_collects(self):
        mem = MemorySink()
        tracer = Tracer(mem)
        assert tracer.enabled
        tracer.event("hello", x=1)
        assert len(mem.events) == 1
        assert mem.events[0]["name"] == "hello"
        assert mem.events[0]["x"] == 1

    def test_memory_sink_limit(self):
        mem = MemorySink(limit=2)
        tracer = Tracer(mem)
        for i in range(5):
            tracer.event("e", i=i)
        assert len(mem.events) == 2
        assert mem.dropped == 3

    def test_file_sink_writes_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = FileSink(str(path))
        tracer = Tracer(sink)
        tracer.event("a", n=1)
        tracer.gauge("g", 2.5)
        sink.close()
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        events = [json.loads(line) for line in lines]
        assert events[0]["name"] == "a"
        assert events[1]["ev"] == "gauge"
        assert events[1]["value"] == 2.5

    def test_file_sink_close_idempotent(self, tmp_path):
        sink = FileSink(str(tmp_path / "t.jsonl"))
        sink.close()
        sink.close()
        with pytest.raises(ValueError):
            sink.emit({"ev": "event"})

    def test_multiple_sinks_fan_out(self):
        a, b = MemorySink(), MemorySink()
        tracer = Tracer([a, b])
        tracer.event("x")
        assert len(a.events) == len(b.events) == 1

    def test_add_remove_sink(self):
        tracer = Tracer()
        mem = MemorySink()
        tracer.add_sink(mem)
        assert tracer.enabled
        tracer.event("x")
        tracer.remove_sink(mem)
        assert not tracer.enabled
        tracer.event("y")
        assert [e["name"] for e in mem.events] == ["x"]


class TestNullNoOp:
    def test_disabled_tracer_emits_nothing_and_spans_yield(self):
        tracer = Tracer()
        with tracer.span("outer") as handle:
            assert handle is None
            tracer.event("e")
            tracer.counter("c")
            tracer.gauge("g", 1)
        # nothing to assert on output — the contract is simply no error
        assert not tracer.enabled

    def test_null_tracer_is_current_by_default(self):
        assert current_tracer() is NULL_TRACER


class TestSpans:
    def test_span_begin_end_pair(self):
        mem = MemorySink()
        tracer = Tracer(mem)
        with tracer.span("work", tag="t"):
            pass
        begin, end = mem.events
        assert begin["ev"] == "span_begin" and end["ev"] == "span_end"
        assert begin["name"] == end["name"] == "work"
        assert begin["span"] == end["span"]
        assert begin["tag"] == "t"
        assert end["ok"] is True
        assert end["wall_s"] >= 0.0
        assert end["cpu_s"] >= 0.0

    def test_nesting_records_parent(self):
        mem = MemorySink()
        tracer = Tracer(mem)
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                tracer.event("leaf")
        begins = {e["name"]: e for e in mem.events if e["ev"] == "span_begin"}
        assert "parent" not in begins["outer"]
        assert begins["inner"]["parent"] == outer.span_id
        leaf = next(e for e in mem.events if e.get("name") == "leaf")
        assert leaf["span"] == inner.span_id

    def test_span_ids_unique(self):
        mem = MemorySink()
        tracer = Tracer(mem)
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        ids = [e["span"] for e in mem.events if e["ev"] == "span_begin"]
        assert len(set(ids)) == 2

    def test_exception_safe_exit(self):
        mem = MemorySink()
        tracer = Tracer(mem)
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        end = mem.events[-1]
        assert end["ev"] == "span_end"
        assert end["ok"] is False
        assert end["error"] == "RuntimeError"
        # The stack unwound: a new span is again a root span.
        with tracer.span("after"):
            pass
        after_begin = next(e for e in mem.events if e.get("name") == "after")
        assert "parent" not in after_begin

    def test_events_tag_enclosing_span(self):
        mem = MemorySink()
        tracer = Tracer(mem)
        tracer.event("outside")
        with tracer.span("s") as handle:
            tracer.counter("inside", 3)
        outside = mem.events[0]
        inside = next(e for e in mem.events if e.get("name") == "inside")
        assert "span" not in outside
        assert inside["span"] == handle.span_id
        assert inside["value"] == 3


class TestUseTracer:
    def test_install_and_restore(self):
        tracer = Tracer(MemorySink())
        assert current_tracer() is NULL_TRACER
        with use_tracer(tracer):
            assert current_tracer() is tracer
        assert current_tracer() is NULL_TRACER

    def test_nested_installation(self):
        t1, t2 = Tracer(MemorySink()), Tracer(MemorySink())
        with use_tracer(t1):
            with use_tracer(t2):
                assert current_tracer() is t2
            assert current_tracer() is t1


class TestIngest:
    def batch(self):
        """A producer-side trace: one span with a nested event."""
        sink = MemorySink()
        producer = Tracer(sink)
        with producer.span("anneal"):
            producer.event("anneal.temperature", step=0, cost=1.0)
        producer.event("loose")
        return sink.events

    def test_disabled_tracer_ignores_batches(self):
        Tracer().ingest(self.batch(), chain=1)  # must not raise

    def test_span_ids_remapped_per_batch(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        tracer.ingest(self.batch(), chain=0)
        tracer.ingest(self.batch(), chain=1)
        spans = [
            e["span"] for e in sink.events if e.get("ev") == "span_begin"
        ]
        assert len(spans) == len(set(spans)) == 2

    def test_batch_attaches_to_open_span(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("stage1") as handle:
            tracer.ingest(self.batch(), chain=2)
        begin = next(e for e in sink.events if e.get("name") == "anneal")
        loose = next(e for e in sink.events if e.get("name") == "loose")
        assert begin["parent"] == handle.span_id
        assert loose["span"] == handle.span_id

    def test_extra_fields_stamped_on_every_event(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        tracer.ingest(self.batch(), chain=7)
        assert all(e["chain"] == 7 for e in sink.events)

    def test_producer_timestamps_preserved_as_t_origin(self):
        batch = self.batch()
        sink = MemorySink()
        tracer = Tracer(sink)
        tracer.ingest(batch)
        for source, merged in zip(batch, sink.events):
            assert merged["t_origin"] == source["t"]
            assert merged["t"] >= 0

    def test_unknown_parent_dropped(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        tracer.ingest(
            [{"ev": "span_begin", "name": "orphan", "t": 0.0, "span": 9,
              "parent": 4}]
        )
        assert "parent" not in sink.events[0]

    def test_three_worker_batches_with_overlapping_span_ids(self):
        """Three chains ship batches whose producer span ids all collide
        (every fresh producer tracer starts at id 1); the merged stream
        must keep the chains apart and well-formed."""
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("stage1"):
            for chain in range(3):
                tracer.ingest(self.batch(), chain=chain)
        begins = [
            e
            for e in sink.events
            if e.get("ev") == "span_begin" and e.get("name") == "anneal"
        ]
        assert len(begins) == 3
        # Every batch got fresh ids despite identical producer ids.
        ids = [e["span"] for e in begins]
        assert len(set(ids)) == 3
        # Each chain's nested event points at its own remapped span.
        for chain in range(3):
            begin = next(e for e in begins if e["chain"] == chain)
            temp = next(
                e
                for e in sink.events
                if e.get("name") == "anneal.temperature" and e["chain"] == chain
            )
            assert temp["span"] == begin["span"]
        # The merged trace resolves into per-chain paths under stage1.
        from repro.telemetry.report import span_paths

        paths = span_paths(sink.events)
        assert sorted(paths[i] for i in ids) == ["stage1/anneal"] * 3


class TestFlushOnSpanClose:
    def test_trace_on_disk_complete_after_span_close(self, tmp_path):
        """Closing a span flushes every sink: the on-disk JSONL is
        readable up to that point without closing the tracer."""
        path = tmp_path / "trace.jsonl"
        handle = open(path, "w", encoding="utf-8", buffering=1 << 20)
        sink = FileSink(handle, flush_every=10_000)
        tracer = Tracer(sink)
        with tracer.span("stage1"):
            tracer.event("anneal.temperature", step=0)
        events = [
            json.loads(line) for line in path.read_text().strip().splitlines()
        ]
        assert [e["ev"] for e in events] == ["span_begin", "event", "span_end"]
        handle.close()

    def test_closed_sinks_not_flushed(self, tmp_path):
        """A span closing after Tracer sinks are replaced must not touch
        a closed file (flush is only sent to enabled sinks)."""
        sink = FileSink(str(tmp_path / "t.jsonl"))
        tracer = Tracer([sink, NullSink()])
        with tracer.span("s"):
            pass  # flush on close: NullSink is skipped, FileSink written
        sink.close()
        assert (tmp_path / "t.jsonl").read_text().count("\n") == 2


class TestIngestOutOfOrder:
    """Regression: the span-id remap used to allocate ids lazily in
    event order, so a batch whose child ``span_begin`` preceded its
    parent's remapped the parent reference to a *different* fresh id
    than the parent's own begin event — silently detaching the child."""

    def out_of_order_batch(self):
        """A child's begin arrives before its parent's (a worker that
        buffers per-span and flushes leaf-first)."""
        return [
            {"ev": "span_begin", "name": "child", "t": 0.1, "span": 2,
             "parent": 1},
            {"ev": "span_begin", "name": "parent", "t": 0.0, "span": 1},
            {"ev": "span_end", "name": "child", "t": 0.2, "span": 2,
             "wall_s": 0.1, "cpu_s": 0.1, "ok": True},
            {"ev": "span_end", "name": "parent", "t": 0.3, "span": 1,
             "wall_s": 0.3, "cpu_s": 0.2, "ok": True},
        ]

    def test_parent_link_survives_reordering(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        tracer.ingest(self.out_of_order_batch())
        child = next(e for e in sink.events if e.get("name") == "child"
                     and e["ev"] == "span_begin")
        parent = next(e for e in sink.events if e.get("name") == "parent"
                      and e["ev"] == "span_begin")
        assert child["parent"] == parent["span"]

    def test_begin_and_end_agree_despite_reordering(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        tracer.ingest(self.out_of_order_batch())
        for name in ("child", "parent"):
            begin = next(e for e in sink.events
                         if e.get("name") == name and e["ev"] == "span_begin")
            end = next(e for e in sink.events
                       if e.get("name") == name and e["ev"] == "span_end")
            assert begin["span"] == end["span"]

    def test_reordered_child_not_reparented_to_ambient(self):
        """Under an open coordinator span, only true roots attach to it;
        a child that merely arrived early keeps its own parent."""
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("stage1") as handle:
            tracer.ingest(self.out_of_order_batch())
        child = next(e for e in sink.events if e.get("name") == "child"
                     and e["ev"] == "span_begin")
        parent = next(e for e in sink.events if e.get("name") == "parent"
                      and e["ev"] == "span_begin")
        assert parent["parent"] == handle.span_id
        assert child["parent"] == parent["span"]


class TestContextStamping:
    def test_context_stamped_on_all_event_kinds(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        tracer.set_context(trace_id="abc123")
        with tracer.span("flow"):
            tracer.event("e")
            tracer.counter("c", 2)
            tracer.gauge("g", 1.5)
        assert sink.events
        assert all(e["trace_id"] == "abc123" for e in sink.events)

    def test_event_local_field_wins_over_context(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        tracer.set_context(trace_id="ambient")
        tracer.event("e", trace_id="explicit")
        assert sink.events[0]["trace_id"] == "explicit"

    def test_none_removes_key(self):
        tracer = Tracer(MemorySink())
        tracer.set_context(trace_id="abc", extra=1)
        tracer.set_context(extra=None)
        assert tracer.context == {"trace_id": "abc"}

    def test_ingested_events_inherit_context(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        tracer.set_context(trace_id="abc123")
        producer_sink = MemorySink()
        producer = Tracer(producer_sink)
        with producer.span("anneal"):
            producer.event("anneal.temperature", step=0)
        tracer.ingest(producer_sink.events, chain=0)
        assert all(e["trace_id"] == "abc123" for e in sink.events)
