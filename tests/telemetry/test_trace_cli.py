"""``python -m repro trace show|export`` — the offline trace views."""

import json

import pytest

from repro.__main__ import main

TRACE_ID = "ef" * 16


def trace_events():
    return [
        {"ev": "span_begin", "name": "flow", "t": 0.0, "span": 1,
         "trace_id": TRACE_ID},
        {"ev": "span_begin", "name": "stage1", "t": 0.1, "span": 2,
         "parent": 1, "trace_id": TRACE_ID},
        {"ev": "event", "name": "anneal.temperature", "t": 0.2, "span": 2,
         "T": 100.0, "trace_id": TRACE_ID},
        {"ev": "span_end", "name": "stage1", "t": 0.4, "span": 2,
         "wall_s": 0.3, "cpu_s": 0.2, "ok": True, "trace_id": TRACE_ID},
        {"ev": "span_end", "name": "flow", "t": 0.5, "span": 1,
         "wall_s": 0.5, "cpu_s": 0.3, "ok": True, "trace_id": TRACE_ID},
    ]


@pytest.fixture
def trace_file(tmp_path):
    path = tmp_path / "trace.jsonl"
    path.write_text(
        "\n".join(json.dumps(e) for e in trace_events()) + "\n"
    )
    return path


class TestShow:
    def test_tree_nests_and_reports_durations(self, trace_file, capsys):
        assert main(["trace", "show", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert f"trace {TRACE_ID}" in out
        assert "flow  0.500s" in out
        assert "  stage1  0.300s" in out  # indented under flow
        assert "events=1" in out

    def test_show_accepts_a_rundir(self, trace_file, capsys):
        assert main(["trace", "show", str(trace_file.parent)]) == 0
        assert "flow" in capsys.readouterr().out

    def test_waterfall_renders_bars(self, trace_file, capsys):
        assert main(["trace", "show", str(trace_file), "--waterfall"]) == 0
        out = capsys.readouterr().out
        assert "#" in out and "|" in out

    def test_missing_trace_exits_1(self, tmp_path, capsys):
        assert main(["trace", "show", str(tmp_path / "nope")]) == 1
        assert "no trace files" in capsys.readouterr().err


class TestExport:
    def test_json_document_round_trips(self, trace_file, capsys):
        assert main(["trace", "export", str(trace_file)]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["trace_id"] == TRACE_ID
        assert doc["span_count"] == 2
        assert doc["processes"][0]["file"] == "trace.jsonl"

    def test_html_written_to_out(self, trace_file, tmp_path, capsys):
        out = tmp_path / "trace.html"
        assert main(
            ["trace", "export", str(trace_file), "--html",
             "--out", str(out)]
        ) == 0
        html = out.read_text()
        assert TRACE_ID in html and "<html" in html.lower()
