"""The distributed-trace context: parse/format, children, env plumbing."""

import pytest

from repro.telemetry.context import (
    TRACEPARENT_ENV,
    TraceContext,
    context_from_env,
    inherit_or_mint,
    mint_context,
    new_span_id,
    new_trace_id,
)


class TestIds:
    def test_trace_id_is_32_hex(self):
        tid = new_trace_id()
        assert len(tid) == 32
        int(tid, 16)  # must parse as hex

    def test_span_id_is_16_hex(self):
        sid = new_span_id()
        assert len(sid) == 16
        int(sid, 16)

    def test_ids_are_unique(self):
        assert len({new_trace_id() for _ in range(32)}) == 32


class TestTraceContext:
    def test_traceparent_round_trip(self):
        ctx = mint_context()
        parsed = TraceContext.parse(ctx.to_traceparent())
        assert parsed == ctx

    def test_header_shape(self):
        ctx = TraceContext("ab" * 16, "cd" * 8)
        assert ctx.to_traceparent() == f"00-{'ab' * 16}-{'cd' * 8}-01"

    @pytest.mark.parametrize(
        "header",
        [
            "",
            "garbage",
            "00-zz-cd-01",                       # non-hex
            "00-" + "ab" * 16 + "-" + "cd" * 8,  # missing flags
            "00-" + "0" * 32 + "-" + "cd" * 8 + "-01",  # all-zero trace
            "00-" + "ab" * 16 + "-" + "0" * 16 + "-01",  # all-zero span
            "00-" + "ab" * 8 + "-" + "cd" * 8 + "-01",   # short trace id
        ],
    )
    def test_malformed_headers_parse_to_none(self, header):
        assert TraceContext.parse(header) is None

    def test_invalid_ids_rejected_at_construction(self):
        with pytest.raises(ValueError):
            TraceContext("xyz", "cd" * 8)
        with pytest.raises(ValueError):
            TraceContext("ab" * 16, "short")

    def test_child_keeps_trace_changes_span(self):
        parent = mint_context()
        child = parent.child()
        assert child.trace_id == parent.trace_id
        assert child.span_id != parent.span_id

    def test_dict_round_trip(self):
        ctx = mint_context()
        assert TraceContext.from_dict(ctx.to_dict()) == ctx


class TestEnvPropagation:
    def test_env_sets_header_without_mutating_original(self):
        ctx = mint_context()
        base = {"PATH": "/bin"}
        env = ctx.env(base)
        assert env[TRACEPARENT_ENV] == ctx.to_traceparent()
        assert env["PATH"] == "/bin"
        assert TRACEPARENT_ENV not in base

    def test_context_from_env_round_trip(self):
        ctx = mint_context()
        assert context_from_env(ctx.env({})) == ctx

    def test_context_from_env_absent(self):
        assert context_from_env({}) is None

    def test_context_from_env_malformed(self):
        assert context_from_env({TRACEPARENT_ENV: "nope"}) is None

    def test_inherit_or_mint_continues_parent_trace(self):
        parent = mint_context()
        ctx = inherit_or_mint(parent.env({}))
        assert ctx.trace_id == parent.trace_id
        assert ctx.span_id != parent.span_id

    def test_inherit_or_mint_mints_without_parent(self):
        a = inherit_or_mint({})
        b = inherit_or_mint({})
        assert a.trace_id != b.trace_id
