"""MetricsRegistry: counters, gauges, histograms, snapshots."""

from repro.telemetry import MemorySink, MetricsRegistry, Tracer


class TestCounter:
    def test_inc(self):
        reg = MetricsRegistry()
        c = reg.counter("n")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.counter("x") is not reg.counter("y")


class TestGauge:
    def test_last_write_wins(self):
        g = MetricsRegistry().gauge("g")
        assert g.value is None
        g.set(1)
        g.set(7.5)
        assert g.value == 7.5


class TestHistogram:
    def test_moments(self):
        h = MetricsRegistry().histogram("h")
        for v in (2.0, 4.0, 9.0):
            h.observe(v)
        assert h.count == 3
        assert h.min == 2.0
        assert h.max == 9.0
        assert h.mean == 5.0
        d = h.to_dict()
        assert d["count"] == 3 and d["sum"] == 15.0

    def test_empty_mean(self):
        assert MetricsRegistry().histogram("h").mean == 0.0


class TestSnapshot:
    def test_structure_and_sorting(self):
        reg = MetricsRegistry()
        reg.counter("b").inc(2)
        reg.counter("a").inc(1)
        reg.gauge("g").set(3)
        reg.histogram("h").observe(1.0)
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a", "b"]
        assert snap["counters"]["b"] == 2
        assert snap["gauges"]["g"] == 3
        assert snap["histograms"]["h"]["count"] == 1

    def test_empty_snapshot_is_empty(self):
        assert MetricsRegistry().snapshot() == {}

    def test_emit_to_tracer(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        mem = MemorySink()
        reg.emit(Tracer(mem), "stats")
        assert mem.events[0]["name"] == "stats"
        assert mem.events[0]["counters"] == {"c": 3}

    def test_emit_noop_when_disabled(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.emit(Tracer())  # must not raise


class TestMoveGeneratorMigration:
    """The per-move-kind stats now live in a MetricsRegistry."""

    def test_stats_view_backed_by_registry(self):
        import random

        from repro.annealing import RangeLimiter
        from repro.bench import CircuitSpec, generate_circuit
        from repro.estimator import determine_core
        from repro.placement import MoveGenerator, PlacementState

        circuit = generate_circuit(
            CircuitSpec(name="m", num_cells=8, num_nets=12, num_pins=30, seed=0)
        )
        state = PlacementState(circuit, determine_core(circuit))
        rng = random.Random(0)
        state.randomize(rng)
        limiter = RangeLimiter(
            full_span_x=state.core.width,
            full_span_y=state.core.height,
            t_infinity=1e4,
        )
        gen = MoveGenerator(state, limiter)
        for _ in range(30):
            gen.step(100.0, rng)
        stats = gen.stats
        assert stats["displace"][0] > 0
        assert stats["displace"][0] >= stats["displace"][1]
        # The registry holds the same series under dotted names.
        snap = gen.metrics.snapshot()["counters"]
        assert snap["moves.displace.attempts"] == stats["displace"][0]
        assert snap["moves.displace.accepts"] == stats["displace"][1]
        # Total attempts across kinds reconcile with the step() returns.
        total = sum(v[0] for v in stats.values())
        assert total >= 30
