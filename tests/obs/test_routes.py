"""The HTTP route layer, exercised without binding a socket."""

import json

from repro.obs import handle_request
from repro.obs.fleet import Fleet
from repro.qor import parse_prometheus

from .test_fleet import make_rundir


def get(fleet, path, query=None):
    return handle_request(fleet, path, query or {})


def get_json(fleet, path, query=None):
    response = get(fleet, path, query)
    return response.status, json.loads(response.body.decode("utf-8"))


class TestBasics:
    def test_index_lists_endpoints(self, tmp_path):
        status, doc = get_json(Fleet(tmp_path), "/")
        assert status == 200
        assert "/runs" in doc["endpoints"]
        assert "/metrics" in doc["endpoints"]

    def test_healthz(self, tmp_path):
        status, doc = get_json(Fleet(tmp_path), "/healthz")
        assert status == 200 and doc["ok"] is True

    def test_unknown_route_404s_as_json(self, tmp_path):
        status, doc = get_json(Fleet(tmp_path), "/nope")
        assert status == 404
        assert doc["status"] == 404


class TestRuns:
    def test_runs_listing(self, tmp_path):
        make_rundir(tmp_path, "run-a", step=1)
        make_rundir(tmp_path, "run-b", phase="done", final=True)
        status, doc = get_json(Fleet(tmp_path), "/runs")
        assert status == 200
        assert [r["run_id"] for r in doc["runs"]] == ["run-a", "run-b"]

    def test_run_detail_and_404(self, tmp_path):
        make_rundir(tmp_path, "run-a", step=1)
        fleet = Fleet(tmp_path)
        status, doc = get_json(fleet, "/runs/run-a")
        assert status == 200
        assert doc["heartbeat"]["seq"] == 1
        status, _ = get_json(fleet, "/runs/ghost")
        assert status == 404

    def test_history_with_query(self, tmp_path):
        _, writer = make_rundir(tmp_path, "run-a", step=1)
        writer.beat("anneal", step=2)
        writer.beat("anneal", step=3)
        status, doc = get_json(
            Fleet(tmp_path), "/runs/run-a/history", {"since_seq": "1", "limit": "1"}
        )
        assert status == 200
        assert [b["seq"] for b in doc["history"]] == [3]

    def test_health_route(self, tmp_path):
        make_rundir(tmp_path, "run-a", phase="done", final=True)
        status, doc = get_json(Fleet(tmp_path), "/runs/run-a/health")
        assert status == 200
        assert doc["run_id"] == "run-a"
        assert doc["state"] == "done"
        assert "acceptance" in doc and "divergence" in doc


class TestMetrics:
    def test_scrape_page_round_trips(self, tmp_path):
        make_rundir(tmp_path, "run-a", T=50.0, cost=123.5)
        make_rundir(tmp_path, "run-b", T=25.0, cost=99.0)
        response = get(Fleet(tmp_path), "/metrics")
        assert response.status == 200
        assert response.content_type.startswith("text/plain; version=0.0.4")
        parsed = parse_prometheus(response.body.decode("utf-8"))
        assert parsed['repro_cost{run_id="run-a"}'] == 123.5
        assert parsed['repro_cost{run_id="run-b"}'] == 99.0
        assert parsed['repro_run_info{phase="anneal",run_id="run-a"}'] == 1.0

    def test_empty_fleet_scrapes_cleanly(self, tmp_path):
        response = get(Fleet(tmp_path), "/metrics")
        assert response.status == 200
        assert parse_prometheus(response.body.decode("utf-8")) == {}


class TestEvents:
    def test_sse_stream_delivers_beats(self, tmp_path):
        _, writer = make_rundir(tmp_path, "run-a", step=1)
        writer.beat("done", final=True)
        response = get(
            Fleet(tmp_path), "/runs/run-a/events", {"timeout": "5"}
        )
        assert response.status == 200
        assert response.content_type == "text/event-stream"
        assert response.headers["Cache-Control"] == "no-cache"
        raw = b"".join(response.stream).decode("utf-8")
        assert "event: beat" in raw
        assert "event: final" in raw

    def test_events_unknown_run_404s(self, tmp_path):
        assert get(Fleet(tmp_path), "/runs/ghost/events").status == 404

    def test_timeout_query_is_clamped(self, tmp_path):
        from repro.obs.routes import MAX_STREAM_SECONDS

        make_rundir(tmp_path, "run-a", phase="done", final=True)
        response = get(
            Fleet(tmp_path),
            "/runs/run-a/events",
            {"timeout": str(MAX_STREAM_SECONDS * 100)},
        )
        # The stream still terminates (final beat), proving the huge
        # timeout was accepted without error; the clamp itself is a
        # route-layer detail asserted by draining the stream promptly.
        assert b"event: final" in b"".join(response.stream)
