"""Anneal-health analytics: Fig.-3 trajectory, plateaus, ETA, divergence."""

import math
import time

import pytest

from repro.obs import analyze_health, fig3_ideal_acceptance
from repro.obs.health import (
    acceptance_health,
    cost_health,
    divergence_health,
    eta_health,
)


def anneal_beats(n=20, acceptance=None, cost=None, base_time=None, **extra):
    """A synthetic anneal history: seq/step increase, cost descends."""
    base_time = base_time if base_time is not None else time.time() - n
    beats = []
    for i in range(n):
        progress = i / max(1, n - 1)
        beat = {
            "phase": "anneal",
            "seq": i + 1,
            "step": i,
            "T": 100.0 * (0.9 ** i),
            "updated": base_time + i * 1.0,
            "acceptance": (
                acceptance(progress) if acceptance else fig3_ideal_acceptance(progress)
            ),
            "cost": cost(progress) if cost else 1000.0 * (1.2 - progress),
        }
        beat.update(extra)
        beats.append(beat)
    return beats


class TestFig3Ideal:
    def test_limits(self):
        assert fig3_ideal_acceptance(0.0) > 0.99
        assert fig3_ideal_acceptance(1.0) < 0.01
        assert fig3_ideal_acceptance(0.5) == pytest.approx(0.5)

    def test_monotone_decline(self):
        values = [fig3_ideal_acceptance(p / 10) for p in range(11)]
        assert values == sorted(values, reverse=True)

    def test_clamped_outside_unit_interval(self):
        assert fig3_ideal_acceptance(-1.0) == fig3_ideal_acceptance(0.0)
        assert fig3_ideal_acceptance(2.0) == fig3_ideal_acceptance(1.0)


class TestAcceptance:
    def test_ideal_trajectory_has_no_flags(self):
        report = acceptance_health(anneal_beats())
        assert report["flags"] == []
        assert report["mean_fig3_deviation"] < 0.05

    def test_too_hot_flagged(self):
        report = acceptance_health(anneal_beats(acceptance=lambda p: 0.97))
        assert "too_hot" in report["flags"]

    def test_quenched_flagged(self):
        report = acceptance_health(anneal_beats(acceptance=lambda p: 0.01))
        assert "quenched" in report["flags"]

    def test_progress_prefers_eta_steps(self):
        beats = anneal_beats(n=4)
        for beat in beats:
            beat["eta_steps"] = 96  # step 3 of ~100: early, not 100% done
        report = acceptance_health(beats)
        assert report["last"]["progress"] < 0.1

    def test_empty_history(self):
        assert acceptance_health([]) == {"samples": 0, "flags": []}


class TestCost:
    def test_descending_cost_is_not_a_plateau(self):
        report = cost_health(anneal_beats())
        assert report["plateau"] is False
        assert report["flags"] == []

    def test_flat_cost_at_low_acceptance_is_frozen(self):
        beats = anneal_beats(acceptance=lambda p: 0.02, cost=lambda p: 500.0)
        report = cost_health(beats)
        assert report["plateau"] is True
        assert report["flags"] == ["frozen"]

    def test_flat_cost_at_high_acceptance_is_a_stall(self):
        beats = anneal_beats(acceptance=lambda p: 0.5, cost=lambda p: 500.0)
        report = cost_health(beats)
        assert report["flags"] == ["cost_stall"]


class TestEta:
    def test_schedule_eta_passes_through(self):
        beats = anneal_beats(eta_steps=7, eta_seconds=3.5)
        report = eta_health(beats, beats)
        assert report["eta_steps"] == 7
        assert report["eta_seconds"] == 3.5
        assert report["eta_estimated"] is False

    def test_measured_eta_from_timestamps(self):
        beats = anneal_beats(n=10, eta_steps=5)
        report = eta_health(beats, beats)
        assert report["seconds_per_step_measured"] == pytest.approx(1.0, abs=0.1)
        assert report["eta_seconds_measured"] == pytest.approx(5.0, abs=0.5)

    def test_adaptive_estimate_flagged(self):
        beats = anneal_beats(eta_steps=7, eta_estimated=True)
        assert eta_health(beats, beats)["eta_estimated"] is True

    def test_empty(self):
        assert eta_health([], [])["eta_steps"] is None


class TestDivergence:
    def test_consistent_components_pass(self):
        beats = anneal_beats(c1=600.0, c2=300.0, c3=100.0, cost=lambda p: 1000.0)
        report = divergence_health(beats)
        assert report["diverged"] is False
        assert report["checked"] == len(beats)

    def test_drifted_components_flagged(self):
        beats = anneal_beats(c1=600.0, c2=300.0, c3=50.0, cost=lambda p: 1000.0)
        report = divergence_health(beats)
        assert report["diverged"] is True
        assert report["flags"] == ["diverged"]

    def test_rounding_noise_tolerated(self):
        beats = anneal_beats(
            c1=600.0001, c2=300.0, c3=100.0, cost=lambda p: 1000.0
        )
        assert divergence_health(beats)["diverged"] is False

    def test_beats_without_components_skipped(self):
        assert divergence_health(anneal_beats())["checked"] == 0


class TestAnalyze:
    def test_healthy_running_run(self):
        history = anneal_beats()
        doc = analyze_health(history)
        assert doc["state"] == "running"
        assert doc["healthy"] is True
        assert doc["flags"] == []
        assert doc["anneal_beats"] == len(history)

    def test_stale_run_is_stalled_and_unhealthy(self):
        history = anneal_beats(base_time=time.time() - 10_000)
        doc = analyze_health(history, stale_after=30.0)
        assert doc["state"] == "stale"
        assert "stalled" in doc["flags"]
        assert doc["healthy"] is False

    def test_frozen_alone_keeps_a_run_healthy(self):
        # A normal acceptance decline whose cost has flattened: the
        # freeze is the expected end state of a good anneal, so the
        # 'frozen' flag alone must not mark the run unhealthy.
        history = anneal_beats(cost=lambda p: 500.0)
        doc = analyze_health(history)
        assert doc["flags"] == ["frozen"]
        assert doc["healthy"] is True

    def test_empty_history(self):
        doc = analyze_health([])
        assert doc["state"] == "pending"
        assert doc["anneal_beats"] == 0

    def test_snapshot_beats_history_for_state(self):
        history = anneal_beats()
        final = {"phase": "done", "final": True, "updated": time.time()}
        doc = analyze_health(history, beat=final)
        assert doc["state"] == "done"
        assert doc["phase"] == "done"
