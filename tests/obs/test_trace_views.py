"""Trace/profile views and routes: span trees, waterfalls, fleet-wide
trace lookup, and the service job gauges on /metrics."""

import json

from repro.obs import handle_request
from repro.obs.fleet import Fleet
from repro.obs.trace import (
    profile_document,
    render_trace_html,
    span_tree,
    trace_document,
    waterfall,
)
from repro.qor import parse_prometheus

TRACE_ID = "aa" * 16


def events_for(trace_id=TRACE_ID, fail=False, unclosed=False):
    """A small two-level trace, optionally failing or crashing."""
    events = [
        {"ev": "span_begin", "name": "flow", "t": 0.0, "span": 1,
         "trace_id": trace_id},
        {"ev": "span_begin", "name": "stage1", "t": 0.1, "span": 2,
         "parent": 1, "trace_id": trace_id},
        {"ev": "event", "name": "anneal.temperature", "t": 0.2, "span": 2,
         "trace_id": trace_id},
    ]
    if not unclosed:
        events += [
            {"ev": "span_end", "name": "stage1", "t": 0.5, "span": 2,
             "wall_s": 0.4, "cpu_s": 0.3, "ok": not fail,
             "trace_id": trace_id},
            {"ev": "span_end", "name": "flow", "t": 0.6, "span": 1,
             "wall_s": 0.6, "cpu_s": 0.5, "ok": True, "trace_id": trace_id},
        ]
    return events


def write_trace(rundir, name="trace.jsonl", **kwargs):
    rundir.mkdir(parents=True, exist_ok=True)
    path = rundir / name
    path.write_text(
        "".join(json.dumps(e) + "\n" for e in events_for(**kwargs)),
        encoding="utf-8",
    )
    return path


def make_traced_rundir(root, name, trace_id=TRACE_ID, **kwargs):
    rundir = root / name
    rundir.mkdir(parents=True, exist_ok=True)
    (rundir / "manifest.json").write_text(
        json.dumps({"run_id": name, "trace_id": trace_id})
    )
    write_trace(rundir, trace_id=trace_id, **kwargs)
    return rundir


class TestSpanTree:
    def test_nesting_and_timing(self):
        roots = span_tree(events_for())
        assert len(roots) == 1
        flow = roots[0]
        assert flow["name"] == "flow" and flow["wall_s"] == 0.6
        (stage1,) = flow["children"]
        assert stage1["name"] == "stage1"
        assert stage1["events"] == 1
        assert stage1["ok"] is True

    def test_unclosed_span_kept_open(self):
        roots = span_tree(events_for(unclosed=True))
        assert roots[0]["end"] is None
        assert roots[0]["children"][0]["ok"] is None

    def test_unknown_parent_becomes_root(self):
        roots = span_tree(
            [{"ev": "span_begin", "name": "x", "t": 0.0, "span": 5,
              "parent": 99}]
        )
        assert [r["name"] for r in roots] == ["x"]


class TestWaterfall:
    def test_rows_depth_first(self):
        rows = waterfall(span_tree(events_for()))
        assert [(r["name"], r["depth"]) for r in rows] == [
            ("flow", 0), ("stage1", 1),
        ]
        assert rows[1]["path"] == "flow/stage1"

    def test_open_span_extended_to_horizon(self):
        events = events_for()[:4]  # stage1 closed, flow never closes
        rows = waterfall(span_tree(events))
        flow = next(r for r in rows if r["name"] == "flow")
        assert flow["open"] is True
        assert flow["end"] == 0.5  # the latest end seen


class TestTraceDocument:
    def test_merges_attempt_files(self, tmp_path):
        rundir = tmp_path / "rd"
        write_trace(rundir, "trace-attempt-01.jsonl", unclosed=True)
        write_trace(rundir, "trace-attempt-02.jsonl")
        doc = trace_document(rundir, run_id="job-1")
        assert doc["run_id"] == "job-1"
        assert doc["trace_id"] == TRACE_ID
        assert [p["file"] for p in doc["processes"]] == [
            "trace-attempt-01.jsonl", "trace-attempt-02.jsonl",
        ]
        assert doc["span_count"] == 4

    def test_no_trace_files_is_none(self, tmp_path):
        (tmp_path / "rd").mkdir()
        assert trace_document(tmp_path / "rd") is None

    def test_html_renders_spans(self, tmp_path):
        rundir = tmp_path / "rd"
        write_trace(rundir)
        html = render_trace_html(trace_document(rundir, run_id="r1"))
        assert "<html>" in html and "trace.jsonl" in html
        assert TRACE_ID in html


class TestProfileDocument:
    def test_reads_collapsed(self, tmp_path):
        rundir = tmp_path / "rd"
        rundir.mkdir()
        (rundir / "profile.collapsed").write_text(
            "m;repro.placement.stage1.run_stage1;hot 9\n"
        )
        doc = profile_document(rundir)
        assert doc["samples"] == 9
        assert doc["stages"]["stage1"]["samples"] == 9
        assert doc["collapsed"].startswith("m;")

    def test_missing_profile_is_none(self, tmp_path):
        (tmp_path / "rd").mkdir()
        assert profile_document(tmp_path / "rd") is None


class TestFindByTrace:
    def test_finds_stamped_rundirs(self, tmp_path):
        make_traced_rundir(tmp_path, "run-a")
        make_traced_rundir(tmp_path, "run-b", trace_id="bb" * 16)
        fleet = Fleet(tmp_path)
        assert [p.name for p in fleet.find_by_trace(TRACE_ID)] == ["run-a"]
        assert [p.name for p in fleet.find_by_trace("aa" * 4)] == ["run-a"]

    def test_short_prefix_rejected(self, tmp_path):
        make_traced_rundir(tmp_path, "run-a")
        assert Fleet(tmp_path).find_by_trace("aa") == []


class TestTraceRoutes:
    def get(self, fleet, path, query=None, service=None):
        return handle_request(fleet, path, query or {}, service=service)

    def test_run_trace_json(self, tmp_path):
        make_traced_rundir(tmp_path, "run-a")
        response = self.get(Fleet(tmp_path), "/runs/run-a/trace")
        doc = json.loads(response.body)
        assert response.status == 200
        assert doc["trace_id"] == TRACE_ID
        assert doc["processes"][0]["waterfall"][0]["name"] == "flow"

    def test_run_trace_html(self, tmp_path):
        make_traced_rundir(tmp_path, "run-a")
        response = self.get(
            Fleet(tmp_path), "/runs/run-a/trace", {"format": "html"}
        )
        assert response.status == 200
        assert response.content_type.startswith("text/html")
        assert b"<html>" in response.body

    def test_run_without_trace_404s(self, tmp_path):
        from .test_fleet import make_rundir

        make_rundir(tmp_path, "run-a")
        response = self.get(Fleet(tmp_path), "/runs/run-a/trace")
        assert response.status == 404

    def test_run_profile_text_and_json(self, tmp_path):
        rundir = make_traced_rundir(tmp_path, "run-a")
        (rundir / "profile.collapsed").write_text("m;f 3\n")
        fleet = Fleet(tmp_path)
        response = self.get(fleet, "/runs/run-a/profile")
        assert response.status == 200
        assert response.body == b"m;f 3\n"
        assert response.content_type.startswith("text/plain")
        doc = json.loads(
            self.get(fleet, "/runs/run-a/profile", {"format": "json"}).body
        )
        assert doc["samples"] == 3

    def test_run_without_profile_404s(self, tmp_path):
        make_traced_rundir(tmp_path, "run-a")
        assert self.get(Fleet(tmp_path), "/runs/run-a/profile").status == 404

    def test_fleet_trace_merges_runs(self, tmp_path):
        make_traced_rundir(tmp_path, "run-a")
        make_traced_rundir(tmp_path, "run-b")
        make_traced_rundir(tmp_path, "run-c", trace_id="bb" * 16)
        response = self.get(Fleet(tmp_path), f"/trace/{TRACE_ID}")
        doc = json.loads(response.body)
        assert response.status == 200
        assert doc["trace_id"] == TRACE_ID
        assert [r["run_id"] for r in doc["runs"]] == ["run-a", "run-b"]
        assert doc["span_count"] == 4

    def test_fleet_trace_unknown_404s(self, tmp_path):
        response = self.get(Fleet(tmp_path), "/trace/" + "ff" * 16)
        assert response.status == 404

    def test_fleet_trace_html(self, tmp_path):
        make_traced_rundir(tmp_path, "run-a")
        response = self.get(
            Fleet(tmp_path), f"/trace/{TRACE_ID}", {"format": "html"}
        )
        assert response.status == 200
        assert b"<html>" in response.body

    def test_index_advertises_trace_routes(self, tmp_path):
        doc = json.loads(self.get(Fleet(tmp_path), "/").body)
        assert "/runs/<id>/trace" in doc["endpoints"]
        assert "/runs/<id>/profile" in doc["endpoints"]
        assert "/trace/<trace_id>" in doc["endpoints"]


class TestServiceTraceJournal:
    def test_journal_lines_join_the_trace(self, tmp_path, monkeypatch):
        from repro.service import ServicePaths, ServiceView
        from repro.netlist import dumps

        from ..conftest import make_macro_circuit

        circuit = tmp_path / "c.twmc"
        circuit.write_text(dumps(make_macro_circuit()), encoding="utf-8")
        root = tmp_path / "svc"
        with ServiceView(root) as view:
            job = view.submit(circuit)
        assert job.trace_id
        runs_root = ServicePaths(root).root / "runs"
        make_traced_rundir(runs_root, job.job_id, trace_id=job.trace_id)
        response = handle_request(
            Fleet(runs_root), f"/trace/{job.trace_id}", {}, service=root
        )
        doc = json.loads(response.body)
        assert response.status == 200
        assert doc["trace_id"] == job.trace_id
        assert [e["event"] for e in doc["journal"]] == ["job_submitted"]
        assert [r["run_id"] for r in doc["runs"]] == [job.job_id]

    def test_journal_only_trace_still_resolves(self, tmp_path):
        """A queued job has journal lines but no rundir yet."""
        from repro.service import ServiceView
        from repro.netlist import dumps

        from ..conftest import make_macro_circuit

        circuit = tmp_path / "c.twmc"
        circuit.write_text(dumps(make_macro_circuit()), encoding="utf-8")
        root = tmp_path / "svc"
        with ServiceView(root) as view:
            job = view.submit(circuit)
        response = handle_request(
            Fleet(tmp_path / "empty"), f"/trace/{job.trace_id}", {},
            service=root,
        )
        doc = json.loads(response.body)
        assert response.status == 200
        assert doc["runs"] == []
        assert doc["journal"]


class TestJobMetrics:
    def submit_jobs(self, tmp_path, n=2):
        from repro.service import ServiceView
        from repro.netlist import dumps

        from ..conftest import make_macro_circuit

        circuit = tmp_path / "c.twmc"
        circuit.write_text(dumps(make_macro_circuit()), encoding="utf-8")
        root = tmp_path / "svc"
        with ServiceView(root) as view:
            jobs = [view.submit(circuit) for _ in range(n)]
        return root, jobs

    def scrape(self, tmp_path, root):
        response = handle_request(
            Fleet(tmp_path / "runs"), "/metrics", {}, service=root
        )
        assert response.status == 200
        return parse_prometheus(response.body.decode("utf-8"))

    def test_job_state_gauges(self, tmp_path):
        root, _ = self.submit_jobs(tmp_path, n=2)
        parsed = self.scrape(tmp_path, root)
        assert parsed['repro_jobs{state="queued"}'] == 2.0
        assert parsed['repro_jobs{state="running"}'] == 0.0
        assert parsed['repro_jobs{state="done"}'] == 0.0
        assert parsed['repro_jobs{state="dead"}'] == 0.0
        assert parsed['repro_jobs{state="shed"}'] == 0.0

    def test_queue_latency_quantiles(self, tmp_path):
        from repro.service import SqliteJobStore
        from repro.service.worker import ServicePaths as SP

        root, jobs = self.submit_jobs(tmp_path, n=2)
        store = SqliteJobStore(SP(root).registry)
        claimed = store.claim_next("sup-test")
        assert claimed is not None
        store.close()
        parsed = self.scrape(tmp_path, root)
        assert parsed["repro_job_queue_latency_count"] == 1.0
        assert parsed['repro_job_queue_latency_seconds{quantile="0.5"}'] >= 0.0
        assert parsed['repro_job_queue_latency_seconds{quantile="0.95"}'] >= 0.0

    def test_no_started_jobs_exports_nan_latency(self, tmp_path):
        import math

        root, _ = self.submit_jobs(tmp_path, n=1)
        parsed = self.scrape(tmp_path, root)
        assert parsed["repro_job_queue_latency_count"] == 0.0
        assert math.isnan(
            parsed['repro_job_queue_latency_seconds{quantile="0.5"}']
        )

    def test_metrics_without_service_has_no_job_gauges(self, tmp_path):
        response = handle_request(Fleet(tmp_path), "/metrics", {})
        assert b"repro_jobs" not in response.body
