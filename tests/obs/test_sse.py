"""SSE framing and the heartbeat tailer: every beat, once, in order."""

import json
import threading

from repro.obs import format_sse, stream_events
from repro.obs.sse import HeartbeatTailer, keepalive
from repro.qor import HeartbeatWriter, history_path


def parse_frames(raw: bytes):
    """Decode an SSE byte stream into (event, id, payload) tuples."""
    frames = []
    for block in raw.decode("utf-8").split("\n\n"):
        if not block.strip() or block.startswith(":"):
            continue
        event = event_id = None
        data_lines = []
        for line in block.splitlines():
            if line.startswith("event: "):
                event = line[len("event: "):]
            elif line.startswith("id: "):
                event_id = line[len("id: "):]
            elif line.startswith("data: "):
                data_lines.append(line[len("data: "):])
        frames.append((event, event_id, json.loads("\n".join(data_lines))))
    return frames


class TestFormat:
    def test_frame_shape(self):
        frame = format_sse({"a": 1}, event="beat", event_id="7")
        assert frame == b'event: beat\nid: 7\ndata: {"a":1}\n\n'

    def test_plain_data_frame(self):
        assert format_sse({"a": 1}) == b'data: {"a":1}\n\n'

    def test_keepalive_is_a_comment(self):
        assert keepalive().startswith(b":")


class TestTailer:
    def test_beats_in_order_exactly_once(self, tmp_path):
        writer = HeartbeatWriter(tmp_path / "heartbeat.json", run_id="r1")
        for step in range(5):
            writer.beat("anneal", step=step)
        tailer = HeartbeatTailer(tmp_path)
        seqs = [b["seq"] for b in tailer.poll()]
        assert seqs == [1, 2, 3, 4, 5]
        assert list(tailer.poll()) == []  # nothing new
        writer.beat("anneal", step=5)
        assert [b["seq"] for b in tailer.poll()] == [6]

    def test_since_seq_resumes_mid_stream(self, tmp_path):
        writer = HeartbeatWriter(tmp_path / "heartbeat.json", run_id="r1")
        for step in range(4):
            writer.beat("anneal", step=step)
        tailer = HeartbeatTailer(tmp_path, since_seq=2)
        assert [b["seq"] for b in tailer.poll()] == [3, 4]

    def test_snapshot_only_rundir_falls_back(self, tmp_path):
        writer = HeartbeatWriter(
            tmp_path / "heartbeat.json", run_id="r1", history_limit=0
        )
        writer.beat("anneal", step=1)
        writer.beat("anneal", step=2)
        tailer = HeartbeatTailer(tmp_path)
        # No ring: only the newest snapshot is observable.
        assert [b["seq"] for b in tailer.poll()] == [2]

    def test_empty_rundir_polls_empty(self, tmp_path):
        assert list(HeartbeatTailer(tmp_path).poll()) == []

    def test_torn_final_ring_line_is_tolerated(self, tmp_path):
        writer = HeartbeatWriter(tmp_path / "heartbeat.json", run_id="r1")
        writer.beat("anneal", step=1)
        writer.beat("anneal", step=2)
        ring = history_path(tmp_path / "heartbeat.json")
        with open(ring, "a", encoding="utf-8") as handle:
            handle.write('{"seq": 3, "truncat')  # writer mid-append
        tailer = HeartbeatTailer(tmp_path)
        assert [b["seq"] for b in tailer.poll()] == [1, 2]


class TestStreamEvents:
    def test_stage_beat_final_sequence(self, tmp_path):
        writer = HeartbeatWriter(tmp_path / "heartbeat.json", run_id="r1")
        writer.set_context(stage="stage1")
        writer.beat("anneal", step=0)
        writer.beat("anneal", step=1)
        writer.set_context(stage=None)
        writer.beat("done", final=True)
        raw = b"".join(stream_events(tmp_path, timeout=5.0))
        frames = parse_frames(raw)
        kinds = [f[0] for f in frames]
        # stage on entry, a beat per heartbeat, stage on change, final ends.
        assert kinds == ["stage", "beat", "beat", "stage", "final"]
        assert frames[0][2]["stage"] == "stage1"
        assert frames[-1][2]["phase"] == "done"

    def test_max_beats_bounds_the_stream(self, tmp_path):
        writer = HeartbeatWriter(tmp_path / "heartbeat.json", run_id="r1")
        for step in range(10):
            writer.beat("anneal", step=step)
        raw = b"".join(stream_events(tmp_path, timeout=5.0, max_beats=3))
        beats = [f for f in parse_frames(raw) if f[0] == "beat"]
        assert len(beats) == 3

    def test_stop_event_unblocks_an_idle_stream(self, tmp_path):
        stop = threading.Event()
        writer = HeartbeatWriter(tmp_path / "heartbeat.json", run_id="r1")
        writer.beat("anneal", step=0)
        collected = []

        def consume():
            for frame in stream_events(
                tmp_path, stop=stop, timeout=30.0, poll_interval=0.01
            ):
                collected.append(frame)

        thread = threading.Thread(target=consume, daemon=True)
        thread.start()
        stop.set()
        thread.join(timeout=5.0)
        assert not thread.is_alive()

    def test_live_writer_is_followed(self, tmp_path):
        """Beats written while the stream is open are delivered."""
        writer = HeartbeatWriter(tmp_path / "heartbeat.json", run_id="r1")
        writer.beat("anneal", step=0)

        def produce():
            for step in range(1, 4):
                writer.beat("anneal", step=step)
            writer.beat("done", final=True)

        thread = threading.Thread(target=produce)
        frames_raw = []
        stream = stream_events(tmp_path, timeout=10.0, poll_interval=0.01)
        frames_raw.append(next(stream))  # stage frame for 'anneal'
        thread.start()
        frames_raw.extend(f for f in stream if f is not None)
        thread.join()
        frames = parse_frames(b"".join(frames_raw))
        seqs = [f[2]["seq"] for f in frames if f[0] in ("beat", "final")]
        assert seqs == [1, 2, 3, 4, 5]
        assert frames[-1][0] == "final"
