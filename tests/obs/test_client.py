"""ObsClient: stage events through the ambient heartbeat."""

from repro.obs import ObsClient
from repro.qor import HeartbeatWriter, read_heartbeat, use_heartbeat
from repro.qor.heartbeat import history_path, read_history


class TestNullPath:
    def test_disabled_outside_use_heartbeat(self):
        client = ObsClient()
        assert client.enabled is False
        client.stage("stage1")  # must be a no-op, not an error
        client.event("custom", x=1)


class TestStageEvents:
    def test_stage_beats_and_sets_sticky_context(self, tmp_path):
        writer = HeartbeatWriter(tmp_path / "hb.json", run_id="r1")
        client = ObsClient()
        with use_heartbeat(writer):
            assert client.enabled is True
            client.stage("stage1", chains=4)
            doc = read_heartbeat(tmp_path / "hb.json")
            assert doc["phase"] == "flow"
            assert doc["status"] == "stage1"
            assert doc["stage"] == "stage1"
            assert doc["chains"] == 4
            # The sticky stage context rides on later beats too.
            writer.beat("anneal", step=0)
            assert read_heartbeat(tmp_path / "hb.json")["stage"] == "stage1"

    def test_stage_transitions_land_in_the_ring(self, tmp_path):
        writer = HeartbeatWriter(tmp_path / "hb.json", run_id="r1")
        client = ObsClient(heartbeat=writer)
        client.stage("stage1")
        client.stage("stage2")
        ring = read_history(history_path(tmp_path / "hb.json"))
        assert [b["status"] for b in ring] == ["stage1", "stage2"]

    def test_explicit_heartbeat_wins_over_ambient(self, tmp_path):
        writer = HeartbeatWriter(tmp_path / "hb.json", run_id="r1")
        client = ObsClient(heartbeat=writer)
        assert client.enabled is True
        client.event("probe", x=1)
        assert read_heartbeat(tmp_path / "hb.json")["x"] == 1

    def test_ambient_resolved_per_call(self, tmp_path):
        client = ObsClient()
        writer = HeartbeatWriter(tmp_path / "hb.json", run_id="r1")
        assert client.enabled is False
        with use_heartbeat(writer):
            assert client.enabled is True
        assert client.enabled is False
