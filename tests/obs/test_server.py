"""The observability server over real HTTP: sockets, threads, SSE."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.obs import ObsServer
from repro.qor import parse_prometheus

from .test_fleet import make_rundir


@pytest.fixture
def served(tmp_path):
    """An ObsServer on an ephemeral port over a two-run root."""
    make_rundir(tmp_path, "run-live", step=1, T=50.0, cost=10.0)
    make_rundir(tmp_path, "run-done", phase="done", final=True)
    with ObsServer(tmp_path, port=0).start() as server:
        yield server, tmp_path


def fetch(url, timeout=10.0):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.status, response.headers, response.read()


class TestHTTP:
    def test_runs_listing(self, served):
        server, _ = served
        status, _, body = fetch(server.url + "/runs")
        assert status == 200
        runs = {r["run_id"]: r for r in json.loads(body)["runs"]}
        assert runs["run-live"]["state"] == "running"
        assert runs["run-done"]["state"] == "done"

    def test_metrics_scrape(self, served):
        server, _ = served
        status, headers, body = fetch(server.url + "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
        parsed = parse_prometheus(body.decode("utf-8"))
        assert parsed['repro_cost{run_id="run-live"}'] == 10.0

    def test_404_is_json(self, served):
        server, _ = served
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            fetch(server.url + "/runs/ghost")
        assert excinfo.value.code == 404
        assert json.loads(excinfo.value.read())["status"] == 404

    def test_concurrent_requests(self, served):
        server, _ = served
        errors = []

        def hit():
            try:
                assert fetch(server.url + "/runs")[0] == 200
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=hit) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10.0)
        assert errors == []


class TestSSEOverHTTP:
    def test_stream_delivers_live_beats(self, tmp_path):
        """An SSE client sees beats written *after* it connected."""
        _, writer = make_rundir(tmp_path, "run-live", step=1, T=50.0)
        server = ObsServer(tmp_path, port=0).start()
        url = server.url + "/runs/run-live/events?timeout=10"
        chunks = []
        connected = threading.Event()

        def consume():
            with urllib.request.urlopen(url, timeout=15.0) as response:
                connected.set()
                while True:
                    chunk = response.read(1)
                    if not chunk:
                        return
                    chunks.append(chunk)

        thread = threading.Thread(target=consume, daemon=True)
        thread.start()
        try:
            assert connected.wait(timeout=10.0)
            writer.beat("anneal", step=2, T=40.0)
            writer.beat("done", final=True)
            thread.join(timeout=15.0)
            assert not thread.is_alive()
        finally:
            server.close()
        raw = b"".join(chunks).decode("utf-8")
        assert "event: beat" in raw
        assert "event: final" in raw
        assert '"T":40.0' in raw.replace(" ", "")

    def test_close_unblocks_open_streams(self, tmp_path):
        make_rundir(tmp_path, "run-live", step=1)
        server = ObsServer(tmp_path, port=0).start()
        url = server.url + "/runs/run-live/events?timeout=300"
        got_headers = threading.Event()

        def consume():
            try:
                with urllib.request.urlopen(url, timeout=30.0) as response:
                    got_headers.set()
                    response.read()
            except Exception:
                got_headers.set()

        thread = threading.Thread(target=consume, daemon=True)
        thread.start()
        assert got_headers.wait(timeout=10.0)
        server.close()  # stop_event must end the stream, not hang
        thread.join(timeout=10.0)
        assert not thread.is_alive()
