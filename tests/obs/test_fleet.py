"""Fleet state classification and the rundir/registry join."""

import json
import time

import pytest

from repro.obs import beat_age, classify_state
from repro.obs.fleet import Fleet
from repro.qor import HeartbeatWriter, RunRegistry


def make_rundir(root, name, run_id=None, phase="anneal", final=False, **fields):
    """A rundir with a manifest and one heartbeat."""
    rundir = root / name
    rundir.mkdir(parents=True, exist_ok=True)
    run_id = run_id or name
    (rundir / "manifest.json").write_text(
        json.dumps({"run_id": run_id, "circuit": {"name": "fix"}})
    )
    writer = HeartbeatWriter(rundir / "heartbeat.json", run_id=run_id)
    writer.beat(phase, final=final, **fields)
    return rundir, writer


class TestClassifyState:
    def test_no_beat_is_pending(self):
        assert classify_state(None) == "pending"

    def test_fresh_beat_is_running(self):
        beat = {"phase": "anneal", "updated": time.time(), "final": False}
        assert classify_state(beat) == "running"

    def test_old_beat_is_stale(self):
        beat = {"phase": "anneal", "updated": time.time() - 100, "final": False}
        assert classify_state(beat, stale_after=30.0) == "stale"

    def test_stale_after_is_tunable(self):
        beat = {"phase": "anneal", "updated": time.time() - 5, "final": False}
        assert classify_state(beat, stale_after=1.0) == "stale"
        assert classify_state(beat, stale_after=60.0) == "running"

    @pytest.mark.parametrize("phase", ["done", "failed", "interrupted"])
    def test_final_phases_never_go_stale(self, phase):
        beat = {"phase": phase, "updated": time.time() - 9999, "final": True}
        assert classify_state(beat) == phase

    def test_final_flag_with_unknown_phase_is_done(self):
        beat = {"phase": "cleanup", "updated": time.time(), "final": True}
        assert classify_state(beat) == "done"

    def test_beat_age(self):
        now = time.time()
        assert beat_age(None) is None
        assert beat_age({"updated": now - 2.0}, now=now) == pytest.approx(
            2.0, abs=0.01
        )


class TestFleet:
    def test_discovers_rundirs_and_summarizes(self, tmp_path):
        make_rundir(tmp_path, "run-a", step=3, T=10.0)
        make_rundir(tmp_path, "run-b", phase="done", final=True)
        fleet = Fleet(tmp_path)
        runs = fleet.runs()
        assert [r["run_id"] for r in runs] == ["run-a", "run-b"]
        by_id = {r["run_id"]: r for r in runs}
        assert by_id["run-a"]["state"] == "running"
        assert by_id["run-a"]["circuit"] == "fix"
        assert "[anneal]" in by_id["run-a"]["progress"]
        assert by_id["run-b"]["state"] == "done"

    def test_root_itself_can_be_a_rundir(self, tmp_path):
        make_rundir(tmp_path.parent, tmp_path.name)
        fleet = Fleet(tmp_path)
        assert [r["run_id"] for r in fleet.runs()] == [tmp_path.name]

    def test_find_rundir_by_prefix(self, tmp_path):
        make_rundir(tmp_path, "d1", run_id="20260101-000000-aaaaaa")
        make_rundir(tmp_path, "d2", run_id="20260202-000000-bbbbbb")
        fleet = Fleet(tmp_path)
        assert fleet.find_rundir("20260101").name == "d1"
        assert fleet.find_rundir("d2").name == "d2"
        assert fleet.find_rundir("2026") is None  # ambiguous
        assert fleet.find_rundir("nope") is None

    def test_registry_join_adds_status_and_orphan_rows(self, tmp_path):
        make_rundir(tmp_path, "run-a")
        registry = tmp_path / "reg.sqlite"
        with RunRegistry(registry) as reg:
            reg.register_run({"run_id": "run-a", "command": "place"})
            reg.register_run({"run_id": "run-gone", "command": "place"})
            reg.finish_run("run-gone", "failed")
        fleet = Fleet(tmp_path, registry=registry)
        runs = {r["run_id"]: r for r in fleet.runs()}
        assert runs["run-a"]["registry_status"] == "running"
        assert runs["run-gone"]["rundir"] is None
        assert runs["run-gone"]["state"] == "failed"

    def test_detail_joins_everything(self, tmp_path):
        rundir, _ = make_rundir(tmp_path, "run-a", step=1)
        (rundir / "qor.json").write_text(json.dumps({"teil": 12.5}))
        fleet = Fleet(tmp_path)
        doc = fleet.detail("run-a")
        assert doc["state"] == "running"
        assert doc["manifest"]["run_id"] == "run-a"
        assert doc["heartbeat"]["seq"] == 1
        assert doc["qor"]["teil"] == 12.5
        assert fleet.detail("unknown") is None

    def test_history_view(self, tmp_path):
        _, writer = make_rundir(tmp_path, "run-a", step=1)
        writer.beat("anneal", step=2)
        writer.beat("anneal", step=3)
        fleet = Fleet(tmp_path)
        history = fleet.history("run-a")
        assert [b["seq"] for b in history] == [1, 2, 3]
        assert [b["seq"] for b in fleet.history("run-a", since_seq=2)] == [3]
        assert fleet.history("unknown") == []

    def test_heartbeats_default_run_id_to_dirname(self, tmp_path):
        rundir = tmp_path / "bare"
        rundir.mkdir()
        HeartbeatWriter(rundir / "heartbeat.json").beat("anneal", T=5.0)
        fleet = Fleet(tmp_path)
        beats = fleet.heartbeats()
        assert len(beats) == 1
        assert beats[0]["run_id"] == "bare"


class TestRegistryDegradation:
    def test_corrupt_registry_degrades_to_heartbeats_only(self, tmp_path):
        make_rundir(tmp_path, "run-a", step=1)
        garbage = tmp_path / "registry.sqlite"
        garbage.write_bytes(b"this is not a sqlite database")
        fleet = Fleet(tmp_path, registry=garbage)
        runs = fleet.runs()
        assert [r["run_id"] for r in runs] == ["run-a"]
        assert runs[0]["state"] == "running"

    def test_fleet_opens_the_registry_readonly(self, tmp_path, monkeypatch):
        from repro.qor.registry import RunRegistry

        make_rundir(tmp_path, "run-a", step=1)
        with RunRegistry(tmp_path / "registry.sqlite") as registry:
            registry.register_run({"run_id": "run-a", "command": "place"})
        opened = []
        original = RunRegistry.__init__

        def spy(self, path, readonly=False):
            opened.append(readonly)
            original(self, path, readonly=readonly)

        monkeypatch.setattr(RunRegistry, "__init__", spy)
        Fleet(tmp_path, registry=tmp_path / "registry.sqlite").runs()
        assert opened == [True]


class TestSharedClassifier:
    def test_status_watch_and_server_share_one_classifier(self):
        from repro.obs import classify_state as from_obs
        from repro.qor.monitor import classify_state as from_monitor

        assert from_obs is from_monitor
