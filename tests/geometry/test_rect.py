"""Rectangle and interval primitives."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geometry import Point, Rect, interval_overlap, total_pairwise_overlap


def rects(max_coord=100):
    coords = st.integers(min_value=-max_coord, max_value=max_coord)
    return st.builds(
        lambda x1, y1, w, h: Rect(x1, y1, x1 + w, y1 + h),
        coords,
        coords,
        st.integers(min_value=0, max_value=50),
        st.integers(min_value=0, max_value=50),
    )


class TestPoint:
    def test_translate(self):
        assert Point(1, 2).translated(3, -1) == Point(4, 1)

    def test_manhattan(self):
        assert Point(0, 0).manhattan_to(Point(3, 4)) == 7

    def test_as_tuple(self):
        assert Point(1.5, -2.0).as_tuple() == (1.5, -2.0)


class TestIntervalOverlap:
    def test_disjoint(self):
        assert interval_overlap(0, 1, 2, 3) == 0.0

    def test_touching(self):
        assert interval_overlap(0, 1, 1, 2) == 0.0

    def test_nested(self):
        assert interval_overlap(0, 10, 2, 5) == 3.0

    def test_partial(self):
        assert interval_overlap(0, 5, 3, 8) == 2.0


class TestRectConstruction:
    def test_malformed_raises(self):
        with pytest.raises(ValueError):
            Rect(1, 0, 0, 1)
        with pytest.raises(ValueError):
            Rect(0, 1, 1, 0)

    def test_from_center(self):
        r = Rect.from_center(0, 0, 10, 4)
        assert (r.x1, r.y1, r.x2, r.y2) == (-5, -2, 5, 2)

    def test_from_center_negative_raises(self):
        with pytest.raises(ValueError):
            Rect.from_center(0, 0, -1, 1)

    def test_bounding(self):
        b = Rect.bounding([Rect(0, 0, 1, 1), Rect(5, -2, 6, 0)])
        assert b == Rect(0, -2, 6, 1)

    def test_bounding_empty_raises(self):
        with pytest.raises(ValueError):
            Rect.bounding([])


class TestRectMeasures:
    def test_width_height_area(self):
        r = Rect(0, 0, 3, 4)
        assert (r.width, r.height, r.area, r.perimeter) == (3, 4, 12, 14)

    def test_center(self):
        assert Rect(0, 0, 4, 2).center == Point(2, 1)

    def test_aspect_ratio(self):
        assert Rect(0, 0, 2, 4).aspect_ratio == 2.0

    def test_aspect_ratio_zero_width(self):
        with pytest.raises(ZeroDivisionError):
            _ = Rect(0, 0, 0, 4).aspect_ratio

    def test_degenerate(self):
        assert Rect(0, 0, 0, 5).is_degenerate()
        assert not Rect(0, 0, 1, 5).is_degenerate()


class TestRectPredicates:
    def test_contains_point(self):
        r = Rect(0, 0, 2, 2)
        assert r.contains_point(1, 1)
        assert r.contains_point(0, 0)  # boundary counts
        assert not r.contains_point(3, 1)

    def test_contains_rect(self):
        assert Rect(0, 0, 10, 10).contains_rect(Rect(1, 1, 2, 2))
        assert not Rect(0, 0, 10, 10).contains_rect(Rect(9, 9, 11, 10))

    def test_intersects_interior_only(self):
        a = Rect(0, 0, 2, 2)
        assert not a.intersects(Rect(2, 0, 4, 2))  # touching edge
        assert a.intersects(Rect(1, 1, 3, 3))

    def test_touches_or_intersects(self):
        a = Rect(0, 0, 2, 2)
        assert a.touches_or_intersects(Rect(2, 0, 4, 2))
        assert not a.touches_or_intersects(Rect(3, 0, 4, 2))


class TestRectOperations:
    def test_overlap_area(self):
        assert Rect(0, 0, 4, 4).overlap_area(Rect(2, 2, 6, 6)) == 4.0
        assert Rect(0, 0, 1, 1).overlap_area(Rect(5, 5, 6, 6)) == 0.0

    def test_intersection(self):
        got = Rect(0, 0, 4, 4).intersection(Rect(2, 2, 6, 6))
        assert got == Rect(2, 2, 4, 4)
        assert Rect(0, 0, 1, 1).intersection(Rect(5, 5, 6, 6)) is None

    def test_intersection_touching_is_degenerate(self):
        got = Rect(0, 0, 2, 2).intersection(Rect(2, 0, 4, 2))
        assert got == Rect(2, 0, 2, 2)

    def test_union_bbox(self):
        assert Rect(0, 0, 1, 1).union_bbox(Rect(4, 4, 5, 5)) == Rect(0, 0, 5, 5)

    def test_translated(self):
        assert Rect(0, 0, 1, 1).translated(2, 3) == Rect(2, 3, 3, 4)

    def test_expanded(self):
        r = Rect(0, 0, 2, 2).expanded(1, 2, 3, 4)
        assert r == Rect(-1, -2, 5, 6)

    def test_expanded_uniform(self):
        assert Rect(0, 0, 2, 2).expanded_uniform(1) == Rect(-1, -1, 3, 3)

    def test_scaled_flips(self):
        assert Rect(1, 1, 2, 2).scaled(-1, 1) == Rect(-2, 1, -1, 2)

    def test_corners_ccw(self):
        pts = Rect(0, 0, 1, 2).corners()
        assert pts == [Point(0, 0), Point(1, 0), Point(1, 2), Point(0, 2)]

    def test_iter(self):
        assert tuple(Rect(1, 2, 3, 4)) == (1, 2, 3, 4)


class TestOverlapProperties:
    @given(rects(), rects())
    def test_symmetry(self, a, b):
        assert a.overlap_area(b) == b.overlap_area(a)

    @given(rects(), rects())
    def test_bounded_by_min_area(self, a, b):
        assert a.overlap_area(b) <= min(a.area, b.area) + 1e-9

    @given(rects())
    def test_self_overlap_is_area(self, a):
        assert a.overlap_area(a) == a.area

    @given(rects(), rects())
    def test_matches_intersection_area(self, a, b):
        inter = a.intersection(b)
        expected = inter.area if inter is not None else 0.0
        assert a.overlap_area(b) == expected

    @given(rects(), rects(), st.integers(-20, 20), st.integers(-20, 20))
    def test_translation_invariance(self, a, b, dx, dy):
        assert a.translated(dx, dy).overlap_area(
            b.translated(dx, dy)
        ) == pytest.approx(a.overlap_area(b))


def test_total_pairwise_overlap():
    rs = [Rect(0, 0, 2, 2), Rect(1, 1, 3, 3), Rect(10, 10, 11, 11)]
    assert total_pairwise_overlap(rs) == 1.0


def test_total_pairwise_overlap_empty():
    assert total_pairwise_overlap([]) == 0.0
