"""Property tests on randomly grown rectilinear tile unions."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import Rect, TileSet
from repro.geometry import orientation as ori


def grow_union(seed: int, max_tiles: int = 6) -> TileSet:
    """Grow a random connected tile union by attaching rectangles to the
    boundary of what is already there."""
    rng = random.Random(seed)
    tiles = [Rect(0, 0, rng.randint(2, 8), rng.randint(2, 8))]
    for _ in range(rng.randint(0, max_tiles - 1)):
        base = rng.choice(tiles)
        w, h = rng.randint(2, 8), rng.randint(2, 8)
        side = rng.randrange(4)
        if side == 0:  # attach right
            cand = Rect(base.x2, base.y1, base.x2 + w, base.y1 + h)
        elif side == 1:  # attach left
            cand = Rect(base.x1 - w, base.y1, base.x1, base.y1 + h)
        elif side == 2:  # attach top
            cand = Rect(base.x1, base.y2, base.x1 + w, base.y2 + h)
        else:  # attach bottom
            cand = Rect(base.x1, base.y1 - h, base.x1 + w, base.y1)
        if any(cand.intersects(t) for t in tiles):
            continue
        tiles.append(cand)
    return TileSet(tiles)


class TestGrownUnions:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 100_000))
    def test_construction_always_valid(self, seed):
        ts = grow_union(seed)
        assert ts.area == pytest.approx(sum(t.area for t in ts.tiles))

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 100_000), st.integers(0, 7))
    def test_transform_preserves_area_and_boundary(self, seed, o):
        ts = grow_union(seed)
        t = ts.transformed(o)
        assert t.area == pytest.approx(ts.area)
        assert t.boundary_length() == pytest.approx(ts.boundary_length())

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 100_000))
    def test_boundary_edges_close(self, seed):
        """Boundary edge lengths balance per axis: total left-facing edge
        length equals total right-facing, and bottom equals top (the
        boundary is a union of closed rectilinear curves)."""
        ts = grow_union(seed)
        sums = {"left": 0.0, "right": 0.0, "bottom": 0.0, "top": 0.0}
        for e in ts.boundary_edges():
            sums[e.side] += e.length
        assert sums["left"] == pytest.approx(sums["right"])
        assert sums["bottom"] == pytest.approx(sums["top"])

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 100_000))
    def test_boundary_midpoints_on_shape(self, seed):
        ts = grow_union(seed)
        for e in ts.boundary_edges():
            x, y = e.midpoint
            assert ts.contains_point(x, y)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 100_000))
    def test_boundary_at_least_bbox_perimeter(self, seed):
        """A rectilinear union's perimeter is never less than its
        bounding box's."""
        ts = grow_union(seed)
        assert ts.boundary_length() >= ts.bbox.perimeter - 1e-9

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 100_000), st.integers(0, 100_000))
    def test_overlap_symmetry_between_unions(self, seed_a, seed_b):
        a = grow_union(seed_a)
        b = grow_union(seed_b).translated(3, -2)
        assert a.overlap_area(b) == pytest.approx(b.overlap_area(a))

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 100_000))
    def test_expansion_monotone_in_area(self, seed):
        ts = grow_union(seed)
        assert ts.expanded_uniform(1.0).area >= ts.area
