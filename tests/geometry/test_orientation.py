"""The eight-orientation group."""

import pytest
from hypothesis import given, strategies as st

from repro.geometry import Rect
from repro.geometry import orientation as ori

orientations = st.integers(min_value=0, max_value=7)
coords = st.floats(min_value=-100, max_value=100, allow_nan=False)


class TestValidation:
    def test_valid_range(self):
        assert ori.is_valid(0) and ori.is_valid(7)
        assert not ori.is_valid(-1) and not ori.is_valid(8)

    @pytest.mark.parametrize("bad", [-1, 8, 100])
    def test_transform_rejects(self, bad):
        with pytest.raises(ValueError):
            ori.transform_point(bad, 0, 0)


class TestBasicTransforms:
    def test_identity(self):
        assert ori.transform_point(0, 3, 4) == (3, 4)

    def test_r90(self):
        assert ori.transform_point(1, 1, 0) == (0, 1)

    def test_r180(self):
        assert ori.transform_point(2, 3, 4) == (-3, -4)

    def test_r270(self):
        assert ori.transform_point(3, 1, 0) == (0, -1)

    def test_mirror(self):
        assert ori.transform_point(4, 3, 4) == (-3, 4)

    def test_mirror_then_r90(self):
        # orientation 5: mirror x, then rotate 90 CCW.
        assert ori.transform_point(5, 1, 0) == (0, -1)


class TestGroupProperties:
    @given(orientations, coords, coords)
    def test_inverse_roundtrip(self, o, x, y):
        fx, fy = ori.transform_point(o, x, y)
        bx, by = ori.transform_point(ori.inverse(o), fx, fy)
        assert (bx, by) == pytest.approx((x, y))

    @given(orientations, orientations, coords, coords)
    def test_compose_matches_sequential(self, a, b, x, y):
        c = ori.compose(a, b)
        seq = ori.transform_point(b, *ori.transform_point(a, x, y))
        assert ori.transform_point(c, x, y) == pytest.approx(seq)

    @given(orientations, orientations)
    def test_compose_closed(self, a, b):
        assert ori.is_valid(ori.compose(a, b))

    @given(orientations)
    def test_compose_identity(self, o):
        assert ori.compose(o, 0) == o
        assert ori.compose(0, o) == o

    @given(orientations)
    def test_distance_preserved(self, o):
        ax, ay = ori.transform_point(o, 1.0, 2.0)
        bx, by = ori.transform_point(o, -3.0, 5.0)
        d0 = abs(1.0 - (-3.0)) ** 2 + abs(2.0 - 5.0) ** 2
        d1 = (ax - bx) ** 2 + (ay - by) ** 2
        assert d1 == pytest.approx(d0)


class TestAxisSwap:
    @given(orientations)
    def test_swaps_axes_consistent_with_rect(self, o):
        r = Rect(-2, -1, 2, 1)  # 4 x 2
        t = ori.transform_rect(o, r)
        if ori.swaps_axes(o):
            assert (t.width, t.height) == (2, 4)
        else:
            assert (t.width, t.height) == (4, 2)

    @given(orientations)
    def test_aspect_inverting_orientation(self, o):
        inv = ori.aspect_inverting_orientation(o)
        assert ori.is_valid(inv)
        assert ori.swaps_axes(inv) != ori.swaps_axes(o)
        assert ori.is_mirrored(inv) == ori.is_mirrored(o)


class TestRectTransform:
    @given(orientations)
    def test_area_preserved(self, o):
        r = Rect(1, 2, 5, 9)
        assert ori.transform_rect(o, r).area == pytest.approx(r.area)

    def test_r90_rect(self):
        assert ori.transform_rect(1, Rect(0, 0, 2, 1)) == Rect(-1, 0, 0, 2)


class TestNames:
    def test_roundtrip(self):
        for o in ori.all_orientations():
            assert ori.from_name(ori.name(o)) == o

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            ori.from_name("R45")

    def test_all_orientations(self):
        assert ori.all_orientations() == list(range(8))

    def test_rotation_count_and_mirror(self):
        assert ori.rotation_count(6) == 2
        assert ori.is_mirrored(6)
        assert not ori.is_mirrored(2)
