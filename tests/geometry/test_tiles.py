"""Tile unions: validation, overlap, expansion, boundary extraction."""

import pytest
from hypothesis import given, strategies as st

from repro.geometry import (
    BOTTOM,
    LEFT,
    RIGHT,
    TOP,
    BoundaryEdge,
    Rect,
    TileSet,
)
from repro.geometry import orientation as ori


class TestConstruction:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            TileSet([])

    def test_zero_area_tile_raises(self):
        with pytest.raises(ValueError):
            TileSet([Rect(0, 0, 0, 5)])

    def test_overlapping_tiles_raise(self):
        with pytest.raises(ValueError):
            TileSet([Rect(0, 0, 2, 2), Rect(1, 1, 3, 3)])

    def test_touching_tiles_ok(self):
        ts = TileSet([Rect(0, 0, 2, 2), Rect(2, 0, 4, 2)])
        assert ts.area == 8

    def test_disconnected_raises(self):
        with pytest.raises(ValueError):
            TileSet([Rect(0, 0, 1, 1), Rect(5, 5, 6, 6)])

    def test_corner_touch_is_disconnected(self):
        with pytest.raises(ValueError):
            TileSet([Rect(0, 0, 1, 1), Rect(1, 1, 2, 2)])

    def test_rectangle_factory(self):
        ts = TileSet.rectangle(10, 4)
        assert ts.bbox == Rect(-5, -2, 5, 2)
        assert ts.area == 40

    def test_l_shape(self):
        ts = TileSet.l_shape(10, 10, 4, 4)
        assert ts.area == 100 - 16
        assert ts.bbox.width == 10 and ts.bbox.height == 10
        assert ts.bbox.center.x == pytest.approx(0)

    def test_l_shape_bad_notch(self):
        with pytest.raises(ValueError):
            TileSet.l_shape(10, 10, 10, 4)

    def test_t_shape(self):
        ts = TileSet.t_shape(12, 10, 4, 3)
        assert ts.area == 12 * 3 + 4 * 7

    def test_equality_and_hash(self):
        a = TileSet([Rect(0, 0, 2, 2), Rect(2, 0, 4, 2)])
        b = TileSet([Rect(2, 0, 4, 2), Rect(0, 0, 2, 2)])
        assert a == b and hash(a) == hash(b)


class TestOverlap:
    def test_disjoint(self):
        a = TileSet.rectangle(2, 2)
        b = TileSet.rectangle(2, 2).translated(10, 0)
        assert a.overlap_area(b) == 0.0

    def test_identical(self):
        a = TileSet.rectangle(4, 4)
        assert a.overlap_area(a) == 16.0

    def test_l_shapes_overlap_in_notch(self):
        # A small square inside the L's notch does not overlap the L.
        l = TileSet.l_shape(10, 10, 4, 4)
        # The notch is the upper-right corner of the bbox.
        probe = TileSet.rectangle(2, 2).translated(3.5, 3.5)
        assert l.overlap_area(probe) == 0.0

    @given(st.integers(-6, 6), st.integers(-6, 6))
    def test_symmetric(self, dx, dy):
        a = TileSet.l_shape(8, 8, 3, 3)
        b = TileSet.rectangle(4, 6).translated(dx, dy)
        assert a.overlap_area(b) == pytest.approx(b.overlap_area(a))


class TestTransforms:
    def test_recentered(self):
        ts = TileSet([Rect(10, 10, 14, 12)]).recentered()
        assert ts.bbox.center.x == 0 and ts.bbox.center.y == 0

    def test_translated(self):
        ts = TileSet.rectangle(2, 2).translated(5, 5)
        assert ts.bbox == Rect(4, 4, 6, 6)

    @given(st.integers(0, 7))
    def test_transform_preserves_area(self, o):
        ts = TileSet.l_shape(10, 8, 3, 2)
        assert ts.transformed(o).area == pytest.approx(ts.area)

    @given(st.integers(0, 7))
    def test_transform_swaps_bbox(self, o):
        ts = TileSet.rectangle(10, 4)
        t = ts.transformed(o)
        if ori.swaps_axes(o):
            assert (t.width, t.height) == (4, 10)
        else:
            assert (t.width, t.height) == (10, 4)


class TestExpansion:
    def test_uniform(self):
        ts = TileSet.rectangle(4, 4).expanded_uniform(1)
        assert ts.bbox == Rect(-3, -3, 3, 3)

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            TileSet.rectangle(2, 2).expanded_uniform(-1)

    def test_per_side(self):
        ts = TileSet.rectangle(4, 4).expanded_per_side(1, 2, 3, 4)
        assert ts.bbox == Rect(-3, -4, 5, 6)

    def test_expansion_grows_overlap(self):
        a = TileSet.rectangle(2, 2)
        b = TileSet.rectangle(2, 2).translated(3, 0)
        assert a.overlap_area(b) == 0
        assert a.expanded_uniform(1).overlap_area(b.expanded_uniform(1)) > 0


class TestOverlapFastPaths:
    """The two hot-loop branches inside overlap_area: the bounding-box
    broad-phase reject and the single-tile short circuit."""

    def test_bbox_reject_disjoint_multi_tile(self):
        # Multi-tile sets with disjoint bboxes: the reject fires before
        # any tile pair is visited, and the answer is exactly 0.0.
        a = TileSet.l_shape(6, 6, 2, 2)
        b = TileSet.l_shape(6, 6, 2, 2).translated(100, 0)
        assert not a.bbox.intersects(b.bbox)
        assert a.overlap_area(b) == 0.0

    def test_bbox_reject_touching_is_zero(self):
        # Touching bboxes share an edge, zero area: whether the reject
        # fires or the tile loop runs, the result must be exactly 0.0.
        a = TileSet.rectangle(4, 4)
        b = TileSet.rectangle(4, 4).translated(4, 0)
        assert a.overlap_area(b) == 0.0

    def test_bbox_overlap_tiles_disjoint(self):
        # Bboxes intersect but the tiles do not (probe in the L notch):
        # the reject must NOT fire a false zero — the loop runs and
        # still finds no common area.
        l = TileSet.l_shape(10, 10, 4, 4)
        probe = TileSet.rectangle(2, 2).translated(3.5, 3.5)
        assert l.bbox.intersects(probe.bbox)
        assert l.overlap_area(probe) == 0.0

    def test_single_tile_pair_matches_rect(self):
        a = TileSet.rectangle(6, 4).translated(1, 1)
        b = TileSet.rectangle(5, 5).translated(3, 2)
        expected = a.tiles[0].overlap_area(b.tiles[0])
        assert expected > 0
        assert a.overlap_area(b) == expected

    def test_single_vs_multi_uses_general_loop(self):
        single = TileSet.rectangle(4, 4)
        multi = TileSet.l_shape(8, 8, 3, 3)
        total = sum(single.tiles[0].overlap_area(t) for t in multi.tiles)
        assert single.overlap_area(multi) == pytest.approx(total)
        assert multi.overlap_area(single) == pytest.approx(total)

    @given(st.integers(-8, 8), st.integers(-8, 8))
    def test_fast_paths_match_bruteforce(self, dx, dy):
        # The branches must be invisible: compare against the plain
        # all-pairs tile sum for single-single at every offset.
        a = TileSet.rectangle(5, 3)
        b = TileSet.rectangle(4, 6).translated(dx, dy)
        brute = sum(
            ti.overlap_area(tj) for ti in a.tiles for tj in b.tiles
        )
        assert a.overlap_area(b) == pytest.approx(brute)


class TestComposedTransforms:
    """translated_expanded and the transformed fast path must be
    indistinguishable from the two-step spellings they replace."""

    @given(
        st.integers(-5, 5),
        st.integers(-5, 5),
        st.floats(0, 3),
        st.floats(0, 3),
        st.floats(0, 3),
        st.floats(0, 3),
    )
    def test_translated_expanded_composes(self, dx, dy, l, b, r, t):
        for shape in (TileSet.rectangle(4, 6), TileSet.l_shape(8, 8, 3, 3)):
            two_step = shape.translated(dx, dy).expanded_per_side(l, b, r, t)
            one_step = shape.translated_expanded(dx, dy, l, b, r, t)
            assert one_step.tiles == two_step.tiles
            assert one_step.bbox == two_step.bbox
            assert one_step.area == pytest.approx(two_step.area)

    def test_translated_expanded_negative_raises(self):
        with pytest.raises(ValueError):
            TileSet.rectangle(2, 2).translated_expanded(0, 0, -1, 0, 0, 0)

    def test_single_tile_bbox_is_exact(self):
        out = TileSet.rectangle(4, 2).translated_expanded(10, 20, 1, 2, 3, 4)
        assert out.bbox == out.tiles[0]
        assert out.area == out.tiles[0].area

    @given(st.integers(0, 7))
    def test_transformed_single_tile_matches_rect_transform(self, o):
        ts = TileSet.rectangle(10, 4).translated(2, 3)
        out = ts.transformed(o)
        expected = ori.transform_rect(o, ts.tiles[0])
        assert out.tiles == (expected,)
        assert out.bbox == expected
        assert out.area == pytest.approx(expected.area)


class TestBoundaryEdges:
    def test_rectangle_has_four(self):
        edges = TileSet.rectangle(4, 2).boundary_edges()
        assert len(edges) == 4
        sides = {e.side for e in edges}
        assert sides == {LEFT, RIGHT, BOTTOM, TOP}

    def test_rectangle_lengths(self):
        edges = TileSet.rectangle(4, 2).boundary_edges()
        by_side = {e.side: e for e in edges}
        assert by_side[LEFT].length == 2
        assert by_side[TOP].length == 4

    def test_l_shape_has_six(self):
        edges = TileSet.l_shape(10, 10, 4, 4).boundary_edges()
        assert len(edges) == 6

    def test_t_shape_has_eight(self):
        edges = TileSet.t_shape(12, 10, 4, 3).boundary_edges()
        assert len(edges) == 8

    def test_boundary_length_rect(self):
        assert TileSet.rectangle(4, 2).boundary_length() == 12

    def test_boundary_length_l(self):
        # An L-shape's perimeter equals its bounding box's perimeter.
        assert TileSet.l_shape(10, 10, 4, 4).boundary_length() == 40

    def test_internal_edges_removed(self):
        # Two abutting tiles: the shared edge is interior, not boundary.
        ts = TileSet([Rect(0, 0, 2, 2), Rect(2, 0, 4, 2)])
        edges = ts.boundary_edges()
        assert ts.boundary_length() == 12
        verticals = [e for e in edges if e.is_vertical]
        assert {e.position for e in verticals} == {0, 4}

    def test_collinear_merge(self):
        # Two stacked tiles: left boundary is one merged edge.
        ts = TileSet([Rect(0, 0, 2, 2), Rect(0, 2, 2, 4)])
        lefts = [e for e in ts.boundary_edges() if e.side == LEFT]
        assert len(lefts) == 1
        assert (lefts[0].lo, lefts[0].hi) == (0, 4)

    def test_midpoints_on_shape_boundary(self):
        ts = TileSet.l_shape(10, 10, 4, 4)
        for e in ts.boundary_edges():
            x, y = e.midpoint
            assert ts.contains_point(x, y)


class TestBoundaryEdgeClass:
    def test_bad_side(self):
        with pytest.raises(ValueError):
            BoundaryEdge("diagonal", 0, 0, 1)

    def test_bad_span(self):
        with pytest.raises(ValueError):
            BoundaryEdge(LEFT, 0, 2, 1)

    def test_translated_vertical(self):
        e = BoundaryEdge(LEFT, 1, 0, 4).translated(2, 3)
        assert (e.position, e.lo, e.hi) == (3, 3, 7)

    def test_translated_horizontal(self):
        e = BoundaryEdge(TOP, 1, 0, 4).translated(2, 3)
        assert (e.position, e.lo, e.hi) == (4, 2, 6)

    def test_midpoint_horizontal(self):
        assert BoundaryEdge(BOTTOM, 5, 0, 4).midpoint == (2, 5)
