"""The left-edge channel router and the t <= d + 1 guarantee."""

import pytest
from hypothesis import given, strategies as st

from repro.channels import (
    ChannelSegment,
    channel_density,
    left_edge_route,
    tracks_used,
)


class TestChannelDensity:
    def test_empty(self):
        assert channel_density([]) == 0

    def test_disjoint(self):
        segs = [ChannelSegment("a", 0, 1), ChannelSegment("b", 2, 3)]
        assert channel_density(segs) == 1

    def test_nested(self):
        segs = [
            ChannelSegment("a", 0, 10),
            ChannelSegment("b", 2, 4),
            ChannelSegment("c", 3, 8),
        ]
        assert channel_density(segs) == 3

    def test_touching_conflict(self):
        segs = [ChannelSegment("a", 0, 5), ChannelSegment("b", 5, 10)]
        assert channel_density(segs) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            ChannelSegment("a", 5, 0)


class TestLeftEdgeRoute:
    def test_empty(self):
        assert left_edge_route([]) == {}
        assert tracks_used({}) == 0

    def test_disjoint_share_track(self):
        segs = [ChannelSegment("a", 0, 1), ChannelSegment("b", 2, 3)]
        assignment = left_edge_route(segs)
        assert tracks_used(assignment) == 1

    def test_overlapping_separate_tracks(self):
        segs = [ChannelSegment("a", 0, 5), ChannelSegment("b", 3, 8)]
        assignment = left_edge_route(segs)
        assert assignment["a"] != assignment["b"]

    def test_same_net_merged(self):
        segs = [ChannelSegment("a", 0, 3), ChannelSegment("a", 5, 8)]
        assignment = left_edge_route(segs)
        assert tracks_used(assignment) == 1

    def test_no_track_conflicts(self):
        segs = [
            ChannelSegment(f"n{i}", i * 2, i * 2 + 5) for i in range(10)
        ]
        assignment = left_edge_route(segs)
        merged = {}
        for s in segs:
            lo, hi = merged.get(s.net, (s.lo, s.hi))
            merged[s.net] = (min(lo, s.lo), max(hi, s.hi))
        by_track = {}
        for net, track in assignment.items():
            by_track.setdefault(track, []).append(merged[net])
        for intervals in by_track.values():
            intervals.sort()
            for (l1, h1), (l2, h2) in zip(intervals, intervals[1:]):
                assert h1 < l2  # strictly disjoint on a track

    @given(
        st.lists(
            st.tuples(
                st.integers(0, 100),
                st.integers(1, 30),
                st.integers(0, 25),
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_tracks_equal_density(self, raw):
        """Eqn 22's premise: without vertical constraints the left-edge
        router achieves exactly t = d tracks (distinct nets)."""
        segs = [
            ChannelSegment(f"n{i}", lo, lo + span)
            for i, (lo, span, _) in enumerate(raw)
        ]
        assignment = left_edge_route(segs)
        assert tracks_used(assignment) == channel_density(segs)

    @given(
        st.lists(
            st.tuples(st.integers(0, 50), st.integers(1, 20), st.integers(0, 8)),
            min_size=1,
            max_size=30,
        )
    )
    def test_merged_nets_within_bound(self, raw):
        """With shared net names, the track count never exceeds the
        merged-interval density."""
        segs = [
            ChannelSegment(f"n{net}", lo, lo + span) for lo, span, net in raw
        ]
        merged = {}
        for s in segs:
            lo, hi = merged.get(s.net, (s.lo, s.hi))
            merged[s.net] = (min(lo, s.lo), max(hi, s.hi))
        merged_segs = [
            ChannelSegment(net, lo, hi) for net, (lo, hi) in merged.items()
        ]
        assignment = left_edge_route(segs)
        assert tracks_used(assignment) == channel_density(merged_segs)
