"""The routing graph: adjacency, capacities, pin attachment."""

import pytest

from repro.channels import (
    ChannelGraph,
    decompose_free_space,
    extract_critical_regions,
)
from repro.geometry import Rect, TileSet


def ring_graph(track_spacing=1.0):
    boundary = Rect(0, 0, 30, 30)
    cell = TileSet([Rect(10, 10, 20, 20)])
    strips = decompose_free_space([cell], boundary)
    return ChannelGraph(strips, track_spacing), strips


class TestConstruction:
    def test_bad_track_spacing(self):
        with pytest.raises(ValueError):
            ChannelGraph([], track_spacing=0)

    def test_ring_connectivity(self):
        graph, strips = ring_graph()
        # The four strips around a centered obstacle form a cycle.
        assert graph.num_free_nodes == 4
        assert len(graph.edges()) == 4
        for node in range(4):
            assert len(list(graph.neighbors(node))) == 2

    def test_positions_at_centers(self):
        graph, strips = ring_graph()
        for i, s in enumerate(strips):
            c = s.center
            assert graph.positions[i] == (c.x, c.y)

    def test_capacity_from_shared_segment(self):
        graph, strips = ring_graph(track_spacing=2.0)
        for e in graph.edges():
            a, b = strips[e.u], strips[e.v]
            # Every adjacency here shares a 10-unit segment -> 5 tracks.
            assert e.capacity == 5

    def test_corner_contact_not_connected(self):
        rects = [Rect(0, 0, 10, 10), Rect(10, 10, 20, 20)]
        graph = ChannelGraph(rects)
        assert graph.edges() == []

    def test_edge_lookup(self):
        graph, _ = ring_graph()
        e = graph.edges()[0]
        assert graph.edge(e.u, e.v) is graph.edge(e.v, e.u)
        assert graph.edge_capacity(e.u, e.v) == e.capacity


class TestPins:
    def test_attach_pin_on_strip(self):
        graph, strips = ring_graph()
        node = graph.attach_pin("cell", "p", (15.0, 5.0))
        assert node is not None
        assert graph.is_pin_node(node)
        host = graph.pin_host(node)
        assert strips[host].contains_point(15.0, 5.0)

    def test_pin_edge_uncapacitated(self):
        graph, _ = ring_graph()
        node = graph.attach_pin("cell", "p", (15.0, 5.0))
        (neighbor, _), = list(graph.neighbors(node))
        assert graph.edge_capacity(node, neighbor) is None

    def test_pin_outside_finds_nearest(self):
        graph, strips = ring_graph()
        node = graph.attach_pin("cell", "p", (15.0, 12.0))  # inside obstacle
        assert node is not None

    def test_pin_registry(self):
        graph, _ = ring_graph()
        node = graph.attach_pin("cellX", "pinY", (1.0, 1.0))
        assert graph.pin_nodes[("cellX", "pinY")] == node

    def test_empty_graph_returns_none(self):
        graph = ChannelGraph([])
        assert graph.attach_pin("c", "p", (0.0, 0.0)) is None

    def test_node_counts(self):
        graph, _ = ring_graph()
        before = graph.num_nodes
        graph.attach_pin("c", "p", (1.0, 1.0))
        assert graph.num_nodes == before + 1
        assert graph.num_free_nodes == 4


class TestWithRegions:
    def test_regions_carried(self):
        shapes = {
            "a": TileSet.rectangle(10, 10),
            "b": TileSet.rectangle(10, 10).translated(14, 0),
        }
        regions = extract_critical_regions(shapes)
        strips = decompose_free_space(
            shapes.values(), Rect(-20, -20, 40, 20)
        )
        graph = ChannelGraph(strips, regions=regions)
        assert graph.regions == regions
        assert "critical regions" in repr(graph)
