"""Critical-region extraction (§4.1)."""

import pytest

from repro.channels import (
    CORE_BOUNDARY,
    HORIZONTAL,
    VERTICAL,
    CriticalRegion,
    core_boundary_edges,
    extract_critical_regions,
)
from repro.geometry import Rect, TileSet


def two_cells_side_by_side(gap=4.0):
    """Two 10x10 cells with a vertical channel of width ``gap`` between."""
    a = TileSet.rectangle(10, 10)  # bbox [-5, 5]
    b = TileSet.rectangle(10, 10).translated(10 + gap, 0)
    return {"a": a, "b": b}


class TestTwoCells:
    def test_single_channel_between(self):
        shapes = two_cells_side_by_side()
        regions = extract_critical_regions(shapes)
        assert len(regions) == 1
        r = regions[0]
        assert r.axis == VERTICAL
        assert r.width == pytest.approx(4.0)
        assert r.length == pytest.approx(10.0)
        assert set(r.cells()) == {"a", "b"}

    def test_region_rect(self):
        regions = extract_critical_regions(two_cells_side_by_side())
        assert regions[0].rect == Rect(5, -5, 9, 5)

    def test_touching_cells_no_channel(self):
        regions = extract_critical_regions(two_cells_side_by_side(gap=0.0))
        assert regions == []

    def test_offset_spans_common_extent(self):
        # Shift b up by 4: the common span is 6 units.
        shapes = {
            "a": TileSet.rectangle(10, 10),
            "b": TileSet.rectangle(10, 10).translated(14, 4),
        }
        regions = extract_critical_regions(shapes)
        assert len(regions) == 1
        assert regions[0].length == pytest.approx(6.0)

    def test_disjoint_spans_no_channel(self):
        shapes = {
            "a": TileSet.rectangle(10, 10),
            "b": TileSet.rectangle(10, 10).translated(14, 20),
        }
        assert extract_critical_regions(shapes) == []

    def test_horizontal_channel(self):
        shapes = {
            "a": TileSet.rectangle(10, 10),
            "b": TileSet.rectangle(10, 10).translated(0, 13),
        }
        regions = extract_critical_regions(shapes)
        assert len(regions) == 1
        assert regions[0].axis == HORIZONTAL
        assert regions[0].width == pytest.approx(3.0)


class TestBlocking:
    def test_intervening_cell_blocks(self):
        # c sits squarely between a and b: the long a-b channel is blocked,
        # leaving the two short channels a-c and c-b.
        shapes = {
            "a": TileSet.rectangle(10, 10),
            "b": TileSet.rectangle(10, 10).translated(30, 0),
            "c": TileSet.rectangle(10, 10).translated(15, 0),
        }
        regions = extract_critical_regions(shapes)
        pairs = {frozenset(r.cells()) for r in regions}
        assert frozenset({"a", "b"}) not in pairs
        assert frozenset({"a", "c"}) in pairs
        assert frozenset({"c", "b"}) in pairs

    def test_partial_blocker_still_blocks(self):
        # c overlaps the a-b corridor only partially but intersects the
        # candidate rectangle, so the a-b region is rejected.
        shapes = {
            "a": TileSet.rectangle(10, 10),
            "b": TileSet.rectangle(10, 10).translated(30, 0),
            "c": TileSet.rectangle(4, 4).translated(15, 4),
        }
        regions = extract_critical_regions(shapes)
        pairs = {frozenset(r.cells()) for r in regions}
        assert frozenset({"a", "b"}) not in pairs


class TestCoreBoundary:
    def test_boundary_channels(self):
        shapes = {"a": TileSet.rectangle(10, 10)}
        core = Rect(-20, -20, 20, 20)
        regions = extract_critical_regions(shapes, core)
        # One channel per side between the cell and the core boundary.
        assert len(regions) == 4
        for r in regions:
            assert CORE_BOUNDARY in r.cells()
            assert r.width == pytest.approx(15.0)

    def test_no_core_no_boundary_channels(self):
        shapes = {"a": TileSet.rectangle(10, 10)}
        assert extract_critical_regions(shapes) == []

    def test_core_boundary_edges_face_inward(self):
        edges = core_boundary_edges(Rect(0, 0, 10, 10))
        sides = {e.edge.side for e in edges}
        assert sides == {"left", "right", "bottom", "top"}
        assert all(e.cell == CORE_BOUNDARY for e in edges)


class TestOverlappingRegions:
    def test_notch_regions_overlap(self):
        # The n8/n9/n11/n12 case of Figure 9: an L-shaped cell's notch is
        # crossed both by a vertical-pair region (notch edge vs a cell to
        # the right) and a horizontal-pair region (notch edge vs a cell
        # above).  Both are kept, unlike Chen's bottlenecks.
        l = TileSet(
            [Rect(-10, -10, 10, 2), Rect(-10, 2, 2, 10)]  # notch at [2,10]^2
        )
        p = TileSet([Rect(2, 12, 10, 16)])  # above the notch
        q = TileSet([Rect(12, 2, 16, 10)])  # right of the notch
        regions = extract_critical_regions({"l": l, "p": p, "q": q})
        vert = [r for r in regions if r.axis == VERTICAL]
        horiz = [r for r in regions if r.axis == HORIZONTAL]
        assert vert and horiz
        overlapping = any(
            v.rect.intersects(h.rect) for v in vert for h in horiz
        )
        assert overlapping


class TestRectilinearCells:
    def test_l_shape_inner_channel(self):
        # An L-shaped cell and a square nestled near its notch.
        l = TileSet.l_shape(20, 20, 8, 8)
        probe = TileSet.rectangle(4, 4).translated(8, 8)
        shapes = {"l": l, "p": probe}
        regions = extract_critical_regions(shapes)
        assert regions  # channels exist between the L's notch edges and p
        for r in regions:
            # No region may cover cell interior.
            for shape in shapes.values():
                for tile in shape.tiles:
                    assert not tile.intersects(r.rect)


class TestCriticalRegionClass:
    def region(self):
        return extract_critical_regions(two_cells_side_by_side())[0]

    def test_capacity(self):
        r = self.region()
        assert r.capacity(1.0) == 4
        assert r.capacity(3.0) == 1

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            self.region().capacity(0)

    def test_center(self):
        assert self.region().center == (7.0, 0.0)
