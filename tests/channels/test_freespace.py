"""Free-space strip decomposition."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.channels import decompose_free_space, free_area
from repro.geometry import Rect, TileSet


class TestEmptyAndFull:
    def test_no_cells_single_strip(self):
        boundary = Rect(0, 0, 10, 10)
        strips = decompose_free_space([], boundary)
        assert strips == [boundary]

    def test_fully_covered(self):
        boundary = Rect(0, 0, 10, 10)
        cell = TileSet([Rect(0, 0, 10, 10)], check_connected=False)
        assert decompose_free_space([cell], boundary) == []

    def test_cell_outside_boundary_ignored(self):
        boundary = Rect(0, 0, 10, 10)
        cell = TileSet([Rect(100, 100, 110, 110)])
        assert decompose_free_space([cell], boundary) == [boundary]


class TestSingleCell:
    def test_ring_decomposition(self):
        boundary = Rect(0, 0, 30, 30)
        cell = TileSet([Rect(10, 10, 20, 20)])
        strips = decompose_free_space([cell], boundary)
        # Bottom band, left/right middle strips, top band.
        assert len(strips) == 4
        assert sum(s.area for s in strips) == pytest.approx(900 - 100)

    def test_strips_disjoint(self):
        boundary = Rect(0, 0, 30, 30)
        cell = TileSet([Rect(10, 10, 20, 20)])
        strips = decompose_free_space([cell], boundary)
        for i in range(len(strips)):
            for j in range(i + 1, len(strips)):
                assert not strips[i].intersects(strips[j])

    def test_strips_avoid_cell(self):
        boundary = Rect(0, 0, 30, 30)
        tile = Rect(10, 10, 20, 20)
        strips = decompose_free_space([TileSet([tile])], boundary)
        for s in strips:
            assert not s.intersects(tile)

    def test_vertical_merging_maximal(self):
        # The left strip must span the full boundary height next to the
        # full-height obstacle.
        boundary = Rect(0, 0, 30, 10)
        cell = TileSet([Rect(10, 0, 20, 10)])
        strips = decompose_free_space([cell], boundary)
        assert sorted((s.x1, s.x2) for s in strips) == [(0, 10), (20, 30)]
        assert all(s.height == 10 for s in strips)


class TestAreaInvariant:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000))
    def test_free_area_complements_cells(self, seed):
        rng = random.Random(seed)
        boundary = Rect(0, 0, 100, 100)
        cells = []
        placed = []
        for _ in range(rng.randint(1, 6)):
            w, h = rng.randint(5, 25), rng.randint(5, 25)
            for _ in range(50):
                x = rng.randint(0, 100 - w)
                y = rng.randint(0, 100 - h)
                cand = Rect(x, y, x + w, y + h)
                if not any(cand.intersects(p) for p in placed):
                    placed.append(cand)
                    cells.append(TileSet([cand]))
                    break
        total_cells = sum(p.area for p in placed)
        assert free_area(cells, boundary) == pytest.approx(
            boundary.area - total_cells
        )

    def test_rectilinear_cells(self):
        boundary = Rect(-20, -20, 20, 20)
        l = TileSet.l_shape(16, 16, 6, 6)
        assert free_area([l], boundary) == pytest.approx(1600 - l.area)
