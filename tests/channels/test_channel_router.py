"""The vertical-constraint-aware channel router."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.channels import (
    ChannelCycleError,
    ChannelPin,
    channel_density_of_pins,
    net_intervals,
    route_channel,
    validate_route,
    vertical_constraints,
)


def P(net, column, side):
    return ChannelPin(net, column, side)


class TestBasics:
    def test_pin_validation(self):
        with pytest.raises(ValueError):
            ChannelPin("n", 0.0, "left")

    def test_intervals(self):
        pins = [P("a", 0, "top"), P("a", 5, "bottom"), P("b", 3, "top")]
        iv = net_intervals(pins)
        assert iv["a"] == (0, 5)
        assert iv["b"] == (3, 3)

    def test_constraints_from_shared_column(self):
        pins = [P("t", 2, "top"), P("b", 2, "bottom")]
        above = vertical_constraints(pins)
        assert above == {"t": {"b"}}

    def test_no_self_constraint(self):
        pins = [P("x", 2, "top"), P("x", 2, "bottom")]
        assert vertical_constraints(pins) == {}

    def test_density(self):
        pins = [
            P("a", 0, "top"), P("a", 4, "top"),
            P("b", 2, "bottom"), P("b", 6, "bottom"),
        ]
        assert channel_density_of_pins(pins) == 2


class TestRouting:
    def test_unconstrained_matches_density(self):
        pins = [
            P("a", 0, "top"), P("a", 4, "top"),
            P("b", 5, "top"), P("b", 9, "top"),
        ]
        route = route_channel(pins)
        assert route.num_tracks == 1
        assert validate_route(pins, route) == []

    def test_constraint_orders_tracks(self):
        pins = [
            P("t", 2, "top"), P("t", 6, "top"),
            P("b", 2, "bottom"), P("b", 8, "bottom"),
        ]
        route = route_channel(pins)
        assert route.tracks["t"] < route.tracks["b"]
        assert validate_route(pins, route) == []

    def test_chain_forces_tracks(self):
        # a above b above c, all overlapping: three tracks.
        pins = [
            P("a", 1, "top"), P("b", 1, "bottom"),
            P("b", 2, "top"), P("c", 2, "bottom"),
            P("a", 3, "top"), P("c", 4, "bottom"),
        ]
        route = route_channel(pins)
        assert route.num_tracks == 3
        assert route.tracks["a"] < route.tracks["b"] < route.tracks["c"]

    def test_cycle_detected(self):
        # a above b (column 1) and b above a (column 2): a dogleg case.
        pins = [
            P("a", 1, "top"), P("b", 1, "bottom"),
            P("b", 2, "top"), P("a", 2, "bottom"),
        ]
        with pytest.raises(ChannelCycleError):
            route_channel(pins)

    def test_empty_channel(self):
        route = route_channel([])
        assert route.num_tracks == 0
        assert route.tracks == {}

    def test_t_le_d_plus_1_without_long_chains(self):
        # The Eqn-22 premise on a realistic spread of two-pin nets with
        # column-disjoint shores (acyclic, chains of length <= 2).
        pins = []
        for i in range(8):
            pins.append(P(f"n{i}", 2 * i, "top"))
            pins.append(P(f"n{i}", 2 * i + 5, "bottom"))
        route = route_channel(pins)
        d = channel_density_of_pins(pins)
        assert route.num_tracks <= d + 1
        assert validate_route(pins, route) == []


class TestRandomInstances:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 100_000))
    def test_random_acyclic_channels_are_legal(self, seed):
        rng = random.Random(seed)
        pins = []
        # Offset shores so the VCG is acyclic by construction: top pins on
        # even columns, bottom pins on odd columns (no shared columns).
        for i in range(rng.randint(2, 12)):
            net = f"n{i}"
            cols = rng.sample(range(0, 40, 2), 2)
            pins.append(P(net, cols[0], "top"))
            pins.append(P(net, cols[1] + 1, "bottom"))
        route = route_channel(pins)
        assert validate_route(pins, route) == []
        # Without constraints the left-edge bound holds exactly.
        assert route.num_tracks == channel_density_of_pins(pins)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 100_000))
    def test_random_constrained_channels(self, seed):
        rng = random.Random(seed)
        pins = []
        for i in range(rng.randint(2, 10)):
            net = f"n{i}"
            for _ in range(2):
                pins.append(
                    P(net, rng.randint(0, 15), rng.choice(["top", "bottom"]))
                )
        try:
            route = route_channel(pins)
        except ChannelCycleError:
            return  # cyclic instances are legitimately rejected
        assert validate_route(pins, route) == []
        assert route.num_tracks >= channel_density_of_pins(pins) - 1
