"""Congestion accounting and the width rule of Eqn 22."""

import pytest

from repro.channels import (
    WIDTH_MARGIN_TRACKS,
    ChannelGraph,
    cell_edge_expansions,
    compute_congestion,
    decompose_free_space,
    extract_critical_regions,
    region_densities,
    required_channel_width,
)
from repro.geometry import Rect, TileSet


class TestWidthRule:
    def test_eqn22(self):
        assert required_channel_width(0, 1.0) == 2.0
        assert required_channel_width(5, 1.0) == 7.0
        assert required_channel_width(5, 2.0) == 14.0

    def test_validation(self):
        with pytest.raises(ValueError):
            required_channel_width(-1, 1.0)
        with pytest.raises(ValueError):
            required_channel_width(1, 0.0)

    def test_margin_constant(self):
        assert WIDTH_MARGIN_TRACKS == 2


def simple_setup():
    """Two cells side by side inside a boundary, with a routed net."""
    shapes = {
        "a": TileSet.rectangle(10, 10),
        "b": TileSet.rectangle(10, 10).translated(14, 0),
    }
    boundary = Rect(-15, -15, 30, 15)
    regions = extract_critical_regions(shapes, boundary)
    strips = decompose_free_space(shapes.values(), boundary)
    graph = ChannelGraph(strips, 1.0, regions=regions)
    pa = graph.attach_pin("a", "p", (5.0, 0.0))
    pb = graph.attach_pin("b", "p", (9.0, 0.0))
    return graph, pa, pb


class TestComputeCongestion:
    def test_counts_edges_and_nodes(self):
        graph, pa, pb = simple_setup()
        host_a = graph.pin_host(pa)
        host_b = graph.pin_host(pb)
        route = [(pa, host_a)]
        if host_a != host_b:
            route.append((host_a, host_b))
        route.append((host_b, pb))
        report = compute_congestion(graph, {"n1": route})
        assert report.node_density[host_a] == 1
        assert report.node_density[host_b] == 1
        assert sum(report.edge_density.values()) == len(set(
            tuple(sorted(e)) for e in route
        ))

    def test_net_counted_once_per_node(self):
        graph, pa, pb = simple_setup()
        host = graph.pin_host(pa)
        # Same edge twice in the route: density must still be 1.
        report = compute_congestion(graph, {"n": [(pa, host), (host, pa)]})
        assert report.edge_density[tuple(sorted((pa, host)))] == 1

    def test_two_nets_stack(self):
        graph, pa, pb = simple_setup()
        host = graph.pin_host(pa)
        routes = {"n1": [(pa, host)], "n2": [(pa, host)]}
        report = compute_congestion(graph, routes)
        assert report.node_density[host] == 2

    def test_overflow(self):
        graph, pa, pb = simple_setup()
        host_a, host_b = graph.pin_host(pa), graph.pin_host(pb)
        if host_a == host_b:
            pytest.skip("pins share a strip in this decomposition")
        edge = graph.edge(host_a, host_b)
        routes = {
            f"n{i}": [(host_a, host_b)] for i in range((edge.capacity or 0) + 3)
        }
        report = compute_congestion(graph, routes)
        assert report.overflow(graph) == 3


class TestRegionDensities:
    def test_routed_channel_has_density(self):
        graph, pa, pb = simple_setup()
        host_a, host_b = graph.pin_host(pa), graph.pin_host(pb)
        route = [(pa, host_a), (host_a, host_b), (host_b, pb)]
        densities = region_densities(graph, {"n1": route})
        # The channel between a and b must see the net.
        between = [
            r for r in graph.regions if set(r.cells()) == {"a", "b"}
        ]
        assert between
        assert densities[between[0].index] >= 1

    def test_unrouted_region_zero(self):
        graph, pa, pb = simple_setup()
        densities = region_densities(graph, {})
        assert all(v == 0 for v in densities.values())


class TestCellEdgeExpansions:
    def test_half_width_per_side(self):
        graph, pa, pb = simple_setup()
        host_a, host_b = graph.pin_host(pa), graph.pin_host(pb)
        route = [(pa, host_a), (host_a, host_b), (host_b, pb)]
        expansions = cell_edge_expansions(graph, {"n1": route}, 1.0)
        # Cell a's right edge and cell b's left edge share the channel.
        assert "a" in expansions and "b" in expansions
        assert expansions["a"]["right"] >= required_channel_width(1, 1.0) / 2
        assert expansions["a"]["right"] == expansions["b"]["left"]

    def test_core_boundary_not_expanded(self):
        graph, pa, pb = simple_setup()
        expansions = cell_edge_expansions(graph, {}, 1.0)
        assert "__core__" not in expansions

    def test_zero_density_still_reserves_margin(self):
        graph, pa, pb = simple_setup()
        expansions = cell_edge_expansions(graph, {}, 1.0)
        # Even unrouted channels get (0 + 2) * t_s / 2 = 1 per side.
        assert expansions["a"]["right"] == pytest.approx(1.0)
