"""Cooling schedules: Tables 1-2 and the S_T scaling of Eqns 19-21."""

import pytest

from repro.annealing import (
    REFERENCE_CELL_AREA,
    REFERENCE_T_INFINITY,
    STAGE1_TABLE,
    STAGE2_TABLE,
    CoolingSchedule,
    stage1_schedule,
    stage2_schedule,
    temperature_scale,
)


class TestTemperatureScale:
    def test_reference_is_unity(self):
        assert temperature_scale(REFERENCE_CELL_AREA) == 1.0

    def test_proportional(self):
        assert temperature_scale(2 * REFERENCE_CELL_AREA) == 2.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            temperature_scale(0)


class TestCoolingScheduleValidation:
    def test_alpha_out_of_range(self):
        with pytest.raises(ValueError):
            CoolingSchedule(((10.0, 1.0), (0.0, 0.8)))

    def test_thresholds_must_descend(self):
        with pytest.raises(ValueError):
            CoolingSchedule(((10.0, 0.9), (20.0, 0.8), (0.0, 0.8)))

    def test_needs_catch_all(self):
        with pytest.raises(ValueError):
            CoolingSchedule(((10.0, 0.9),))

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            CoolingSchedule(STAGE1_TABLE, scale=0)


class TestTable1:
    """The exact alpha(T_old) bands of Table 1."""

    @pytest.mark.parametrize(
        "t,expected",
        [
            (1e5, 0.85),
            (7000, 0.85),
            (6999, 0.92),
            (200, 0.92),
            (199, 0.85),
            (10, 0.85),
            (9.9, 0.80),
            (0.001, 0.80),
        ],
    )
    def test_bands(self, t, expected):
        schedule = stage1_schedule(REFERENCE_CELL_AREA)
        assert schedule.alpha(t) == expected

    def test_scaled_bands(self):
        schedule = stage1_schedule(2 * REFERENCE_CELL_AREA)  # S_T = 2
        assert schedule.alpha(14000) == 0.85
        assert schedule.alpha(13999) == 0.92

    def test_t_infinity_scales(self):
        assert stage1_schedule(REFERENCE_CELL_AREA).t_infinity == REFERENCE_T_INFINITY
        assert (
            stage1_schedule(3 * REFERENCE_CELL_AREA).t_infinity
            == 3 * REFERENCE_T_INFINITY
        )


class TestTable2:
    @pytest.mark.parametrize("t,expected", [(100, 0.82), (10, 0.82), (9, 0.70)])
    def test_bands(self, t, expected):
        schedule = stage2_schedule(REFERENCE_CELL_AREA)
        assert schedule.alpha(t) == expected

    def test_custom_start(self):
        schedule = stage2_schedule(REFERENCE_CELL_AREA, t_start=123.0)
        assert schedule.t_infinity == 123.0


class TestLadder:
    def test_next_temperature(self):
        schedule = stage1_schedule()
        assert schedule.next_temperature(1e5) == pytest.approx(0.85e5)

    def test_monotone_decreasing(self):
        schedule = stage1_schedule()
        temps = schedule.temperatures(t_floor=1.0)
        assert all(a > b for a, b in zip(temps, temps[1:]))

    def test_ladder_count_near_paper(self):
        # The paper targets about 120 temperature values over the full
        # range; our ladder from T-inf down to S_T*1 should be comparable.
        temps = stage1_schedule().temperatures(t_floor=1.0)
        assert 80 <= len(temps) <= 160

    def test_ladder_respects_floor(self):
        temps = stage1_schedule().temperatures(t_floor=100.0)
        assert temps[-1] > 100.0

    def test_floor_validation(self):
        with pytest.raises(ValueError):
            stage1_schedule().temperatures(t_floor=0)

    def test_tables_are_paper_values(self):
        assert STAGE1_TABLE == ((7000.0, 0.85), (200.0, 0.92), (10.0, 0.85), (0.0, 0.80))
        assert STAGE2_TABLE == ((10.0, 0.82), (0.0, 0.70))
