"""The range limiter (Eqns 12-16) and displacement-point selectors."""

import math
import random

import pytest
from hypothesis import given, strategies as st

from repro.annealing import (
    MIN_WINDOW_SPAN,
    RangeLimiter,
    select_displacement_dr,
    select_displacement_ds,
)


def make_limiter(**kw):
    defaults = dict(full_span_x=1000.0, full_span_y=800.0, t_infinity=1e5, rho=4.0)
    defaults.update(kw)
    return RangeLimiter(**defaults)


class TestValidation:
    def test_bad_spans(self):
        with pytest.raises(ValueError):
            make_limiter(full_span_x=0)

    def test_bad_rho(self):
        with pytest.raises(ValueError):
            make_limiter(rho=0.5)
        with pytest.raises(ValueError):
            make_limiter(rho=11)

    def test_bad_t_infinity(self):
        with pytest.raises(ValueError):
            make_limiter(t_infinity=0)


class TestWindow:
    def test_full_at_t_infinity(self):
        lim = make_limiter()
        assert lim.window_x(1e5) == pytest.approx(1000.0)
        assert lim.window_y(1e5) == pytest.approx(800.0)

    def test_shrinks_with_temperature(self):
        lim = make_limiter()
        temps = [1e5, 1e4, 1e3, 1e2, 1e1]
        spans = [lim.window_x(t) for t in temps]
        assert all(a >= b for a, b in zip(spans, spans[1:]))

    def test_eqn12_form(self):
        # W(T) = W_inf * rho**log10(T) / rho**log10(T_inf)
        lim = make_limiter()
        t = 1e3
        expected = 1000.0 * 4.0 ** math.log10(t) / 4.0 ** math.log10(1e5)
        assert lim.window_x(t) == pytest.approx(expected)

    def test_floor_at_min_span(self):
        lim = make_limiter()
        assert lim.window_x(1e-9) == MIN_WINDOW_SPAN

    def test_rho_one_never_shrinks(self):
        lim = make_limiter(rho=1.0)
        assert lim.window_x(1e-3) == pytest.approx(1000.0)
        assert not lim.at_minimum(1e-6)

    def test_at_minimum(self):
        lim = make_limiter()
        assert not lim.at_minimum(1e5)
        assert lim.at_minimum(1e-9)

    def test_larger_rho_shrinks_faster(self):
        lo = make_limiter(rho=2.0)
        hi = make_limiter(rho=8.0)
        t = 1e3
        assert hi.window_x(t) < lo.window_x(t)


class TestMuInversion:
    """Eqn 28: T' = mu**log_rho(10) * T_inf."""

    @given(st.floats(0.001, 1.0, exclude_min=True, allow_nan=False))
    def test_roundtrip(self, mu):
        lim = make_limiter(full_span_x=1e6, full_span_y=1e6)
        t = lim.temperature_for_fraction(mu)
        # Window at T' should be the fraction mu of the full span.
        assert lim.window_x(t) / 1e6 == pytest.approx(mu, rel=1e-6)

    def test_paper_value(self):
        lim = make_limiter()
        t = lim.temperature_for_fraction(0.03)
        expected = 0.03 ** math.log(10, 4) * 1e5
        assert t == pytest.approx(expected)

    def test_bad_mu(self):
        with pytest.raises(ValueError):
            make_limiter().temperature_for_fraction(0.0)

    def test_rho_one_rejected(self):
        with pytest.raises(ValueError):
            make_limiter(rho=1.0).temperature_for_fraction(0.5)


class TestSelectors:
    def test_ds_points_within_half_window(self):
        lim = make_limiter()
        rng = random.Random(0)
        t = 1e4
        for _ in range(200):
            x, y = select_displacement_ds(rng, (0.0, 0.0), lim, t)
            assert abs(x) <= lim.window_x(t) / 2 + 1e-9
            assert abs(y) <= lim.window_y(t) / 2 + 1e-9

    def test_ds_never_returns_center(self):
        lim = make_limiter()
        rng = random.Random(1)
        for _ in range(200):
            assert select_displacement_ds(rng, (5.0, 5.0), lim, 1e4) != (5.0, 5.0)

    def test_ds_grid_structure(self):
        # All offsets must be integer multiples of the step.
        lim = make_limiter()
        rng = random.Random(2)
        t = 1e4
        step_x = lim.window_x(t) / 6.0
        for _ in range(100):
            x, _ = select_displacement_ds(rng, (0.0, 0.0), lim, t)
            assert (x / step_x) == pytest.approx(round(x / step_x), abs=1e-9)

    def test_ds_covers_48_points(self):
        lim = make_limiter()
        rng = random.Random(3)
        t = 1e4
        points = {
            select_displacement_ds(rng, (0.0, 0.0), lim, t) for _ in range(5000)
        }
        assert len(points) == 48

    def test_ds_minimum_step_is_one(self):
        lim = make_limiter()
        rng = random.Random(4)
        # At minimum window span (6), the step is 1 grid unit.
        points = {
            select_displacement_ds(rng, (0.0, 0.0), lim, 1e-9) for _ in range(2000)
        }
        assert all(abs(x) <= 3 and abs(y) <= 3 for x, y in points)
        assert (1.0, 0.0) in points

    def test_dr_uniform_within_window(self):
        lim = make_limiter()
        rng = random.Random(5)
        t = 1e4
        for _ in range(200):
            x, y = select_displacement_dr(rng, (0.0, 0.0), lim, t)
            assert abs(x) <= lim.window_x(t) / 2
            assert abs(y) <= lim.window_y(t) / 2

    def test_dr_continuous(self):
        lim = make_limiter()
        rng = random.Random(6)
        points = {select_displacement_dr(rng, (0.0, 0.0), lim, 1e4) for _ in range(100)}
        assert len(points) == 100  # continuous draws never collide
