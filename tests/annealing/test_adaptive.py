"""The acceptance-ratio-driven (VPR-style) cooling schedule.

Covers the alpha bands, the d_limit feedback window with its clamps,
the cost-floor stopping rule, the engine's optional schedule-feedback
protocol (observe / state_dict / telemetry_fields), and — the part that
has to be *exact* — cursor resume reproducing the uninterrupted
adaptive trajectory bit-for-bit even though the schedule now carries
mutable state.
"""

import random

import pytest

from repro.annealing import (
    ADAPTIVE_ALPHA_BANDS,
    TARGET_ACCEPT_RATIO,
    AdaptiveCooling,
    AdaptiveRangeLimiter,
    AnnealCursor,
    Annealer,
    CostFloorStop,
    FloorStop,
    TemperatureStats,
    adaptive_alpha,
)
from repro.annealing.range_limiter import MIN_WINDOW_SPAN
from repro.telemetry import MemorySink, Tracer

from .test_engine import QuadraticState


def stats_with_rate(rate, temperature=10.0, cost=100.0):
    return TemperatureStats(
        temperature=temperature,
        attempts=1000,
        accepts=int(round(rate * 1000)),
        cost_after=cost,
    )


class TestAdaptiveAlpha:
    def test_bands(self):
        assert adaptive_alpha(1.0) == 0.50
        assert adaptive_alpha(0.97) == 0.50
        assert adaptive_alpha(0.90) == 0.90
        assert adaptive_alpha(0.50) == 0.95
        assert adaptive_alpha(0.10) == 0.80
        assert adaptive_alpha(0.0) == 0.80

    def test_band_edges_are_strict(self):
        # Bands use r > threshold, so a ratio exactly at a boundary
        # falls through to the gentler band.
        assert adaptive_alpha(0.96) == 0.90
        assert adaptive_alpha(0.80) == 0.95
        assert adaptive_alpha(0.15) == 0.80

    def test_band_table_is_descending(self):
        thresholds = [t for t, _ in ADAPTIVE_ALPHA_BANDS]
        assert thresholds == sorted(thresholds, reverse=True)


def make_limiter(**kw):
    kw.setdefault("full_span_x", 200.0)
    kw.setdefault("full_span_y", 100.0)
    kw.setdefault("t_infinity", 500.0)
    return AdaptiveRangeLimiter(**kw)


class TestAdaptiveRangeLimiter:
    def test_starts_at_full_span(self):
        limiter = make_limiter()
        assert limiter.window_x(500.0) == 200.0
        assert limiter.window_y(500.0) == 100.0
        assert not limiter.at_minimum(500.0)

    def test_low_acceptance_shrinks_window(self):
        limiter = make_limiter()
        limiter.observe(stats_with_rate(0.1))
        factor = 1.0 - TARGET_ACCEPT_RATIO + 0.1
        assert limiter.d_limit_x == pytest.approx(200.0 * factor)
        assert limiter.d_limit_y == pytest.approx(100.0 * factor)

    def test_high_acceptance_clamps_at_full_span(self):
        limiter = make_limiter()
        limiter.observe(stats_with_rate(0.9))  # factor > 1 but already full
        assert limiter.d_limit_x == 200.0
        assert limiter.d_limit_y == 100.0

    def test_target_ratio_is_the_fixed_point(self):
        limiter = make_limiter()
        limiter.d_limit_x = limiter.d_limit_y = 50.0
        limiter.observe(stats_with_rate(TARGET_ACCEPT_RATIO))
        assert limiter.d_limit_x == pytest.approx(50.0)
        assert limiter.d_limit_y == pytest.approx(50.0)

    def test_shrinks_to_min_span_and_reports_minimum(self):
        limiter = make_limiter()
        for _ in range(200):
            limiter.observe(stats_with_rate(0.0))
        assert limiter.d_limit_x == MIN_WINDOW_SPAN
        assert limiter.d_limit_y == MIN_WINDOW_SPAN
        assert limiter.at_minimum(0.001)
        assert limiter.window_x(0.001) == MIN_WINDOW_SPAN

    def test_temperature_for_fraction_matches_eqn28_rho4(self):
        from repro.annealing import RangeLimiter

        reference = RangeLimiter(
            full_span_x=200.0, full_span_y=100.0, t_infinity=500.0, rho=4.0
        )
        adaptive = make_limiter()
        for mu in (0.05, 0.25, 0.5, 1.0):
            assert adaptive.temperature_for_fraction(mu) == pytest.approx(
                reference.temperature_for_fraction(mu)
            )

    def test_state_dict_round_trip(self):
        limiter = make_limiter()
        limiter.observe(stats_with_rate(0.2))
        limiter.observe(stats_with_rate(0.3))
        clone = make_limiter()
        clone.load_state_dict(limiter.state_dict())
        assert clone.d_limit_x == limiter.d_limit_x
        assert clone.d_limit_y == limiter.d_limit_y

    def test_telemetry_fields(self):
        limiter = make_limiter()
        fields = limiter.telemetry_fields()
        assert fields == {"d_limit_x": 200.0, "d_limit_y": 100.0}

    @pytest.mark.parametrize(
        "kw",
        [
            {"full_span_x": 0.0},
            {"full_span_y": -1.0},
            {"t_infinity": 0.0},
            {"min_span": 0.0},
        ],
    )
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            make_limiter(**kw)

    def test_fraction_out_of_range(self):
        with pytest.raises(ValueError):
            make_limiter().temperature_for_fraction(0.0)


class TestAdaptiveCooling:
    def test_initial_state_assumes_hot_plateau(self):
        schedule = AdaptiveCooling(t_infinity=500.0)
        assert schedule.r_accept == 1.0
        assert schedule.alpha(500.0) == 0.50
        assert schedule.next_temperature(100.0) == 50.0

    def test_observe_updates_alpha(self):
        schedule = AdaptiveCooling(t_infinity=500.0)
        schedule.observe(stats_with_rate(0.5))
        assert schedule.r_accept == 0.5
        assert schedule.alpha(10.0) == 0.95
        assert schedule.next_temperature(10.0) == pytest.approx(9.5)

    def test_observe_forwards_to_limiter(self):
        limiter = make_limiter()
        schedule = AdaptiveCooling(t_infinity=500.0, limiter=limiter)
        schedule.observe(stats_with_rate(0.1))
        assert limiter.d_limit_x < 200.0

    def test_state_dict_round_trip_with_limiter(self):
        limiter = make_limiter()
        schedule = AdaptiveCooling(t_infinity=500.0, scale=2.0, limiter=limiter)
        schedule.observe(stats_with_rate(0.3))
        clone = AdaptiveCooling(t_infinity=500.0, scale=2.0, limiter=make_limiter())
        clone.load_state_dict(schedule.state_dict())
        assert clone.r_accept == schedule.r_accept
        assert clone.alpha(1.0) == schedule.alpha(1.0)
        assert clone.limiter.d_limit_x == limiter.d_limit_x

    def test_telemetry_fields_include_limiter(self):
        schedule = AdaptiveCooling(t_infinity=500.0, limiter=make_limiter())
        fields = schedule.telemetry_fields()
        assert set(fields) == {"alpha", "r_accept", "d_limit_x", "d_limit_y"}

    @pytest.mark.parametrize("kw", [{"t_infinity": 0.0}, {"scale": 0.0}])
    def test_validation(self, kw):
        kw.setdefault("t_infinity", 500.0)
        with pytest.raises(ValueError):
            AdaptiveCooling(**kw)


class TestCostFloorStop:
    def test_stops_below_per_net_cost_floor(self):
        stop = CostFloorStop(num_nets=100)
        stats = stats_with_rate(0.5, cost=1000.0)
        # floor = 0.005 * 1000 / 100 = 0.05
        assert not stop.should_stop(0.06, stats)
        assert stop.should_stop(0.04, stats)

    def test_scales_with_net_count(self):
        stats = stats_with_rate(0.5, cost=1000.0)
        assert CostFloorStop(num_nets=10).should_stop(0.4, stats)
        assert not CostFloorStop(num_nets=1000).should_stop(0.006, stats)

    def test_validation(self):
        with pytest.raises(ValueError):
            CostFloorStop(num_nets=0)
        with pytest.raises(ValueError):
            CostFloorStop(num_nets=10, coefficient=0.0)


def make_adaptive_annealer(**kw):
    schedule = AdaptiveCooling(t_infinity=100.0, limiter=make_limiter())
    kw.setdefault("attempts_per_cell", 40)
    kw.setdefault("max_temperatures", 120)
    kw.setdefault("seed", 7)
    return Annealer(schedule, FloorStop(0.01), **kw), schedule


class TestEngineIntegration:
    def test_adaptive_run_converges_and_observes(self):
        annealer, schedule = make_adaptive_annealer()
        state = QuadraticState(50.0)
        result = annealer.run(state)
        assert abs(state.x) < 10.0
        # The schedule saw feedback: it left the initial hot plateau.
        assert schedule.r_accept < 1.0
        # Cooling actually followed the observed ratios: consecutive
        # temperatures are related by one of the four band alphas.
        alphas = {alpha for _, alpha in ADAPTIVE_ALPHA_BANDS}
        for prev, cur in zip(result.steps, result.steps[1:]):
            assert any(
                cur.temperature == pytest.approx(prev.temperature * a)
                for a in alphas
            )

    def test_temperature_events_carry_schedule_fields(self):
        sink = MemorySink()
        annealer, _ = make_adaptive_annealer(
            tracer=Tracer(sink), max_temperatures=10
        )
        annealer.run(QuadraticState(50.0))
        events = [
            e for e in sink.events if e.get("name") == "anneal.temperature"
        ]
        assert events
        for event in events:
            assert "alpha" in event
            assert "r_accept" in event
            assert "d_limit_x" in event

    def test_cursor_resume_is_bit_identical(self):
        """Interrupt an adaptive anneal mid-run, round-trip the cursor
        through to_dict/from_dict, resume with a FRESH schedule and
        annealer: the resumed trajectory (costs, temperatures, window)
        must equal the uninterrupted one exactly."""

        def packed(steps):
            return [
                (s.temperature, s.attempts, s.accepts, s.cost_after)
                for s in steps
            ]

        annealer, schedule = make_adaptive_annealer()
        snapshots = []

        def observer(step_index, stats, state, make_cursor):
            snapshots.append((make_cursor(), state.x))

        state = QuadraticState(50.0)
        result = annealer.run(state, observers=[observer])
        final_schedule_state = schedule.state_dict()

        cursor, x_at_cursor = snapshots[len(snapshots) // 2]
        assert cursor.schedule_state  # the adaptive state rides along
        cursor = AnnealCursor.from_dict(cursor.to_dict())

        resumed_annealer, resumed_schedule = make_adaptive_annealer()
        resumed_state = QuadraticState(x0=x_at_cursor)
        resumed = resumed_annealer.run(resumed_state, resume=cursor)

        assert packed(resumed.steps) == packed(result.steps)
        assert resumed.final_cost == result.final_cost
        assert resumed_state.x == state.x
        assert resumed_schedule.state_dict() == final_schedule_state

    def test_table_schedule_cursor_has_empty_schedule_state(self):
        from .test_engine import geometric_schedule

        annealer = Annealer(
            geometric_schedule(), FloorStop(10.0), attempts_per_cell=5, seed=3
        )
        snapshots = []

        def observer(step_index, stats, state, make_cursor):
            snapshots.append(make_cursor())

        annealer.run(QuadraticState(20.0), observers=[observer])
        assert snapshots
        for cursor in snapshots:
            assert cursor.schedule_state == {}
        # Legacy cursor dicts (no schedule_state key) still load.
        payload = snapshots[0].to_dict()
        payload.pop("schedule_state")
        assert AnnealCursor.from_dict(payload).schedule_state == {}


class TestAdaptiveEta:
    """Satellite: schedule-aware ETAs under adaptive cooling."""

    def test_geometric_projection_with_current_alpha(self):
        import math

        schedule = AdaptiveCooling(t_infinity=100.0)
        # Fresh schedule assumes the hot plateau: alpha = 0.5.
        expected = math.ceil(math.log(0.01 / 100.0) / math.log(0.5))
        assert schedule.eta_steps(100.0, 0.01) == expected
        # After observing a mid-range ratio the projection lengthens.
        schedule.observe(stats_with_rate(0.44))
        assert schedule.alpha(100.0) == 0.95
        assert schedule.eta_steps(100.0, 0.01) > expected

    def test_eta_steps_edge_cases(self):
        schedule = AdaptiveCooling(t_infinity=100.0)
        assert schedule.eta_steps(0.005, 0.01) == 0   # already below floor
        assert schedule.eta_steps(100.0, 0.0) is None  # no floor anchor
        assert schedule.eta_steps(100.0, 0.01, cap=3) == 3  # clamped

    def test_cost_floor_stop_estimates_its_own_floor(self):
        stop = CostFloorStop(num_nets=100, coefficient=0.005)
        stats = stats_with_rate(0.4, cost=2000.0)
        assert stop.floor_estimate(stats) == pytest.approx(0.1)
        # The estimate IS the firing threshold.
        assert stop.should_stop(0.0999, stats)
        assert not stop.should_stop(0.11, stats)

    def test_combinator_floor_estimates(self):
        from repro.annealing import AllOf, AnyOf, WindowStop

        floor = FloorStop(2.0)
        cost = CostFloorStop(num_nets=100)
        window = WindowStop(make_limiter())  # no floor of its own
        stats = stats_with_rate(0.4, cost=2000.0)  # cost floor = 0.1
        assert AnyOf(floor, cost).floor_estimate(stats) == pytest.approx(2.0)
        assert AllOf(floor, cost).floor_estimate(stats) == pytest.approx(0.1)
        assert AnyOf(window, cost).floor_estimate(stats) == pytest.approx(0.1)
        assert window.floor_estimate(stats) is None

    def test_adaptive_heartbeat_etas_are_flagged_estimates(self, tmp_path):
        from repro.qor import HeartbeatWriter, use_heartbeat
        from repro.qor.heartbeat import history_path, read_history

        annealer, _ = make_adaptive_annealer(max_temperatures=30)
        writer = HeartbeatWriter(tmp_path / "hb.json", run_id="r1")
        with use_heartbeat(writer):
            annealer.run(QuadraticState(50.0))
        beats = [
            b
            for b in read_history(history_path(tmp_path / "hb.json"))
            if b["phase"] == "anneal"
        ]
        assert beats
        for beat in beats:
            assert "eta_steps" in beat  # always present under adaptive
            if beat["eta_steps"] is not None:
                assert beat["eta_estimated"] is True
                assert beat["eta_steps"] >= 0
        # The FloorStop anchor makes a projection possible here.
        assert any(b["eta_steps"] is not None for b in beats)

    def test_adaptive_without_floor_reports_explicit_null(self, tmp_path):
        """No ETA anchor at all: the beat says eta: null out loud
        instead of omitting the field or inventing a number."""
        from repro.annealing import StoppingCriterion
        from repro.qor import HeartbeatWriter, use_heartbeat
        from repro.qor.heartbeat import history_path, read_history

        class StepBudget(StoppingCriterion):
            def __init__(self, steps):
                self.left = steps

            def should_stop(self, temperature, stats):
                self.left -= 1
                return self.left <= 0

        schedule = AdaptiveCooling(t_infinity=100.0, limiter=make_limiter())
        annealer = Annealer(
            schedule, StepBudget(5), attempts_per_cell=5, seed=7,
            max_temperatures=10,
        )
        writer = HeartbeatWriter(tmp_path / "hb.json", run_id="r1")
        with use_heartbeat(writer):
            annealer.run(QuadraticState(50.0))
        beats = [
            b
            for b in read_history(history_path(tmp_path / "hb.json"))
            if b["phase"] == "anneal"
        ]
        assert beats
        for beat in beats:
            assert beat["eta_steps"] is None
            assert beat["eta_seconds"] is None
            assert "eta_estimated" not in beat

    def test_table_schedule_etas_stay_unflagged(self, tmp_path):
        """The fixed-table path is not an estimate: no eta_estimated
        flag, and no eta keys at all when there is no floor anchor."""
        from repro.qor import HeartbeatWriter, use_heartbeat
        from repro.qor.heartbeat import history_path, read_history

        from .test_engine import geometric_schedule

        annealer = Annealer(
            geometric_schedule(),
            FloorStop(10.0),
            attempts_per_cell=5,
            seed=3,
            eta_floor=10.0,
        )
        writer = HeartbeatWriter(tmp_path / "hb.json", run_id="r1")
        with use_heartbeat(writer):
            annealer.run(QuadraticState(20.0))
        beats = [
            b
            for b in read_history(history_path(tmp_path / "hb.json"))
            if b["phase"] == "anneal"
        ]
        assert beats
        for beat in beats:
            assert "eta_estimated" not in beat
            assert beat.get("eta_steps") is not None  # exact walk
