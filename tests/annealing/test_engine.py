"""The generic annealer: acceptance, stopping criteria, convergence."""

import math
import random

import pytest

from repro.annealing import (
    AllOf,
    AnnealCursor,
    Annealer,
    AnnealingState,
    AnyOf,
    CoolingSchedule,
    FloorStop,
    FrozenStop,
    ProposalState,
    SimpleProposal,
    TemperatureStats,
    WindowStop,
    metropolis_accept,
)
from repro.resilience import Budget


class TestMetropolis:
    def test_downhill_always(self):
        rng = random.Random(0)
        assert all(metropolis_accept(-1.0, 1.0, rng) for _ in range(50))
        assert metropolis_accept(0.0, 1.0, rng)

    def test_zero_temperature_rejects_uphill(self):
        rng = random.Random(0)
        assert not metropolis_accept(1.0, 0.0, rng)

    def test_huge_delta_underflow_safe(self):
        rng = random.Random(0)
        assert not metropolis_accept(1e6, 1.0, rng)

    def test_acceptance_rate_matches_boltzmann(self):
        rng = random.Random(42)
        delta, temperature = 1.0, 2.0
        n = 20000
        hits = sum(metropolis_accept(delta, temperature, rng) for _ in range(n))
        assert hits / n == pytest.approx(math.exp(-0.5), abs=0.02)


class QuadraticState(ProposalState):
    """Toy problem: minimize x**2 over integer steps."""

    def __init__(self, x0=50.0):
        self.x = x0

    def cost(self):
        return self.x * self.x

    def propose(self, temperature, rng):
        step = rng.choice((-1.0, 1.0)) * max(1.0, temperature ** 0.25)
        old = self.x
        self.x += step
        delta = self.cost() - old * old

        def undo():
            self.x = old

        return SimpleProposal(delta, undo)


def geometric_schedule(t0=100.0, alpha=0.9):
    return CoolingSchedule(((0.0, alpha),), scale=1.0, t_infinity=t0)


class TestAnnealer:
    def test_minimizes_toy_problem(self):
        annealer = Annealer(
            geometric_schedule(),
            FloorStop(0.01),
            attempts_per_cell=200,
            max_temperatures=200,
            seed=0,
        )
        state = QuadraticState(50.0)
        result = annealer.run(state)
        assert abs(state.x) < 5.0
        assert result.final_cost == state.cost()

    def test_stats_recorded(self):
        annealer = Annealer(
            geometric_schedule(), FloorStop(10.0), attempts_per_cell=10, seed=1
        )
        result = annealer.run(QuadraticState())
        assert result.num_temperatures >= 2
        assert result.total_attempts == 10 * result.num_temperatures
        assert 0 <= result.initial_acceptance_rate <= 1

    def test_deterministic_given_seed(self):
        def run(seed):
            annealer = Annealer(
                geometric_schedule(), FloorStop(1.0), attempts_per_cell=20, seed=seed
            )
            state = QuadraticState()
            annealer.run(state)
            return state.x

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_max_temperatures_bounds_run(self):
        annealer = Annealer(
            geometric_schedule(alpha=0.999),
            FloorStop(1e-12),
            attempts_per_cell=1,
            max_temperatures=5,
            seed=0,
        )
        result = annealer.run(QuadraticState())
        assert result.num_temperatures == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            Annealer(geometric_schedule(), FloorStop(1.0), attempts_per_cell=0)
        with pytest.raises(ValueError):
            Annealer(geometric_schedule(), FloorStop(1.0), max_temperatures=0)


def make_annealer(**kw):
    kw.setdefault("attempts_per_cell", 20)
    kw.setdefault("max_temperatures", 100)
    kw.setdefault("seed", 13)
    return Annealer(geometric_schedule(), FloorStop(1.0), **kw)


def packed(steps):
    """Per-step tuples minus ``seconds`` (wall clock is never replayed)."""
    return [(s.temperature, s.attempts, s.accepts, s.cost_after) for s in steps]


class TestResume:
    def capture_run(self):
        """One full run, snapshotting (cursor, state.x) after every step."""
        snapshots = []

        def observer(step_index, stats, state, make_cursor):
            snapshots.append((make_cursor(), state.x))

        state = QuadraticState()
        result = make_annealer().run(state, observers=[observer])
        return result, state.x, snapshots

    def test_resume_reproduces_uninterrupted_run(self):
        result, final_x, snapshots = self.capture_run()
        assert len(snapshots) >= 4
        for cursor, x_at_cursor in (snapshots[1], snapshots[len(snapshots) // 2]):
            state = QuadraticState(x0=x_at_cursor)
            resumed = make_annealer().run(state, resume=cursor)
            assert state.x == final_x
            assert resumed.final_cost == result.final_cost
            assert packed(resumed.steps) == packed(result.steps)
            assert resumed.stop_reason == result.stop_reason

    def test_done_cursor_returns_completed_result(self):
        result, final_x, snapshots = self.capture_run()
        cursor, x_at_cursor = snapshots[-1]
        assert cursor.done  # FloorStop fired on the step that made it
        state = QuadraticState(x0=x_at_cursor)
        resumed = make_annealer().run(state, resume=cursor)
        # No extra quench step: the state is returned untouched.
        assert state.x == x_at_cursor == final_x
        assert resumed.stop_reason == "stopping"
        assert packed(resumed.steps) == packed(result.steps)

    def test_mid_run_cursors_are_not_done(self):
        _, _, snapshots = self.capture_run()
        assert not any(cursor.done for cursor, _ in snapshots[:-1])

    def test_cursor_dict_roundtrip(self):
        _, _, snapshots = self.capture_run()
        cursor, _ = snapshots[2]
        clone = AnnealCursor.from_dict(cursor.to_dict())
        assert clone.step_index == cursor.step_index
        assert clone.temperature == cursor.temperature
        assert clone.rng_state == cursor.rng_state
        assert clone.steps == [tuple(s) for s in cursor.steps]
        assert clone.done == cursor.done

    def test_cursor_from_dict_defaults_done_false(self):
        # Pre-`done` checkpoints must still load.
        _, _, snapshots = self.capture_run()
        data = snapshots[0][0].to_dict()
        del data["done"]
        assert AnnealCursor.from_dict(data).done is False


class TestBudgetedRun:
    def test_temperature_budget_truncates(self):
        result = make_annealer().run(
            QuadraticState(), budget=Budget(temperatures=3)
        )
        assert result.truncated
        assert result.stop_reason == "budget:temperatures"
        assert result.num_temperatures == 3

    def test_move_budget_truncates_mid_inner_loop(self):
        result = make_annealer(attempts_per_cell=1000).run(
            QuadraticState(), budget=Budget(moves=100)
        )
        assert result.truncated
        assert result.stop_reason == "budget:moves"
        # The strided check ends the loop within one stride of the limit.
        assert result.total_attempts <= 100 + 32

    def test_budgeted_run_same_moves_as_unbudgeted(self):
        plain = QuadraticState()
        make_annealer().run(plain)
        budgeted = QuadraticState()
        make_annealer().run(budgeted, budget=Budget(moves=10**9))
        assert budgeted.x == plain.x

    def test_unexhausted_budget_not_truncated(self):
        result = make_annealer().run(QuadraticState(), budget=Budget(moves=10**9))
        assert not result.truncated
        assert result.stop_reason == "stopping"


def stats(cost=0.0, t=1.0):
    s = TemperatureStats(temperature=t)
    s.cost_after = cost
    return s


class TestStoppingCriteria:
    def test_floor(self):
        stop = FloorStop(5.0)
        assert not stop.should_stop(10.0, stats())
        assert stop.should_stop(5.0, stats())

    def test_floor_validation(self):
        with pytest.raises(ValueError):
            FloorStop(0)

    def test_frozen_requires_streak(self):
        stop = FrozenStop(patience=2)
        stop.reset()
        assert not stop.should_stop(1.0, stats(cost=10))
        assert not stop.should_stop(1.0, stats(cost=10))  # streak = 1
        assert stop.should_stop(1.0, stats(cost=10))  # streak = 2

    def test_frozen_resets_on_change(self):
        stop = FrozenStop(patience=2)
        stop.reset()
        stop.should_stop(1.0, stats(cost=10))
        stop.should_stop(1.0, stats(cost=10))
        assert not stop.should_stop(1.0, stats(cost=9))
        assert not stop.should_stop(1.0, stats(cost=9))

    def test_frozen_reset_clears_history(self):
        stop = FrozenStop(patience=1)
        stop.reset()
        stop.should_stop(1.0, stats(cost=5))
        stop.reset()
        assert not stop.should_stop(1.0, stats(cost=5))

    def test_frozen_validation(self):
        with pytest.raises(ValueError):
            FrozenStop(patience=0)

    def test_any_of(self):
        stop = AnyOf(FloorStop(5.0), FloorStop(50.0))
        assert stop.should_stop(20.0, stats())
        assert not stop.should_stop(100.0, stats())

    def test_all_of(self):
        stop = AllOf(FloorStop(5.0), FloorStop(50.0))
        assert not stop.should_stop(20.0, stats())
        assert stop.should_stop(4.0, stats())

    def test_combinators_need_members(self):
        with pytest.raises(ValueError):
            AnyOf()
        with pytest.raises(ValueError):
            AllOf()

    def test_window_stop(self):
        from repro.annealing import RangeLimiter

        lim = RangeLimiter(1000.0, 1000.0, 1e5, rho=4.0)
        stop = WindowStop(lim)
        assert not stop.should_stop(1e5, stats())
        assert stop.should_stop(1e-9, stats())
