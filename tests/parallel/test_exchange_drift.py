"""Cost-accumulator integrity across chain exchange (C1/C2/C3).

An exchange ships a ``state_dict`` between chains, loads it into a
*different* ``PlacementState``, perturbs a cell subset, and resyncs.
Every step must leave the incremental accumulators reconciled with
``cost_breakdown_fresh()`` — otherwise the receiving chain's acceptance
decisions (and every checkpoint after it) would be silently corrupted.
"""

import random
from dataclasses import replace

import pytest

from repro import ParallelConfig, TimberWolfConfig
from repro.parallel.multichain import ChainContext, run_multichain_stage1

from ..conftest import make_macro_circuit


def small_config(**kwargs):
    parallel = ParallelConfig(
        workers=kwargs.pop("workers", 1),
        chains=kwargs.pop("chains", 3),
        exchange_period=kwargs.pop("exchange_period", 4),
    )
    return replace(
        TimberWolfConfig.smoke(seed=3),
        max_temperatures=12,
        parallel=parallel,
        **kwargs,
    )


@pytest.fixture(scope="module")
def circuit():
    return make_macro_circuit(num_cells=5)


def annealed_chains(circuit, config, upto=4):
    chains = [ChainContext(circuit, config, cid) for cid in (0, 1)]
    for chain in chains:
        chain.run_segment(upto)
    return chains


class TestStateTransfer:
    def test_load_peer_state_reconciles(self, circuit):
        """Loading another chain's state_dict rebuilds canonical
        accumulators: drift against the fresh recomputation is zero."""
        config = small_config()
        donor, receiver = annealed_chains(circuit, config)
        receiver.state.load_state_dict(donor.state.state_dict())
        drift = receiver.state.cost_drift()
        assert drift["max_relative"] == pytest.approx(0.0, abs=1e-9)
        c1, c2, c3 = receiver.state.cost_breakdown_fresh()
        assert receiver.state.c1() == pytest.approx(c1)
        assert receiver.state.c2_raw() == pytest.approx(c2)

    def test_exchange_perturbation_reconciles(self, circuit):
        config = small_config()
        donor, receiver = annealed_chains(circuit, config)
        shipped = receiver.exchange(donor.state.state_dict(), round_index=0)
        drift = receiver.state.cost_drift()
        assert drift["max_relative"] == pytest.approx(0.0, abs=1e-9)
        # The shipped dict is the post-perturbation state, reloadable.
        twin = ChainContext(circuit, config, 1)
        twin.state.load_state_dict(shipped)
        assert twin.state.cost() == pytest.approx(receiver.state.cost())

    def test_exchange_actually_moves_cells(self, circuit):
        config = small_config()
        donor, receiver = annealed_chains(circuit, config)
        best = donor.state.state_dict()
        shipped = receiver.exchange(best, round_index=0)
        assert shipped != best

    def test_exchange_is_deterministic_per_round(self, circuit):
        config = small_config()
        donor, receiver = annealed_chains(circuit, config)
        best = donor.state.state_dict()
        first = receiver.exchange(best, round_index=0)
        receiver2 = annealed_chains(circuit, config)[1]
        again = receiver2.exchange(best, round_index=0)
        other_round = annealed_chains(circuit, config)[1].exchange(
            best, round_index=1
        )
        assert first == again
        assert first != other_round


class TestDriftGuardUnderExchange:
    def test_guard_never_fires_spuriously(self, circuit):
        """A full multi-chain run with the strictest drift action must
        complete: exchange resyncs, so the guard sees zero drift."""
        config = small_config(
            drift_check_every=2, drift_action="raise", drift_tolerance=1e-9
        )
        result = run_multichain_stage1(circuit, config)
        assert result.anneal.final_cost == pytest.approx(result.state.cost())

    def test_guard_runs_inside_chain_segments(self, circuit):
        config = small_config(drift_check_every=1, drift_action="raise")
        chain = ChainContext(circuit, config, 1)
        chain.run_segment(4)  # would raise DriftError on any drift
        drift = chain.state.cost_drift()
        assert drift["max_relative"] < config.drift_tolerance

    def test_corrupted_accumulator_is_detected(self, circuit):
        """Sanity: the reconciliation the exchange relies on is not a
        tautology — a corrupted accumulator does show up."""
        config = small_config()
        chain = ChainContext(circuit, config, 0)
        chain.run_segment(4)
        chain.state._c1 += 100.0
        assert chain.state.cost_drift()["max_relative"] > 1e-3
        chain.state.resync()
        assert chain.state.cost_drift()["max_relative"] == pytest.approx(
            0.0, abs=1e-9
        )
