"""Deterministic per-chain seed derivation (``repro.parallel.seeds``)."""

import random

import pytest

from repro.parallel.seeds import spawn_seed


class TestIdentity:
    def test_chain_zero_is_identity(self):
        for seed in (0, 1, 7, 123456789, 2**63):
            assert spawn_seed(seed, 0) == seed
            assert spawn_seed(seed, 0, stream=0) == seed

    def test_chain_zero_reproduces_flow_stream(self):
        """The flow seeds its RNG with ``spawn_seed(seed, 0)`` — the
        historical ``random.Random(config.seed)`` stream must survive."""
        for seed in (0, 3, 41):
            legacy = random.Random(seed)
            derived = random.Random(spawn_seed(seed, 0))
            assert [legacy.random() for _ in range(50)] == [
                derived.random() for _ in range(50)
            ]

    def test_chain_zero_auxiliary_streams_differ(self):
        assert spawn_seed(5, 0, stream=1) != 5
        assert spawn_seed(5, 0, stream=1) != spawn_seed(5, 0, stream=2)


class TestDerivation:
    def test_distinct_across_chains_and_streams(self):
        seen = {
            spawn_seed(5, chain, stream)
            for chain in range(16)
            for stream in range(8)
        }
        assert len(seen) == 16 * 8

    def test_distinct_across_seeds(self):
        assert spawn_seed(1, 3) != spawn_seed(2, 3)

    def test_golden_values_stable(self):
        """Pinned outputs: changing the derivation silently would
        invalidate every multi-chain reproduction."""
        assert spawn_seed(0, 1) == 7497759270696108775
        assert spawn_seed(0, 2) == 12017080299798409423
        assert spawn_seed(7, 3, stream=2) == 3798371716201810588
        assert spawn_seed(123456789, 1) == 1935392633510665129

    def test_negative_arguments_rejected(self):
        with pytest.raises(ValueError):
            spawn_seed(0, -1)
        with pytest.raises(ValueError):
            spawn_seed(0, 0, stream=-1)


class TestDecorrelation:
    def test_streams_share_no_values(self):
        """Sibling chains must not see correlated move randomness: their
        float streams should have no positional collisions at all."""
        a = random.Random(spawn_seed(0, 1))
        b = random.Random(spawn_seed(0, 2))
        xs = [a.random() for _ in range(500)]
        ys = [b.random() for _ in range(500)]
        assert xs != ys
        assert sum(x == y for x, y in zip(xs, ys)) == 0

    def test_stream_decorrelated_from_parent(self):
        parent = random.Random(3)
        child = random.Random(spawn_seed(3, 1))
        xs = [parent.random() for _ in range(500)]
        ys = [child.random() for _ in range(500)]
        assert sum(x == y for x, y in zip(xs, ys)) == 0
