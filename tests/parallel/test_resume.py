"""Checkpoint/resume of the multi-chain stage (phase ``parallel1``).

The coordinator snapshots every chain at each round boundary, after the
exchange has been applied.  Resuming from any such checkpoint must
replay the remaining rounds bit-for-bit — the same final placement as
the uninterrupted run, regardless of worker count on either side.
"""

from dataclasses import replace
from pathlib import Path

import pytest

from repro import (
    CheckpointPolicy,
    ParallelConfig,
    TimberWolfConfig,
    place_and_route,
    resume_place_and_route,
)
from repro.netlist import dumps
from repro.resilience.checkpoint import read_checkpoint

from ..conftest import make_macro_circuit


def small_config(workers=1, chains=2, exchange_period=4):
    return replace(
        TimberWolfConfig.smoke(seed=3),
        max_temperatures=12,
        refinement_passes=1,
        parallel=ParallelConfig(
            workers=workers, chains=chains, exchange_period=exchange_period
        ),
    )


@pytest.fixture(scope="module")
def circuit():
    return make_macro_circuit(num_cells=5)


class TestParallel1Resume:
    def full_and_checkpoints(self, circuit, tmp_path, workers=1):
        full = place_and_route(
            circuit,
            small_config(workers=workers),
            checkpoint=CheckpointPolicy(directory=tmp_path),
        )
        ckpts = sorted(tmp_path.glob("ckpt-parallel-r*.ckpt"))
        assert ckpts, "no round-boundary checkpoints were written"
        return full, ckpts

    def test_resume_reproduces_the_full_run(self, circuit, tmp_path):
        full, ckpts = self.full_and_checkpoints(circuit, tmp_path)
        resumed = resume_place_and_route(str(ckpts[0]))
        assert resumed.placement() == full.placement()
        assert resumed.teil == full.teil
        assert resumed.resumed_from == str(ckpts[0])

    def test_resume_with_different_worker_count(self, circuit, tmp_path):
        """A checkpoint from a 2-worker run resumed serially (the
        resume CLI default) still lands on the same placement."""
        full, ckpts = self.full_and_checkpoints(circuit, tmp_path, workers=2)
        resumed = resume_place_and_route(str(ckpts[0]))
        assert resumed.placement() == full.placement()

    def test_checkpoint_payload_shape(self, circuit, tmp_path):
        _, ckpts = self.full_and_checkpoints(circuit, tmp_path)
        _, payload = read_checkpoint(ckpts[0])
        assert payload["phase"] == "parallel1"
        assert payload["config"]["parallel"]["chains"] == 2
        assert payload["circuit_text"] == dumps(circuit)
        assert {"round", "upto", "chains"} <= set(payload)
        assert sorted(payload["chains"]) == [0, 1]
        for entry in payload["chains"].values():
            assert {"cursor", "state", "done", "stop_reason", "cost"} <= set(
                entry
            )
