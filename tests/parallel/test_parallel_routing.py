"""Per-net routing fan-out: pooled results must equal serial routing."""

import multiprocessing as mp
import signal

import pytest

from repro import MemorySink, Tracer, use_tracer
from repro.parallel.routing import _init_worker
from repro.routing import GlobalRouter

from ..routing.test_router import routed_setup


def route(workers, seed=0, m=6):
    circuit, graph = routed_setup()
    router = GlobalRouter(graph, m_routes=m, seed=seed, workers=workers)
    return router.route(circuit)


class TestPoolIdentity:
    def test_pooled_result_equals_serial(self):
        serial = route(workers=1)
        pooled = route(workers=2)
        assert pooled.routes == serial.routes
        assert pooled.lengths == serial.lengths
        assert pooled.total_length == serial.total_length
        assert pooled.overflow == serial.overflow
        assert pooled.unrouted == serial.unrouted
        assert pooled.interchange.selection == serial.interchange.selection

    def test_pooled_alternatives_equal_serial(self):
        serial = route(workers=1)
        pooled = route(workers=3)
        assert set(pooled.alternatives) == set(serial.alternatives)
        for net in serial.alternatives:
            assert [a.length for a in pooled.alternatives[net]] == [
                a.length for a in serial.alternatives[net]
            ]
            assert [a.edges for a in pooled.alternatives[net]] == [
                a.edges for a in serial.alternatives[net]
            ]

    def test_worker_count_does_not_matter(self):
        results = [route(workers=w) for w in (2, 3, 4)]
        assert all(r.routes == results[0].routes for r in results)
        assert all(r.total_length == results[0].total_length for r in results)


class TestEvents:
    def trace(self, workers):
        sink = MemorySink()
        circuit, graph = routed_setup()
        with use_tracer(Tracer(sink)):
            GlobalRouter(graph, m_routes=6, seed=0, workers=workers).route(circuit)
        return sink.events

    def test_per_net_events_match_serial_order(self):
        serial = [
            (e["name"], e.get("net"))
            for e in self.trace(1)
            if e.get("name", "").startswith("router.")
        ]
        pooled = [
            (e["name"], e.get("net"))
            for e in self.trace(2)
            if e.get("name", "").startswith("router.")
        ]
        assert pooled == serial


class TestValidation:
    def test_workers_must_be_positive(self):
        _, graph = routed_setup()
        with pytest.raises(ValueError):
            GlobalRouter(graph, workers=0)


def _probe_signals(_):
    return (
        signal.getsignal(signal.SIGTERM) is signal.SIG_DFL,
        signal.getsignal(signal.SIGINT) is signal.SIG_IGN,
    )


class TestWorkerSignalHygiene:
    def test_forked_workers_drop_inherited_handlers(self):
        """Workers forked under the flow's SIGINT/SIGTERM trap must not
        inherit it: a worker whose SIGTERM handler only sets the
        coordinator's flag survives ``Pool.terminate()`` and deadlocks
        the parent's unbounded join at pool teardown."""
        if "fork" not in mp.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        handler = lambda signum, frame: None  # noqa: E731
        old_term = signal.signal(signal.SIGTERM, handler)
        old_int = signal.signal(signal.SIGINT, handler)
        try:
            ctx = mp.get_context("fork")
            with ctx.Pool(
                processes=1, initializer=_init_worker, initargs=(None, [])
            ) as pool:
                term_default, int_ignored = pool.apply(_probe_signals, (None,))
        finally:
            signal.signal(signal.SIGTERM, old_term)
            signal.signal(signal.SIGINT, old_int)
        assert term_default, "worker kept the inherited SIGTERM handler"
        assert int_ignored, "worker should ignore SIGINT"
