"""Multi-chain stage-1: determinism, fallback equivalence, exchange."""

import random
from dataclasses import replace

import pytest

from repro import MemorySink, ParallelConfig, TimberWolfConfig, Tracer, use_tracer
from repro.parallel.multichain import run_multichain_stage1
from repro.placement.stage1 import run_stage1

from ..conftest import make_macro_circuit


def step_keys(steps):
    """TemperatureStats minus the wall-clock ``seconds`` field — the
    deterministic part of the per-step history."""
    return [(s.temperature, s.attempts, s.accepts, s.cost_after) for s in steps]


def small_config(chains=3, workers=1, exchange_period=4, seed=3):
    return replace(
        TimberWolfConfig.smoke(seed=seed),
        max_temperatures=12,
        parallel=ParallelConfig(
            workers=workers, chains=chains, exchange_period=exchange_period
        ),
    )


@pytest.fixture(scope="module")
def circuit():
    return make_macro_circuit(num_cells=5)


class TestWorkerInvariance:
    def test_result_is_independent_of_worker_count(self, circuit):
        """The acceptance property: fixed (seed, chains, exchange_period)
        gives a bit-identical placement for workers in {1, 2, 3}."""
        reference = None
        for workers in (1, 2, 3):
            result = run_multichain_stage1(
                circuit, small_config(chains=3, workers=workers)
            )
            snapshot = (
                result.state.state_dict(),
                result.anneal.final_cost,
                step_keys(result.anneal.steps),
                result.p2,
            )
            if reference is None:
                reference = snapshot
            else:
                assert snapshot == reference, f"workers={workers} diverged"

    def test_extra_workers_are_clamped_to_chains(self, circuit):
        a = run_multichain_stage1(circuit, small_config(chains=2, workers=2))
        b = run_multichain_stage1(circuit, small_config(chains=2, workers=8))
        assert a.state.state_dict() == b.state.state_dict()


class TestSerialFallback:
    def test_single_chain_matches_run_stage1(self, circuit):
        """chains=1 must be byte-identical to the classic serial stage 1
        — segmenting the anneal into exchange-period slices is free."""
        config = small_config(chains=1)
        serial = run_stage1(circuit, config, rng=random.Random(config.seed))
        multi = run_multichain_stage1(circuit, config)
        assert serial.state.state_dict() == multi.state.state_dict()
        assert serial.anneal.final_cost == multi.anneal.final_cost
        assert step_keys(serial.anneal.steps) == step_keys(multi.anneal.steps)
        assert serial.anneal.stop_reason == multi.anneal.stop_reason
        assert serial.p2 == multi.p2

    def test_single_chain_never_exchanges(self, circuit):
        sink = MemorySink()
        with use_tracer(Tracer(sink)):
            run_multichain_stage1(circuit, small_config(chains=1))
        names = [e.get("name") for e in sink.events]
        assert "parallel.exchange" not in names
        assert "parallel.winner" in names


class TestExchange:
    def test_exchange_period_changes_the_result(self, circuit):
        """The exchange is real: a different period yields a different
        trajectory (it is part of the determinism key)."""
        a = run_multichain_stage1(circuit, small_config(exchange_period=3))
        b = run_multichain_stage1(circuit, small_config(exchange_period=6))
        assert a.state.state_dict() != b.state.state_dict()

    def test_winner_has_minimum_cost(self, circuit):
        sink = MemorySink()
        with use_tracer(Tracer(sink)):
            result = run_multichain_stage1(circuit, small_config())
        rounds = [e for e in sink.events if e.get("name") == "parallel.round"]
        winner = next(e for e in sink.events if e.get("name") == "parallel.winner")
        assert rounds
        final_costs = rounds[-1]["costs"]
        assert winner["cost"] == pytest.approx(min(final_costs.values()))
        assert result.anneal.final_cost == pytest.approx(winner["cost"])

    def test_exchange_events_name_best_and_losers(self, circuit):
        sink = MemorySink()
        with use_tracer(Tracer(sink)):
            run_multichain_stage1(circuit, small_config(chains=3))
        exchanges = [
            e for e in sink.events if e.get("name") == "parallel.exchange"
        ]
        assert exchanges
        for ev in exchanges:
            assert ev["source"] not in ev["targets"]
            # K=3 restarts at most floor(K/2)=1 loser per round.
            assert 1 <= len(ev["targets"]) <= 1


class TestTraceMerge:
    def test_chain_tags_cover_all_chains(self, circuit):
        sink = MemorySink()
        with use_tracer(Tracer(sink)):
            run_multichain_stage1(circuit, small_config(chains=2, workers=2))
        temp_chains = {
            e["chain"]
            for e in sink.events
            if e.get("name") == "anneal.temperature"
        }
        assert temp_chains == {0, 1}

    def test_ingested_events_keep_origin_timestamps(self, circuit):
        sink = MemorySink()
        with use_tracer(Tracer(sink)):
            run_multichain_stage1(circuit, small_config(chains=2))
        ingested = [e for e in sink.events if "t_origin" in e]
        assert ingested
        assert all("chain" in e for e in ingested)
