"""JSON export of flow results."""

import json

import pytest

from repro import TimberWolfConfig, place_and_route
from repro.flow.export import export_json, result_to_dict

from ..conftest import make_macro_circuit, make_mixed_circuit

SMOKE = TimberWolfConfig.smoke(seed=9)


@pytest.fixture(scope="module")
def result():
    return place_and_route(make_mixed_circuit(), SMOKE)


class TestResultToDict:
    def test_json_serializable(self, result):
        data = result_to_dict(result)
        text = json.dumps(data)  # must not raise
        assert len(text) > 100

    def test_cells_complete(self, result):
        data = result_to_dict(result)
        names = {c["name"] for c in data["cells"]}
        assert names == set(result.circuit.cells)
        for cell in data["cells"]:
            assert len(cell["center"]) == 2
            assert cell["tiles"]
            assert cell["pins"]

    def test_kinds_and_attributes(self, result):
        data = result_to_dict(result)
        by_name = {c["name"]: c for c in data["cells"]}
        assert by_name["cust0"]["kind"] == "custom"
        assert "aspect_ratio" in by_name["cust0"]
        assert by_name["m0"]["kind"] == "macro"
        assert "instance" in by_name["m0"]

    def test_metrics_match_result(self, result):
        data = result_to_dict(result)
        assert data["metrics"]["teil"] == pytest.approx(result.teil)
        assert data["metrics"]["chip_area"] == pytest.approx(result.chip_area)

    def test_channels_and_routes_present(self, result):
        data = result_to_dict(result)
        assert data["channels"]
        for channel in data["channels"]:
            assert channel["required_width"] >= 2 * result.circuit.track_spacing
            assert len(channel["rect"]) == 4
        assert data["routes"]
        for net, segments in data["routes"].items():
            for seg in segments:
                assert len(seg["from"]) == 2 and len(seg["to"]) == 2

    def test_nets_reference_cells(self, result):
        data = result_to_dict(result)
        cell_names = {c["name"] for c in data["cells"]}
        for net in data["nets"]:
            for cell, pin in net["pins"]:
                assert cell in cell_names

    def test_without_refinement(self):
        from dataclasses import replace

        cfg = replace(SMOKE, refinement_passes=0)
        res = place_and_route(make_macro_circuit(), cfg)
        data = result_to_dict(res)
        assert "channels" not in data
        assert "routes" not in data


class TestExportJson:
    def test_roundtrip_file(self, result, tmp_path):
        path = tmp_path / "out.json"
        export_json(result, path)
        data = json.loads(path.read_text())
        assert data["circuit"] == result.circuit.name
