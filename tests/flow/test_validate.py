"""Detailed-routability validation of finished flows."""

import pytest

from repro import TimberWolfConfig, place_and_route
from repro.flow import RoutabilityReport, validate_result
from repro.flow.validate import ChannelCheck

from ..conftest import make_macro_circuit

SMOKE = TimberWolfConfig.smoke(seed=6)


@pytest.fixture(scope="module")
def report():
    result = place_and_route(make_macro_circuit(), SMOKE)
    return validate_result(result)


class TestChannelCheck:
    def test_fits(self):
        check = ChannelCheck(0, ("a", "b"), tracks_needed=3, tracks_available=5, nets=3)
        assert check.fits and check.shortfall == 0

    def test_shortfall(self):
        check = ChannelCheck(0, ("a", "b"), tracks_needed=7, tracks_available=5, nets=6)
        assert not check.fits and check.shortfall == 2

    def test_cyclic_counts_as_unfit(self):
        check = ChannelCheck(0, ("a", "b"), tracks_needed=None, tracks_available=5, nets=4)
        assert not check.fits and check.shortfall == 0


class TestRoutabilityReport:
    def test_aggregate_properties(self):
        report = RoutabilityReport(
            checks=[
                ChannelCheck(0, ("a", "b"), 2, 4, 2),
                ChannelCheck(1, ("b", "c"), 6, 4, 5),
                ChannelCheck(2, ("c", "d"), 0, 4, 0),  # unrouted channel
            ]
        )
        assert report.num_channels == 3
        assert report.num_routed_channels == 2
        assert report.num_fitting == 2  # the unrouted one trivially fits
        assert report.fit_fraction == pytest.approx(0.5)
        assert report.worst_shortfall == 2

    def test_empty_report_fits(self):
        assert RoutabilityReport().fit_fraction == 1.0
        assert RoutabilityReport().worst_shortfall == 0

    def test_summary_text(self):
        report = RoutabilityReport(checks=[ChannelCheck(0, ("a", "b"), 1, 2, 1)])
        assert "fit" in report.summary()


class TestValidateResult:
    def test_produces_checks(self, report):
        assert report.num_channels > 0
        assert all(c.tracks_available >= 0 for c in report.checks)

    def test_most_channels_fit(self, report):
        # The paper's claim, at smoke effort: the clear majority of
        # channels fit the width the flow reserved for them.
        assert report.fit_fraction >= 0.6

    def test_requires_refinement(self):
        from dataclasses import replace

        cfg = replace(SMOKE, refinement_passes=0)
        result = place_and_route(make_macro_circuit(), cfg)
        with pytest.raises(ValueError):
            validate_result(result)

    def test_deterministic(self):
        result = place_and_route(make_macro_circuit(), SMOKE)
        a = validate_result(result, seed=1)
        b = validate_result(result, seed=1)
        assert a.summary() == b.summary()
