"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main
from repro.netlist import dump

from ..conftest import make_macro_circuit


@pytest.fixture()
def circuit_file(tmp_path):
    path = tmp_path / "c.twmc"
    # The default 6-cell fixture gives every net at least two pins.
    dump(make_macro_circuit(seed=3), path)
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_place_defaults(self):
        args = build_parser().parse_args(["place", "x.twmc"])
        assert args.preset == "fast"
        assert args.seed == 0
        assert not args.report


class TestSuiteCommand:
    def test_lists_circuits(self, capsys):
        assert main(["suite"]) == 0
        out = capsys.readouterr().out
        for name in ("i1", "l1", "d3"):
            assert name in out


class TestStatsCommand:
    def test_clean_circuit(self, circuit_file, capsys):
        assert main(["stats", circuit_file]) == 0
        out = capsys.readouterr().out
        assert "netlist clean" in out
        assert "macro cells" in out


class TestGenerateCommand:
    def test_writes_suite_circuit(self, tmp_path, capsys):
        out_path = tmp_path / "i3.twmc"
        assert main(["generate", "i3", str(out_path)]) == 0
        from repro.netlist import load

        circuit = load(out_path)
        assert circuit.num_cells == 18

    def test_unknown_name(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "bogus", str(tmp_path / "x.twmc")])


class TestPlaceCommand:
    def test_place_smoke(self, circuit_file, capsys, tmp_path):
        svg_path = tmp_path / "out.svg"
        code = main(
            [
                "place",
                circuit_file,
                "--preset",
                "smoke",
                "--seed",
                "2",
                "--svg",
                str(svg_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "TEIL" in out
        assert svg_path.read_text().startswith("<svg")

    def test_place_report(self, circuit_file, capsys):
        assert main(["place", circuit_file, "--preset", "smoke", "--report"]) == 0
        out = capsys.readouterr().out
        assert "annealing trace" in out

    def test_bad_preset(self, circuit_file):
        with pytest.raises(SystemExit):
            main(["place", circuit_file, "--preset", "warp"])

    def test_place_json(self, circuit_file, capsys, tmp_path):
        import json

        json_path = tmp_path / "out.json"
        code = main(
            ["place", circuit_file, "--preset", "smoke", "--json", str(json_path)]
        )
        assert code == 0
        data = json.loads(json_path.read_text())
        assert data["cells"]
        assert "metrics" in data
