"""The top-level flow and configuration."""

import pytest

from repro import TimberWolfConfig, place_and_route
from repro.config import SELECTOR_DR, SELECTOR_DS

from ..conftest import make_macro_circuit, make_mixed_circuit

SMOKE = TimberWolfConfig.smoke()


class TestConfig:
    def test_defaults_match_paper(self):
        cfg = TimberWolfConfig()
        assert cfg.r_ratio == 10.0
        assert cfg.rho == 4.0
        assert cfg.eta == 0.5
        assert cfg.kappa == 5.0
        assert cfg.mu == 0.03
        assert cfg.m_routes == 20
        assert cfg.refinement_passes == 3

    def test_displacement_probability(self):
        cfg = TimberWolfConfig(r_ratio=10.0)
        # p = r / (1 + r).
        assert cfg.displacement_probability == pytest.approx(10 / 11)

    def test_presets_ordering(self):
        smoke, fast, paper = (
            TimberWolfConfig.smoke(),
            TimberWolfConfig.fast(),
            TimberWolfConfig.paper(),
        )
        assert smoke.attempts_per_cell < fast.attempts_per_cell
        assert fast.attempts_per_cell < paper.attempts_per_cell
        assert paper.attempts_per_cell == 400

    def test_with_seed(self):
        cfg = TimberWolfConfig.fast(seed=1).with_seed(9)
        assert cfg.seed == 9
        assert cfg.attempts_per_cell == TimberWolfConfig.fast().attempts_per_cell

    def test_stage2_attempts_default(self):
        cfg = TimberWolfConfig(attempts_per_cell=33)
        assert cfg.stage2_attempts_per_cell == 33
        cfg2 = TimberWolfConfig(attempts_per_cell=33, refine_attempts_per_cell=7)
        assert cfg2.stage2_attempts_per_cell == 7

    @pytest.mark.parametrize(
        "kw",
        [
            {"attempts_per_cell": 0},
            {"r_ratio": 0},
            {"rho": 0.5},
            {"eta": 0},
            {"mu": 0},
            {"selector": "bogus"},
            {"m_routes": 0},
            {"refinement_passes": -1},
        ],
    )
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            TimberWolfConfig(**kw)

    def test_selector_constants(self):
        assert TimberWolfConfig(selector=SELECTOR_DS).selector == "ds"
        assert TimberWolfConfig(selector=SELECTOR_DR).selector == "dr"


class TestPlaceAndRoute:
    def test_full_flow(self):
        result = place_and_route(make_macro_circuit(), SMOKE)
        assert result.teil > 0
        assert result.chip_area > 0
        assert result.refinement is not None
        assert len(result.refinement.passes) == SMOKE.refinement_passes
        assert result.elapsed_seconds > 0

    def test_no_refinement(self):
        from dataclasses import replace

        cfg = replace(SMOKE, refinement_passes=0)
        result = place_and_route(make_macro_circuit(), cfg)
        assert result.refinement is None
        assert result.routed_overflow == 0

    def test_table3_metrics_defined(self):
        result = place_and_route(make_macro_circuit(), SMOKE)
        # Percent changes are finite and the stage-1 reference is stored.
        assert result.stage1_teil > 0
        assert result.stage1_chip_area > 0
        assert -100 < result.teil_change_pct < 100
        assert abs(result.area_change_pct) < 200

    def test_placement_mapping(self):
        ckt = make_macro_circuit()
        result = place_and_route(ckt, SMOKE)
        placement = result.placement()
        assert set(placement) == set(ckt.cells)

    def test_chip_dimensions(self):
        result = place_and_route(make_macro_circuit(), SMOKE)
        w, h = result.chip_dimensions
        assert w * h == pytest.approx(result.chip_area)

    def test_summary_readable(self):
        result = place_and_route(make_macro_circuit(), SMOKE)
        text = result.summary()
        assert "TEIL" in text
        assert "area" in text
        assert "overflow" in text

    def test_deterministic(self):
        a = place_and_route(make_macro_circuit(), SMOKE.with_seed(2))
        b = place_and_route(make_macro_circuit(), SMOKE.with_seed(2))
        assert a.teil == b.teil
        assert a.chip_area == b.chip_area

    def test_mixed_circuit(self):
        result = place_and_route(make_mixed_circuit(), SMOKE)
        assert result.teil > 0


class TestStage2Displacement:
    def test_displacement_nonnegative_and_bounded(self):
        result = place_and_route(make_macro_circuit(), SMOKE)
        d = result.mean_stage2_displacement
        assert d >= 0.0
        # Cells cannot plausibly move more than a few core-sides.
        assert d < 5.0

    def test_zero_without_refinement(self):
        from dataclasses import replace

        cfg = replace(SMOKE, refinement_passes=0)
        result = place_and_route(make_macro_circuit(), cfg)
        assert result.mean_stage2_displacement == 0.0

    def test_stage1_placement_recorded(self):
        result = place_and_route(make_macro_circuit(), SMOKE)
        assert set(result.stage1_placement) == set(result.circuit.cells)
