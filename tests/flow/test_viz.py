"""SVG rendering."""

import random

import pytest

from repro.estimator import determine_core
from repro.geometry import Rect
from repro.placement import PlacementState, remove_overlaps
from repro.viz import SvgCanvas, render_placement, write_placement_svg

from ..conftest import make_macro_circuit, make_mixed_circuit


@pytest.fixture()
def placed_state():
    ckt = make_macro_circuit()
    state = PlacementState(ckt, determine_core(ckt))
    state.randomize(random.Random(0))
    remove_overlaps(state)
    return state


class TestSvgCanvas:
    def test_empty(self):
        assert SvgCanvas().to_svg().startswith("<svg")

    def test_rect_flips_y(self):
        canvas = SvgCanvas()
        canvas.add_rect(Rect(0, 0, 10, 20), "#fff")
        svg = canvas.to_svg()
        assert 'y="-20.00"' in svg
        assert 'height="20.00"' in svg

    def test_title_escaped(self):
        canvas = SvgCanvas()
        canvas.add_rect(Rect(0, 0, 1, 1), "#fff", title="a<b&c")
        svg = canvas.to_svg()
        assert "a&lt;b&amp;c" in svg

    def test_line_and_dot_and_label(self):
        canvas = SvgCanvas()
        canvas.add_line((0, 0), (5, 5))
        canvas.add_dot((1, 1))
        canvas.add_label((2, 2), "x")
        svg = canvas.to_svg()
        assert "<line" in svg and "<circle" in svg and "<text" in svg

    def test_viewbox_covers_elements(self):
        canvas = SvgCanvas(padding=0)
        canvas.add_rect(Rect(-5, -5, 5, 5), "#fff")
        svg = canvas.to_svg()
        assert 'viewBox="-5.00 -5.00 10.00 10.00"' in svg


class TestRenderPlacement:
    def test_valid_svg_with_all_parts(self, placed_state):
        svg = render_placement(placed_state)
        assert svg.startswith("<svg")
        assert svg.count("<rect") >= len(placed_state.names)
        assert svg.count("<circle") == placed_state.circuit.num_pins
        assert svg.count("<text") == len(placed_state.names)

    def test_margins_optional(self, placed_state):
        with_m = render_placement(placed_state, show_margins=True)
        without = render_placement(placed_state, show_margins=False, labels=False)
        assert with_m.count("<rect") > without.count("<rect")

    def test_custom_cells_colored_differently(self):
        ckt = make_mixed_circuit()
        state = PlacementState(ckt, determine_core(ckt))
        state.randomize(random.Random(1))
        svg = render_placement(state, show_margins=False)
        from repro.viz.svg import CELL_FILL, CUSTOM_FILL

        assert CELL_FILL in svg and CUSTOM_FILL in svg

    def test_write_to_file(self, placed_state, tmp_path):
        path = tmp_path / "out.svg"
        write_placement_svg(placed_state, path, labels=False)
        assert path.read_text().startswith("<svg")

    def test_regions_rendered(self, placed_state):
        from repro.channels import extract_critical_regions

        shapes = {n: placed_state.world_shape(n) for n in placed_state.names}
        regions = extract_critical_regions(shapes, placed_state.core)
        svg = render_placement(
            placed_state, show_regions=True, regions=regions, show_margins=False
        )
        from repro.viz.svg import REGION_FILL

        if regions:
            assert REGION_FILL in svg
