"""The engineering report module."""

import pytest

from repro import TimberWolfConfig, place_and_route
from repro.flow.report import (
    annealing_trace,
    channel_report,
    chip_planning_report,
    full_report,
    net_report,
)

from ..conftest import make_macro_circuit, make_mixed_circuit


@pytest.fixture(scope="module")
def macro_result():
    return place_and_route(make_macro_circuit(), TimberWolfConfig.smoke(seed=4))


@pytest.fixture(scope="module")
def mixed_result():
    return place_and_route(make_mixed_circuit(), TimberWolfConfig.smoke(seed=4))


class TestAnnealingTrace:
    def test_has_header_and_rows(self, macro_result):
        text = annealing_trace(macro_result)
        lines = text.splitlines()
        assert "accept rate" in lines[0]
        assert len(lines) > 3

    def test_sampling_interval(self, macro_result):
        sparse = annealing_trace(macro_result, every=50)
        dense = annealing_trace(macro_result, every=1)
        assert len(dense.splitlines()) >= len(sparse.splitlines())


class TestNetReport:
    def test_routed_lengths(self, macro_result):
        text = net_report(macro_result)
        assert "routed length" in text

    def test_top_limits_rows(self, macro_result):
        text = net_report(macro_result, top=3)
        assert len(text.splitlines()) <= 5  # header + rule + 3 rows

    def test_without_refinement(self):
        from dataclasses import replace

        cfg = replace(TimberWolfConfig.smoke(seed=1), refinement_passes=0)
        result = place_and_route(make_macro_circuit(), cfg)
        text = net_report(result)
        assert "HPWL" in text


class TestChannelReport:
    def test_channels_listed(self, macro_result):
        text = channel_report(macro_result)
        assert "density" in text
        assert "required w" in text

    def test_without_refinement(self):
        from dataclasses import replace

        cfg = replace(TimberWolfConfig.smoke(seed=1), refinement_passes=0)
        result = place_and_route(make_macro_circuit(), cfg)
        assert "no refinement" in channel_report(result)


class TestChipPlanningReport:
    def test_macro_only_circuit(self, macro_result):
        assert "no cells with instance" in chip_planning_report(macro_result)

    def test_custom_cells_reported(self, mixed_result):
        text = chip_planning_report(mixed_result)
        assert "cust0" in text
        assert "AR" in text


class TestFullReport:
    def test_all_sections(self, macro_result):
        text = full_report(macro_result)
        for marker in (
            "TEIL",
            "chip planning",
            "busiest channels",
            "longest nets",
            "annealing trace",
        ):
            assert marker in text
