"""Target core sizing (§2.2, "Determining the Core Area")."""

import pytest

from repro.estimator import determine_core, effective_core_area
from repro.geometry import Rect

from ..conftest import make_macro_circuit, make_mixed_circuit


class TestEffectiveCoreArea:
    def test_zero_expansion_is_cell_area(self):
        ckt = make_macro_circuit()
        assert effective_core_area(ckt, 0.0) == pytest.approx(
            ckt.total_cell_area()
        )

    def test_grows_with_expansion(self):
        ckt = make_macro_circuit()
        assert effective_core_area(ckt, 2.0) > effective_core_area(ckt, 1.0)


class TestDetermineCore:
    def test_core_centered_at_origin(self):
        plan = determine_core(make_macro_circuit())
        assert plan.core.center.x == pytest.approx(0.0)
        assert plan.core.center.y == pytest.approx(0.0)

    def test_core_bigger_than_cells(self):
        ckt = make_macro_circuit()
        plan = determine_core(ckt)
        assert plan.area > ckt.total_cell_area()

    def test_aspect_ratio_honored(self):
        plan = determine_core(make_macro_circuit(), aspect_ratio=2.0)
        assert plan.core.height / plan.core.width == pytest.approx(2.0)

    def test_slack_scales_area(self):
        ckt = make_macro_circuit()
        tight = determine_core(ckt, slack=1.0)
        loose = determine_core(ckt, slack=1.5)
        assert loose.area > tight.area

    def test_fixed_point_converged(self):
        # More iterations should not change the answer materially.
        ckt = make_macro_circuit()
        a = determine_core(ckt, iterations=8)
        b = determine_core(ckt, iterations=30)
        assert a.area == pytest.approx(b.area, rel=1e-6)

    def test_estimator_calibrated_to_core(self):
        ckt = make_macro_circuit()
        plan = determine_core(ckt)
        assert plan.estimator.core == plan.core
        assert plan.estimator.cw == plan.cw
        assert plan.cw > 0

    def test_average_effective_cell_area(self):
        ckt = make_macro_circuit()
        plan = determine_core(ckt)
        assert plan.average_effective_cell_area == pytest.approx(
            plan.core.area / ckt.num_cells, rel=1e-9
        )

    def test_mixed_circuit(self):
        plan = determine_core(make_mixed_circuit())
        assert plan.area > 0

    def test_validation(self):
        ckt = make_macro_circuit()
        with pytest.raises(ValueError):
            determine_core(ckt, aspect_ratio=0)
        with pytest.raises(ValueError):
            determine_core(ckt, iterations=0)
        with pytest.raises(ValueError):
            determine_core(ckt, slack=0)

    def test_estimator_pin_density_set(self):
        ckt = make_macro_circuit()
        plan = determine_core(ckt)
        assert plan.estimator.average_pin_density == pytest.approx(
            ckt.average_pin_density()
        )
