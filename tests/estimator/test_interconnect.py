"""The dynamic interconnect-area estimator (Eqns 1-5)."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.estimator import InterconnectEstimator, ModulationProfile
from repro.geometry import Rect


def make_estimator(cw=2.0, w=100.0, h=80.0, profile=None, density=None):
    return InterconnectEstimator(
        cw=cw,
        core=Rect.from_center(0, 0, w, h),
        profile=profile,
        average_pin_density=density,
    )


class TestModulationProfile:
    def test_defaults_are_paper_values(self):
        p = ModulationProfile()
        assert (p.m_x, p.b_x, p.m_y, p.b_y) == (2.0, 1.0, 2.0, 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ModulationProfile(b_x=0)
        with pytest.raises(ValueError):
            ModulationProfile(m_x=0.5, b_x=1.0)

    def test_mean_modulation_eqn4(self):
        # ((M + B) / 2)**2 with M = 2, B = 1 -> 2.25.
        assert ModulationProfile().mean_modulation == pytest.approx(2.25)

    def test_alpha_is_reciprocal(self):
        p = ModulationProfile()
        assert p.alpha == pytest.approx(1 / 2.25)


class TestTentFunctions:
    def test_fx_maximum_at_center(self):
        est = make_estimator()
        assert est.fx(0.0) == pytest.approx(2.0)

    def test_fx_minimum_at_boundary(self):
        est = make_estimator(w=100)
        assert est.fx(50.0) == pytest.approx(1.0)
        assert est.fx(-50.0) == pytest.approx(1.0)

    def test_fx_clamped_outside_core(self):
        est = make_estimator(w=100)
        assert est.fx(200.0) == pytest.approx(1.0)

    def test_fy_linear_midpoint(self):
        est = make_estimator(h=80)
        assert est.fy(20.0) == pytest.approx(1.5)

    def test_off_center_core(self):
        est = InterconnectEstimator(1.0, Rect(100, 100, 200, 180))
        assert est.fx(150.0) == pytest.approx(2.0)  # core center
        assert est.fx(100.0) == pytest.approx(1.0)

    @given(st.floats(-50, 50, allow_nan=False))
    def test_fx_symmetric(self, x):
        est = make_estimator(w=100)
        assert est.fx(x) == pytest.approx(est.fx(-x))

    @given(st.floats(-50, 50, allow_nan=False))
    def test_fx_in_band(self, x):
        est = make_estimator(w=100)
        assert 1.0 - 1e-9 <= est.fx(x) <= 2.0 + 1e-9


class TestFrp:
    def test_unknown_density_is_unity(self):
        assert make_estimator(density=0.1).frp(None) == 1.0

    def test_no_average_is_unity(self):
        assert make_estimator(density=None).frp(0.5) == 1.0

    def test_floor_at_one(self):
        est = make_estimator(density=0.1)
        assert est.frp(0.05) == 1.0  # sparse edges still get area

    def test_dense_edge_scales(self):
        est = make_estimator(density=0.1)
        assert est.frp(0.3) == pytest.approx(3.0)


class TestEdgeExpansion:
    def test_eqn2_structure(self):
        est = make_estimator(cw=2.0, density=0.1)
        e = est.edge_expansion(10.0, -5.0, 0.2)
        expected = 0.5 * (1 / 2.25) * 2.0 * est.fx(10.0) * est.fy(-5.0) * 2.0
        assert e == pytest.approx(expected)

    def test_center_expansion_eqn5(self):
        est = make_estimator(cw=2.0)
        assert est.center_expansion() == pytest.approx(
            0.5 * (1 / 2.25) * 2.0 * 2.0 * 2.0
        )

    def test_center_larger_than_corner(self):
        est = make_estimator()
        center = est.edge_expansion(0, 0)
        corner = est.edge_expansion(50, 40)
        assert center > corner
        # The observed manual-layout ratio: center ~4x the corner width.
        assert center / corner == pytest.approx(4.0)

    def test_center_vs_side_ratio(self):
        est = make_estimator()
        center = est.edge_expansion(0, 0)
        side = est.edge_expansion(50, 0)
        assert center / side == pytest.approx(2.0)

    def test_expected_value_is_half_cw(self):
        # Monte-Carlo check of the alpha normalization: the mean expansion
        # over uniformly placed edges is 0.5 * Cw.
        est = make_estimator(cw=3.0)
        rng = random.Random(0)
        samples = [
            est.edge_expansion(rng.uniform(-50, 50), rng.uniform(-40, 40))
            for _ in range(20000)
        ]
        assert sum(samples) / len(samples) == pytest.approx(1.5, rel=0.03)
        assert est.expected_expansion() == pytest.approx(1.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            InterconnectEstimator(-1.0, Rect(0, 0, 10, 10))
        with pytest.raises(ValueError):
            InterconnectEstimator(1.0, Rect(0, 0, 0, 10))

    def test_zero_cw_zero_expansion(self):
        est = make_estimator(cw=0.0)
        assert est.edge_expansion(0, 0) == 0.0
