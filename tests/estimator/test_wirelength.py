"""A-priori wirelength / channel-length estimates (Eqn 1 inputs)."""

import pytest

from repro.estimator import (
    average_channel_width,
    estimate_total_channel_length,
    estimate_total_interconnect_length,
    expected_net_length,
)

from ..conftest import make_macro_circuit


class TestExpectedNetLength:
    def test_single_pin_is_zero(self):
        assert expected_net_length(1, 10.0) == 0.0

    def test_grows_with_fanout(self):
        lengths = [expected_net_length(p, 10.0) for p in (2, 3, 5, 10)]
        assert all(a < b for a, b in zip(lengths, lengths[1:]))

    def test_sublinear_in_fanout(self):
        # Doubling fanout should less than double the length.
        l2 = expected_net_length(3, 10.0)
        l4 = expected_net_length(5, 10.0)
        assert l4 < 2 * l2

    def test_linear_in_pitch(self):
        assert expected_net_length(4, 20.0) == pytest.approx(
            2 * expected_net_length(4, 10.0)
        )

    def test_bad_pitch(self):
        with pytest.raises(ValueError):
            expected_net_length(3, 0.0)


class TestTotals:
    def test_total_interconnect_positive(self):
        ckt = make_macro_circuit()
        assert estimate_total_interconnect_length(ckt, 10000.0) > 0

    def test_total_interconnect_scales_with_core(self):
        ckt = make_macro_circuit()
        small = estimate_total_interconnect_length(ckt, 10000.0)
        large = estimate_total_interconnect_length(ckt, 40000.0)
        assert large == pytest.approx(2 * small)

    def test_channel_length_half_perimeters(self):
        ckt = make_macro_circuit()
        c_l = estimate_total_channel_length(ckt, 10000.0)
        assert c_l == pytest.approx(
            0.5 * ckt.total_cell_perimeter() + 0.5 * 4 * 100.0
        )

    def test_bad_core_area(self):
        ckt = make_macro_circuit()
        with pytest.raises(ValueError):
            estimate_total_interconnect_length(ckt, 0)
        with pytest.raises(ValueError):
            estimate_total_channel_length(ckt, -1)


class TestAverageChannelWidth:
    def test_eqn1(self):
        ckt = make_macro_circuit()
        area = 10000.0
        cw = average_channel_width(ckt, area)
        n_l = estimate_total_interconnect_length(ckt, area)
        c_l = estimate_total_channel_length(ckt, area)
        assert cw == pytest.approx(n_l / c_l * ckt.track_spacing)

    def test_scales_with_track_spacing(self):
        ckt = make_macro_circuit()
        assert average_channel_width(ckt, 1e4, track_spacing=3.0) == pytest.approx(
            3.0 * average_channel_width(ckt, 1e4, track_spacing=1.0)
        )

    def test_positive(self):
        assert average_channel_width(make_macro_circuit(), 1e4) > 0
