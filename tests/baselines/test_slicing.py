"""The Wong-Liu slicing floorplanner."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import SlicingPlacer
from repro.baselines.slicing import (
    H,
    V,
    PolishExpression,
    Shape,
    block_shapes,
    evaluate,
    realize,
    _prune,
)
from repro.netlist import ContinuousAspectRatio, CustomCell, MacroCell, Pin, PinKind
from repro.placement.legalize import raw_overlap

from ..conftest import make_macro_circuit, make_mixed_circuit


class TestPolishExpression:
    def test_initial_valid(self):
        expr = PolishExpression.initial(5)
        assert sorted(t for t in expr.tokens if isinstance(t, int)) == list(range(5))

    def test_initial_single_block(self):
        assert PolishExpression.initial(1).tokens == [0]

    def test_rejects_unnormalized(self):
        with pytest.raises(ValueError):
            PolishExpression([0, 1, V, 2, V, 3, V, V])  # balloting fails
        with pytest.raises(ValueError):
            PolishExpression([0, 1, 2, V, V, 3, H, H])  # hmm: check below

    def test_rejects_adjacent_same_operators(self):
        with pytest.raises(ValueError):
            PolishExpression([0, 1, 2, V, V])

    def test_rejects_incomplete(self):
        with pytest.raises(ValueError):
            PolishExpression([0, 1])

    def test_m1_preserves_validity(self):
        rng = random.Random(0)
        expr = PolishExpression.initial(6)
        for _ in range(50):
            expr = expr.swap_adjacent_operands(rng)
        expr._validate()

    def test_m2_preserves_validity(self):
        rng = random.Random(1)
        expr = PolishExpression.initial(6)
        for _ in range(50):
            expr = expr.complement_chain(rng)
        expr._validate()

    def test_m3_preserves_validity(self):
        rng = random.Random(2)
        expr = PolishExpression.initial(6)
        for _ in range(100):
            nxt = expr.swap_operand_operator(rng)
            if nxt is not None:
                expr = nxt
        expr._validate()

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000))
    def test_random_walk_keeps_operand_set(self, seed):
        rng = random.Random(seed)
        expr = PolishExpression.initial(5)
        for _ in range(30):
            roll = rng.random()
            if roll < 0.4:
                expr = expr.swap_adjacent_operands(rng)
            elif roll < 0.7:
                expr = expr.complement_chain(rng)
            else:
                nxt = expr.swap_operand_operator(rng)
                if nxt is not None:
                    expr = nxt
        operands = sorted(t for t in expr.tokens if isinstance(t, int))
        assert operands == list(range(5))


class TestShapeCurves:
    def test_prune_removes_dominated(self):
        shapes = [Shape(2, 5), Shape(3, 5), Shape(3, 4), Shape(5, 1)]
        pruned = _prune(shapes)
        assert Shape(3, 5) not in pruned
        assert Shape(2, 5) in pruned and Shape(5, 1) in pruned

    def test_macro_offers_rotation(self):
        cell = MacroCell.rectangular(
            "m", 10, 4, [Pin("p", "n", PinKind.FIXED, offset=(0, 2))]
        )
        shapes = block_shapes(cell)
        dims = {(s.width, s.height) for s in shapes}
        assert (10, 4) in dims and (4, 10) in dims

    def test_custom_samples_aspects(self):
        cell = CustomCell(
            "c",
            [Pin("p", "n", PinKind.EDGE)],
            area=100.0,
            aspect=ContinuousAspectRatio(0.5, 2.0),
        )
        shapes = block_shapes(cell)
        assert len(shapes) >= 3
        for s in shapes:
            assert s.width * s.height == pytest.approx(100.0)


class TestEvaluateRealize:
    def curves(self):
        return [
            [Shape(4, 2), Shape(2, 4)],
            [Shape(3, 3)],
            [Shape(6, 1), Shape(1, 6)],
        ]

    def test_area_lower_bound(self):
        expr = PolishExpression.initial(3)
        _, best = evaluate(expr, self.curves())
        assert best.width * best.height >= 8 + 9 + 6  # sum of block areas

    def test_realization_no_overlap(self):
        expr = PolishExpression([0, 1, V, 2, H])
        root, best = evaluate(expr, self.curves())
        placed = {}
        realize(root, best, 0.0, 0.0, placed)
        rects = []
        from repro.geometry import Rect

        for x, y, shape in placed.values():
            rects.append(Rect(x, y, x + shape.width, y + shape.height))
        for i in range(len(rects)):
            for j in range(i + 1, len(rects)):
                assert not rects[i].intersects(rects[j])

    def test_realization_fits_root_shape(self):
        expr = PolishExpression([0, 1, V, 2, H])
        root, best = evaluate(expr, self.curves())
        placed = {}
        realize(root, best, 0.0, 0.0, placed)
        for x, y, shape in placed.values():
            assert x + shape.width <= best.width + 1e-9
            assert y + shape.height <= best.height + 1e-9

    def test_all_blocks_placed(self):
        expr = PolishExpression([0, 1, V, 2, H])
        root, best = evaluate(expr, self.curves())
        placed = {}
        realize(root, best, 0.0, 0.0, placed)
        assert set(placed) == {0, 1, 2}


class TestSlicingPlacer:
    def test_legal_and_compact(self):
        circuit = make_macro_circuit(num_cells=7, seed=9)
        result = SlicingPlacer(seed=0).place(circuit)
        shapes = [result.state.world_shape(n) for n in result.state.names]
        assert raw_overlap(shapes) == pytest.approx(0.0, abs=1e-6)
        # A slicing packing should be denser than the sized core.
        assert result.chip_area < result.state.core.area * 1.5

    def test_handles_custom_cells(self):
        result = SlicingPlacer(seed=1).place(make_mixed_circuit())
        state = result.state
        for cell in state.circuit.custom_cells():
            record = state.records[state.index[cell.name]]
            assert cell.aspect.contains(record.aspect_ratio)

    def test_deterministic(self):
        circuit = make_macro_circuit(num_cells=6, seed=5)
        a = SlicingPlacer(seed=3).place(circuit)
        b = SlicingPlacer(seed=3).place(make_macro_circuit(num_cells=6, seed=5))
        assert a.teil == b.teil

    def test_orientation_written_back(self):
        # A macro realized with rotated dims must carry orientation 1.
        circuit = make_macro_circuit(num_cells=5, seed=11)
        result = SlicingPlacer(seed=2).place(circuit)
        state = result.state
        for idx, name in enumerate(state.names):
            cell = state.circuit.cells[name]
            record = state.records[idx]
            bbox = state.world_shape(name).bbox
            inst = cell.instances[record.instance].shape.bbox
            if record.orientation == 1:
                assert (bbox.width, bbox.height) == pytest.approx(
                    (inst.height, inst.width)
                )
            else:
                assert (bbox.width, bbox.height) == pytest.approx(
                    (inst.width, inst.height)
                )


class TestDegenerateExpressions:
    def test_single_block_moves_are_noops(self):
        rng = random.Random(0)
        expr = PolishExpression.initial(1)
        assert expr.swap_adjacent_operands(rng) is expr
        assert expr.complement_chain(rng) is expr

    def test_single_block_placer(self):
        from repro.netlist import MacroCell, Pin, PinKind
        from repro.netlist import Circuit

        solo = Circuit(
            "solo",
            [MacroCell.rectangular(
                "a", 10, 8, [Pin("p", "n", PinKind.FIXED, offset=(5, 0))]
            )],
        )
        result = SlicingPlacer(seed=0).place(solo)
        assert result.chip_area > 0
