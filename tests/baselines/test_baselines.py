"""The comparator placers of Table 4."""

import pytest

from repro.baselines import (
    ALL_BASELINES,
    GreedyPlacer,
    QuadraticPlacer,
    RandomPlacer,
)
from repro.placement.legalize import raw_overlap

from ..conftest import make_macro_circuit, make_mixed_circuit


@pytest.fixture(scope="module")
def circuit():
    return make_macro_circuit(num_cells=8, seed=13)


class TestCommonContract:
    @pytest.mark.parametrize("placer_cls", ALL_BASELINES)
    def test_produces_legal_placement(self, placer_cls, circuit):
        result = placer_cls(seed=0).place(circuit)
        shapes = [result.state.world_shape(n) for n in result.state.names]
        assert raw_overlap(shapes) == pytest.approx(0.0, abs=1e-6)

    @pytest.mark.parametrize("placer_cls", ALL_BASELINES)
    def test_metrics_positive(self, placer_cls, circuit):
        result = placer_cls(seed=0).place(circuit)
        assert result.teil > 0
        assert result.chip_area > 0

    @pytest.mark.parametrize("placer_cls", ALL_BASELINES)
    def test_deterministic(self, placer_cls, circuit):
        a = placer_cls(seed=4).place(circuit)
        b = placer_cls(seed=4).place(circuit)
        assert a.teil == b.teil
        assert a.chip_area == b.chip_area

    @pytest.mark.parametrize("placer_cls", ALL_BASELINES)
    def test_handles_mixed_circuits(self, placer_cls):
        result = placer_cls(seed=1).place(make_mixed_circuit())
        assert result.teil > 0

    def test_names_distinct(self):
        names = {cls.name for cls in ALL_BASELINES}
        assert names == {"random", "greedy", "quadratic", "slicing"}


class TestRelativeQuality:
    def test_greedy_beats_random_on_average(self, circuit):
        random_teils = [
            RandomPlacer(seed=s).place(circuit).teil for s in range(3)
        ]
        greedy_teil = GreedyPlacer(seed=0).place(circuit).teil
        assert greedy_teil < sum(random_teils) / len(random_teils)

    def test_quadratic_beats_random_on_average(self, circuit):
        random_teils = [
            RandomPlacer(seed=s).place(circuit).teil for s in range(3)
        ]
        quad_teil = QuadraticPlacer(seed=0).place(circuit).teil
        assert quad_teil < sum(random_teils) / len(random_teils)

    def test_random_seed_variation(self, circuit):
        a = RandomPlacer(seed=0).place(circuit)
        b = RandomPlacer(seed=1).place(circuit)
        assert a.teil != b.teil


class TestRouteBaseline:
    def test_routed_area_covers_raw_cells(self, circuit):
        from repro.baselines import route_baseline
        from repro.geometry import Rect

        result = GreedyPlacer(seed=0).place(circuit)
        routed = route_baseline(result, m_routes=4, seed=0)
        state = routed.state
        raw_bbox = Rect.bounding(
            state.world_shape(n).bbox for n in state.names
        )
        # The routed chip must at least cover the bare cells plus the
        # reserved channel space around them.
        assert routed.chip_area >= raw_bbox.area
        assert routed.name == "greedy"

    def test_placement_stays_legal(self, circuit):
        from repro.baselines import route_baseline
        from repro.placement.legalize import raw_overlap

        result = RandomPlacer(seed=2).place(circuit)
        routed = route_baseline(result, m_routes=4, seed=0)
        shapes = [routed.state.world_shape(n) for n in routed.state.names]
        assert raw_overlap(shapes) == 0.0

    def test_static_expansions_applied(self, circuit):
        from repro.baselines import route_baseline

        result = GreedyPlacer(seed=1).place(circuit)
        routed = route_baseline(result, m_routes=4, seed=0)
        assert not routed.state.dynamic_expansion
