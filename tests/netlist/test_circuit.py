"""Circuit assembly, derived nets, statistics."""

import pytest

from repro.netlist import Circuit, MacroCell, Pin, PinKind

from ..conftest import make_macro_circuit, make_mixed_circuit


def two_cell_circuit(weights=None):
    a = MacroCell.rectangular(
        "a", 10, 10, [Pin("p", "n1", PinKind.FIXED, offset=(5, 0))]
    )
    b = MacroCell.rectangular(
        "b",
        10,
        10,
        [
            Pin("p", "n1", PinKind.FIXED, offset=(-5, 0)),
            Pin("q", "n2", PinKind.FIXED, offset=(0, 5)),
        ],
    )
    c = MacroCell.rectangular(
        "c", 10, 10, [Pin("p", "n2", PinKind.FIXED, offset=(0, -5))]
    )
    return Circuit("two", [a, b, c], net_weights=weights)


class TestConstruction:
    def test_duplicate_cell_raises(self):
        a = MacroCell.rectangular("a", 4, 4, [Pin("p", "n", PinKind.FIXED, offset=(0, 0))])
        with pytest.raises(ValueError):
            Circuit("dup", [a, a])

    def test_bad_track_spacing(self):
        with pytest.raises(ValueError):
            Circuit("t", [], track_spacing=0)

    def test_nets_derived_from_pins(self):
        ckt = two_cell_circuit()
        assert set(ckt.nets) == {"n1", "n2"}
        assert ckt.nets["n1"].degree == 2

    def test_net_weights_applied(self):
        ckt = two_cell_circuit(weights={"n1": (2.0, 3.0)})
        assert ckt.nets["n1"].h_weight == 2.0
        assert ckt.nets["n1"].v_weight == 3.0
        assert ckt.nets["n2"].h_weight == 1.0

    def test_unknown_weight_rejected(self):
        with pytest.raises(ValueError):
            two_cell_circuit(weights={"bogus": (1.0, 1.0)})


class TestLookups:
    def test_cell(self):
        ckt = two_cell_circuit()
        assert ckt.cell("a").name == "a"
        with pytest.raises(KeyError):
            ckt.cell("zzz")

    def test_net(self):
        ckt = two_cell_circuit()
        assert ckt.net("n1").name == "n1"
        with pytest.raises(KeyError):
            ckt.net("zzz")

    def test_nets_of_cell(self):
        ckt = two_cell_circuit()
        assert {n.name for n in ckt.nets_of_cell("b")} == {"n1", "n2"}
        assert {n.name for n in ckt.nets_of_cell("a")} == {"n1"}

    def test_cell_names_order(self):
        assert two_cell_circuit().cell_names() == ["a", "b", "c"]

    def test_macro_custom_partition(self):
        ckt = make_mixed_circuit()
        assert len(ckt.macro_cells()) == 5
        assert len(ckt.custom_cells()) == 1


class TestStatistics:
    def test_counts(self):
        ckt = two_cell_circuit()
        assert (ckt.num_cells, ckt.num_nets, ckt.num_pins) == (3, 2, 4)

    def test_total_cell_area(self):
        assert two_cell_circuit().total_cell_area() == 300.0

    def test_total_perimeter(self):
        assert two_cell_circuit().total_cell_perimeter() == 120.0

    def test_average_pin_density(self):
        ckt = two_cell_circuit()
        assert ckt.average_pin_density() == pytest.approx(4 / 120)

    def test_mixed_circuit_stats(self):
        ckt = make_mixed_circuit()
        assert ckt.num_pins == 5 * 4 + 6
        assert ckt.total_cell_area() > 0


class TestValidate:
    def test_clean_circuit(self):
        assert two_cell_circuit().validate() == []

    def test_dangling_net_reported(self):
        a = MacroCell.rectangular(
            "a", 4, 4, [Pin("p", "lonely", PinKind.FIXED, offset=(0, 0))]
        )
        b = MacroCell.rectangular(
            "b", 4, 4, [Pin("p", "other", PinKind.FIXED, offset=(0, 0))]
        )
        problems = Circuit("v", [a, b]).validate()
        assert len(problems) == 2
        assert any("lonely" in p for p in problems)

    def test_repr(self):
        assert "3 cells" in repr(two_cell_circuit())


class TestFixtures:
    def test_macro_fixture_deterministic(self):
        a = make_macro_circuit(seed=3)
        b = make_macro_circuit(seed=3)
        assert a.num_pins == b.num_pins
        assert [c for c in a.cells] == [c for c in b.cells]
