"""Pins, pin specs, and pin sites."""

import pytest

from repro.geometry import BOTTOM, LEFT, RIGHT, TOP
from repro.netlist import (
    ALL_SIDES,
    Pin,
    PinKind,
    PinSite,
    make_pin_sites,
    site_local_position,
)


class TestPinValidation:
    def test_fixed_needs_offset(self):
        with pytest.raises(ValueError):
            Pin("p", "n", PinKind.FIXED)

    def test_group_needs_group(self):
        with pytest.raises(ValueError):
            Pin("p", "n", PinKind.GROUP)

    def test_sequence_needs_index(self):
        with pytest.raises(ValueError):
            Pin("p", "n", PinKind.SEQUENCE, group="g")

    def test_bad_side(self):
        with pytest.raises(ValueError):
            Pin("p", "n", PinKind.EDGE, sides=frozenset({"north"}))

    def test_empty_sides(self):
        with pytest.raises(ValueError):
            Pin("p", "n", PinKind.EDGE, sides=frozenset())

    def test_default_sides_all(self):
        pin = Pin("p", "n", PinKind.EDGE)
        assert pin.sides == ALL_SIDES

    def test_committed(self):
        assert Pin("p", "n", PinKind.FIXED, offset=(0, 0)).is_committed
        assert not Pin("p", "n", PinKind.EDGE).is_committed

    def test_valid_sequence(self):
        pin = Pin("p", "n", PinKind.SEQUENCE, group="g", sequence_index=2)
        assert pin.group == "g" and pin.sequence_index == 2


class TestPinSite:
    def test_bad_side(self):
        with pytest.raises(ValueError):
            PinSite("middle", 0, 0.5, 1)

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            PinSite(LEFT, 0, 1.5, 1)

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            PinSite(LEFT, 0, 0.5, 0)

    def test_key(self):
        assert PinSite(TOP, 3, 0.5, 2).key == (TOP, 3)


class TestMakePinSites:
    def test_count(self):
        sites = make_pin_sites(40, 20, sites_per_edge=5)
        assert len(sites) == 20
        assert sum(1 for s in sites if s.side == LEFT) == 5

    def test_capacity_scales_with_edge(self):
        sites = make_pin_sites(40, 20, sites_per_edge=5, pin_pitch=1.0)
        left_cap = next(s.capacity for s in sites if s.side == LEFT)
        top_cap = next(s.capacity for s in sites if s.side == TOP)
        assert left_cap == 4  # 20 / 1.0 / 5
        assert top_cap == 8  # 40 / 1.0 / 5

    def test_capacity_at_least_one(self):
        sites = make_pin_sites(2, 2, sites_per_edge=8, pin_pitch=1.0)
        assert all(s.capacity == 1 for s in sites)

    def test_fractions_even(self):
        sites = make_pin_sites(10, 10, sites_per_edge=2)
        lefts = sorted(s.fraction for s in sites if s.side == LEFT)
        assert lefts == [0.25, 0.75]

    def test_bad_args(self):
        with pytest.raises(ValueError):
            make_pin_sites(10, 10, 0)
        with pytest.raises(ValueError):
            make_pin_sites(10, 10, 4, pin_pitch=0)


class TestSiteLocalPosition:
    @pytest.mark.parametrize(
        "side,expected",
        [
            (LEFT, (-5.0, 0.0)),
            (RIGHT, (5.0, 0.0)),
            (BOTTOM, (0.0, -2.0)),
            (TOP, (0.0, 2.0)),
        ],
    )
    def test_center_site(self, side, expected):
        site = PinSite(side, 0, 0.5, 1)
        assert site_local_position(site, 10, 4) == expected

    def test_corner_site(self):
        site = PinSite(LEFT, 0, 0.0, 1)
        assert site_local_position(site, 10, 4) == (-5.0, -2.0)
