"""Nets and span computation."""

import pytest
from hypothesis import given, strategies as st

from repro.netlist import Net, PinRef, bounding_span


class TestPinRef:
    def test_str(self):
        assert str(PinRef("cellA", "p3")) == "cellA.p3"

    def test_equality(self):
        assert PinRef("a", "p") == PinRef("a", "p")
        assert PinRef("a", "p") != PinRef("a", "q")


class TestNet:
    def test_negative_weight_raises(self):
        with pytest.raises(ValueError):
            Net("n", [], h_weight=-1)

    def test_duplicate_pin_raises(self):
        ref = PinRef("a", "p")
        with pytest.raises(ValueError):
            Net("n", [ref, ref])

    def test_degree(self):
        net = Net("n", [PinRef("a", "p"), PinRef("b", "q")])
        assert net.degree == 2

    def test_cells_order_and_dedupe(self):
        net = Net(
            "n",
            [PinRef("b", "p1"), PinRef("a", "p2"), PinRef("b", "p3")],
        )
        assert net.cells() == ["b", "a"]

    def test_weighted_length(self):
        net = Net("n", [], h_weight=2.0, v_weight=0.5)
        assert net.weighted_length(10, 4) == 22.0

    def test_default_weights_give_teil(self):
        net = Net("n", [])
        assert net.weighted_length(3, 4) == 7.0


class TestBoundingSpan:
    def test_empty(self):
        assert bounding_span([]) == (0.0, 0.0)

    def test_single_point(self):
        assert bounding_span([(3, 4)]) == (0.0, 0.0)

    def test_two_points(self):
        assert bounding_span([(0, 0), (3, -4)]) == (3.0, 4.0)

    @given(
        st.lists(
            st.tuples(
                st.floats(-100, 100, allow_nan=False),
                st.floats(-100, 100, allow_nan=False),
            ),
            min_size=1,
            max_size=20,
        )
    )
    def test_nonnegative_and_monotone(self, points):
        xs, ys = bounding_span(points)
        assert xs >= 0 and ys >= 0
        # Adding a point can only grow the span.
        xs2, ys2 = bounding_span(points + [(0.0, 0.0)])
        assert xs2 >= xs - 1e-9 or ys2 >= ys - 1e-9

    @given(
        st.lists(
            st.tuples(st.floats(-50, 50, allow_nan=False), st.floats(-50, 50, allow_nan=False)),
            min_size=2,
            max_size=10,
        ),
        st.floats(-20, 20, allow_nan=False),
        st.floats(-20, 20, allow_nan=False),
    )
    def test_translation_invariant(self, points, dx, dy):
        moved = [(x + dx, y + dy) for x, y in points]
        a = bounding_span(points)
        b = bounding_span(moved)
        assert a[0] == pytest.approx(b[0], abs=1e-6)
        assert a[1] == pytest.approx(b[1], abs=1e-6)
