"""The circuit text format: parsing, serialization, errors."""

import pytest

from repro.bench import CircuitSpec, generate_circuit
from repro.netlist import (
    ALL_SIDES,
    ContinuousAspectRatio,
    CustomCell,
    DiscreteAspectRatios,
    MacroCell,
    ParseError,
    PinKind,
    dump,
    dumps,
    load,
    loads,
    parse_file,
)

SAMPLE = """
# a demonstration circuit
circuit demo
track_spacing 2.0

macrocell RAM
  tile 0 0 40 30
  tile 40 0 60 10
  pin CLK net clk at 0 15
  pin D0 net bus0 at 60 5 equiv BUS
end

customcell ALU area 900 aspect 0.5 2.0
  sites 6 pitch 1.5
  pin A net bus0 edge left,right
  pin B net clk group CTL edge top
  pin C net clk seq PINS 0 edge bottom
  pin F net bus0 at 10 0
end

net clk weight 2.0 3.0
"""


class TestLoads:
    def test_basic(self):
        ckt = loads(SAMPLE)
        assert ckt.name == "demo"
        assert ckt.track_spacing == 2.0
        assert set(ckt.cells) == {"RAM", "ALU"}
        assert set(ckt.nets) == {"clk", "bus0"}

    def test_macro_recentered(self):
        ckt = loads(SAMPLE)
        ram = ckt.cell("RAM")
        assert isinstance(ram, MacroCell)
        bbox = ram.instances[0].shape.bbox
        assert bbox.center.x == pytest.approx(0)
        assert bbox.center.y == pytest.approx(0)

    def test_macro_pins_shifted_with_geometry(self):
        ckt = loads(SAMPLE)
        ram = ckt.cell("RAM")
        # Original CLK at (0, 15); bbox center was (30, 15).
        assert ram.pin("CLK").offset == (-30.0, 0.0)

    def test_equiv_class(self):
        assert loads(SAMPLE).cell("RAM").pin("D0").equiv_class == "BUS"

    def test_custom_attributes(self):
        alu = loads(SAMPLE).cell("ALU")
        assert isinstance(alu, CustomCell)
        assert alu.area == 900
        assert alu.sites_per_edge == 6
        assert alu.pin_pitch == 1.5
        assert isinstance(alu.aspect, ContinuousAspectRatio)

    def test_custom_pin_kinds(self):
        alu = loads(SAMPLE).cell("ALU")
        assert alu.pin("A").kind is PinKind.EDGE
        assert alu.pin("A").sides == frozenset({"left", "right"})
        assert alu.pin("B").kind is PinKind.GROUP
        assert alu.pin("C").kind is PinKind.SEQUENCE
        assert alu.pin("C").sequence_index == 0
        assert alu.pin("F").kind is PinKind.FIXED

    def test_net_weights(self):
        ckt = loads(SAMPLE)
        assert ckt.nets["clk"].h_weight == 2.0
        assert ckt.nets["clk"].v_weight == 3.0

    def test_aspect_list(self):
        text = """
        circuit d
        customcell C area 100 aspect_list 0.5,1.0,2.0
          pin a net n1
        end
        macrocell M
          tile 0 0 4 4
          pin b net n1 at 0 0
        end
        """
        cell = loads(text).cell("C")
        assert isinstance(cell.aspect, DiscreteAspectRatios)
        assert cell.aspect.values == (0.5, 1.0, 2.0)


class TestParseErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "bogus directive",
            "circuit a b c",
            "macrocell M\n  tile 0 0 4 4\n",  # missing end
            "macrocell M\nend",  # no tiles
            "macrocell M\n  tile 4 0 0 4\nend",  # malformed tile
            "macrocell M\n  tile 0 0 4 4\n  pin p net n\nend",  # macro pin needs at
            "customcell C area 100\nend",  # missing aspect
            "net x weight 1",
            "macrocell M\n  tile 0 0 4 4\n  pin p net n at 0 0 edge north\nend",
        ],
    )
    def test_rejects(self, text):
        with pytest.raises(ParseError):
            loads(text)

    def test_error_carries_lineno(self):
        try:
            loads("circuit ok\nbogus here")
        except ParseError as exc:
            assert exc.lineno == 2
        else:
            pytest.fail("expected ParseError")

    def test_comments_and_blanks_ignored(self):
        ckt = loads("# hi\n\ncircuit c # trailing\n")
        assert ckt.name == "c"


MULTI_INSTANCE = """
circuit shapes

macrocell M
  tile 0 0 10 10
  pin a net n1 at 0 5
  pin b net n2 at 10 5
  instance tall
    tile 0 0 5 20
    pinat a 0 10
    pinat b 5 10
  end
end

macrocell N
  tile 0 0 4 4
  pin c net n1 at 0 0
  pin d net n2 at 4 4
end
"""


class TestMacroInstances:
    def test_alternative_instances_parsed(self):
        cell = loads(MULTI_INSTANCE).cell("M")
        assert [inst.name for inst in cell.instances] == ["default", "tall"]

    def test_instance_geometry_recentered(self):
        cell = loads(MULTI_INSTANCE).cell("M")
        tall = cell.instances[1]
        bbox = tall.shape.bbox
        assert bbox.center.x == pytest.approx(0)
        assert bbox.center.y == pytest.approx(0)
        assert (bbox.width, bbox.height) == (5, 20)

    def test_instance_pins_shifted_with_geometry(self):
        cell = loads(MULTI_INSTANCE).cell("M")
        tall = cell.instances[1]
        # Original pinat a (0, 10); the 5x20 bbox center was (2.5, 10).
        assert tall.pin_offsets["a"] == (-2.5, 0.0)
        assert tall.pin_offsets["b"] == (2.5, 0.0)

    def test_roundtrip_preserves_instances(self):
        a = loads(MULTI_INSTANCE)
        b = loads(dumps(a))
        assert dumps(a) == dumps(b)
        ia, ib = a.cell("M").instances, b.cell("M").instances
        assert [i.name for i in ia] == [i.name for i in ib]
        assert ia[1].shape.tiles == ib[1].shape.tiles
        assert ia[1].pin_offsets == ib[1].pin_offsets

    @pytest.mark.parametrize(
        "body",
        [
            "  instance t\n    tile 0 0 5 20\n",  # missing instance end
            "  instance t\n  end\n",  # instance with no tiles
            "  instance t\n    bogus 1 2\n  end\n",  # unknown token
        ],
    )
    def test_instance_errors(self, body):
        text = (
            "circuit c\nmacrocell M\n  tile 0 0 10 10\n"
            "  pin a net n at 0 0\n" + body + "end\n"
        )
        with pytest.raises(ParseError):
            loads(text)


class TestParseErrorFormatting:
    def test_without_path(self):
        err = ParseError(4, "bad token")
        assert str(err) == "line 4: bad token"
        assert err.lineno == 4
        assert err.path is None
        assert err.reason == "bad token"

    def test_with_path(self):
        err = ParseError(4, "bad token", "chips/a.twmc")
        assert str(err) == "chips/a.twmc:4: bad token"
        assert err.path == "chips/a.twmc"


class TestLoad:
    def test_missing_file(self, tmp_path):
        missing = tmp_path / "nope.twmc"
        with pytest.raises(ParseError) as exc_info:
            load(missing)
        assert "nope.twmc" in str(exc_info.value)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.twmc"
        path.write_text("   \n")
        with pytest.raises(ParseError, match="empty"):
            load(path)

    def test_parse_error_names_the_file(self, tmp_path):
        path = tmp_path / "bad.twmc"
        path.write_text("circuit ok\nbogus here\n")
        with pytest.raises(ParseError) as exc_info:
            load(path)
        assert "bad.twmc" in str(exc_info.value)
        assert exc_info.value.lineno == 2

    def test_parse_file_alias(self, tmp_path):
        path = tmp_path / "c.twmc"
        dump(loads(SAMPLE), path)
        assert parse_file is load
        assert dumps(parse_file(path)) == dumps(loads(SAMPLE))


class TestRoundTrip:
    def test_sample_roundtrip(self):
        a = loads(SAMPLE)
        b = loads(dumps(a))
        assert dumps(a) == dumps(b)

    def test_roundtrip_preserves_stats(self):
        a = loads(SAMPLE)
        b = loads(dumps(a))
        assert (a.num_cells, a.num_nets, a.num_pins) == (
            b.num_cells,
            b.num_nets,
            b.num_pins,
        )

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_generated_circuit_roundtrip(self, seed):
        spec = CircuitSpec(
            name=f"gen{seed}",
            num_cells=8,
            num_nets=12,
            num_pins=40,
            seed=seed,
            custom_fraction=0.25,
        )
        a = generate_circuit(spec)
        b = loads(dumps(a))
        assert dumps(a) == dumps(b)
        assert set(a.nets) == set(b.nets)
        for name in a.nets:
            assert a.nets[name].degree == b.nets[name].degree

    def test_file_io(self, tmp_path):
        path = tmp_path / "c.twmc"
        a = loads(SAMPLE)
        dump(a, path)
        b = load(path)
        assert dumps(a) == dumps(b)
