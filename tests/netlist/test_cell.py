"""Macro and custom cells, aspect-ratio specs, instances."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geometry import Rect, TileSet
from repro.netlist import (
    ContinuousAspectRatio,
    CustomCell,
    DiscreteAspectRatios,
    MacroCell,
    MacroInstance,
    Pin,
    PinKind,
)


def fixed_pin(name="p0", net="n0", offset=(0.0, 0.0)):
    return Pin(name, net, PinKind.FIXED, offset=offset)


class TestContinuousAspectRatio:
    def test_bad_range(self):
        with pytest.raises(ValueError):
            ContinuousAspectRatio(0, 1)
        with pytest.raises(ValueError):
            ContinuousAspectRatio(2, 1)

    def test_contains(self):
        spec = ContinuousAspectRatio(0.5, 2.0)
        assert spec.contains(1.0) and not spec.contains(3.0)

    def test_clamp(self):
        spec = ContinuousAspectRatio(0.5, 2.0)
        assert spec.clamp(10) == 2.0
        assert spec.clamp(0.1) == 0.5
        assert spec.clamp(1.3) == 1.3

    def test_default_prefers_square(self):
        assert ContinuousAspectRatio(0.5, 2.0).default() == 1.0
        assert ContinuousAspectRatio(2.0, 3.0).default() == 2.0

    @given(st.floats(0.1, 10, allow_nan=False))
    def test_inverted_in_range(self, ar):
        spec = ContinuousAspectRatio(0.5, 2.0)
        assert spec.contains(spec.inverted(spec.clamp(ar)))


class TestDiscreteAspectRatios:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            DiscreteAspectRatios(())

    def test_nonpositive_raises(self):
        with pytest.raises(ValueError):
            DiscreteAspectRatios((1.0, -2.0))

    def test_sorted(self):
        spec = DiscreteAspectRatios((2.0, 0.5, 1.0))
        assert spec.values == (0.5, 1.0, 2.0)

    def test_clamp_picks_nearest(self):
        spec = DiscreteAspectRatios((0.5, 2.0))
        assert spec.clamp(0.6) == 0.5
        assert spec.clamp(1.9) == 2.0

    def test_inverted(self):
        spec = DiscreteAspectRatios((0.5, 2.0))
        assert spec.inverted(2.0) == 0.5


class TestMacroCell:
    def test_rectangular_factory(self):
        cell = MacroCell.rectangular("m", 10, 4, [fixed_pin()])
        assert cell.is_macro and not cell.is_custom
        assert cell.area(0) == 40

    def test_needs_instance(self):
        with pytest.raises(ValueError):
            MacroCell("m", [fixed_pin()], [])

    def test_duplicate_instance_names(self):
        shape = TileSet.rectangle(2, 2)
        with pytest.raises(ValueError):
            MacroCell(
                "m",
                [fixed_pin()],
                [MacroInstance("a", shape), MacroInstance("a", shape)],
            )

    def test_uncommitted_pin_rejected(self):
        with pytest.raises(ValueError):
            MacroCell.rectangular("m", 4, 4, [Pin("p", "n", PinKind.EDGE)])

    def test_duplicate_pin_names(self):
        with pytest.raises(ValueError):
            MacroCell.rectangular("m", 4, 4, [fixed_pin("p"), fixed_pin("p", "n1")])

    def test_instance_pin_offset_override(self):
        shape = TileSet.rectangle(4, 4)
        alt = MacroInstance("alt", shape, {"p0": (1.0, 1.0)})
        cell = MacroCell("m", [fixed_pin()], [MacroInstance("d", shape), alt])
        assert cell.instances[0].pin_offset(cell.pin("p0")) == (0.0, 0.0)
        assert cell.instances[1].pin_offset(cell.pin("p0")) == (1.0, 1.0)

    def test_missing_offset_rejected_at_construction(self):
        shape = TileSet.rectangle(4, 4)
        pin = Pin("p", "n", PinKind.FIXED, offset=(0, 0))
        cell = MacroCell("m", [pin], [MacroInstance("d", shape)])
        assert cell.num_instances == 1

    def test_pin_lookup_error(self):
        cell = MacroCell.rectangular("m", 4, 4, [fixed_pin()])
        with pytest.raises(KeyError):
            cell.pin("nope")

    def test_empty_name(self):
        with pytest.raises(ValueError):
            MacroCell.rectangular("", 4, 4, [fixed_pin()])


class TestCustomCell:
    def make(self, **kw):
        defaults = dict(
            name="c",
            pins=[Pin("a", "n", PinKind.EDGE)],
            area=100.0,
            aspect=ContinuousAspectRatio(0.5, 2.0),
        )
        defaults.update(kw)
        return CustomCell(**defaults)

    def test_positive_area(self):
        with pytest.raises(ValueError):
            self.make(area=0)

    def test_dimensions_realize_area(self):
        cell = self.make()
        for ar in (0.5, 1.0, 2.0):
            w, h = cell.dimensions(ar)
            assert w * h == pytest.approx(100.0)
            assert h / w == pytest.approx(ar)

    def test_dimensions_reject_out_of_range(self):
        with pytest.raises(ValueError):
            self.make().dimensions(5.0)

    def test_shape_for(self):
        shape = self.make().shape_for(1.0)
        assert shape.area == pytest.approx(100.0)
        assert shape.bbox.center.x == pytest.approx(0.0)

    def test_sites_for(self):
        cell = self.make(sites_per_edge=4)
        sites = cell.sites_for(1.0)
        assert len(sites) == 16

    def test_uncommitted_pins(self):
        cell = self.make(
            pins=[
                Pin("a", "n", PinKind.EDGE),
                Pin("b", "n", PinKind.FIXED, offset=(0, 0)),
            ]
        )
        assert [p.name for p in cell.uncommitted_pins()] == ["a"]

    def test_pin_groups_singletons(self):
        cell = self.make()
        groups = cell.pin_groups()
        assert list(groups) == ["__pin__a"]

    def test_pin_groups_sequence_sorted(self):
        pins = [
            Pin("z", "n", PinKind.SEQUENCE, group="s", sequence_index=1),
            Pin("a", "n", PinKind.SEQUENCE, group="s", sequence_index=0),
        ]
        cell = self.make(pins=pins)
        groups = cell.pin_groups()
        assert [p.name for p in groups["s"]] == ["a", "z"]

    def test_is_custom(self):
        cell = self.make()
        assert cell.is_custom and not cell.is_macro

    @given(st.floats(0.5, 2.0, allow_nan=False))
    def test_dimensions_property(self, ar):
        w, h = self.make().dimensions(ar)
        assert w > 0 and h > 0
        assert math.isclose(w * h, 100.0, rel_tol=1e-9)
