"""Pad-ring generation."""

import pytest

from repro.geometry import Rect
from repro.netlist import Circuit, MacroCell, Pin, PinKind, make_pad_ring


class TestValidation:
    def test_bad_core(self):
        with pytest.raises(ValueError):
            make_pad_ring(0, 10, ["a"])

    def test_no_signals(self):
        with pytest.raises(ValueError):
            make_pad_ring(10, 10, [])

    def test_pads_must_fit(self):
        with pytest.raises(ValueError):
            make_pad_ring(20, 20, [f"s{i}" for i in range(40)], pad_width=10)


class TestGeometry:
    def test_one_pad_per_signal(self):
        pads = make_pad_ring(100, 80, [f"s{i}" for i in range(7)])
        assert len(pads) == 7
        assert all(p.is_fixed for p in pads)

    def test_pads_outside_core(self):
        core = Rect.from_center(0, 0, 100, 80)
        pads = make_pad_ring(100, 80, [f"s{i}" for i in range(8)], clearance=4)
        for pad in pads:
            x, y = pad.fixed.x, pad.fixed.y
            assert not core.contains_point(x, y)

    def test_pads_disjoint(self):
        pads = make_pad_ring(100, 80, [f"s{i}" for i in range(12)])
        shapes = []
        for pad in pads:
            shape = (
                pad.instances[0]
                .shape.transformed(pad.fixed.orientation)
                .translated(pad.fixed.x, pad.fixed.y)
            )
            shapes.append(shape)
        for i in range(len(shapes)):
            for j in range(i + 1, len(shapes)):
                assert shapes[i].overlap_area(shapes[j]) == 0.0

    def test_pins_face_core(self):
        from repro.geometry import orientation as ori

        pads = make_pad_ring(100, 80, [f"s{i}" for i in range(8)])
        for pad in pads:
            pin = pad.pin("io")
            lx, ly = pad.instances[0].pin_offset(pin)
            wx, wy = ori.transform_point(pad.fixed.orientation, lx, ly)
            pin_x, pin_y = pad.fixed.x + wx, pad.fixed.y + wy
            # The pin must be nearer the core center than the pad center is.
            assert abs(pin_x) + abs(pin_y) < abs(pad.fixed.x) + abs(pad.fixed.y)

    def test_signals_assigned_in_order(self):
        pads = make_pad_ring(100, 80, ["clk", "rst", "d0", "d1"])
        assert [p.pin("io").net for p in pads] == ["clk", "rst", "d0", "d1"]


class TestInFlow:
    def test_padded_circuit_places(self):
        from repro import TimberWolfConfig, place_and_route

        signals = [f"s{i}" for i in range(6)]
        pads = make_pad_ring(60, 60, signals, clearance=2)
        core_cells = [
            MacroCell.rectangular(
                f"m{i}",
                14,
                14,
                [
                    Pin("a", signals[i], PinKind.FIXED, offset=(0, 7)),
                    Pin("b", signals[(i + 1) % 6], PinKind.FIXED, offset=(0, -7)),
                ],
            )
            for i in range(6)
        ]
        circuit = Circuit("padded", pads + core_cells)
        result = place_and_route(circuit, TimberWolfConfig.smoke(seed=3))
        state = result.state
        for pad in pads:
            record = state.records[state.index[pad.name]]
            assert record.center == (pad.fixed.x, pad.fixed.y)
        assert result.teil > 0
