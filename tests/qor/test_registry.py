"""The SQLite run registry: rows, lookups, rolling baselines, bench history."""

import pytest

from repro.qor import QOR_METRICS, RegistryError, RunRegistry


def manifest(
    run_id,
    created=None,
    circuit_sha="c" * 16,
    config_sha="f" * 16,
    seed=0,
    resumed_from=None,
):
    return {
        "run_id": run_id,
        "created": created,
        "command": "place",
        "circuit": {"name": "fix", "sha256": circuit_sha, "cells": 6, "nets": 8},
        "config": {
            "sha256": config_sha,
            "values": {"seed": seed, "parallel": {"chains": 2, "workers": 2}},
        },
        "package_version": "1.4.0",
        "resumed_from": resumed_from,
        "host": {"cpu_count": 4},
    }


def qor(teil=100.0, **over):
    record = {
        "teil": teil,
        "stage1_teil": teil * 1.1,
        "chip_area": 5000.0,
        "core_target_area": 4000.0,
        "area_vs_target": 1.25,
        "overflow": 0,
        "wall_seconds": 2.0,
        "moves": 1000,
        "moves_per_sec": 500.0,
        "temperatures": 20,
        "truncated": False,
        "failures": [],
        "stage_times": {"stage1": {"calls": 1, "wall_s": 1.5}},
        "metrics": {"stage1.move_metrics": {"displace": 3}},
    }
    record.update(over)
    return record


@pytest.fixture()
def registry(tmp_path):
    with RunRegistry(tmp_path / "reg.sqlite") as reg:
        yield reg


class TestRuns:
    def test_round_trip(self, registry):
        registry.register_run(manifest("run-a", created=1.0))
        run = registry.get_run("run-a")
        assert run["status"] == "running"
        assert run["circuit"] == "fix"
        assert run["circuit_sha256"] == "c" * 16
        assert run["chains"] == 2 and run["workers"] == 2
        assert run["host"] == {"cpu_count": 4}
        assert run["config"]["seed"] == 0

    def test_finish_advances_status(self, registry):
        registry.register_run(manifest("run-a"))
        registry.finish_run("run-a", "ok")
        run = registry.get_run("run-a")
        assert run["status"] == "ok"
        assert run["finished"] is not None

    def test_reregister_keeps_single_identity(self, registry):
        """A resumed run re-registers under its original id: one row."""
        registry.register_run(manifest("run-a", created=1.0))
        registry.finish_run("run-a", "interrupted")
        registry.register_run(
            manifest("run-a", created=2.0, resumed_from="ckpt.ckpt")
        )
        assert len(registry.runs()) == 1
        run = registry.get_run("run-a")
        assert run["status"] == "running"
        assert run["resumed_from"] == "ckpt.ckpt"

    def test_prefix_lookup(self, registry):
        registry.register_run(manifest("20260806-010101-aaaaaa"))
        assert registry.get_run("20260806-010101")["run_id"].endswith("aaaaaa")

    def test_ambiguous_prefix_raises(self, registry):
        registry.register_run(manifest("20260806-010101-aaaaaa"))
        registry.register_run(manifest("20260806-010102-bbbbbb"))
        with pytest.raises(RegistryError, match="ambiguous"):
            registry.get_run("20260806")

    def test_unknown_run_raises(self, registry):
        with pytest.raises(RegistryError, match="no run"):
            registry.get_run("nope")


class TestQor:
    def test_round_trip(self, registry):
        registry.register_run(manifest("run-a"))
        registry.record_qor("run-a", qor())
        record = registry.get_qor("run-a")
        assert record["teil"] == 100.0
        assert record["truncated"] == 0
        assert record["stage_times"]["stage1"]["wall_s"] == 1.5
        assert record["metrics"]["stage1.move_metrics"]["displace"] == 3
        # Join columns from the runs row ride along for gating.
        assert record["circuit_sha256"] == "c" * 16
        assert record["config_sha256"] == "f" * 16

    def test_missing_qor_raises(self, registry):
        registry.register_run(manifest("run-a"))
        with pytest.raises(RegistryError, match="no QoR"):
            registry.get_qor("run-a")

    def test_replace_on_resume(self, registry):
        registry.register_run(manifest("run-a"))
        registry.record_qor("run-a", qor(teil=150.0, truncated=True))
        registry.record_qor("run-a", qor(teil=100.0))
        assert registry.get_qor("run-a")["teil"] == 100.0

    def test_listing_joins_qor(self, registry):
        registry.register_run(manifest("run-a", created=1.0))
        registry.register_run(manifest("run-b", created=2.0))
        registry.record_qor("run-b", qor())
        rows = registry.runs()
        assert [r["run_id"] for r in rows] == ["run-b", "run-a"]
        assert rows[0]["teil"] == 100.0
        assert rows[1]["teil"] is None
        assert [r["run_id"] for r in registry.runs(with_qor_only=True)] == ["run-b"]

    def test_latest_run_id(self, registry):
        assert registry.latest_run_id() is None
        registry.register_run(manifest("run-a", created=1.0))
        assert registry.latest_run_id() is None  # no QoR yet
        assert registry.latest_run_id(with_qor=False) == "run-a"
        registry.record_qor("run-a", qor())
        assert registry.latest_run_id() == "run-a"


class TestBaseline:
    def _completed(self, registry, run_id, created, teil, **kw):
        registry.register_run(manifest(run_id, created=created, **kw))
        registry.record_qor(run_id, qor(teil=teil))
        registry.finish_run(run_id, "ok")

    def test_rolling_mean_over_window(self, registry):
        for i, teil in enumerate([100.0, 110.0, 120.0]):
            self._completed(registry, f"run-{i}", float(i), teil)
        base = registry.baseline("c" * 16, config_sha256="f" * 16)
        assert base["window"] == 3
        assert base["teil"] == pytest.approx(110.0)
        assert base["run_id"] == "baseline[3]"
        assert set(base["members"]) == {"run-0", "run-1", "run-2"}
        for metric in QOR_METRICS:
            assert metric in base

    def test_excludes_candidate_truncated_and_failed(self, registry):
        self._completed(registry, "good", 1.0, 100.0)
        # Truncated run: completed but flagged.
        registry.register_run(manifest("trunc", created=2.0))
        registry.record_qor("trunc", qor(teil=999.0, truncated=True))
        registry.finish_run("trunc", "truncated")
        # Failed run never gets status ok.
        registry.register_run(manifest("dead", created=3.0))
        registry.record_qor("dead", qor(teil=999.0))
        registry.finish_run("dead", "failed")
        # The candidate itself must not be its own baseline.
        self._completed(registry, "cand", 4.0, 200.0)
        base = registry.baseline("c" * 16, exclude_run="cand")
        assert base["window"] == 1
        assert base["teil"] == 100.0

    def test_config_filter_and_no_match(self, registry):
        self._completed(registry, "other", 1.0, 100.0, config_sha="9" * 16)
        assert registry.baseline("c" * 16, config_sha256="f" * 16) is None
        assert registry.baseline("missing-circuit") is None


class TestBench:
    def test_history_is_oldest_first_and_filtered(self, registry):
        registry.record_bench("moves", "sha-a", {"recorded": 1.0, "rate": 10})
        registry.record_bench("moves", "sha-a", {"recorded": 2.0, "rate": 12})
        registry.record_bench("moves", "sha-b", {"recorded": 3.0, "rate": 99})
        registry.record_bench("other", "sha-a", {"recorded": 4.0, "rate": 1})
        history = registry.bench_history("moves", config_sha256="sha-a")
        assert [h["rate"] for h in history] == [10, 12]
        assert all(h["config_sha256"] == "sha-a" for h in history)
        assert len(registry.bench_history("moves")) == 3

    def test_record_bench_helper(self, tmp_path):
        """benchmarks/common.record_bench_result appends and returns history."""
        import sys
        from pathlib import Path

        bench_dir = str(Path(__file__).resolve().parents[2] / "benchmarks")
        sys.path.insert(0, bench_dir)
        try:
            from common import record_bench_result
        finally:
            sys.path.remove(bench_dir)
        path = tmp_path / "bench.sqlite"
        first = record_bench_result("t", {"x": 1}, registry_path=path)
        second = record_bench_result("t", {"x": 2}, registry_path=path)
        assert len(first) == 1 and len(second) == 2
        assert [h["x"] for h in second] == [1, 2]
        assert all("host" in h and "recorded" in h for h in second)


class TestReadonly:
    def test_readonly_reads_without_writing(self, tmp_path):
        path = tmp_path / "reg.sqlite"
        with RunRegistry(path) as reg:
            reg.register_run(manifest("run-1"))
        with RunRegistry(path, readonly=True) as ro:
            assert [r["run_id"] for r in ro.runs()] == ["run-1"]
            import sqlite3

            with pytest.raises(sqlite3.OperationalError):
                ro.register_run(manifest("run-2"))

    def test_readonly_never_creates_the_file(self, tmp_path):
        import sqlite3

        path = tmp_path / "missing.sqlite"
        with pytest.raises(sqlite3.OperationalError):
            RunRegistry(path, readonly=True)
        assert not path.exists()
