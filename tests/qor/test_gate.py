"""QoR comparison and regression gating semantics."""

import pytest

from repro.qor import (
    COMPARE_METRICS,
    GateRule,
    GateThresholds,
    compare_records,
    gate_records,
)


def record(**over):
    base = {
        "run_id": over.pop("run_id", "r"),
        "teil": 100.0,
        "stage1_teil": 110.0,
        "chip_area": 5000.0,
        "area_vs_target": 1.25,
        "overflow": 2,
        "residual_overlap": 0.0,
        "wall_seconds": 10.0,
        "moves_per_sec": 500.0,
        "temperatures": 20,
    }
    base.update(over)
    return base


class TestCompare:
    def test_deltas_for_every_metric(self):
        deltas = compare_records(record(teil=110.0), record())
        assert [d.metric for d in deltas] == list(COMPARE_METRICS)
        teil = next(d for d in deltas if d.metric == "teil")
        assert teil.delta == pytest.approx(10.0)
        assert teil.delta_pct == pytest.approx(10.0)

    def test_missing_metric_has_no_delta(self):
        deltas = compare_records(record(overflow=None), record())
        overflow = next(d for d in deltas if d.metric == "overflow")
        assert overflow.delta is None and overflow.delta_pct is None


class TestGate:
    def test_identical_records_pass(self):
        report = gate_records(record(run_id="a"), record(run_id="b"))
        assert report.ok
        assert report.candidate_id == "a" and report.baseline_id == "b"
        assert not report.regressions

    def test_within_tolerance_passes(self):
        # 5% default tolerance: 104 vs 100 is fine.
        assert gate_records(record(teil=104.0), record()).ok

    def test_teil_regression_trips(self):
        report = gate_records(record(teil=110.0), record())
        assert not report.ok
        assert [d.metric for d in report.regressions] == ["teil"]
        teil = report.regressions[0]
        assert teil.limit == pytest.approx(105.0)

    def test_improvement_never_trips(self):
        assert gate_records(record(teil=50.0, chip_area=100.0), record()).ok

    def test_overflow_is_absolute_zero_tolerance(self):
        assert not gate_records(record(overflow=3), record(overflow=2)).ok
        assert gate_records(
            record(overflow=3),
            record(overflow=2),
            GateThresholds(overflow_abs=1.0),
        ).ok

    def test_missing_metric_never_gates(self):
        # A router-less candidate cannot fail the overflow gate.
        report = gate_records(record(overflow=None), record())
        overflow = next(d for d in report.deltas if d.metric == "overflow")
        assert not overflow.regressed and overflow.limit is None
        assert report.ok

    def test_wall_time_informational_by_default(self):
        assert gate_records(record(wall_seconds=99.0), record()).ok
        report = gate_records(
            record(wall_seconds=99.0),
            record(),
            GateThresholds(wall_pct=50.0),
        )
        assert [d.metric for d in report.regressions] == ["wall_seconds"]

    def test_custom_thresholds(self):
        loose = GateThresholds(teil_pct=20.0, area_pct=20.0)
        assert gate_records(record(teil=115.0, chip_area=5800.0), record(), loose).ok


class TestGateRule:
    def test_pct_limit(self):
        assert GateRule("teil", pct=5.0).limit(200.0) == pytest.approx(210.0)

    def test_absolute_limit(self):
        assert GateRule("overflow", absolute=2.0).limit(3.0) == pytest.approx(5.0)

    def test_default_rules_cover_the_qor_headline_metrics(self):
        metrics = {r.metric for r in GateThresholds().rules()}
        assert metrics == {"teil", "chip_area", "area_vs_target", "overflow"}
        with_wall = {r.metric for r in GateThresholds(wall_pct=10.0).rules()}
        assert "wall_seconds" in with_wall
