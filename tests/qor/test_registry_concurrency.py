"""Multi-process-shaped registry hardening: WAL, busy timeout, retry.

The placement service points a supervisor, N workers, and monitors at
one registry file; these tests pin the connection configuration and the
bounded ``database is locked`` retry that make that safe.
"""

import sqlite3
import threading

import pytest

from repro.qor.registry import (
    BUSY_TIMEOUT_MS,
    RunRegistry,
    configure_connection,
    retry_locked,
)


class TestConnectionConfiguration:
    def test_writable_connection_is_wal(self, tmp_path):
        with RunRegistry(tmp_path / "r.sqlite") as registry:
            mode = registry._conn.execute("PRAGMA journal_mode").fetchone()[0]
            assert mode == "wal"

    def test_busy_timeout_applied(self, tmp_path):
        with RunRegistry(tmp_path / "r.sqlite") as registry:
            timeout = registry._conn.execute("PRAGMA busy_timeout").fetchone()[0]
            assert timeout == BUSY_TIMEOUT_MS

    def test_configure_readonly_does_not_switch_journal_mode(self, tmp_path):
        path = tmp_path / "plain.sqlite"
        conn = sqlite3.connect(str(path))
        conn.execute("CREATE TABLE t (x)")
        conn.commit()
        conn.close()
        ro = sqlite3.connect(f"file:{path}?mode=ro", uri=True)
        configure_connection(ro, readonly=True)
        # Still whatever the file had (delete), not WAL: a read-only
        # monitor must not attempt a journal-mode change.
        assert ro.execute("PRAGMA journal_mode").fetchone()[0] == "delete"
        assert ro.execute("PRAGMA busy_timeout").fetchone()[0] == BUSY_TIMEOUT_MS
        ro.close()


class TestRetryLocked:
    def test_passes_result_through(self):
        assert retry_locked(lambda: 42) == 42

    def test_retries_transient_lock(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise sqlite3.OperationalError("database is locked")
            return "ok"

        assert retry_locked(flaky, retries=5, delay=0.001) == "ok"
        assert len(calls) == 3

    def test_gives_up_after_bounded_retries(self):
        def always_locked():
            raise sqlite3.OperationalError("database is locked")

        with pytest.raises(sqlite3.OperationalError, match="locked"):
            retry_locked(always_locked, retries=2, delay=0.001)

    def test_other_operational_errors_not_retried(self):
        calls = []

        def broken():
            calls.append(1)
            raise sqlite3.OperationalError("no such table: nope")

        with pytest.raises(sqlite3.OperationalError, match="no such table"):
            retry_locked(broken, retries=5, delay=0.001)
        assert len(calls) == 1


class TestContention:
    def test_write_succeeds_while_another_connection_holds_the_lock(
        self, tmp_path
    ):
        """A second connection holding a write lock only delays — never
        fails — a registry write, via busy timeout + retry."""
        path = tmp_path / "r.sqlite"
        with RunRegistry(path) as registry:
            blocker = sqlite3.connect(str(path), check_same_thread=False)
            blocker.execute("PRAGMA busy_timeout=5000")
            blocker.execute("BEGIN IMMEDIATE")
            blocker.execute(
                "INSERT INTO runs(run_id, created, status) VALUES('x', 0, 'running')"
            )
            release = threading.Timer(0.3, blocker.commit)
            release.start()
            try:
                registry.register_run({"run_id": "r1"})
            finally:
                release.join()
                blocker.close()
            rows = registry.runs()
            assert {r["run_id"] for r in rows} == {"x", "r1"}

    def test_concurrent_writers_all_land(self, tmp_path):
        path = tmp_path / "r.sqlite"
        RunRegistry(path).close()
        errors = []

        def hammer(k):
            try:
                with RunRegistry(path) as registry:
                    for i in range(10):
                        registry.register_run({"run_id": f"run-{k}-{i}"})
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(k,)) for k in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        with RunRegistry(path) as registry:
            assert len(registry.runs()) == 40
