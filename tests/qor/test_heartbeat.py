"""Heartbeat files: atomic writes, throttling, and the ambient contextvar."""

import json
import threading

import pytest

from repro.qor import (
    HEARTBEAT_VERSION,
    NULL_HEARTBEAT,
    HeartbeatWriter,
    NullHeartbeat,
    current_heartbeat,
    parse_prometheus,
    read_heartbeat,
    use_heartbeat,
)


class TestNullHeartbeat:
    def test_disabled_and_inert(self):
        hb = NullHeartbeat()
        assert not hb.enabled
        hb.beat("anneal", step=1)  # must not raise, must not write
        hb.set_context(stage="stage1")


class TestWriter:
    def test_beat_round_trip(self, tmp_path):
        path = tmp_path / "hb.json"
        writer = HeartbeatWriter(path, run_id="r1")
        writer.beat("anneal", step=3, T=100.0)
        doc = read_heartbeat(path)
        assert doc["v"] == HEARTBEAT_VERSION
        assert doc["run_id"] == "r1"
        assert doc["phase"] == "anneal"
        assert doc["seq"] == 1
        assert doc["step"] == 3 and doc["T"] == 100.0
        assert doc["final"] is False
        assert doc["updated"] > 0

    def test_context_merges_and_none_deletes(self, tmp_path):
        path = tmp_path / "hb.json"
        writer = HeartbeatWriter(path)
        writer.set_context(stage="stage1", circuit="fix")
        writer.beat("anneal")
        assert read_heartbeat(path)["stage"] == "stage1"
        writer.set_context(stage=None)
        writer.beat("anneal")
        doc = read_heartbeat(path)
        assert "stage" not in doc
        assert doc["circuit"] == "fix"

    def test_per_beat_fields_win_over_context(self, tmp_path):
        path = tmp_path / "hb.json"
        writer = HeartbeatWriter(path)
        writer.set_context(stage="stage1")
        writer.beat("anneal", stage="override")
        assert read_heartbeat(path)["stage"] == "override"

    def test_throttle_skips_fast_same_phase_beats(self, tmp_path):
        path = tmp_path / "hb.json"
        writer = HeartbeatWriter(path, min_interval=3600.0)
        writer.beat("anneal", step=1)
        writer.beat("anneal", step=2)  # throttled
        assert read_heartbeat(path)["step"] == 1
        writer.beat("route")  # phase change always writes
        assert read_heartbeat(path)["phase"] == "route"
        writer.beat("route", final=True, step=9)  # final always writes
        doc = read_heartbeat(path)
        assert doc["final"] is True and doc["step"] == 9

    def test_negative_interval_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            HeartbeatWriter(tmp_path / "hb.json", min_interval=-1.0)

    def test_read_missing_is_none(self, tmp_path):
        assert read_heartbeat(tmp_path / "nope.json") is None

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "rundir" / "hb.json"
        HeartbeatWriter(path).beat("start")
        assert read_heartbeat(path)["phase"] == "start"

    def test_metrics_textfile_rendered_per_beat(self, tmp_path):
        prom = tmp_path / "metrics.prom"
        writer = HeartbeatWriter(
            tmp_path / "hb.json", run_id="r1", metrics_textfile=prom
        )
        writer.beat("anneal", T=50.0, cost=123.5)
        parsed = parse_prometheus(prom.read_text(encoding="utf-8"))
        label = '{run_id="r1"}'
        assert parsed["repro_T" + label] == 50.0
        assert parsed["repro_cost" + label] == 123.5


class TestAtomicity:
    def test_reader_never_sees_partial_json(self, tmp_path):
        """A writer hammering beats while a reader polls: every read either
        returns None (no file yet) or parses as a complete document."""
        path = tmp_path / "hb.json"
        writer = HeartbeatWriter(path, run_id="race")
        stop = threading.Event()
        errors = []

        def pound():
            step = 0
            while not stop.is_set():
                step += 1
                # A long field value makes a torn write easy to catch.
                writer.beat("anneal", step=step, pad="x" * 4096)

        thread = threading.Thread(target=pound)
        thread.start()
        try:
            seen = 0
            while seen < 200:
                try:
                    doc = read_heartbeat(path)
                except (json.JSONDecodeError, ValueError) as exc:
                    errors.append(exc)
                    break
                if doc is not None:
                    seen += 1
                    if doc["run_id"] != "race" or len(doc["pad"]) != 4096:
                        errors.append(f"partial document: {doc}")
                        break
        finally:
            stop.set()
            thread.join()
        assert not errors


class TestAmbientHeartbeat:
    def test_default_is_null(self):
        assert current_heartbeat() is NULL_HEARTBEAT

    def test_install_and_restore(self, tmp_path):
        writer = HeartbeatWriter(tmp_path / "hb.json")
        with use_heartbeat(writer):
            assert current_heartbeat() is writer
            with use_heartbeat(NULL_HEARTBEAT):
                assert current_heartbeat() is NULL_HEARTBEAT
            assert current_heartbeat() is writer
        assert current_heartbeat() is NULL_HEARTBEAT


class TestHistoryRing:
    def test_every_beat_lands_in_the_ring(self, tmp_path):
        from repro.qor import history_path, read_history

        writer = HeartbeatWriter(tmp_path / "hb.json", run_id="r1")
        for step in range(5):
            writer.beat("anneal", step=step)
        ring = read_history(history_path(tmp_path / "hb.json"))
        assert [b["seq"] for b in ring] == [1, 2, 3, 4, 5]
        assert [b["step"] for b in ring] == [0, 1, 2, 3, 4]

    def test_ring_path_derivation(self, tmp_path):
        from repro.qor import history_path

        assert (
            history_path(tmp_path / "heartbeat.json").name
            == "heartbeat.history.jsonl"
        )

    def test_compaction_bounds_the_file(self, tmp_path):
        from repro.qor import history_path, read_history

        writer = HeartbeatWriter(
            tmp_path / "hb.json", run_id="r1", history_limit=10
        )
        for step in range(55):
            writer.beat("anneal", step=step)
        ring = read_history(history_path(tmp_path / "hb.json"))
        # Never more than 2*limit lines survive; the newest always do.
        assert len(ring) <= 20
        assert ring[-1]["seq"] == 55
        seqs = [b["seq"] for b in ring]
        assert seqs == sorted(seqs)

    def test_history_limit_zero_disables_the_ring(self, tmp_path):
        from repro.qor import history_path

        writer = HeartbeatWriter(
            tmp_path / "hb.json", run_id="r1", history_limit=0
        )
        writer.beat("anneal", step=1)
        assert not history_path(tmp_path / "hb.json").exists()

    def test_since_seq_and_limit_filters(self, tmp_path):
        from repro.qor import history_path, read_history

        writer = HeartbeatWriter(tmp_path / "hb.json", run_id="r1")
        for step in range(6):
            writer.beat("anneal", step=step)
        ring_path = history_path(tmp_path / "hb.json")
        assert [b["seq"] for b in read_history(ring_path, since_seq=4)] == [5, 6]
        assert [b["seq"] for b in read_history(ring_path, limit=2)] == [5, 6]
        assert [
            b["seq"] for b in read_history(ring_path, since_seq=2, limit=2)
        ] == [5, 6]

    def test_torn_final_line_skipped_mid_file_corruption_raises(self, tmp_path):
        from repro.qor import history_path, read_history

        writer = HeartbeatWriter(tmp_path / "hb.json", run_id="r1")
        writer.beat("anneal", step=1)
        ring_path = history_path(tmp_path / "hb.json")
        with open(ring_path, "a", encoding="utf-8") as handle:
            handle.write('{"seq": 2, "torn')
        assert [b["seq"] for b in read_history(ring_path)] == [1]
        ring_path.write_text('{"seq": 1, "bad\n{"seq": 2}\n', encoding="utf-8")
        with pytest.raises(json.JSONDecodeError):
            read_history(ring_path)

    def test_missing_ring_reads_empty(self, tmp_path):
        from repro.qor import read_history

        assert read_history(tmp_path / "absent.jsonl") == []

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            HeartbeatWriter(tmp_path / "hb.json", history_limit=-1)


class TestReadRetry:
    def test_vanished_file_is_retried_then_none(self, tmp_path, monkeypatch):
        import time as time_module

        sleeps = []
        monkeypatch.setattr(time_module, "sleep", sleeps.append)
        assert read_heartbeat(tmp_path / "hb.json", retries=2) is None
        assert len(sleeps) == 2  # both retries waited before giving up

    def test_mid_replace_enoent_recovers(self, tmp_path, monkeypatch):
        """A reader that hits the ENOENT window of a non-atomic replace
        sees the document on retry, not a crash or a spurious None."""
        from pathlib import Path

        path = tmp_path / "hb.json"
        writer = HeartbeatWriter(path, run_id="r1")
        writer.beat("anneal", step=7)
        real_read_text = Path.read_text
        failures = {"left": 2}

        def flaky_read_text(self, *args, **kwargs):
            if self == path and failures["left"] > 0:
                failures["left"] -= 1
                raise FileNotFoundError(str(self))
            return real_read_text(self, *args, **kwargs)

        monkeypatch.setattr(Path, "read_text", flaky_read_text)
        doc = read_heartbeat(path, retries=2, retry_delay=0.001)
        assert doc is not None and doc["step"] == 7
        assert failures["left"] == 0

    def test_concurrent_writer_never_breaks_readers(self, tmp_path):
        """Satellite: a watch-style reader polling while a writer beats
        as fast as it can must never see a torn document or crash."""
        from repro.qor import history_path, read_history

        path = tmp_path / "hb.json"
        writer = HeartbeatWriter(path, run_id="race2", history_limit=16)
        stop = threading.Event()
        errors = []

        def pound():
            step = 0
            while not stop.is_set():
                writer.beat("anneal", step=step, pad="x" * 2048)
                step += 1

        thread = threading.Thread(target=pound)
        thread.start()
        try:
            reads = 0
            last_seq = 0
            while reads < 300:
                doc = read_heartbeat(path)
                if doc is None:
                    continue
                reads += 1
                if doc["seq"] < last_seq:
                    errors.append(f"seq went backwards: {doc['seq']}")
                    break
                last_seq = doc["seq"]
                ring = read_history(history_path(path))
                ring_seqs = [b["seq"] for b in ring]
                if ring_seqs != sorted(ring_seqs):
                    errors.append(f"ring out of order: {ring_seqs}")
                    break
        except Exception as exc:  # noqa: BLE001 - the assertion target
            errors.append(exc)
        finally:
            stop.set()
            thread.join()
        assert not errors
