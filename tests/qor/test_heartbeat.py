"""Heartbeat files: atomic writes, throttling, and the ambient contextvar."""

import json
import threading

import pytest

from repro.qor import (
    HEARTBEAT_VERSION,
    NULL_HEARTBEAT,
    HeartbeatWriter,
    NullHeartbeat,
    current_heartbeat,
    parse_prometheus,
    read_heartbeat,
    use_heartbeat,
)


class TestNullHeartbeat:
    def test_disabled_and_inert(self):
        hb = NullHeartbeat()
        assert not hb.enabled
        hb.beat("anneal", step=1)  # must not raise, must not write
        hb.set_context(stage="stage1")


class TestWriter:
    def test_beat_round_trip(self, tmp_path):
        path = tmp_path / "hb.json"
        writer = HeartbeatWriter(path, run_id="r1")
        writer.beat("anneal", step=3, T=100.0)
        doc = read_heartbeat(path)
        assert doc["v"] == HEARTBEAT_VERSION
        assert doc["run_id"] == "r1"
        assert doc["phase"] == "anneal"
        assert doc["seq"] == 1
        assert doc["step"] == 3 and doc["T"] == 100.0
        assert doc["final"] is False
        assert doc["updated"] > 0

    def test_context_merges_and_none_deletes(self, tmp_path):
        path = tmp_path / "hb.json"
        writer = HeartbeatWriter(path)
        writer.set_context(stage="stage1", circuit="fix")
        writer.beat("anneal")
        assert read_heartbeat(path)["stage"] == "stage1"
        writer.set_context(stage=None)
        writer.beat("anneal")
        doc = read_heartbeat(path)
        assert "stage" not in doc
        assert doc["circuit"] == "fix"

    def test_per_beat_fields_win_over_context(self, tmp_path):
        path = tmp_path / "hb.json"
        writer = HeartbeatWriter(path)
        writer.set_context(stage="stage1")
        writer.beat("anneal", stage="override")
        assert read_heartbeat(path)["stage"] == "override"

    def test_throttle_skips_fast_same_phase_beats(self, tmp_path):
        path = tmp_path / "hb.json"
        writer = HeartbeatWriter(path, min_interval=3600.0)
        writer.beat("anneal", step=1)
        writer.beat("anneal", step=2)  # throttled
        assert read_heartbeat(path)["step"] == 1
        writer.beat("route")  # phase change always writes
        assert read_heartbeat(path)["phase"] == "route"
        writer.beat("route", final=True, step=9)  # final always writes
        doc = read_heartbeat(path)
        assert doc["final"] is True and doc["step"] == 9

    def test_negative_interval_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            HeartbeatWriter(tmp_path / "hb.json", min_interval=-1.0)

    def test_read_missing_is_none(self, tmp_path):
        assert read_heartbeat(tmp_path / "nope.json") is None

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "rundir" / "hb.json"
        HeartbeatWriter(path).beat("start")
        assert read_heartbeat(path)["phase"] == "start"

    def test_metrics_textfile_rendered_per_beat(self, tmp_path):
        prom = tmp_path / "metrics.prom"
        writer = HeartbeatWriter(
            tmp_path / "hb.json", run_id="r1", metrics_textfile=prom
        )
        writer.beat("anneal", T=50.0, cost=123.5)
        parsed = parse_prometheus(prom.read_text(encoding="utf-8"))
        label = '{run_id="r1"}'
        assert parsed["repro_T" + label] == 50.0
        assert parsed["repro_cost" + label] == 123.5


class TestAtomicity:
    def test_reader_never_sees_partial_json(self, tmp_path):
        """A writer hammering beats while a reader polls: every read either
        returns None (no file yet) or parses as a complete document."""
        path = tmp_path / "hb.json"
        writer = HeartbeatWriter(path, run_id="race")
        stop = threading.Event()
        errors = []

        def pound():
            step = 0
            while not stop.is_set():
                step += 1
                # A long field value makes a torn write easy to catch.
                writer.beat("anneal", step=step, pad="x" * 4096)

        thread = threading.Thread(target=pound)
        thread.start()
        try:
            seen = 0
            while seen < 200:
                try:
                    doc = read_heartbeat(path)
                except (json.JSONDecodeError, ValueError) as exc:
                    errors.append(exc)
                    break
                if doc is not None:
                    seen += 1
                    if doc["run_id"] != "race" or len(doc["pad"]) != 4096:
                        errors.append(f"partial document: {doc}")
                        break
        finally:
            stop.set()
            thread.join()
        assert not errors


class TestAmbientHeartbeat:
    def test_default_is_null(self):
        assert current_heartbeat() is NULL_HEARTBEAT

    def test_install_and_restore(self, tmp_path):
        writer = HeartbeatWriter(tmp_path / "hb.json")
        with use_heartbeat(writer):
            assert current_heartbeat() is writer
            with use_heartbeat(NULL_HEARTBEAT):
                assert current_heartbeat() is NULL_HEARTBEAT
            assert current_heartbeat() is writer
        assert current_heartbeat() is NULL_HEARTBEAT
