"""Status/watch rendering over a rundir's atomic files."""

import io
import json
import time

from repro.qor import (
    HeartbeatWriter,
    RunRecorder,
    load_rundir,
    progress_line,
    render_status,
    watch,
)
from repro.qor.monitor import STALE_AFTER


def write_manifest(rundir, run_id="r1"):
    rundir.mkdir(parents=True, exist_ok=True)
    manifest = {
        "run_id": run_id,
        "circuit": {"name": "fix", "cells": 6, "nets": 8, "sha256": "c" * 64},
        "config": {
            "sha256": "f" * 64,
            "values": {"seed": 3, "parallel": {"chains": 2, "workers": 2}},
        },
    }
    (rundir / RunRecorder.MANIFEST_NAME).write_text(json.dumps(manifest))
    return manifest


class TestLoadRundir:
    def test_empty_rundir_is_all_none(self, tmp_path):
        info = load_rundir(tmp_path)
        assert info["manifest"] is None
        assert info["heartbeat"] is None
        assert info["qor"] is None

    def test_picks_up_each_file(self, tmp_path):
        write_manifest(tmp_path)
        HeartbeatWriter(tmp_path / RunRecorder.HEARTBEAT_NAME).beat("anneal")
        (tmp_path / RunRecorder.QOR_NAME).write_text(json.dumps({"teil": 5.0}))
        info = load_rundir(tmp_path)
        assert info["manifest"]["run_id"] == "r1"
        assert info["heartbeat"]["phase"] == "anneal"
        assert info["qor"]["teil"] == 5.0


class TestProgressLine:
    def test_selected_fields_in_order(self):
        line = progress_line(
            {
                "phase": "anneal",
                "stage": "stage1",
                "step": 12,
                "T": 512.25,
                "acceptance": 0.8123,
                "cost": 1234.5,
                "eta_steps": 40,
                "eta_seconds": 9.5,
                "irrelevant": "dropped",
            }
        )
        assert line.startswith("[anneal] stage=stage1 step=12")
        assert "acc=0.8123" in line
        assert "eta_s=9.5" in line
        assert "irrelevant" not in line

    def test_chain_summary_marks_done_chains(self):
        line = progress_line(
            {
                "phase": "parallel",
                "round": 2,
                "chains": {"0": {"cost": 10.0}, "1": {"cost": 12.0, "done": True}},
            }
        )
        assert "round=2" in line
        assert "chains[0:10 1:12*]" in line


class TestRenderStatus:
    def test_full_block(self, tmp_path):
        write_manifest(tmp_path)
        HeartbeatWriter(tmp_path / RunRecorder.HEARTBEAT_NAME, run_id="r1").beat(
            "anneal", step=1
        )
        (tmp_path / RunRecorder.QOR_NAME).write_text(
            json.dumps({"teil": 5.0, "chip_area": 9.0, "overflow": 0,
                        "wall_seconds": 1.5, "truncated": True})
        )
        text = render_status(load_rundir(tmp_path))
        assert "run      r1" in text
        assert "circuit  fix (6 cells, 8 nets)" in text
        assert "chains 2" in text
        assert "[anneal]" in text
        assert "TRUNCATED" in text

    def test_missing_parts_degrade(self, tmp_path):
        text = render_status(load_rundir(tmp_path))
        assert "(no manifest yet)" in text
        assert "(no heartbeat yet)" in text

    def test_stale_beat_flagged(self, tmp_path):
        HeartbeatWriter(tmp_path / RunRecorder.HEARTBEAT_NAME).beat("anneal")
        info = load_rundir(tmp_path)
        now = time.time() + STALE_AFTER + 5
        assert "[STALE]" in render_status(info, now=now)
        # A final beat is complete, not stale.
        HeartbeatWriter(tmp_path / RunRecorder.HEARTBEAT_NAME).beat(
            "done", final=True
        )
        assert "[STALE]" not in render_status(load_rundir(tmp_path), now=now)


class TestWatch:
    def test_stops_on_final_beat(self, tmp_path):
        writer = HeartbeatWriter(
            tmp_path / RunRecorder.HEARTBEAT_NAME, run_id="r1"
        )
        writer.beat("done", final=True, status="ok")
        out = io.StringIO()
        assert watch(tmp_path, interval=0.01, stream=out) == 0
        text = out.getvalue()
        assert "-- r1 entered phase done" in text
        assert "[done]" in text

    def test_no_beat_ever_is_failure(self, tmp_path):
        assert watch(tmp_path, interval=0.01, max_updates=1) == 1

    def test_max_updates_with_live_run(self, tmp_path):
        writer = HeartbeatWriter(tmp_path / RunRecorder.HEARTBEAT_NAME)
        writer.beat("anneal", step=1)
        out = io.StringIO()
        assert watch(tmp_path, interval=0.01, max_updates=1, stream=out) == 0
        assert "[anneal] step=1" in out.getvalue()
