"""The observability CLI: status/watch/qor exit codes, end to end.

Two real (tiny) flow runs go through ``python -m repro place`` with
``--rundir``/``--registry``; everything downstream (list, show, compare,
gate, rolling baseline, degraded-run regression) queries what those runs
actually recorded.
"""

import json

import pytest

from repro.__main__ import main
from repro.netlist import dump
from repro.qor import RunRegistry
from repro.qor.cli import EXIT_MISSING, EXIT_OK, EXIT_REGRESSION

from ..conftest import make_macro_circuit


@pytest.fixture(scope="module")
def flow_env(tmp_path_factory):
    """Two identical-seed smoke runs recorded into one registry."""
    root = tmp_path_factory.mktemp("qor-cli")
    circuit_file = root / "c.twmc"
    dump(make_macro_circuit(seed=3), circuit_file)
    registry = root / "reg.sqlite"
    rundirs = []
    for name in ("run-a", "run-b"):
        rundir = root / name
        code = main(
            [
                "place", str(circuit_file), "--preset", "smoke", "--seed", "5",
                "--rundir", str(rundir), "--registry", str(registry),
                "--metrics-textfile", str(rundir / "metrics.prom"),
            ]
        )
        assert code == 0
        rundirs.append(rundir)
    with RunRegistry(registry) as reg:
        runs = reg.runs()
    run_ids = [r["run_id"] for r in reversed(runs)]  # oldest first
    return {
        "root": root,
        "circuit_file": circuit_file,
        "registry": str(registry),
        "rundirs": rundirs,
        "run_ids": run_ids,
    }


class TestStatus:
    def test_empty_rundir_is_missing(self, tmp_path, capsys):
        assert main(["status", str(tmp_path)]) == EXIT_MISSING

    def test_completed_rundir(self, flow_env, capsys):
        assert main(["status", str(flow_env["rundirs"][0])]) == EXIT_OK
        out = capsys.readouterr().out
        assert "qor" in out
        assert "[done]" in out

    def test_json_mode(self, flow_env, capsys):
        assert main(["status", str(flow_env["rundirs"][0]), "--json"]) == EXIT_OK
        info = json.loads(capsys.readouterr().out)
        assert info["heartbeat"]["final"] is True
        assert info["qor"]["teil"] > 0

    def test_metrics_textfile_written(self, flow_env):
        from repro.qor import parse_prometheus

        text = (flow_env["rundirs"][0] / "metrics.prom").read_text()
        parsed = parse_prometheus(text)  # must be well-formed
        assert any(key.startswith("repro_teil") for key in parsed)


class TestWatch:
    def test_final_heartbeat_exits_zero(self, flow_env, capsys):
        code = main(["watch", str(flow_env["rundirs"][0]), "--interval", "0.01"])
        assert code == EXIT_OK
        assert "entered phase done" in capsys.readouterr().out

    def test_dead_rundir_exits_one(self, tmp_path):
        code = main(
            ["watch", str(tmp_path), "--interval", "0.01", "--max-updates", "1"]
        )
        assert code == 1


class TestQorList:
    def test_lists_both_runs(self, flow_env, capsys):
        assert main(["qor", "list", "--registry", flow_env["registry"]]) == EXIT_OK
        out = capsys.readouterr().out
        for run_id in flow_env["run_ids"]:
            assert run_id in out

    def test_empty_registry_is_missing(self, tmp_path, capsys):
        code = main(
            ["qor", "list", "--registry", str(tmp_path / "empty.sqlite")]
        )
        assert code == EXIT_MISSING


class TestQorShow:
    def test_show_by_prefix(self, flow_env, capsys):
        run_id = flow_env["run_ids"][0]
        # Drop the last character: still unique (the hex suffix differs),
        # no longer an exact id, so the prefix path is exercised.
        assert (
            main(["qor", "show", run_id[:-1], "--registry", flow_env["registry"]])
            == EXIT_OK
        )
        out = capsys.readouterr().out
        assert run_id in out
        assert "teil" in out

    def test_unknown_run_is_missing(self, flow_env, capsys):
        code = main(
            ["qor", "show", "zzz", "--registry", flow_env["registry"]]
        )
        assert code == EXIT_MISSING


class TestQorCompareAndGate:
    def test_compare_identical_seeds(self, flow_env, capsys):
        a, b = flow_env["run_ids"]
        code = main(
            ["qor", "compare", b, a, "--registry", flow_env["registry"]]
        )
        assert code == EXIT_OK
        assert "teil" in capsys.readouterr().out

    def test_gate_passes_against_identical_run(self, flow_env, capsys):
        a, b = flow_env["run_ids"]
        code = main(
            ["qor", "gate", b, "--against", a,
             "--registry", flow_env["registry"]]
        )
        assert code == EXIT_OK
        assert "GATE PASSED" in capsys.readouterr().out

    def test_gate_rolling_baseline_default_candidate(self, flow_env, capsys):
        # No candidate argument: latest run vs the rolling baseline of
        # matching prior runs (run-a).
        code = main(["qor", "gate", "--registry", flow_env["registry"]])
        assert code == EXIT_OK
        assert "baseline[" in capsys.readouterr().out

    def test_gate_fails_on_degraded_run(self, flow_env, capsys):
        degraded = self._insert_degraded(flow_env)
        a = flow_env["run_ids"][0]
        code = main(
            ["qor", "gate", degraded, "--against", a,
             "--registry", flow_env["registry"]]
        )
        assert code == EXIT_REGRESSION
        out = capsys.readouterr().out
        assert "GATE FAILED" in out
        assert "REGRESSED" in out

    def test_gate_json_mode(self, flow_env, capsys):
        degraded = self._insert_degraded(flow_env)
        a = flow_env["run_ids"][0]
        code = main(
            ["qor", "gate", degraded, "--against", a, "--json",
             "--registry", flow_env["registry"]]
        )
        assert code == EXIT_REGRESSION
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert any(d["regressed"] for d in payload["deltas"])

    def test_gate_without_baseline_is_missing(self, flow_env, tmp_path, capsys):
        registry = tmp_path / "solo.sqlite"
        with RunRegistry(flow_env["registry"]) as src, RunRegistry(registry) as dst:
            run_id = flow_env["run_ids"][0]
            run = src.get_run(run_id)
            qor = src.get_qor(run_id)
            dst.register_run(
                {
                    "run_id": run_id,
                    "circuit": {"name": run["circuit"],
                                "sha256": run["circuit_sha256"]},
                    "config": {"sha256": run["config_sha256"], "values": {}},
                }
            )
            dst.record_qor(run_id, qor)
            dst.finish_run(run_id, "ok")
        code = main(["qor", "gate", run_id, "--registry", str(registry)])
        assert code == EXIT_MISSING

    def test_gate_empty_registry_is_missing(self, tmp_path):
        code = main(
            ["qor", "gate", "--registry", str(tmp_path / "none.sqlite")]
        )
        assert code == EXIT_MISSING

    @staticmethod
    def _insert_degraded(flow_env):
        """Clone run-a's QoR with TEIL inflated 50%: a planted regression."""
        degraded_id = "degraded-run"
        with RunRegistry(flow_env["registry"]) as registry:
            try:
                registry.get_run(degraded_id)
                return degraded_id  # already planted by an earlier test
            except Exception:
                pass
            source = registry.get_qor(flow_env["run_ids"][0])
            run = registry.get_run(flow_env["run_ids"][0])
            registry.register_run(
                {
                    "run_id": degraded_id,
                    "circuit": {"name": run["circuit"],
                                "sha256": run["circuit_sha256"]},
                    "config": {"sha256": run["config_sha256"], "values": {}},
                }
            )
            record = dict(source)
            record["teil"] = source["teil"] * 1.5
            record["failures"] = []
            record["truncated"] = bool(source["truncated"])
            registry.record_qor(degraded_id, record)
            registry.finish_run(degraded_id, "ok")
        return degraded_id


class TestResumeIdentity:
    def test_resumed_run_keeps_registry_identity(self, flow_env, capsys):
        """Truncate a run via a temperature budget + checkpoint, resume it:
        one registry row, final status ok, same run id throughout."""
        root = flow_env["root"]
        registry = str(root / "resume.sqlite")
        ckpt_dir = root / "ckpt"
        rundir = root / "resume-rundir"
        code = main(
            [
                "place", str(flow_env["circuit_file"]), "--preset", "smoke",
                "--seed", "5", "--rundir", str(rundir), "--registry", registry,
                "--budget-temperatures", "2", "--checkpoint-dir", str(ckpt_dir),
                "--checkpoint-every", "1",
            ]
        )
        assert code == 0
        capsys.readouterr()
        with RunRegistry(registry) as reg:
            runs = reg.runs()
        assert len(runs) == 1
        original_id = runs[0]["run_id"]
        assert runs[0]["status"] == "truncated"

        checkpoints = sorted(ckpt_dir.glob("*.ckpt"))
        assert checkpoints
        code = main(
            [
                "resume", str(checkpoints[-1]),
                "--rundir", str(root / "resume-rundir-2"), "--registry", registry,
            ]
        )
        assert code == 0
        with RunRegistry(registry) as reg:
            runs = reg.runs()
            record = reg.get_qor(original_id)
        assert len(runs) == 1
        assert runs[0]["run_id"] == original_id
        assert runs[0]["status"] == "ok"
        assert record["truncated"] == 0


class TestStatusExitCodes:
    """Satellite: ``status`` distinguishes healthy, stale, and dead runs."""

    @staticmethod
    def _beat(tmp_path, phase, final=False, **fields):
        from repro.qor import HeartbeatWriter

        writer = HeartbeatWriter(tmp_path / "heartbeat.json", run_id="r1")
        writer.beat(phase, final=final, **fields)
        return writer

    def test_running_fresh_is_ok(self, tmp_path, capsys):
        self._beat(tmp_path, "anneal", step=1)
        assert main(["status", str(tmp_path)]) == EXIT_OK

    def test_stale_heartbeat_exits_4(self, tmp_path, capsys):
        import time

        from repro.qor.cli import EXIT_STALE

        self._beat(tmp_path, "anneal", step=1)
        time.sleep(0.05)
        code = main(["status", str(tmp_path), "--stale-after", "0.01"])
        assert code == EXIT_STALE == 4

    def test_failed_run_exits_5(self, tmp_path, capsys):
        from repro.qor.cli import EXIT_DEAD

        self._beat(tmp_path, "failed", final=True, error="ValueError")
        assert main(["status", str(tmp_path)]) == EXIT_DEAD == 5

    def test_interrupted_run_exits_5(self, tmp_path, capsys):
        from repro.qor.cli import EXIT_DEAD

        self._beat(tmp_path, "interrupted", final=True)
        assert main(["status", str(tmp_path)]) == EXIT_DEAD

    def test_done_run_never_goes_stale(self, tmp_path, capsys):
        self._beat(tmp_path, "done", final=True)
        code = main(["status", str(tmp_path), "--stale-after", "0.0"])
        assert code == EXIT_OK

    def test_exit_codes_are_distinct(self):
        from repro.__main__ import EXIT_INTERRUPTED
        from repro.qor.cli import EXIT_DEAD, EXIT_STALE

        codes = {EXIT_OK, EXIT_REGRESSION, EXIT_MISSING, EXIT_INTERRUPTED,
                 EXIT_STALE, EXIT_DEAD}
        assert len(codes) == 6
