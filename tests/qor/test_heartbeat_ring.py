"""The history ring's compaction generation marker.

Compaction atomically replaces the ring file; without a marker, a
reader that saw the file before and after the swap could only guess
from the size whether it shrank (compacted) or was truncated.  The
generation marker makes the swap observable and ordered — and a writer
re-attaching to an existing rundir (a retried service job) continues
the sequence instead of resetting it.
"""

import json
import threading

from repro.qor.heartbeat import (
    HeartbeatWriter,
    HeartbeatWriter as Writer,
    RING_MARKER_KEY,
    read_history,
    ring_generation,
)
from repro.obs.sse import HeartbeatTailer


def make_writer(tmp_path, history_limit=8):
    return HeartbeatWriter(
        tmp_path / "heartbeat.json", run_id="r", history_limit=history_limit
    )


def fill(writer, beats):
    for _ in range(beats):
        writer.beat("stage1")


class TestGenerationMarker:
    def test_no_marker_before_first_compaction(self, tmp_path):
        writer = make_writer(tmp_path)
        fill(writer, 4)
        assert ring_generation(writer.history_path) == 0
        raw = writer.history_path.read_text(encoding="utf-8")
        assert RING_MARKER_KEY not in json.loads(raw.splitlines()[0]) or True
        assert not raw.startswith('{"ring"')

    def test_compaction_writes_marker_and_bounds_ring(self, tmp_path):
        writer = make_writer(tmp_path, history_limit=8)
        fill(writer, 16)  # 2x the limit: triggers one compaction
        assert ring_generation(writer.history_path) == 1
        lines = writer.history_path.read_text(encoding="utf-8").splitlines()
        marker = json.loads(lines[0])[RING_MARKER_KEY]
        assert marker["generation"] == 1
        assert marker["kept"] == 8
        assert len(lines) == 9  # marker + kept beats

    def test_generation_increments_across_compactions(self, tmp_path):
        writer = make_writer(tmp_path, history_limit=4)
        fill(writer, 8)
        assert ring_generation(writer.history_path) == 1
        fill(writer, 4)
        assert ring_generation(writer.history_path) == 2

    def test_read_history_never_yields_markers(self, tmp_path):
        writer = make_writer(tmp_path, history_limit=4)
        fill(writer, 20)
        docs = read_history(writer.history_path)
        assert docs, "ring unexpectedly empty"
        assert all(RING_MARKER_KEY not in d or "seq" in d for d in docs)
        assert all("seq" in d for d in docs)
        seqs = [d["seq"] for d in docs]
        assert seqs == sorted(seqs)

    def test_reattaching_writer_continues_generation(self, tmp_path):
        first = make_writer(tmp_path, history_limit=4)
        fill(first, 8)
        assert ring_generation(first.history_path) == 1
        # A retried job re-attaches to the same rundir: the sequence
        # advances instead of resetting to 1.
        second = make_writer(tmp_path, history_limit=4)
        fill(second, 8)
        assert ring_generation(second.history_path) == 2

    def test_torn_marker_tolerated(self, tmp_path):
        writer = make_writer(tmp_path, history_limit=4)
        fill(writer, 8)
        with open(writer.history_path, "a", encoding="utf-8") as handle:
            handle.write('{"ring":{"v":1,"genera')  # torn mid-write
        assert ring_generation(writer.history_path) == 1
        fill(writer, 4)  # next compaction filters the torn line out
        assert ring_generation(writer.history_path) == 2
        docs = read_history(writer.history_path)
        assert all("seq" in d for d in docs)


class TestConcurrentReaderAndCompactor:
    def test_tailer_survives_compaction_races(self, tmp_path):
        """A reader polling while the writer compacts must never see a
        marker as a beat, a torn document, or seq going backwards."""
        writer = make_writer(tmp_path, history_limit=8)
        writer.beat("stage1")  # ensure files exist before readers start
        tailer = HeartbeatTailer(tmp_path, poll_interval=0.0)
        stop = threading.Event()
        errors = []
        seen = []

        def read_loop():
            last_seq = 0
            try:
                while not stop.is_set():
                    for beat in tailer.poll():
                        if RING_MARKER_KEY in beat and "seq" not in beat:
                            errors.append(f"marker leaked: {beat}")
                        seq = int(beat.get("seq", 0))
                        if seq <= last_seq:
                            errors.append(
                                f"seq went backwards: {seq} after {last_seq}"
                            )
                        last_seq = seq
                        seen.append(seq)
                    # Raw history reads race the atomic swap too.
                    for doc in read_history(writer.history_path):
                        if "seq" not in doc:
                            errors.append(f"non-beat in history: {doc}")
            except Exception as exc:  # noqa: BLE001 - fail the test
                errors.append(f"reader crashed: {exc!r}")

        reader = threading.Thread(target=read_loop)
        reader.start()
        try:
            # ~24 compactions worth of beats while the reader polls.
            fill(writer, 400)
        finally:
            stop.set()
            reader.join(timeout=10.0)
        assert not reader.is_alive()
        assert errors == []
        assert ring_generation(writer.history_path) >= 2
        assert seen, "reader never observed a beat"
