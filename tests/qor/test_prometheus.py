"""Prometheus textfile exposition: render and strict parse."""

import pytest

from repro.qor import parse_prometheus, render_prometheus


class TestRender:
    def test_numeric_fields_become_gauges(self):
        text = render_prometheus(
            {"v": 1, "seq": 9, "run_id": "r1", "phase": "anneal",
             "T": 50.5, "cost": 123.5, "updated": 1000.0}
        )
        parsed = parse_prometheus(text)
        label = '{run_id="r1"}'
        assert parsed["repro_T" + label] == 50.5
        assert parsed["repro_cost" + label] == 123.5
        assert parsed["repro_updated" + label] == 1000.0

    def test_bookkeeping_fields_skipped(self):
        text = render_prometheus({"v": 1, "seq": 9, "T": 1.0})
        assert "repro_v" not in text
        assert "repro_seq" not in text

    def test_string_fields_become_info_labels(self):
        text = render_prometheus({"run_id": "r1", "phase": "anneal"})
        assert 'run_id="r1"' in text
        assert 'phase="anneal"' in text
        assert "repro_run_info" in text

    def test_gauges_carry_run_id_label(self):
        text = render_prometheus({"run_id": "r1", "T": 2.0})
        assert 'repro_T{run_id="r1"} 2' in text

    def test_nested_dicts_flatten(self):
        text = render_prometheus({"chains": {"0": {"cost": 5.0}}})
        assert parse_prometheus(text)["repro_chains_0_cost"] == 5.0

    def test_booleans_are_01_gauges(self):
        parsed = parse_prometheus(render_prometheus({"final": True}))
        assert parsed["repro_final"] == 1.0

    def test_help_and_type_comments(self):
        text = render_prometheus({"T": 1.0})
        assert "# TYPE repro_T gauge" in text


class TestParse:
    def test_round_trip(self):
        doc = {"phase": "done", "teil": 42.5, "overflow": 0}
        parsed = parse_prometheus(render_prometheus(doc))
        assert parsed["repro_teil"] == 42.5
        assert parsed["repro_overflow"] == 0

    def test_malformed_line_raises(self):
        with pytest.raises(ValueError):
            parse_prometheus("repro_teil not-a-number\n")

    def test_comments_and_blanks_ignored(self):
        parsed = parse_prometheus("# HELP x y\n\nrepro_x 1\n")
        assert parsed == {"repro_x": 1.0}
