"""Prometheus textfile exposition: render and strict parse."""

import pytest

from repro.qor import parse_prometheus, render_prometheus


class TestRender:
    def test_numeric_fields_become_gauges(self):
        text = render_prometheus(
            {"v": 1, "seq": 9, "run_id": "r1", "phase": "anneal",
             "T": 50.5, "cost": 123.5, "updated": 1000.0}
        )
        parsed = parse_prometheus(text)
        label = '{run_id="r1"}'
        assert parsed["repro_T" + label] == 50.5
        assert parsed["repro_cost" + label] == 123.5
        assert parsed["repro_updated" + label] == 1000.0

    def test_bookkeeping_fields_skipped(self):
        text = render_prometheus({"v": 1, "seq": 9, "T": 1.0})
        assert "repro_v" not in text
        assert "repro_seq" not in text

    def test_string_fields_become_info_labels(self):
        text = render_prometheus({"run_id": "r1", "phase": "anneal"})
        assert 'run_id="r1"' in text
        assert 'phase="anneal"' in text
        assert "repro_run_info" in text

    def test_gauges_carry_run_id_label(self):
        text = render_prometheus({"run_id": "r1", "T": 2.0})
        assert 'repro_T{run_id="r1"} 2' in text

    def test_nested_dicts_flatten(self):
        text = render_prometheus({"chains": {"0": {"cost": 5.0}}})
        assert parse_prometheus(text)["repro_chains_0_cost"] == 5.0

    def test_booleans_are_01_gauges(self):
        parsed = parse_prometheus(render_prometheus({"final": True}))
        assert parsed["repro_final"] == 1.0

    def test_help_and_type_comments(self):
        text = render_prometheus({"T": 1.0})
        assert "# TYPE repro_T gauge" in text


class TestParse:
    def test_round_trip(self):
        doc = {"phase": "done", "teil": 42.5, "overflow": 0}
        parsed = parse_prometheus(render_prometheus(doc))
        assert parsed["repro_teil"] == 42.5
        assert parsed["repro_overflow"] == 0

    def test_malformed_line_raises(self):
        with pytest.raises(ValueError):
            parse_prometheus("repro_teil not-a-number\n")

    def test_comments_and_blanks_ignored(self):
        parsed = parse_prometheus("# HELP x y\n\nrepro_x 1\n")
        assert parsed == {"repro_x": 1.0}


class TestEscaping:
    """Label escaping and metric-name sanitization (exposition format)."""

    def test_run_id_with_dashes_and_dots_survives_as_label(self):
        rid = "20260808-123456-ab.cd"
        text = render_prometheus({"run_id": rid, "T": 1.0})
        parsed = parse_prometheus(text)
        assert parsed[f'repro_T{{run_id="{rid}"}}'] == 1.0

    def test_field_names_sanitize_to_metric_charset(self):
        text = render_prometheus({"run_id": "r", "nets-done": 3, "eta.s": 2.5})
        parsed = parse_prometheus(text)
        assert parsed['repro_nets_done{run_id="r"}'] == 3.0
        assert parsed['repro_eta_s{run_id="r"}'] == 2.5

    def test_quote_in_label_value_escaped(self):
        text = render_prometheus({"run_id": 'r"1', "T": 1.0})
        assert 'run_id="r\\"1"' in text
        parse_prometheus(text)  # still well-formed

    def test_newline_in_label_value_escaped(self):
        text = render_prometheus({"run_id": "r\n1", "T": 1.0})
        assert 'run_id="r\\n1"' in text
        assert "\nr" not in text.split("# TYPE repro_T")[0].replace(
            "\nrepro_run_info", ""
        )
        parse_prometheus(text)  # no raw newline broke a sample line

    def test_backslash_in_label_value_escaped(self):
        text = render_prometheus({"run_id": "r\\1", "T": 1.0})
        assert 'run_id="r\\\\1"' in text
        parse_prometheus(text)

    def test_phase_label_escaped_on_run_info(self):
        text = render_prometheus({"run_id": "r", "phase": 'we"ird\nphase'})
        assert 'phase="we\\"ird\\nphase"' in text
        parse_prometheus(text)


class TestFleetRender:
    """The multi-run scrape page of the observability server."""

    def test_one_type_line_per_metric_across_runs(self):
        from repro.qor import render_prometheus_fleet

        text = render_prometheus_fleet(
            [
                {"run_id": "a", "phase": "anneal", "T": 10.0, "cost": 5.0},
                {"run_id": "b", "phase": "route", "T": 2.0, "cost": 7.0},
            ]
        )
        assert text.count("# TYPE repro_T gauge") == 1
        assert text.count("# TYPE repro_cost gauge") == 1
        assert text.count("# TYPE repro_run_info gauge") == 1
        parsed = parse_prometheus(text)
        assert parsed['repro_T{run_id="a"}'] == 10.0
        assert parsed['repro_T{run_id="b"}'] == 2.0
        assert parsed['repro_run_info{phase="route",run_id="b"}'] == 1.0

    def test_chains_break_out_under_chain_label(self):
        from repro.qor import render_prometheus_fleet

        text = render_prometheus_fleet(
            [
                {
                    "run_id": "a",
                    "chains": {
                        "0": {"cost": 5.0, "done": False},
                        "1": {"cost": 4.5, "done": True},
                    },
                }
            ]
        )
        parsed = parse_prometheus(text)
        assert parsed['repro_chain_cost{chain="0",run_id="a"}'] == 5.0
        assert parsed['repro_chain_cost{chain="1",run_id="a"}'] == 4.5
        assert parsed['repro_chain_done{chain="1",run_id="a"}'] == 1.0
        # Chains must NOT also appear as flattened metric names.
        assert "repro_chains_0_cost" not in text

    def test_empty_fleet_is_valid_exposition(self):
        from repro.qor import render_prometheus_fleet

        assert parse_prometheus(render_prometheus_fleet([])) == {}

    def test_weird_run_ids_round_trip(self):
        from repro.qor import render_prometheus_fleet

        ids = ['run"quoted', "run\\slash", "run\nline", "run-dot.id"]
        text = render_prometheus_fleet(
            [{"run_id": rid, "T": float(i)} for i, rid in enumerate(ids)]
        )
        parsed = parse_prometheus(text)  # every line parses
        assert len([k for k in parsed if k.startswith("repro_T")]) == len(ids)

    def test_skip_fields_stay_out_of_the_page(self):
        from repro.qor import render_prometheus_fleet

        text = render_prometheus_fleet([{"run_id": "a", "v": 1, "seq": 9, "T": 1.0}])
        assert "repro_v" not in text
        assert "repro_seq" not in text
