"""RunRecorder + QorSink: one flow run in, rundir files + registry rows out."""

import json

import pytest

from repro import TimberWolfConfig, Tracer, place_and_route, use_tracer
from repro.qor import (
    QorSink,
    RunRecorder,
    RunRegistry,
    qor_from_result,
    read_heartbeat,
)

from ..conftest import make_macro_circuit

SMOKE = TimberWolfConfig.smoke()


class TestQorSink:
    def test_span_end_aggregation(self):
        sink = QorSink()
        tracer = Tracer(sink)
        with tracer.span("stage1"):
            pass
        with tracer.span("stage1"):
            pass
        with pytest.raises(RuntimeError):
            with tracer.span("stage2"):
                raise RuntimeError("boom")
        assert sink.stage_times["stage1"]["calls"] == 2
        assert sink.stage_times["stage2"]["failed"] == 1
        assert sink.stage_times["stage1"]["wall_s"] >= 0

    def test_metrics_snapshots_last_write_wins(self):
        sink = QorSink()
        tracer = Tracer(sink)
        tracer.event("stage1.move_metrics", displace=1)
        tracer.event("stage1.move_metrics", displace=5, swap=2)
        assert sink.metrics["stage1.move_metrics"] == {"displace": 5, "swap": 2}

    def test_captures_flow_checkpoints(self):
        sink = QorSink()
        tracer = Tracer(sink)
        tracer.event("stage1.result", teil=123.0)
        tracer.event("unrelated.event", x=1)
        assert sink.captured["stage1.result"] == {"teil": 123.0}
        assert "unrelated.event" not in sink.captured


class TestQorFromResult:
    def test_distills_flow_result(self):
        result = place_and_route(make_macro_circuit(), SMOKE)
        record = qor_from_result(result)
        assert record["teil"] == pytest.approx(result.teil, rel=1e-3)
        assert record["chip_area"] > 0
        assert record["core_target_area"] > 0
        assert record["area_vs_target"] == pytest.approx(
            record["chip_area"] / record["core_target_area"], rel=1e-3
        )
        assert record["moves"] > 0
        assert record["temperatures"] > 0
        assert record["truncated"] is False

    def test_sink_aggregates_ride_along(self):
        sink = QorSink()
        tracer = Tracer(sink)
        result = place_and_route(make_macro_circuit(), SMOKE, tracer=tracer)
        record = qor_from_result(result, sink)
        assert "stage1" in record["stage_times"]
        assert record["checkpoints"]["stage1.result"]["teil"] > 0


class TestRunRecorder:
    def _run(self, tmp_path, registry_path=None, run_id=None):
        rundir = tmp_path / "rundir"
        recorder = RunRecorder(rundir, registry=registry_path, run_id=run_id)
        circuit = make_macro_circuit()
        recorder.begin(circuit, SMOKE, command="place")
        tracer = Tracer(recorder.sink)
        with recorder.monitor(), use_tracer(tracer):
            result = place_and_route(circuit, SMOKE, tracer=tracer)
        record = recorder.finish(result)
        return rundir, recorder, record

    def test_rundir_files_written(self, tmp_path):
        rundir, recorder, record = self._run(tmp_path)
        manifest = json.loads((rundir / RunRecorder.MANIFEST_NAME).read_text())
        assert manifest["run_id"] == recorder.run_id
        assert manifest["circuit"]["name"] == "fixture"
        assert len(manifest["circuit"]["sha256"]) == 64
        assert len(manifest["config"]["sha256"]) == 64
        qor = json.loads((rundir / RunRecorder.QOR_NAME).read_text())
        assert qor["run_id"] == recorder.run_id
        assert qor["teil"] == record["teil"]
        beat = read_heartbeat(rundir / RunRecorder.HEARTBEAT_NAME)
        assert beat["final"] is True
        assert beat["phase"] == "done"
        assert beat["status"] == "ok"

    def test_registry_rows_written(self, tmp_path):
        reg_path = tmp_path / "reg.sqlite"
        _, recorder, record = self._run(tmp_path, registry_path=reg_path)
        with RunRegistry(reg_path) as registry:
            run = registry.get_run(recorder.run_id)
            stored = registry.get_qor(recorder.run_id)
        assert run["status"] == "ok"
        assert stored["teil"] == record["teil"]
        assert "stage1" in stored["stage_times"]

    def test_explicit_run_id_preserved(self, tmp_path):
        """A resume passes the checkpoint's run id: same identity."""
        _, recorder, _ = self._run(tmp_path, run_id="resume-me")
        assert recorder.run_id == "resume-me"

    def test_interrupted_status(self, tmp_path):
        reg_path = tmp_path / "reg.sqlite"
        recorder = RunRecorder(tmp_path / "r", registry=reg_path)
        recorder.begin(make_macro_circuit(), SMOKE)
        recorder.interrupted("ckpt/x.ckpt")
        with RunRegistry(reg_path) as registry:
            assert registry.get_run(recorder.run_id)["status"] == "interrupted"
        beat = read_heartbeat(tmp_path / "r" / RunRecorder.HEARTBEAT_NAME)
        assert beat["phase"] == "interrupted"
        assert beat["checkpoint"] == "ckpt/x.ckpt"

    def test_failed_status(self, tmp_path):
        reg_path = tmp_path / "reg.sqlite"
        recorder = RunRecorder(tmp_path / "r", registry=reg_path)
        recorder.begin(make_macro_circuit(), SMOKE)
        recorder.failed(ValueError("boom"))
        with RunRegistry(reg_path) as registry:
            assert registry.get_run(recorder.run_id)["status"] == "failed"
        beat = read_heartbeat(tmp_path / "r" / RunRecorder.HEARTBEAT_NAME)
        assert beat["phase"] == "failed"
        assert beat["error"] == "ValueError"

    def test_truncated_run_flagged(self, tmp_path):
        from repro import Budget

        reg_path = tmp_path / "reg.sqlite"
        recorder = RunRecorder(tmp_path / "r", registry=reg_path)
        circuit = make_macro_circuit()
        recorder.begin(circuit, SMOKE)
        with recorder.monitor():
            result = place_and_route(circuit, SMOKE, budget=Budget(temperatures=2))
        recorder.finish(result)
        with RunRegistry(reg_path) as registry:
            run = registry.get_run(recorder.run_id)
            stored = registry.get_qor(recorder.run_id)
        assert run["status"] == "truncated"
        assert stored["truncated"] == 1
