"""The generate cascade of §3.2.1 and its stage-2 restrictions."""

import random

import pytest

from repro.annealing import RangeLimiter
from repro.estimator import determine_core
from repro.placement import MoveGenerator, PlacementState

from ..conftest import make_macro_circuit, make_mixed_circuit


def make_setup(circuit=None, seed=0, **gen_kw):
    ckt = circuit if circuit is not None else make_macro_circuit()
    plan = determine_core(ckt)
    state = PlacementState(ckt, plan)
    state.randomize(random.Random(seed))
    limiter = RangeLimiter(
        plan.core.width, plan.core.height, t_infinity=1e5, rho=4.0
    )
    return state, MoveGenerator(state, limiter, **gen_kw)


class TestStepAccounting:
    def test_hot_steps_mostly_accept(self):
        state, gen = make_setup()
        rng = random.Random(1)
        attempts = accepts = 0
        for _ in range(100):
            a, c = gen.step(1e7, rng)
            attempts += a
            accepts += c
        assert attempts >= 100
        assert accepts / attempts > 0.9

    def test_cold_steps_mostly_reject_uphill(self):
        state, gen = make_setup()
        rng = random.Random(2)
        # Freeze: at T ~ 0 only downhill moves are kept.
        for _ in range(300):
            gen.step(1e-6, rng)
        cost_a = state.cost()
        for _ in range(100):
            gen.step(1e-6, rng)
        assert state.cost() <= cost_a + 1e-6

    def test_cost_stays_consistent_through_steps(self):
        state, gen = make_setup(make_mixed_circuit())
        rng = random.Random(3)
        for t in (1e6, 1e4, 1e2, 1.0):
            for _ in range(50):
                gen.step(t, rng)
        cost = state.cost()
        state.rebuild()
        assert state.cost() == pytest.approx(cost, rel=1e-9, abs=1e-6)


class TestCascadeModes:
    def test_displacement_only_when_interchange_disabled(self):
        state, gen = make_setup(interchange_moves=False, r_ratio=0.001)
        # r_ratio tiny would make interchanges near-certain if enabled;
        # with interchange_moves=False every step must be a displacement.
        rng = random.Random(4)
        for _ in range(50):
            a, c = gen.step(1e6, rng)
            assert a >= 1

    def test_stage2_freezes_orientation_and_aspect(self):
        ckt = make_mixed_circuit()
        state, gen = make_setup(
            ckt,
            orientation_moves=False,
            aspect_moves=False,
            interchange_moves=False,
        )
        orientations = [r.orientation for r in state.records]
        aspects = [r.aspect_ratio for r in state.records]
        rng = random.Random(5)
        for t in (1e6, 1e3, 1.0):
            for _ in range(100):
                gen.step(t, rng)
        assert [r.orientation for r in state.records] == orientations
        assert [r.aspect_ratio for r in state.records] == aspects

    def test_stage1_changes_orientations(self):
        # Orientation changes fire when a displacement is rejected (the
        # A1' / A_o fallbacks), so run at temperatures cold enough for
        # rejections but warm enough to accept some reorientations.
        state, gen = make_setup(seed=6)
        orientations = [r.orientation for r in state.records]
        rng = random.Random(6)
        for t in (1e4, 1e3, 1e2, 1e1):
            for _ in range(200):
                gen.step(t, rng)
        assert [r.orientation for r in state.records] != orientations

    def test_pin_moves_happen(self):
        ckt = make_mixed_circuit()
        state, gen = make_setup(ckt, seed=7)
        idx = state.index["cust0"]
        sites_before = dict(state.records[idx].pin_sites)
        rng = random.Random(7)
        for _ in range(300):
            gen.step(1e7, rng)
        assert dict(state.records[idx].pin_sites) != sites_before

    def test_aspect_moves_happen(self):
        ckt = make_mixed_circuit()
        state, gen = make_setup(ckt, seed=8)
        idx = state.index["cust0"]
        rng = random.Random(8)
        for _ in range(300):
            gen.step(1e7, rng)
        assert state.records[idx].aspect_ratio != 1.0

    def test_centers_stay_in_core(self):
        state, gen = make_setup(seed=9)
        rng = random.Random(9)
        core = state.core
        for _ in range(300):
            gen.step(1e7, rng)
        for r in state.records:
            assert core.x1 <= r.center[0] <= core.x2
            assert core.y1 <= r.center[1] <= core.y2


class TestValidation:
    def test_bad_r_ratio(self):
        state, _ = make_setup()
        limiter = RangeLimiter(100, 100, 1e5)
        with pytest.raises(ValueError):
            MoveGenerator(state, limiter, r_ratio=0)

    def test_bad_selector(self):
        state, _ = make_setup()
        limiter = RangeLimiter(100, 100, 1e5)
        with pytest.raises(ValueError):
            MoveGenerator(state, limiter, selector="bogus")

    def test_dr_selector_works(self):
        state, gen = make_setup(selector="dr")
        rng = random.Random(10)
        for _ in range(50):
            gen.step(1e6, rng)
        cost = state.cost()
        state.rebuild()
        assert state.cost() == pytest.approx(cost, rel=1e-9, abs=1e-6)

    def test_single_cell_interchange_noop(self):
        from repro.netlist import Circuit, MacroCell, Pin, PinKind

        solo = Circuit(
            "solo",
            [
                MacroCell.rectangular(
                    "only", 8, 8, [Pin("p", "n", PinKind.FIXED, offset=(4, 0))]
                )
            ],
        )
        state, gen = make_setup(solo)
        a, c = gen._interchange_branch(1e6, random.Random(0))
        assert (a, c) == (0, 0)
