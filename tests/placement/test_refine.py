"""Stage-2 refinement: channel define -> route -> low-T anneal."""

import pytest

from repro.config import TimberWolfConfig
from repro.placement import run_refinement, run_stage1
from repro.placement.legalize import raw_overlap
from repro.placement.refine import channel_boundary, define_and_route

from ..conftest import make_macro_circuit, make_mixed_circuit

SMOKE = TimberWolfConfig.smoke()


@pytest.fixture(scope="module")
def stage1_result():
    return run_stage1(make_macro_circuit(num_cells=6, seed=2), SMOKE)


class TestChannelBoundary:
    def test_covers_core_and_cells(self, stage1_result):
        state = stage1_result.state
        boundary = channel_boundary(state, 1.0)
        assert boundary.contains_rect(state.core)
        for name in state.names:
            assert boundary.contains_rect(state.world_shape(name).bbox)


class TestDefineAndRoute:
    def test_produces_graph_and_routes(self, stage1_result):
        from repro.placement.legalize import remove_overlaps
        import random

        ckt = make_macro_circuit(num_cells=6, seed=2)
        state = stage1_result.state
        remove_overlaps(state, min_gap=1.0)
        graph, routing, report = define_and_route(
            ckt, state, SMOKE, random.Random(0)
        )
        assert graph.num_free_nodes > 0
        assert graph.regions  # critical regions extracted
        assert len(graph.pin_nodes) == ckt.num_pins
        assert routing.routes  # at least some nets routed
        assert not routing.unrouted
        assert report.max_node_density() >= 1


class TestRunRefinement:
    def test_full_refinement(self):
        ckt = make_macro_circuit(num_cells=6, seed=3)
        s1 = run_stage1(ckt, SMOKE)
        result = run_refinement(ckt, s1, SMOKE)
        assert len(result.passes) == SMOKE.refinement_passes
        assert result.teil > 0
        assert result.chip_area > 0

    def test_passes_expose_move_stats(self):
        ckt = make_macro_circuit(num_cells=6, seed=3)
        s1 = run_stage1(ckt, SMOKE)
        result = run_refinement(ckt, s1, SMOKE)
        for p in result.passes:
            assert p.move_stats, "each pass records its move statistics"
            # Stage 2 issues displacements; attempts >= accepts >= 0.
            att, acc = p.move_stats["displace"]
            assert att >= acc >= 0
            assert att > 0

    def test_placement_legal_after(self):
        ckt = make_macro_circuit(num_cells=6, seed=4)
        s1 = run_stage1(ckt, SMOKE)
        result = run_refinement(ckt, s1, SMOKE)
        shapes = [result.state.world_shape(n) for n in result.state.names]
        assert raw_overlap(shapes) == pytest.approx(0.0, abs=1e-6)

    def test_static_expansions_active_after(self):
        ckt = make_macro_circuit(num_cells=6, seed=5)
        s1 = run_stage1(ckt, SMOKE)
        result = run_refinement(ckt, s1, SMOKE)
        assert not result.state.dynamic_expansion

    def test_multiple_passes(self):
        from dataclasses import replace

        ckt = make_macro_circuit(num_cells=5, seed=6)
        cfg = replace(SMOKE, refinement_passes=3)
        s1 = run_stage1(ckt, cfg)
        result = run_refinement(ckt, s1, cfg)
        assert [p.index for p in result.passes] == [0, 1, 2]
        # Final pass is exposed.
        assert result.final_pass.index == 2

    def test_mixed_circuit_refines(self):
        ckt = make_mixed_circuit()
        s1 = run_stage1(ckt, SMOKE)
        result = run_refinement(ckt, s1, SMOKE)
        assert result.passes

    def test_no_passes_raises_on_final(self):
        from repro.placement.refine import RefinementResult

        ckt = make_macro_circuit(num_cells=4, seed=7)
        s1 = run_stage1(ckt, SMOKE)
        empty = RefinementResult(state=s1.state)
        with pytest.raises(ValueError):
            _ = empty.final_pass

    def test_orientations_frozen_in_stage2(self):
        ckt = make_macro_circuit(num_cells=6, seed=8)
        s1 = run_stage1(ckt, SMOKE)
        orientations = [r.orientation for r in s1.state.records]
        run_refinement(ckt, s1, SMOKE)
        assert [r.orientation for r in s1.state.records] == orientations
