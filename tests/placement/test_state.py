"""The placement state: caches, incremental costs, snapshots."""

import random

import pytest

from repro.estimator import determine_core
from repro.geometry import BOTTOM, LEFT, RIGHT, TOP
from repro.netlist import CustomCell, MacroCell
from repro.placement import PlacementState, world_side

from ..conftest import make_macro_circuit, make_mixed_circuit


@pytest.fixture
def macro_state():
    ckt = make_macro_circuit()
    return PlacementState(ckt, determine_core(ckt))


@pytest.fixture
def mixed_state():
    ckt = make_mixed_circuit()
    return PlacementState(ckt, determine_core(ckt))


class TestWorldSide:
    def test_identity(self):
        for side in (LEFT, RIGHT, BOTTOM, TOP):
            assert world_side(side, 0) == side

    def test_r90(self):
        assert world_side(LEFT, 1) == BOTTOM
        assert world_side(BOTTOM, 1) == RIGHT
        assert world_side(RIGHT, 1) == TOP
        assert world_side(TOP, 1) == LEFT

    def test_r180(self):
        assert world_side(LEFT, 2) == RIGHT
        assert world_side(TOP, 2) == BOTTOM

    def test_mirror(self):
        assert world_side(LEFT, 4) == RIGHT
        assert world_side(TOP, 4) == TOP

    def test_permutation(self):
        for o in range(8):
            mapped = {world_side(s, o) for s in (LEFT, RIGHT, BOTTOM, TOP)}
            assert mapped == {LEFT, RIGHT, BOTTOM, TOP}


class TestInitialState:
    def test_all_cells_at_core_center(self, macro_state):
        c = macro_state.core.center
        for record in macro_state.records:
            assert record.center == (c.x, c.y)

    def test_cost_components_nonnegative(self, macro_state):
        assert macro_state.c1() >= 0
        assert macro_state.c2_raw() >= 0
        assert macro_state.c3() >= 0

    def test_stacked_cells_overlap(self, macro_state):
        # Everything starts at the center, so C2 must see heavy overlap.
        assert macro_state.c2_raw() > 0

    def test_randomize_spreads(self, macro_state):
        macro_state.randomize(random.Random(0))
        centers = {r.center for r in macro_state.records}
        assert len(centers) == len(macro_state.records)

    def test_custom_records_have_aspect(self, mixed_state):
        idx = mixed_state.index["cust0"]
        assert mixed_state.records[idx].aspect_ratio == 1.0
        assert mixed_state.records[idx].pin_sites


class TestGeometryQueries:
    def test_world_shape_follows_center(self, macro_state):
        macro_state.move_cell(0, center=(30.0, -20.0))
        bbox = macro_state.world_shape(macro_state.names[0]).bbox
        assert bbox.center.x == pytest.approx(30.0)
        assert bbox.center.y == pytest.approx(-20.0)

    def test_expanded_contains_shape(self, macro_state):
        macro_state.randomize(random.Random(1))
        for name in macro_state.names:
            shape = macro_state.world_shape(name).bbox
            expanded = macro_state.expanded_shape(name).bbox
            assert expanded.contains_rect(shape)

    def test_pin_positions_move_with_cell(self, macro_state):
        name = macro_state.names[0]
        before = macro_state.pin_position(name, "p0")
        macro_state.move_cell(0, center=(25.0, 10.0))
        after = macro_state.pin_position(name, "p0")
        assert after != before

    def test_pin_rotates_with_orientation(self, macro_state):
        name = macro_state.names[0]
        macro_state.move_cell(0, center=(0.0, 0.0), orientation=0)
        p0 = macro_state.pin_position(name, "p0")
        macro_state.move_cell(0, orientation=2)  # R180
        p180 = macro_state.pin_position(name, "p0")
        assert p180[0] == pytest.approx(-p0[0])
        assert p180[1] == pytest.approx(-p0[1])

    def test_custom_pin_on_current_shape_boundary(self, mixed_state):
        idx = mixed_state.index["cust0"]
        record = mixed_state.records[idx]
        cell = mixed_state.cell(idx)
        assert isinstance(cell, CustomCell)
        w, h = cell.dimensions(record.aspect_ratio)
        pos = mixed_state.pin_position("cust0", "a")
        cx, cy = record.center
        assert (
            abs(abs(pos[0] - cx) - w / 2) < 1e-6
            or abs(abs(pos[1] - cy) - h / 2) < 1e-6
        )

    def test_chip_bbox_covers_all_cells(self, macro_state):
        macro_state.randomize(random.Random(2))
        chip = macro_state.chip_bbox()
        for name in macro_state.names:
            assert chip.contains_rect(macro_state.world_shape(name).bbox)


def random_walk(state, steps, seed):
    """Apply a random sequence of accepted/rejected mutations."""
    rng = random.Random(seed)
    n = len(state.names)
    for _ in range(steps):
        kind = rng.randrange(5)
        idx = rng.randrange(n)
        if kind == 0:
            delta, snap = state.move_cell(
                idx,
                center=(rng.uniform(-50, 50), rng.uniform(-50, 50)),
            )
        elif kind == 1:
            delta, snap = state.move_cell(idx, orientation=rng.randrange(8))
        elif kind == 2 and n >= 2:
            j = rng.randrange(n - 1)
            j = j + 1 if j >= idx else j
            delta, snap = state.swap_cells(idx, j)
        elif kind == 3:
            delta, snap = state.move_cell_inverted(
                idx, (rng.uniform(-50, 50), rng.uniform(-50, 50))
            )
        else:
            cell = state.cell(idx)
            if isinstance(cell, CustomCell) and state._groups[idx]:
                key, _ = state._groups[idx][0]
                delta, snap = state.move_pin_group(
                    idx, key, rng.choice([LEFT, RIGHT, BOTTOM, TOP]),
                    rng.randrange(cell.sites_per_edge),
                )
            else:
                delta, snap = state.move_cell(idx, center=(0.0, 0.0))
        if rng.random() < 0.5:
            state.restore(snap)


class TestIncrementalConsistency:
    """The central invariant: incremental accounting equals a rebuild."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_macro_walk(self, macro_state, seed):
        macro_state.randomize(random.Random(seed))
        random_walk(macro_state, 120, seed)
        c1, c2, c3 = macro_state.c1(), macro_state.c2_raw(), macro_state.c3()
        macro_state.rebuild()
        assert macro_state.c1() == pytest.approx(c1, rel=1e-9, abs=1e-6)
        assert macro_state.c2_raw() == pytest.approx(c2, rel=1e-9, abs=1e-6)
        assert macro_state.c3() == pytest.approx(c3, rel=1e-9, abs=1e-6)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_mixed_walk(self, mixed_state, seed):
        mixed_state.randomize(random.Random(seed))
        random_walk(mixed_state, 120, seed)
        cost = mixed_state.cost()
        mixed_state.rebuild()
        assert mixed_state.cost() == pytest.approx(cost, rel=1e-9, abs=1e-6)


class TestSnapshotRestore:
    def test_move_restore_exact(self, macro_state):
        macro_state.randomize(random.Random(3))
        before_cost = macro_state.cost()
        before_teil = macro_state.teil()
        record_before = macro_state.records[0].copy()
        delta, snap = macro_state.move_cell(0, center=(5.0, 5.0), orientation=3)
        assert macro_state.cost() == pytest.approx(before_cost + delta)
        macro_state.restore(snap)
        assert macro_state.cost() == before_cost
        assert macro_state.teil() == before_teil
        assert macro_state.records[0].center == record_before.center
        assert macro_state.records[0].orientation == record_before.orientation

    def test_swap_restore_exact(self, macro_state):
        macro_state.randomize(random.Random(4))
        c0, c1 = macro_state.records[0].center, macro_state.records[1].center
        cost = macro_state.cost()
        delta, snap = macro_state.swap_cells(0, 1)
        assert macro_state.records[0].center == c1
        macro_state.restore(snap)
        assert macro_state.records[0].center == c0
        assert macro_state.cost() == cost

    def test_pin_group_restore(self, mixed_state):
        idx = mixed_state.index["cust0"]
        key, _ = mixed_state._groups[idx][0]
        sites_before = dict(mixed_state.records[idx].pin_sites)
        cost = mixed_state.cost()
        _, snap = mixed_state.move_pin_group(idx, key, TOP, 2)
        mixed_state.restore(snap)
        assert mixed_state.records[idx].pin_sites == sites_before
        assert mixed_state.cost() == cost

    def test_swap_self_rejected(self, macro_state):
        with pytest.raises(ValueError):
            macro_state.swap_cells(1, 1)


class TestAspectAndInstance:
    def test_custom_aspect_change(self, mixed_state):
        idx = mixed_state.index["cust0"]
        delta, snap = mixed_state.move_cell(idx, aspect_ratio=2.0)
        shape = mixed_state.world_shape("cust0")
        assert shape.bbox.height / shape.bbox.width == pytest.approx(2.0)
        mixed_state.restore(snap)
        shape = mixed_state.world_shape("cust0")
        assert shape.bbox.height / shape.bbox.width == pytest.approx(1.0)

    def test_macro_inverted_changes_orientation(self, macro_state):
        o_before = macro_state.records[0].orientation
        macro_state.move_cell_inverted(0, (0.0, 0.0))
        assert macro_state.records[0].orientation != o_before

    def test_custom_inverted_inverts_ratio(self, mixed_state):
        idx = mixed_state.index["cust0"]
        mixed_state.move_cell(idx, aspect_ratio=2.0)
        mixed_state.move_cell_inverted(idx, (0.0, 0.0))
        assert mixed_state.records[idx].aspect_ratio == pytest.approx(0.5)


def make_tight_custom_state():
    """A custom cell so small that each pin site holds a single pin."""
    from repro.netlist import Circuit, ContinuousAspectRatio, Pin, PinKind
    from repro.netlist import CustomCell as CC
    from repro.netlist import MacroCell as MC

    pins = [
        Pin(f"g1_{k}", f"n{k}", PinKind.GROUP, group="g1") for k in range(3)
    ] + [Pin(f"g2_{k}", f"n{k}", PinKind.GROUP, group="g2") for k in range(3)]
    tiny = CC(
        "tiny",
        pins,
        area=16.0,
        aspect=ContinuousAspectRatio(1.0, 1.0),
        sites_per_edge=4,
        pin_pitch=1.0,
    )
    anchor = MC.rectangular(
        "anchor",
        8,
        8,
        [Pin(f"p{k}", f"n{k}", PinKind.FIXED, offset=(0, 4)) for k in range(3)],
    )
    ckt = Circuit("tight", [tiny, anchor])
    return PlacementState(ckt, determine_core(ckt)), ckt


class TestC3Penalty:
    def test_overflow_penalized(self):
        state, _ = make_tight_custom_state()
        idx = state.index["tiny"]
        # Site capacity is 1 (4-unit edge, 4 sites); stacking both 3-pin
        # groups on the same sites puts 2 pins in each -> overflow.
        state.move_pin_group(idx, "g1", LEFT, 0)
        state.move_pin_group(idx, "g2", LEFT, 0)
        piled = state.c3()
        assert piled > 0
        # E = (count - capacity + kappa)**2 = (2 - 1 + 5)**2 per site, 3 sites.
        assert piled == pytest.approx(3 * 36.0)

    def test_spread_cheaper_than_piled(self):
        state, _ = make_tight_custom_state()
        idx = state.index["tiny"]
        state.move_pin_group(idx, "g1", LEFT, 0)
        state.move_pin_group(idx, "g2", LEFT, 0)
        piled = state.c3()
        state.move_pin_group(idx, "g2", RIGHT, 0)
        assert state.c3() < piled
        assert state.c3() == 0.0


class TestStaticExpansions:
    def test_switch_to_static(self, macro_state):
        macro_state.randomize(random.Random(5))
        name = macro_state.names[0]
        macro_state.set_static_expansions({name: {LEFT: 4.0, TOP: 2.0}})
        assert not macro_state.dynamic_expansion
        shape = macro_state.world_shape(name).bbox
        expanded = macro_state.expanded_shape(name).bbox
        assert shape.x1 - expanded.x1 == pytest.approx(4.0)
        assert expanded.y2 - shape.y2 == pytest.approx(2.0)
        assert expanded.x2 - shape.x2 == pytest.approx(0.0)

    def test_unlisted_cells_zero_margin(self, macro_state):
        macro_state.set_static_expansions({})
        for name in macro_state.names:
            assert (
                macro_state.expanded_shape(name).bbox.area
                == macro_state.world_shape(name).bbox.area
            )


class TestClamp:
    def test_clamp_inside(self, macro_state):
        core = macro_state.core
        assert macro_state.clamp_to_core((core.x2 + 100, 0.0)) == (core.x2, 0.0)
        inside = (core.center.x, core.center.y)
        assert macro_state.clamp_to_core(inside) == inside
