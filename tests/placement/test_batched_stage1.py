"""The batched mover in the flow: config gating, stage-1 QoR,
kill/resume determinism, and multi-chain worker invariance.

The serial mover's kill/resume property rests on the engine's
``random.Random`` state in the cursor; the batched mover adds two more
stateful parties — the generator's private numpy stream
(``generator_state``) and, under adaptive cooling, the schedule's
feedback history (``schedule_state``).  These tests pin down that a
batched run interrupted at *any* checkpointed temperature resumes
bit-for-bit against itself, under both cooling modes.
"""

import random
from dataclasses import replace

import numpy as np
import pytest

from repro import (
    ParallelConfig,
    TimberWolfConfig,
    place_and_route,
    resume_place_and_route,
)
from repro.annealing import RangeLimiter
from repro.config import MOVERS
from repro.netlist import dumps, loads
from repro.parallel.multichain import run_multichain_stage1
from repro.placement import BatchMoveGenerator, make_placement_state, run_stage1
from repro.resilience import (
    CheckpointPolicy,
    Fault,
    SimulatedKill,
    inject_faults,
    latest_checkpoint,
)
from repro.resilience.checkpoint import read_checkpoint
from repro.estimator import determine_core

from ..conftest import make_macro_circuit

BATCHED = replace(
    TimberWolfConfig.smoke(seed=5), core="array", mover="batched"
)


def fixture_circuit():
    # Same round-trip discipline as the serial kill/resume tests: the
    # resumed process anneals the checkpoint's serialized circuit.
    return loads(dumps(make_macro_circuit()))


class TestConfigGate:
    def test_movers_constant_lists_both(self):
        assert MOVERS == ("serial", "batched")

    def test_batched_requires_array_core(self):
        with pytest.raises(ValueError, match="requires core='array'"):
            replace(TimberWolfConfig.smoke(), core="object", mover="batched")

    def test_unknown_mover_rejected(self):
        with pytest.raises(ValueError, match="mover must be one of"):
            replace(TimberWolfConfig.smoke(), mover="vectorized")

    def test_batch_moves_must_be_positive(self):
        with pytest.raises(ValueError, match="batch_moves"):
            replace(BATCHED, batch_moves=0)

    def test_mover_round_trips_through_dict(self):
        config = replace(BATCHED, batch_moves=17)
        again = TimberWolfConfig.from_dict(config.to_dict())
        assert again.mover == "batched"
        assert again.batch_moves == 17
        assert again == config


class TestBatchedStage1:
    def test_batched_stage1_completes_with_sane_qor(self):
        circuit = fixture_circuit()
        result = run_stage1(circuit, BATCHED)
        assert result.teil > 0
        assert result.chip_area > 0
        assert result.residual_overlap >= 0
        assert result.anneal.num_temperatures > 0

    def test_batched_stage1_is_deterministic(self):
        circuit = fixture_circuit()
        a = run_stage1(circuit, BATCHED)
        b = run_stage1(fixture_circuit(), BATCHED)
        assert a.state.state_dict() == b.state.state_dict()

    def test_generator_stream_round_trips(self):
        """Restoring ``state_dict`` replays the identical proposal
        stream — the primitive under the cursor's generator_state."""
        circuit = make_macro_circuit(num_cells=5)
        state = make_placement_state("array", circuit, determine_core(circuit))
        state.randomize(random.Random(3))
        core = state.core
        limiter = RangeLimiter(
            full_span_x=core.width, full_span_y=core.height, t_infinity=100.0
        )
        generator = BatchMoveGenerator(state, limiter, batch=4, seed=9)
        generator.rng.random(17)  # advance off the seed point
        saved = generator.state_dict()
        first = generator.rng.random(8)
        generator.load_state_dict(saved)
        assert np.array_equal(generator.rng.random(8), first)


class TestBatchedKillResume:
    @pytest.fixture(scope="class")
    def baseline(self):
        return place_and_route(fixture_circuit(), BATCHED)

    @pytest.mark.parametrize("kill_at", [3, 9])
    def test_kill_resumes_bit_for_bit(self, baseline, tmp_path, kill_at):
        policy = CheckpointPolicy(directory=tmp_path, every_temperatures=1)
        with inject_faults(
            Fault(site="anneal.temperature", at=kill_at, kind="kill")
        ):
            with pytest.raises(SimulatedKill):
                place_and_route(fixture_circuit(), BATCHED, checkpoint=policy)

        ckpt = latest_checkpoint(tmp_path)
        assert ckpt is not None
        resumed = resume_place_and_route(ckpt)
        assert resumed.teil == baseline.teil
        assert resumed.chip_area == baseline.chip_area
        assert resumed.placement() == baseline.placement()

    def test_checkpoint_carries_generator_state(self, tmp_path):
        policy = CheckpointPolicy(directory=tmp_path, every_temperatures=1)
        with inject_faults(
            Fault(site="anneal.temperature", at=4, kind="kill")
        ):
            with pytest.raises(SimulatedKill):
                place_and_route(fixture_circuit(), BATCHED, checkpoint=policy)
        ckpt = latest_checkpoint(tmp_path)
        _, payload = read_checkpoint(ckpt)
        cursor = payload["cursor"]
        assert cursor["generator_state"], "batched cursor must carry the numpy stream"
        assert "bit_generator" in cursor["generator_state"]["rng"]

    def test_kill_resume_under_adaptive_cooling(self, tmp_path):
        """The batched cursor composes with the adaptive schedule: both
        generator_state and schedule_state restore, and the resumed run
        matches the uninterrupted one exactly."""
        config = replace(BATCHED, cooling="adaptive")
        baseline = place_and_route(fixture_circuit(), config)
        policy = CheckpointPolicy(directory=tmp_path, every_temperatures=1)
        with inject_faults(
            Fault(site="anneal.temperature", at=5, kind="kill")
        ):
            with pytest.raises(SimulatedKill):
                place_and_route(fixture_circuit(), config, checkpoint=policy)
        ckpt = latest_checkpoint(tmp_path)
        _, payload = read_checkpoint(ckpt)
        cursor = payload["cursor"]
        assert cursor["generator_state"]
        assert cursor["schedule_state"], "adaptive cursor must carry feedback state"
        resumed = resume_place_and_route(ckpt)
        assert resumed.placement() == baseline.placement()
        assert resumed.teil == baseline.teil


class TestBatchedMultichain:
    def small_config(self, workers):
        return replace(
            BATCHED,
            max_temperatures=12,
            parallel=ParallelConfig(
                workers=workers, chains=2, exchange_period=4
            ),
        )

    def test_worker_count_invariance(self):
        circuit = make_macro_circuit(num_cells=5)
        reference = None
        for workers in (1, 2):
            result = run_multichain_stage1(circuit, self.small_config(workers))
            snapshot = (result.state.state_dict(), result.p2)
            if reference is None:
                reference = snapshot
            else:
                assert snapshot == reference, f"workers={workers} diverged"

    def test_batched_chains_beat_random_start(self):
        circuit = make_macro_circuit(num_cells=5)
        result = run_multichain_stage1(circuit, self.small_config(workers=1))
        assert result.teil > 0
        assert result.state.c2_raw() >= 0
