"""Long randomized invariants for the incremental hot path.

The spatial-index broad phase, the overlap adjacency map, and the
snapshot protocol are only correct if, after *any* sequence of moves and
restores, the incremental accumulators equal a from-scratch rebuild and
the auxiliary structures (``_adj``, the grid) stay in sync with
``_overlaps``.  These tests replay long fixed-seed mixed-move sequences
and check exactly that.
"""

import random

import pytest

from repro.estimator import determine_core
from repro.geometry import BOTTOM, LEFT, RIGHT, TOP
from repro.netlist import CustomCell
from repro.placement import PlacementState

from ..conftest import make_macro_circuit, make_mixed_circuit

SIDES = (LEFT, RIGHT, BOTTOM, TOP)


def mixed_move_sequence(state, steps, seed, span=60.0):
    """Displace / inverted displace / swap / pin-group / restore, with
    roughly half of the moves taken back — the §3.2.1 cascade's shape."""
    rng = random.Random(seed)
    n = len(state.names)
    for _ in range(steps):
        kind = rng.randrange(5)
        idx = rng.randrange(n)
        target = (rng.uniform(-span, span), rng.uniform(-span, span))
        if kind == 0:
            _, snap = state.move_cell(idx, center=target)
        elif kind == 1:
            _, snap = state.move_cell_inverted(idx, target)
        elif kind == 2 and n >= 2:
            j = rng.randrange(n - 1)
            j = j + 1 if j >= idx else j
            _, snap = state.swap_cells(idx, j)
        elif kind == 3:
            _, snap = state.move_cell(idx, orientation=rng.randrange(8))
        else:
            cell = state.cell(idx)
            if isinstance(cell, CustomCell) and state._groups[idx]:
                groups = state._groups[idx]
                key, _ = groups[rng.randrange(len(groups))]
                _, snap = state.move_pin_group(
                    idx,
                    key,
                    SIDES[rng.randrange(4)],
                    rng.randrange(cell.sites_per_edge),
                )
            else:
                _, snap = state.move_cell(idx, center=target)
        if rng.random() < 0.5:
            state.restore(snap)


def assert_matches_rebuild(state):
    """Incremental _c1/_c2_raw/_c3_total must equal a rebuild to 1e-6."""
    c1, c2, c3 = state._c1, state._c2_raw, state._c3_total
    state.rebuild()
    assert state._c1 == pytest.approx(c1, rel=1e-9, abs=1e-6)
    assert state._c2_raw == pytest.approx(c2, rel=1e-9, abs=1e-6)
    assert state._c3_total == pytest.approx(c3, rel=1e-9, abs=1e-6)


def assert_structures_in_sync(state):
    """_adj must mirror _overlaps; the grid must hold every cell under
    its current expanded bbox."""
    n = len(state.names)
    # Adjacency is exactly the edge set of _overlaps.
    edges = {frozenset(pair) for pair in state._overlaps}
    from_adj = {
        frozenset((i, j)) for i in range(n) for j in state._adj[i]
    }
    assert from_adj == edges
    for i, j in state._overlaps:
        assert i < j, "overlap keys must be ordered pairs"
        assert state._overlaps[(i, j)] > 0.0
    # Every cell is indexed under the bin range of its current bbox.
    for i in range(n):
        assert i in state._grid
        assert state._grid.stored_range(i) == state._grid.bin_range(
            state._expanded[i].bbox
        )


class TestLongMixedWalks:
    @pytest.mark.parametrize("seed", [11, 12, 13])
    def test_macro_500_moves(self, seed):
        ckt = make_macro_circuit()
        state = PlacementState(ckt, determine_core(ckt))
        state.randomize(random.Random(seed))
        mixed_move_sequence(state, 500, seed)
        assert_structures_in_sync(state)
        assert_matches_rebuild(state)

    @pytest.mark.parametrize("seed", [21, 22])
    def test_mixed_500_moves(self, seed):
        ckt = make_mixed_circuit()
        state = PlacementState(ckt, determine_core(ckt))
        state.randomize(random.Random(seed))
        mixed_move_sequence(state, 500, seed)
        assert_structures_in_sync(state)
        assert_matches_rebuild(state)

    def test_walk_crossing_bin_boundaries(self):
        # Small span relative to the core keeps cells clustered so they
        # repeatedly cross grid-bin boundaries while staying in contact.
        ckt = make_macro_circuit()
        state = PlacementState(ckt, determine_core(ckt))
        state.randomize(random.Random(31))
        bin_size = state._grid.bin_size
        rng = random.Random(31)
        n = len(state.names)
        for _ in range(300):
            idx = rng.randrange(n)
            cx, cy = state.records[idx].center
            # Step of about one bin: guaranteed re-binning traffic.
            _, snap = state.move_cell(
                idx,
                center=(
                    cx + rng.uniform(-1.5, 1.5) * bin_size,
                    cy + rng.uniform(-1.5, 1.5) * bin_size,
                ),
            )
            if rng.random() < 0.5:
                state.restore(snap)
        assert_structures_in_sync(state)
        assert_matches_rebuild(state)

    def test_cell_larger_than_one_bin(self):
        # The expanded bbox of a macro is far larger than one grid bin
        # when the grid is rebuilt with a deliberately tiny bin size.
        from repro.placement.spatial import UniformGridIndex

        ckt = make_macro_circuit()
        state = PlacementState(ckt, determine_core(ckt))
        state.randomize(random.Random(41))
        # Rebuild the index with bins much smaller than any cell.
        state._grid = UniformGridIndex(0.75)
        for i in range(len(state.names)):
            state._grid.insert(i, state._expanded[i].bbox)
        for i in range(len(state.names)):
            bx1, by1, bx2, by2 = state._grid.stored_range(i)
            assert (bx2 - bx1 + 1) * (by2 - by1 + 1) > 1
        mixed_move_sequence(state, 200, 41)
        assert_structures_in_sync(state)
        assert_matches_rebuild(state)


class TestPinGroupFastPath:
    """move_pin_group skips all geometry work; nothing geometric may
    drift even across restores."""

    def test_geometry_untouched_and_costs_exact(self):
        ckt = make_mixed_circuit()
        state = PlacementState(ckt, determine_core(ckt))
        state.randomize(random.Random(51))
        customs = [
            i
            for i in range(len(state.names))
            if isinstance(state.cell(i), CustomCell) and state._groups[i]
        ]
        assert customs, "fixture must contain custom cells with groups"
        expanded_before = [state._expanded[i] for i in range(len(state.names))]
        overlaps_before = dict(state._overlaps)
        rng = random.Random(51)
        for _ in range(200):
            idx = customs[rng.randrange(len(customs))]
            cell = state.cell(idx)
            groups = state._groups[idx]
            key, _ = groups[rng.randrange(len(groups))]
            _, snap = state.move_pin_group(
                idx,
                key,
                SIDES[rng.randrange(4)],
                rng.randrange(cell.sites_per_edge),
            )
            assert not snap.geometry
            if rng.random() < 0.5:
                state.restore(snap)
        # Pin moves cannot change shapes, overlaps, or the grid.
        for i in range(len(state.names)):
            assert state._expanded[i] is expanded_before[i]
        assert state._overlaps == overlaps_before
        assert_structures_in_sync(state)
        assert_matches_rebuild(state)


class TestLazyWorldShape:
    def test_world_shape_materializes_on_demand(self):
        ckt = make_macro_circuit()
        state = PlacementState(ckt, determine_core(ckt))
        state.randomize(random.Random(61))
        name = state.names[0]
        idx = state.index[name]
        state.move_cell(idx, center=(7.0, -3.0))
        # The move leaves the world shape stale…
        assert state._shapes[idx] is None
        # …and the accessor rebuilds it at the new center.
        bbox = state.world_shape(name).bbox
        assert bbox.center.x == pytest.approx(7.0)
        assert bbox.center.y == pytest.approx(-3.0)
        assert state._shapes[idx] is not None

    def test_restore_may_restore_stale_marker(self):
        ckt = make_macro_circuit()
        state = PlacementState(ckt, determine_core(ckt))
        state.randomize(random.Random(62))
        idx = 0
        state.move_cell(idx, center=(1.0, 1.0))
        _, snap = state.move_cell(idx, center=(2.0, 2.0))
        state.restore(snap)
        # Whether stale or materialized, the accessor must agree with
        # the record's center.
        bbox = state.world_shape(state.names[idx]).bbox
        assert bbox.center.x == pytest.approx(1.0)
        assert bbox.center.y == pytest.approx(1.0)


class TestSnapshotScope:
    def test_single_move_snapshot_visits_only_partners(self):
        """The snapshot must record exactly the moved cell's overlap
        pairs (its adjacency), not every pair in the placement."""
        ckt = make_macro_circuit()
        state = PlacementState(ckt, determine_core(ckt))
        state.randomize(random.Random(71))
        idx = 0
        partners = set(state._adj[idx])
        _, snap = state.move_cell(idx, center=(0.0, 0.0))
        for (i, j) in snap.overlaps:
            assert idx in (i, j)
            other = j if i == idx else i
            assert other in partners
        state.restore(snap)
        assert set(state._adj[idx]) == partners
