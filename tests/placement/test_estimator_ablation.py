"""The estimator_scale ablation knob (Cw scaling, §2.2)."""

import pytest

from repro.config import TimberWolfConfig
from repro.estimator import determine_core
from repro.placement import run_stage1

from ..conftest import make_macro_circuit


class TestCwScale:
    def test_zero_scale_means_no_margins(self):
        ckt = make_macro_circuit()
        plan = determine_core(ckt, cw_scale=0.0)
        assert plan.cw == 0.0
        # Core sized for the cells alone.
        assert plan.core.area == pytest.approx(ckt.total_cell_area(), rel=1e-6)

    def test_scale_monotone_in_core_area(self):
        ckt = make_macro_circuit()
        areas = [
            determine_core(ckt, cw_scale=s).core.area for s in (0.0, 0.5, 1.0, 2.0)
        ]
        assert all(a < b for a, b in zip(areas, areas[1:]))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            determine_core(make_macro_circuit(), cw_scale=-1.0)
        with pytest.raises(ValueError):
            TimberWolfConfig(estimator_scale=-0.5)

    def test_config_threads_through_stage1(self):
        from dataclasses import replace

        ckt = make_macro_circuit()
        cfg = replace(TimberWolfConfig.smoke(seed=2), estimator_scale=0.0)
        result = run_stage1(ckt, cfg)
        assert result.plan.cw == 0.0
        # With no margins, expanded shapes equal the raw shapes.
        state = result.state
        for name in state.names:
            assert (
                state.expanded_shape(name).bbox.area
                == pytest.approx(state.world_shape(name).bbox.area)
            )

    def test_default_scale_reserves_area(self):
        cfg = TimberWolfConfig.smoke(seed=2)
        result = run_stage1(make_macro_circuit(), cfg)
        state = result.state
        name = state.names[0]
        assert (
            state.expanded_shape(name).bbox.area
            > state.world_shape(name).bbox.area
        )
