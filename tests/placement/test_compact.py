"""Deterministic compaction toward the core center."""

import random

import pytest

from repro.estimator import determine_core
from repro.placement import PlacementState, compact, remove_overlaps
from repro.placement.legalize import raw_overlap

from ..conftest import make_macro_circuit


def spread_state(seed=0, margin=2.0):
    """A legal, statically-expanded placement spread across the core."""
    ckt = make_macro_circuit(num_cells=6, seed=seed)
    state = PlacementState(ckt, determine_core(ckt))
    state.randomize(random.Random(seed))
    state.set_static_expansions(
        {name: {"left": margin, "right": margin, "bottom": margin, "top": margin}
         for name in state.names}
    )
    remove_overlaps(state, use_expanded=True)
    return state


class TestCompact:
    def test_requires_static_mode(self):
        ckt = make_macro_circuit()
        state = PlacementState(ckt, determine_core(ckt))
        with pytest.raises(ValueError):
            compact(state)

    def test_reduces_chip_area(self):
        state = spread_state(seed=3)
        before = state.chip_area()
        moved = compact(state)
        assert moved > 0
        assert state.chip_area() <= before

    def test_preserves_margin_disjointness(self):
        state = spread_state(seed=4)
        compact(state)
        expanded = [
            state._expanded_shape(i, state._world_shape(i))
            for i in range(len(state.names))
        ]
        assert raw_overlap(expanded) == pytest.approx(0.0, abs=1e-5)

    def test_idempotent_after_convergence(self):
        state = spread_state(seed=5)
        compact(state, passes=6)
        again = compact(state, passes=2)
        assert again == pytest.approx(0.0, abs=1e-3)

    def test_reduces_teil(self):
        # Pulling everything toward the center shortens the spans.
        state = spread_state(seed=6)
        before = state.teil()
        compact(state)
        assert state.teil() <= before + 1e-6

    def test_fixed_cells_stay(self):
        from repro.netlist import Circuit, FixedPlacement, MacroCell

        base = make_macro_circuit(num_cells=5, seed=7)
        cells = list(base.cells.values())
        first = cells[0]
        cells[0] = MacroCell(
            first.name,
            list(first.pins.values()),
            first.instances,
            fixed=FixedPlacement(40.0, 40.0),
        )
        ckt = Circuit("fixedcompact", cells)
        state = PlacementState(ckt, determine_core(ckt))
        state.randomize(random.Random(0))
        state.set_static_expansions({})
        remove_overlaps(state, use_expanded=True)
        compact(state)
        assert state.records[0].center == (40.0, 40.0)

    def test_validation(self):
        state = spread_state(seed=8)
        with pytest.raises(ValueError):
            compact(state, passes=0)
