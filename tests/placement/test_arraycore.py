"""Bit-identity and round-trip properties of the array placement core.

``ArrayPlacementState`` is only allowed to exist because it is
*indistinguishable* from the object core: same accept/reject decisions,
same cost accumulators, bit for bit, over any move sequence.  These
tests replay long fixed-seed walks over randomized circuits (macro
orientations, multi-instance macros, custom cells with grouped and
sequenced pins) under both cores and compare everything exactly — not
to a tolerance.  The object<->array conversions must likewise be
lossless.
"""

import random

import pytest

from repro.annealing import RangeLimiter
from repro.bench import CircuitSpec, generate_circuit
from repro.estimator import determine_core
from repro.netlist import CustomCell, MacroCell
from repro.placement import (
    ArrayPlacementState,
    BatchMoveGenerator,
    MoveGenerator,
    PlacementState,
    make_placement_state,
)

from ..conftest import make_mixed_circuit
from .test_state_properties import mixed_move_sequence

#: Randomized-circuit population for the property tests: custom-heavy,
#: macro-only, and the default mix, across sizes and seeds.  The bench
#: generator emits multi-instance macros (``multi_instance_fraction``)
#: and custom cells with grouped/sequenced pins, so every snapshot
#: field of both cores is exercised.
SPECS = [
    CircuitSpec(name="prop_a", num_cells=12, num_nets=24, num_pins=60, seed=3,
                custom_fraction=0.5),
    CircuitSpec(name="prop_b", num_cells=20, num_nets=40, num_pins=100, seed=5,
                custom_fraction=0.0, multi_instance_fraction=0.6),
    CircuitSpec(name="prop_c", num_cells=16, num_nets=32, num_pins=80, seed=8,
                custom_fraction=0.25),
]


def _pair(spec, seed=0):
    """The same randomized placement under both cores."""
    circuit = generate_circuit(spec)
    plan = determine_core(circuit)
    obj = make_placement_state("object", circuit, plan)
    arr = make_placement_state("array", circuit, plan)
    obj.randomize(random.Random(seed))
    arr.randomize(random.Random(seed))
    return obj, arr


def assert_cost_identical(obj, arr):
    """The accumulators must agree EXACTLY — no tolerance."""
    assert arr._c1 == obj._c1
    assert arr._c2_raw == obj._c2_raw
    assert arr._c3_total == obj._c3_total
    assert arr.cost() == obj.cost()


class TestFactory:
    def test_make_placement_state_dispatch(self):
        circuit = make_mixed_circuit()
        plan = determine_core(circuit)
        assert type(make_placement_state("object", circuit, plan)) is PlacementState
        assert isinstance(
            make_placement_state("array", circuit, plan), ArrayPlacementState
        )

    def test_unknown_core_rejected(self):
        circuit = make_mixed_circuit()
        with pytest.raises(ValueError, match="unknown placement core"):
            make_placement_state("simd", circuit, determine_core(circuit))


class TestRoundTrip:
    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.name)
    def test_object_array_round_trip_bit_identical(self, spec):
        """object -> array -> object preserves the full state_dict and
        the history-exact cost accumulators bit-for-bit, after a long
        mixed walk has aged the object state's accumulators."""
        obj, _ = _pair(spec)
        mixed_move_sequence(obj, 120, seed=13)

        arr = ArrayPlacementState.from_object(obj)
        assert arr.state_dict() == obj.state_dict()
        assert_cost_identical(obj, arr)

        back = arr.to_object()
        assert type(back) is PlacementState
        assert back.state_dict() == obj.state_dict()
        assert_cost_identical(obj, back)

    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.name)
    def test_round_trip_after_array_moves(self, spec):
        """Conversion is lossless in the other direction too: age the
        ARRAY state with moves, convert back, and compare rebuilt costs
        and every record field (centers, orientations, instances,
        aspect ratios, pin sites)."""
        _, arr = _pair(spec)
        mixed_move_sequence(arr, 120, seed=17)
        back = arr.to_object()
        assert back.state_dict() == arr.state_dict()
        for ra, rb in zip(arr.records, back.records):
            assert (ra.center, ra.orientation, ra.instance) == (
                rb.center,
                rb.orientation,
                rb.instance,
            )
            assert ra.aspect_ratio == rb.aspect_ratio
            assert dict(ra.pin_sites) == dict(rb.pin_sites)

    def test_soa_load_soa_round_trip(self):
        """soa() -> load_soa() reproduces geometry and spans exactly
        (float64 carries through numpy untouched)."""
        _, arr = _pair(SPECS[0])
        mixed_move_sequence(arr, 60, seed=23)
        view = arr.soa()
        spans_before = arr.net_spans()
        records_before = [
            (r.center, r.orientation, r.instance, r.aspect_ratio)
            for r in arr.records
        ]
        arr.load_soa(view)
        assert [
            (r.center, r.orientation, r.instance, r.aspect_ratio)
            for r in arr.records
        ] == records_before
        assert arr.net_spans() == spans_before

    def test_soa_views_match_state(self):
        _, arr = _pair(SPECS[2])
        view = arr.soa()
        n = len(arr.names)
        assert view["centers"].shape == (n, 2)
        assert view["expanded_bbox"].shape == (n, 4)
        assert view["pin_xy"].shape[0] == view["pin_cell"].shape[0]
        for i in range(n):
            assert tuple(view["centers"][i]) == arr.records[i].center


class TestReplayIdentity:
    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.name)
    def test_mixed_sequence_cost_identical(self, spec):
        """The shared mixed move/restore walk (displace, inverted,
        swap, orientation, pin-group, ~half restored) leaves both cores
        with bit-identical accumulators, and every per-move delta
        agrees exactly."""
        obj, arr = _pair(spec)
        assert_cost_identical(obj, arr)
        mixed_move_sequence(obj, 200, seed=0)
        mixed_move_sequence(arr, 200, seed=0)
        assert_cost_identical(obj, arr)

    def test_500_move_generator_walk_identical(self):
        """ISSUE acceptance property: a seeded 500-move MoveGenerator
        walk (the real §3.2.1 cascade, metropolis decisions included)
        replays with identical per-step attempts, accepts, and cost."""
        spec = CircuitSpec(
            name="walk", num_cells=30, num_nets=60, num_pins=150, seed=2,
            custom_fraction=0.25,
        )
        traces = {}
        for core in ("object", "array"):
            circuit = generate_circuit(spec)
            plan = determine_core(circuit)
            state = make_placement_state(core, circuit, plan)
            state.randomize(random.Random(0))
            limiter = RangeLimiter(
                full_span_x=state.core.width,
                full_span_y=state.core.height,
                t_infinity=500.0,
            )
            generator = MoveGenerator(state, limiter)
            rng = random.Random(4)
            trace = []
            for _ in range(500):
                attempts, accepts = generator.step(50.0, rng)
                trace.append((attempts, accepts, state.cost()))
            traces[core] = (trace, dict(generator.stats), state.state_dict())
        assert traces["array"][0] == traces["object"][0]
        assert traces["array"][1] == traces["object"][1]
        assert traces["array"][2] == traces["object"][2]

    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.name)
    def test_accumulators_match_rebuild(self, spec):
        """After a long array-core walk the incremental accumulators
        still agree with a from-scratch rebuild (the object-core
        invariant, inherited)."""
        _, arr = _pair(spec)
        mixed_move_sequence(arr, 150, seed=29)
        c1, c2, c3 = arr._c1, arr._c2_raw, arr._c3_total
        arr.rebuild()
        assert arr._c1 == pytest.approx(c1, rel=1e-9, abs=1e-6)
        assert arr._c2_raw == pytest.approx(c2, rel=1e-9, abs=1e-6)
        assert arr._c3_total == pytest.approx(c3, rel=1e-9, abs=1e-6)


class TestBatchGenerator:
    def _arr(self, n=24, seed=0):
        spec = CircuitSpec(
            name="batch", num_cells=n, num_nets=2 * n, num_pins=5 * n, seed=6,
            custom_fraction=0.25,
        )
        circuit = generate_circuit(spec)
        arr = make_placement_state("array", circuit, determine_core(circuit))
        arr.randomize(random.Random(seed))
        return arr

    def test_batched_accumulators_match_fresh_evaluation(self):
        """The batched kernel's incremental cost agrees with a full
        fresh evaluation after hundreds of accepted moves."""
        arr = self._arr()
        limiter = RangeLimiter(
            full_span_x=arr.core.width,
            full_span_y=arr.core.height,
            t_infinity=500.0,
        )
        generator = BatchMoveGenerator(arr, limiter, batch=16, seed=3)
        generator.begin()
        total_attempts = total_accepts = 0
        for _ in range(40):
            a, acc = generator.step(50.0)
            total_attempts += a
            total_accepts += acc
        generator.finish()
        assert total_attempts > 0
        assert total_accepts > 0
        c1, c2, c3 = arr.cost_breakdown_fresh()
        assert arr._c1 == pytest.approx(c1, rel=1e-9, abs=1e-6)
        assert arr._c2_raw == pytest.approx(c2, rel=1e-9, abs=1e-6)
        assert arr._c3_total == pytest.approx(c3, rel=1e-9, abs=1e-6)

    def test_batched_stats_cover_both_kinds(self):
        arr = self._arr()
        limiter = RangeLimiter(
            full_span_x=arr.core.width,
            full_span_y=arr.core.height,
            t_infinity=500.0,
        )
        generator = BatchMoveGenerator(arr, limiter, batch=12, seed=1)
        generator.begin()
        for _ in range(60):
            generator.step(50.0)
        generator.finish()
        stats = generator.stats
        assert stats["displace_batch"][0] > 0
        assert stats["interchange_batch"][0] > 0

    def test_batched_is_deterministic_per_seed(self):
        runs = []
        for _ in range(2):
            arr = self._arr()
            limiter = RangeLimiter(
                full_span_x=arr.core.width,
                full_span_y=arr.core.height,
                t_infinity=500.0,
            )
            generator = BatchMoveGenerator(arr, limiter, batch=16, seed=9)
            generator.begin()
            trace = []
            for _ in range(25):
                trace.append(generator.step(50.0) + (arr.cost(),))
            generator.finish()
            runs.append(trace)
        assert runs[0] == runs[1]


class TestVectorizedCost:
    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.name)
    def test_cost_breakdown_vector_matches_fresh(self, spec):
        """The numpy C1/C2/C3 evaluation agrees with the object-core
        from-scratch evaluation (tolerance: summation-order ULPs)."""
        _, arr = _pair(spec)
        mixed_move_sequence(arr, 80, seed=31)
        vc1, vc2, vc3 = arr.cost_breakdown_vector()
        fc1, fc2, fc3 = arr.cost_breakdown_fresh()
        assert vc1 == pytest.approx(fc1, rel=1e-9, abs=1e-6)
        assert vc2 == pytest.approx(fc2, rel=1e-9, abs=1e-6)
        assert vc3 == pytest.approx(fc3, rel=1e-9, abs=1e-6)

    def test_accessors_read_the_mirror(self):
        """pin_position / net_spans / teil / chip_bbox keep working
        after array moves invalidate the object caches."""
        obj, arr = _pair(SPECS[0])
        mixed_move_sequence(obj, 40, seed=37)
        mixed_move_sequence(arr, 40, seed=37)
        assert arr.teil() == obj.teil()
        assert arr.net_spans() == obj.net_spans()
        assert arr.chip_bbox() == obj.chip_bbox()
        for name in list(arr.index)[:5]:
            cell = arr.cell(arr.index[name])
            for pin in list(cell.pins)[:3]:
                assert arr.pin_position(name, pin) == obj.pin_position(name, pin)
