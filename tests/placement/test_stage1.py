"""The stage-1 driver: p2 calibration, annealing quality, determinism."""

import random

import pytest

from repro.config import TimberWolfConfig
from repro.estimator import determine_core
from repro.placement import PlacementState, calibrate_p2, run_stage1

from ..conftest import make_macro_circuit, make_mixed_circuit

SMOKE = TimberWolfConfig.smoke()


class TestCalibrateP2:
    def test_eqn9_target(self):
        """p2 is chosen so p2 * C2 ~ eta * C1 over random configurations."""
        ckt = make_macro_circuit()
        state = PlacementState(ckt, determine_core(ckt))
        p2 = calibrate_p2(state, random.Random(0), eta=0.5, samples=40)
        # Check on an independent sample of random configurations.
        rng = random.Random(99)
        ratios = []
        for _ in range(20):
            state.randomize(rng)
            if state.c2_raw() > 0:
                ratios.append(p2 * state.c2_raw() / state.c1())
        avg = sum(ratios) / len(ratios)
        assert avg == pytest.approx(0.5, rel=0.5)

    def test_eta_scales_p2(self):
        ckt = make_macro_circuit()
        state = PlacementState(ckt, determine_core(ckt))
        lo = calibrate_p2(state, random.Random(1), eta=0.25)
        hi = calibrate_p2(state, random.Random(1), eta=1.0)
        assert hi == pytest.approx(4 * lo)

    def test_validation(self):
        ckt = make_macro_circuit()
        state = PlacementState(ckt, determine_core(ckt))
        with pytest.raises(ValueError):
            calibrate_p2(state, random.Random(0), eta=0.5, samples=0)


class TestRunStage1:
    def test_improves_on_random(self):
        ckt = make_macro_circuit(num_cells=8, seed=5)
        # Reference: mean TEIL over random placements.
        state = PlacementState(ckt, determine_core(ckt))
        rng = random.Random(0)
        random_teils = []
        for _ in range(10):
            state.randomize(rng)
            random_teils.append(state.teil())
        reference = sum(random_teils) / len(random_teils)

        result = run_stage1(ckt, SMOKE)
        assert result.teil < reference

    def test_initial_acceptance_near_one(self):
        result = run_stage1(make_macro_circuit(), SMOKE)
        assert result.anneal.initial_acceptance_rate > 0.9

    def test_final_colder_than_initial(self):
        result = run_stage1(make_macro_circuit(), SMOKE)
        steps = result.anneal.steps
        assert steps[-1].temperature < steps[0].temperature

    def test_deterministic(self):
        a = run_stage1(make_macro_circuit(), SMOKE.with_seed(3))
        b = run_stage1(make_macro_circuit(), SMOKE.with_seed(3))
        assert a.teil == b.teil
        assert a.chip_area == b.chip_area

    def test_seed_changes_outcome(self):
        a = run_stage1(make_macro_circuit(), SMOKE.with_seed(3))
        b = run_stage1(make_macro_circuit(), SMOKE.with_seed(4))
        assert a.teil != b.teil

    def test_mixed_circuit_runs(self):
        result = run_stage1(make_mixed_circuit(), SMOKE)
        assert result.teil > 0
        assert result.p2 > 0

    def test_result_exposes_plan_and_limiter(self):
        result = run_stage1(make_macro_circuit(), SMOKE)
        assert result.plan.core.area > 0
        assert result.limiter.full_span_x == pytest.approx(result.plan.core.width)
        assert result.state.p2 == result.p2

    def test_residual_overlap_reported(self):
        result = run_stage1(make_macro_circuit(), SMOKE)
        assert result.residual_overlap == result.state.c2_raw()
