"""Overlap removal before channel definition."""

import random

import pytest

from repro.estimator import determine_core
from repro.placement import PlacementState, raw_overlap, remove_overlaps

from ..conftest import make_macro_circuit, make_mixed_circuit


def overlapping_state(seed=0, num_cells=6):
    ckt = make_macro_circuit(num_cells=num_cells, seed=seed)
    state = PlacementState(ckt, determine_core(ckt))
    # Everything starts stacked at the core center: maximal overlap.
    return state


class TestRemoveOverlaps:
    def test_removes_stacked_overlap(self):
        state = overlapping_state()
        assert state.c2_raw() > 0
        residual = remove_overlaps(state)
        assert residual == 0.0
        shapes = [state.world_shape(n) for n in state.names]
        assert raw_overlap(shapes) == 0.0

    def test_random_start(self):
        state = overlapping_state(seed=2)
        state.randomize(random.Random(0))
        assert remove_overlaps(state) == 0.0

    def test_min_gap_respected(self):
        state = overlapping_state(seed=3)
        state.randomize(random.Random(1))
        remove_overlaps(state, min_gap=2.0)
        shapes = [state.world_shape(n) for n in state.names]
        # Shrinking the gap margin must keep shapes disjoint even after
        # expanding each by just under half the gap.
        padded = [s.expanded_uniform(0.99) for s in shapes]
        assert raw_overlap(padded) == pytest.approx(0.0, abs=1e-6)

    def test_idempotent(self):
        state = overlapping_state(seed=4)
        remove_overlaps(state)
        centers = [r.center for r in state.records]
        remove_overlaps(state)
        assert [r.center for r in state.records] == centers

    def test_mixed_circuit(self):
        ckt = make_mixed_circuit()
        state = PlacementState(ckt, determine_core(ckt))
        state.randomize(random.Random(2))
        assert remove_overlaps(state) == 0.0

    def test_state_rebuilt_after(self):
        state = overlapping_state(seed=5)
        remove_overlaps(state)
        cost = state.cost()
        state.rebuild()
        assert state.cost() == pytest.approx(cost)

    def test_validation(self):
        state = overlapping_state()
        with pytest.raises(ValueError):
            remove_overlaps(state, max_passes=0)


class TestRawOverlap:
    def test_empty(self):
        assert raw_overlap([]) == 0.0

    def test_counts_pairs(self):
        from repro.geometry import TileSet

        a = TileSet.rectangle(4, 4)
        b = TileSet.rectangle(4, 4).translated(2, 0)
        assert raw_overlap([a, b]) == pytest.approx(8.0)
