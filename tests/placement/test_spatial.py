"""The uniform-grid broad phase: exactness, re-binning, bookkeeping."""

import random

import pytest

from repro.geometry import Rect
from repro.placement.spatial import UniformGridIndex


def random_rect(rng, span=100.0, max_size=12.0):
    x = rng.uniform(-span, span)
    y = rng.uniform(-span, span)
    w = rng.uniform(0.1, max_size)
    h = rng.uniform(0.1, max_size)
    return Rect(x, y, x + w, y + h)


class TestConstruction:
    def test_rejects_nonpositive_bin(self):
        with pytest.raises(ValueError):
            UniformGridIndex(0.0)
        with pytest.raises(ValueError):
            UniformGridIndex(-1.0)

    def test_for_bboxes_uses_mean_larger_edge(self):
        boxes = [Rect(0, 0, 4, 2), Rect(0, 0, 2, 8)]
        grid = UniformGridIndex.for_bboxes(boxes)
        assert grid.bin_size == pytest.approx((4 + 8) / 2)

    def test_for_bboxes_empty_is_valid(self):
        grid = UniformGridIndex.for_bboxes([])
        grid.insert("a", Rect(0, 0, 1, 1))
        assert "a" in grid

    def test_double_insert_rejected(self):
        grid = UniformGridIndex(5.0)
        grid.insert("a", Rect(0, 0, 1, 1))
        with pytest.raises(ValueError):
            grid.insert("a", Rect(2, 2, 3, 3))


class TestExactness:
    """The invariant the cost bookkeeping rests on: every pair of
    intersecting bboxes shares at least one bin, so query()/candidates()
    return a superset of the true intersectors."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    @pytest.mark.parametrize("bin_size", [0.5, 3.0, 17.0, 1000.0])
    def test_query_superset_of_bruteforce(self, seed, bin_size):
        rng = random.Random(seed)
        boxes = {i: random_rect(rng) for i in range(60)}
        grid = UniformGridIndex(bin_size)
        for i, box in boxes.items():
            grid.insert(i, box)
        probe = random_rect(rng, span=80.0, max_size=40.0)
        hits = grid.query(probe)
        for i, box in boxes.items():
            if probe.intersects(box):
                assert i in hits, f"intersecting box {i} missed by query"

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_candidates_superset_after_updates(self, seed):
        rng = random.Random(seed)
        boxes = {i: random_rect(rng) for i in range(40)}
        grid = UniformGridIndex(4.0)
        for i, box in boxes.items():
            grid.insert(i, box)
        # Churn: move half the items around, including across bins.
        for _ in range(200):
            i = rng.randrange(40)
            boxes[i] = random_rect(rng)
            grid.update(i, boxes[i])
        for i, box in boxes.items():
            cands = grid.candidates(i)
            assert i not in cands
            for j, other in boxes.items():
                if j != i and box.intersects(other):
                    assert j in cands, f"pair ({i},{j}) missed"

    def test_touching_boxes_share_a_bin(self):
        # Boxes meeting exactly on a bin boundary: x = 8.0 with bin 4.0.
        grid = UniformGridIndex(4.0)
        grid.insert("l", Rect(4.0, 0.0, 8.0, 2.0))
        grid.insert("r", Rect(8.0, 0.0, 12.0, 2.0))
        # Inclusive bin ranges put both in the bin at x=8 — the superset
        # may include touching (zero-area) pairs; the narrow phase
        # rejects them, so this is allowed, not required to be filtered.
        assert "r" in grid.candidates("l")


class TestRebinning:
    def test_update_within_bin_keeps_range(self):
        grid = UniformGridIndex(10.0)
        grid.insert("a", Rect(1.0, 1.0, 3.0, 3.0))
        rng_before = grid.stored_range("a")
        grid.update("a", Rect(4.0, 5.0, 6.0, 7.0))  # same 10x10 bin
        assert grid.stored_range("a") == rng_before

    def test_update_across_boundary_moves_bins(self):
        grid = UniformGridIndex(10.0)
        grid.insert("a", Rect(1.0, 1.0, 3.0, 3.0))
        grid.update("a", Rect(11.0, 1.0, 13.0, 3.0))
        assert grid.stored_range("a") == (1, 0, 1, 0)
        assert grid.query(Rect(12.0, 2.0, 12.5, 2.5)) == {"a"}
        # The old bin no longer reports it.
        assert grid.query(Rect(2.0, 2.0, 2.5, 2.5)) == set()

    def test_item_larger_than_one_bin(self):
        grid = UniformGridIndex(2.0)
        big = Rect(-3.0, -3.0, 5.0, 5.0)  # covers a 5x5 block of bins
        grid.insert("big", big)
        bx1, by1, bx2, by2 = grid.stored_range("big")
        assert (bx2 - bx1 + 1) * (by2 - by1 + 1) == 25
        # Probing any corner bin finds it.
        assert "big" in grid.query(Rect(-2.9, -2.9, -2.8, -2.8))
        assert "big" in grid.query(Rect(4.8, 4.8, 4.9, 4.9))

    def test_grid_is_unbounded(self):
        grid = UniformGridIndex(1.0)
        far = Rect(1e6, -1e6, 1e6 + 1, -1e6 + 1)
        grid.insert("far", far)
        assert grid.query(far) == {"far"}


class TestBookkeeping:
    def test_remove_clears_everywhere(self):
        grid = UniformGridIndex(2.0)
        grid.insert("a", Rect(0.0, 0.0, 7.0, 7.0))
        grid.remove("a")
        assert "a" not in grid
        assert len(grid) == 0
        assert grid.query(Rect(0.0, 0.0, 7.0, 7.0)) == set()

    def test_empty_bins_are_freed(self):
        grid = UniformGridIndex(2.0)
        grid.insert("a", Rect(0.0, 0.0, 7.0, 7.0))
        grid.insert("b", Rect(0.0, 0.0, 1.0, 1.0))
        grid.remove("a")
        # Only the single bin holding "b" survives.
        assert len(grid._bins) == 1
        grid.remove("b")
        assert grid._bins == {}

    def test_update_inserts_unknown_item(self):
        grid = UniformGridIndex(2.0)
        grid.update("a", Rect(0.0, 0.0, 1.0, 1.0))
        assert "a" in grid

    def test_len_and_contains(self):
        grid = UniformGridIndex(2.0)
        assert len(grid) == 0 and "a" not in grid
        grid.insert("a", Rect(0, 0, 1, 1))
        grid.insert("b", Rect(5, 5, 6, 6))
        assert len(grid) == 2 and "a" in grid and "b" in grid

    def test_repr_mentions_counts(self):
        grid = UniformGridIndex(2.0)
        grid.insert("a", Rect(0, 0, 1, 1))
        assert "1 items" in repr(grid)
