"""End-to-end telemetry: a traced flow emits the expected event stream
and the per-temperature records reconcile with the engine's own stats."""

import json

import pytest

from repro import (
    FileSink,
    MemorySink,
    TimberWolfConfig,
    Tracer,
    place_and_route,
)
from repro.flow.report import full_report, router_report, stage_timing_report
from repro.telemetry.report import (
    acceptance_table,
    load_events,
    span_paths,
    stage_summary,
    write_report,
)

from ..conftest import make_macro_circuit


@pytest.fixture(scope="module")
def traced():
    """One traced smoke run shared by the assertions below."""
    mem = MemorySink()
    result = place_and_route(
        make_macro_circuit(), TimberWolfConfig.smoke(seed=3), tracer=Tracer(mem)
    )
    return result, mem.events


class TestEventSequence:
    def test_stage_spans_present_in_order(self, traced):
        _, events = traced
        begins = [e["name"] for e in events if e["ev"] == "span_begin"]
        # The flow's skeleton, in execution order.
        for earlier, later in zip(
            ["flow", "stage1", "estimator.determine_core", "anneal",
             "stage1.legalize", "stage2", "channels.define", "router.route"],
            ["stage1", "estimator.determine_core", "anneal", "stage1.legalize",
             "stage2", "channels.define", "router.route", "stage2.refine_anneal"],
        ):
            assert begins.index(earlier) < begins.index(later), (earlier, later)

    def test_span_tree_roots_at_flow(self, traced):
        _, events = traced
        paths = span_paths(events)
        assert "flow" in paths.values()
        assert any(p == "flow/stage1/anneal" for p in paths.values())
        assert any(p.startswith("flow/stage2/stage2.pass") for p in paths.values())

    def test_every_span_closes_ok(self, traced):
        _, events = traced
        begins = {e["span"] for e in events if e["ev"] == "span_begin"}
        ends = {e["span"] for e in events if e["ev"] == "span_end"}
        assert begins == ends
        assert all(e["ok"] for e in events if e["ev"] == "span_end")

    def test_layer_events_present(self, traced):
        _, events = traced
        names = {e["name"] for e in events if e["ev"] == "event"}
        assert {"anneal.temperature", "estimator.sizing_pass",
                "estimator.core_plan", "stage1.setup", "stage1.result",
                "channels.defined", "router.net", "router.interchange",
                "stage2.pass", "stage1.move_metrics"} <= names

    def test_user_sink_and_result_see_same_events(self, traced):
        result, events = traced
        assert result.trace_events == events


class TestAcceptanceReconciliation:
    def test_per_temperature_events_match_engine_counts(self, traced):
        result, events = traced
        paths = span_paths(events)
        stage1_events = [
            e for e in events
            if e.get("name") == "anneal.temperature"
            and paths.get(e.get("span")) == "flow/stage1/anneal"
        ]
        steps = result.stage1.anneal.steps
        assert len(stage1_events) == len(steps)
        for ev, step in zip(stage1_events, steps):
            assert ev["attempts"] == step.attempts
            assert ev["accepts"] == step.accepts
            assert ev["acceptance"] == pytest.approx(
                step.acceptance_rate, abs=1e-4
            )
            # T is rounded to 6 decimals on the wire.
            assert ev["T"] == pytest.approx(step.temperature, abs=1e-6)

    def test_snapshot_fields_present(self, traced):
        _, events = traced
        ev = next(e for e in events if e.get("name") == "anneal.temperature")
        for key in ("c1", "c2", "c2_raw", "c3", "window_x", "window_y",
                    "cost", "moves_per_sec"):
            assert key in ev, key

    def test_move_metrics_reconcile_with_attempts(self, traced):
        result, events = traced
        metrics = next(
            e for e in events if e.get("name") == "stage1.move_metrics"
        )
        counters = metrics["counters"]
        total_attempts = sum(
            v for k, v in counters.items() if k.endswith(".attempts")
        )
        assert total_attempts == result.stage1.anneal.total_attempts
        total_accepts = sum(
            v for k, v in counters.items() if k.endswith(".accepts")
        )
        assert total_accepts == result.stage1.anneal.total_accepts


class TestFileTraceRoundTrip:
    def test_jsonl_trace_feeds_report(self, tmp_path):
        path = tmp_path / "run.jsonl"
        tracer = Tracer(FileSink(str(path)))
        result = place_and_route(
            make_macro_circuit(), TimberWolfConfig.smoke(seed=5), tracer=tracer
        )
        tracer.close()
        events = load_events(path)
        assert events, "trace file is empty"
        # Every line is valid JSON (load_events parsed it) and the report
        # regenerates the acceptance and stage tables.
        _, acc_rows = acceptance_table(events)
        stage1_steps = len(result.stage1.anneal.steps)
        assert len(acc_rows) >= stage1_steps
        _, stage_rows = stage_summary(events)
        stages = {r[0] for r in stage_rows}
        assert "flow" in stages and "flow/stage1" in stages
        written = write_report(events, tmp_path / "out")
        assert (tmp_path / "out" / "report.txt").exists()
        acc_csv = written["acceptance_vs_temperature.csv"].read_text()
        assert acc_csv.count("\n") == len(acc_rows) + 1


class TestDisabledTelemetry:
    def test_collect_trace_false_disables(self):
        result = place_and_route(
            make_macro_circuit(),
            TimberWolfConfig.smoke(seed=3),
            collect_trace=False,
        )
        assert result.trace_events is None

    def test_report_stable_when_disabled(self):
        result = place_and_route(
            make_macro_circuit(),
            TimberWolfConfig.smoke(seed=3),
            collect_trace=False,
        )
        text = full_report(result)
        for marker in ("router / channel definition", "stage timings",
                       "annealing trace"):
            assert marker in text
        assert "telemetry disabled" in stage_timing_report(result)
        # Router stats fall back to the stored refinement artifacts.
        assert "overflow" in router_report(result)

    def test_disabled_and_default_runs_agree(self):
        """Telemetry must not perturb the annealing (same seed, same result)."""
        kwargs = dict(config=TimberWolfConfig.smoke(seed=9))
        a = place_and_route(make_macro_circuit(), collect_trace=False, **kwargs)
        b = place_and_route(make_macro_circuit(), **kwargs)
        assert a.teil == b.teil
        assert a.placement() == b.placement()


class TestDefaultCollection:
    def test_default_run_carries_trace(self):
        result = place_and_route(
            make_macro_circuit(), TimberWolfConfig.smoke(seed=3)
        )
        assert result.trace_events
        report = full_report(result)
        assert "flow/stage1" in report  # stage timings rendered from trace

    def test_trace_events_are_json_serializable(self):
        result = place_and_route(
            make_macro_circuit(), TimberWolfConfig.smoke(seed=3)
        )
        json.dumps(result.trace_events)


class TestProfilingHook:
    def test_profile_events_behind_flag(self):
        mem = MemorySink()
        from dataclasses import replace

        cfg = replace(TimberWolfConfig.smoke(seed=3), enable_profiling=True)
        place_and_route(make_macro_circuit(), cfg, tracer=Tracer(mem))
        profiles = [e for e in mem.events if e.get("name") == "profile"]
        assert {p["profiled"] for p in profiles} == {"stage1", "stage2"}
        top = profiles[0]["top"]
        assert top and {"func", "ncalls", "cumtime_s"} <= set(top[0])

    def test_no_profile_events_without_flag(self):
        mem = MemorySink()
        place_and_route(
            make_macro_circuit(), TimberWolfConfig.smoke(seed=3),
            tracer=Tracer(mem),
        )
        assert not [e for e in mem.events if e.get("name") == "profile"]
