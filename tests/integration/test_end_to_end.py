"""End-to-end integration: a suite circuit through the full flow."""

import pytest

from repro import TimberWolfConfig, place_and_route
from repro.baselines import RandomPlacer
from repro.bench import load_circuit
from repro.placement.legalize import raw_overlap

SMOKE = TimberWolfConfig.smoke(seed=11)


@pytest.fixture(scope="module")
def i3_result():
    return place_and_route(load_circuit("i3"), SMOKE)


class TestSuiteCircuitFlow:
    def test_runs_to_completion(self, i3_result):
        assert i3_result.teil > 0
        assert i3_result.refinement is not None

    def test_beats_random_baseline(self, i3_result):
        baseline = RandomPlacer(seed=0).place(load_circuit("i3"))
        assert i3_result.teil < baseline.teil

    def test_final_placement_legal(self, i3_result):
        state = i3_result.state
        shapes = [state.world_shape(n) for n in state.names]
        assert raw_overlap(shapes) == pytest.approx(0.0, abs=1e-6)

    def test_all_nets_routed(self, i3_result):
        routing = i3_result.refinement.final_pass.routing
        assert not routing.unrouted

    def test_channels_extracted(self, i3_result):
        final = i3_result.refinement.final_pass
        assert final.graph.regions
        assert final.graph.num_free_nodes > 0

    def test_every_pin_attached(self, i3_result):
        circuit = i3_result.circuit
        graph = i3_result.refinement.final_pass.graph
        assert len(graph.pin_nodes) == circuit.num_pins


class TestReproducibility:
    def test_same_seed_same_result(self):
        a = place_and_route(load_circuit("i3"), SMOKE)
        b = place_and_route(load_circuit("i3"), SMOKE)
        assert a.teil == b.teil
        assert a.chip_area == b.chip_area
        assert a.placement() == b.placement()


class TestMixedSuiteCircuit:
    def test_chip_planning_circuit(self):
        """p1 carries custom cells: the chip-planning capability."""
        circuit = load_circuit("p1")
        assert circuit.custom_cells()
        result = place_and_route(circuit, SMOKE)
        assert result.teil > 0
        # Custom cells must have settled on valid aspect ratios.
        state = result.state
        for cell in circuit.custom_cells():
            record = state.records[state.index[cell.name]]
            assert cell.aspect.contains(record.aspect_ratio)


class TestMediumCircuit:
    """i1 is the paper's headline circuit (33 cells, resistive-network
    comparator); one smoke-effort pass keeps the bigger code paths hot."""

    def test_i1_full_flow(self):
        circuit = load_circuit("i1")
        result = place_and_route(circuit, SMOKE)
        assert result.teil > 0
        assert not result.refinement.final_pass.routing.unrouted
        state = result.state
        shapes = [state.world_shape(n) for n in state.names]
        assert raw_overlap(shapes) == pytest.approx(0.0, abs=1e-6)
