"""Feature-level integration: net weighting, pin sequences, instances."""

import random

import pytest

from repro.config import TimberWolfConfig
from repro.estimator import determine_core
from repro.geometry import LEFT, TOP, TileSet
from repro.netlist import (
    Circuit,
    ContinuousAspectRatio,
    CustomCell,
    MacroCell,
    MacroInstance,
    Pin,
    PinKind,
)
from repro.placement import PlacementState, run_stage1


class TestNetWeighting:
    """The h(n)/v(n) weights of Eqn 6: heavier nets end shorter."""

    def build(self, weight):
        rng = random.Random(4)
        cells = []
        for i in range(6):
            w, h = rng.randint(12, 20), rng.randint(12, 20)
            pins = [
                Pin("crit", "critical", PinKind.FIXED, offset=(0, h / 2)),
                Pin("p1", f"n{i % 3}", PinKind.FIXED, offset=(-w / 2, 0)),
                Pin("p2", f"n{(i + 1) % 3}", PinKind.FIXED, offset=(w / 2, 0)),
            ]
            cells.append(MacroCell.rectangular(f"m{i}", w, h, pins))
        return Circuit(
            "weighted", cells, net_weights={"critical": (weight, weight)}
        )

    def test_heavy_net_shorter_on_average(self):
        def final_span(weight, seed):
            circuit = self.build(weight)
            result = run_stage1(circuit, TimberWolfConfig.smoke(seed=seed))
            xs, ys = result.state.net_spans()["critical"]
            return xs + ys

        seeds = (1, 2, 3)
        plain = sum(final_span(1.0, s) for s in seeds) / len(seeds)
        heavy = sum(final_span(8.0, s) for s in seeds) / len(seeds)
        assert heavy < plain

    def test_weight_scales_c1_not_teil(self):
        circuit = self.build(5.0)
        state = PlacementState(circuit, determine_core(circuit))
        state.randomize(random.Random(0))
        # TEIL uses unit weights: C1 exceeds it when weights > 1 exist.
        assert state.c1() > state.teil()


class TestPinSequences:
    def test_sequence_order_preserved_along_edge(self):
        pins = [
            Pin(f"s{i}", f"n{i}", PinKind.SEQUENCE, group="bus",
                sequence_index=i, sides=frozenset({TOP}))
            for i in range(3)
        ] + [Pin("x", "n0", PinKind.EDGE)]
        cell = CustomCell(
            "c", pins, area=400.0,
            aspect=ContinuousAspectRatio(1.0, 1.0), sites_per_edge=8,
        )
        anchor = MacroCell.rectangular(
            "a", 10, 10,
            [Pin(f"q{i}", f"n{i}", PinKind.FIXED, offset=(0, 5)) for i in range(3)],
        )
        circuit = Circuit("seq", [cell, anchor])
        state = PlacementState(circuit, determine_core(circuit))
        idx = state.index["c"]
        state.records[idx].pin_sites["bus"] = (TOP, 2)
        state.rebuild()
        xs = [state.pin_position("c", f"s{i}")[0] for i in range(3)]
        # Consecutive sites along the top edge: strictly increasing x.
        assert xs[0] < xs[1] < xs[2]

    def test_sequence_wraps_within_edge(self):
        pins = [
            Pin(f"s{i}", f"n{i % 2}", PinKind.SEQUENCE, group="bus",
                sequence_index=i, sides=frozenset({LEFT}))
            for i in range(3)
        ]
        cell = CustomCell(
            "c", pins, area=400.0,
            aspect=ContinuousAspectRatio(1.0, 1.0), sites_per_edge=2,
        )
        anchor = MacroCell.rectangular(
            "a", 10, 10,
            [Pin(f"q{i}", f"n{i}", PinKind.FIXED, offset=(0, 5)) for i in range(2)],
        )
        circuit = Circuit("wrap", [cell, anchor])
        state = PlacementState(circuit, determine_core(circuit))
        idx = state.index["c"]
        state.records[idx].pin_sites["bus"] = (LEFT, 1)
        state.rebuild()
        # Three pins over two sites: the third wraps back to site 0 and
        # all remain on the left edge.
        w, h = cell.dimensions(1.0)
        cx = state.records[idx].center[0]
        for i in range(3):
            px, _ = state.pin_position("c", f"s{i}")
            assert px == pytest.approx(cx - w / 2)


class TestInstanceSelection:
    def test_annealer_may_pick_either_instance(self):
        wide = TileSet.rectangle(30, 10)
        tall = TileSet.rectangle(10, 30)
        pins = [Pin("p", "n0", PinKind.FIXED, offset=(0, 0))]
        cells = [
            MacroCell(
                "flex",
                pins,
                [MacroInstance("wide", wide), MacroInstance("tall", tall)],
            )
        ]
        rng = random.Random(7)
        for i in range(4):
            w, h = rng.randint(10, 20), rng.randint(10, 20)
            cells.append(
                MacroCell.rectangular(
                    f"m{i}", w, h,
                    [Pin("p", f"n{i % 2}", PinKind.FIXED, offset=(0, h / 2))],
                )
            )
        circuit = Circuit("inst", cells)
        result = run_stage1(circuit, TimberWolfConfig.smoke(seed=5))
        record = result.state.records[result.state.index["flex"]]
        assert record.instance in (0, 1)
        # The chosen instance is actually realized in the world shape.
        bbox = result.state.world_shape("flex").bbox
        dims = sorted((bbox.width, bbox.height))
        assert dims == [10, 30]
