"""Cross-module property tests on randomly generated placements."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bench import CircuitSpec, generate_circuit
from repro.channels import decompose_free_space, extract_critical_regions
from repro.estimator import determine_core
from repro.geometry import Rect
from repro.placement import PlacementState, remove_overlaps


def random_legal_state(seed: int, num_cells: int = 7) -> PlacementState:
    spec = CircuitSpec(
        name=f"prop{seed}",
        num_cells=num_cells,
        num_nets=num_cells * 2,
        num_pins=num_cells * 6,
        seed=seed,
        rectilinear_fraction=0.4,
    )
    circuit = generate_circuit(spec)
    state = PlacementState(circuit, determine_core(circuit))
    state.randomize(random.Random(seed))
    remove_overlaps(state, min_gap=1.0)
    return state


class TestCriticalRegionInvariants:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_regions_avoid_cell_interiors(self, seed):
        state = random_legal_state(seed)
        shapes = {n: state.world_shape(n) for n in state.names}
        boundary = Rect.bounding(s.bbox for s in shapes.values()).expanded_uniform(4)
        for region in extract_critical_regions(shapes, boundary):
            for shape in shapes.values():
                for tile in shape.tiles:
                    assert not tile.intersects(region.rect)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_regions_bounded_by_distinct_cells(self, seed):
        state = random_legal_state(seed)
        shapes = {n: state.world_shape(n) for n in state.names}
        for region in extract_critical_regions(shapes):
            a, b = region.cells()
            assert a != b
            assert region.width > 0 and region.length > 0

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_free_space_complements_cells(self, seed):
        state = random_legal_state(seed)
        shapes = [state.world_shape(n) for n in state.names]
        boundary = Rect.bounding(s.bbox for s in shapes).expanded_uniform(4)
        strips = decompose_free_space(shapes, boundary)
        cells_area = sum(s.area for s in shapes)
        free = sum(r.area for r in strips)
        assert free == pytest.approx(boundary.area - cells_area, rel=1e-9)
        # Strips never overlap cells.
        for strip in strips:
            for shape in shapes:
                for tile in shape.tiles:
                    assert not tile.intersects(strip)


class TestCostInvariants:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_teil_nonnegative_and_consistent(self, seed):
        state = random_legal_state(seed, num_cells=5)
        teil = state.teil()
        assert teil >= 0
        state.rebuild()
        assert state.teil() == pytest.approx(teil, rel=1e-9, abs=1e-6)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000), st.integers(0, 6))
    def test_move_then_restore_is_identity(self, seed, idx_seed):
        state = random_legal_state(seed, num_cells=5)
        rng = random.Random(idx_seed)
        idx = rng.randrange(len(state.names))
        before = (state.c1(), state.c2_raw(), state.c3())
        _, snap = state.move_cell(
            idx,
            center=(rng.uniform(-30, 30), rng.uniform(-30, 30)),
            orientation=rng.randrange(8),
        )
        state.restore(snap)
        after = (state.c1(), state.c2_raw(), state.c3())
        assert after == before
