"""Pre-placed (fixed) cells through the whole flow."""

import random

import pytest

from repro import TimberWolfConfig, place_and_route
from repro.baselines import GreedyPlacer, RandomPlacer, SlicingPlacer
from repro.estimator import determine_core
from repro.netlist import (
    Circuit,
    FixedPlacement,
    MacroCell,
    Pin,
    PinKind,
    dumps,
    loads,
)
from repro.placement import PlacementState, remove_overlaps, run_stage1
from repro.placement.legalize import raw_overlap

from ..conftest import make_macro_circuit


def circuit_with_fixed(seed=5):
    """A macro circuit whose first cell is pre-placed off-center."""
    base = make_macro_circuit(num_cells=6, seed=seed)
    cells = []
    for i, cell in enumerate(base.cells.values()):
        if i == 0:
            cells.append(
                MacroCell(
                    cell.name,
                    list(cell.pins.values()),
                    cell.instances,
                    fixed=FixedPlacement(20.0, -15.0, orientation=2),
                )
            )
        else:
            cells.append(cell)
    return Circuit("fixedckt", cells)


class TestModel:
    def test_fixed_flag(self):
        ckt = circuit_with_fixed()
        cells = list(ckt.cells.values())
        assert cells[0].is_fixed
        assert not cells[1].is_fixed

    def test_fixed_orientation_validation(self):
        with pytest.raises(ValueError):
            FixedPlacement(0, 0, orientation=9)

    def test_parser_roundtrip(self):
        ckt = circuit_with_fixed()
        text = dumps(ckt)
        assert "fixed 20.0 -15.0 2" in text
        back = loads(text)
        first = list(back.cells.values())[0]
        assert first.fixed == FixedPlacement(20.0, -15.0, 2)


class TestPlacementState:
    def test_default_record_honors_fixed(self):
        ckt = circuit_with_fixed()
        state = PlacementState(ckt, determine_core(ckt))
        idx = 0
        assert state.records[idx].center == (20.0, -15.0)
        assert state.records[idx].orientation == 2
        assert not state.movable[idx]

    def test_randomize_skips_fixed(self):
        ckt = circuit_with_fixed()
        state = PlacementState(ckt, determine_core(ckt))
        state.randomize(random.Random(0))
        assert state.records[0].center == (20.0, -15.0)

    def test_legalize_never_moves_fixed(self):
        ckt = circuit_with_fixed()
        state = PlacementState(ckt, determine_core(ckt))
        state.randomize(random.Random(1))
        remove_overlaps(state, min_gap=1.0)
        assert state.records[0].center == (20.0, -15.0)
        shapes = [state.world_shape(n) for n in state.names]
        assert raw_overlap(shapes) == pytest.approx(0.0, abs=1e-6)

    def test_enforce_fixed_restores(self):
        ckt = circuit_with_fixed()
        state = PlacementState(ckt, determine_core(ckt))
        state.records[0].center = (0.0, 0.0)
        state.rebuild()
        state.enforce_fixed()
        assert state.records[0].center == (20.0, -15.0)


class TestFlow:
    def test_stage1_keeps_fixed_cell_put(self):
        ckt = circuit_with_fixed()
        result = run_stage1(ckt, TimberWolfConfig.smoke(seed=2))
        record = result.state.records[0]
        assert record.center == (20.0, -15.0)
        assert record.orientation == 2

    def test_full_flow_keeps_fixed_cell_put(self):
        ckt = circuit_with_fixed()
        result = place_and_route(ckt, TimberWolfConfig.smoke(seed=3))
        record = result.state.records[0]
        assert record.center == (20.0, -15.0)
        assert record.orientation == 2

    @pytest.mark.parametrize("placer_cls", [RandomPlacer, GreedyPlacer, SlicingPlacer])
    def test_baselines_respect_fixed(self, placer_cls):
        ckt = circuit_with_fixed()
        result = placer_cls(seed=0).place(ckt)
        record = result.state.records[0]
        assert record.center == (20.0, -15.0)
        shapes = [result.state.world_shape(n) for n in result.state.names]
        assert raw_overlap(shapes) == pytest.approx(0.0, abs=1e-6)
