"""The synthetic circuit generator and the nine-circuit suite."""

import pytest

from repro.bench import (
    CIRCUIT_NAMES,
    PAPER_STATS,
    PAPER_TABLE3,
    PAPER_TABLE4,
    SMALL_CIRCUITS,
    CircuitSpec,
    generate_circuit,
    load_circuit,
    load_suite,
    spec_for,
)
from repro.netlist import dumps


class TestSpecValidation:
    def test_needs_cells(self):
        with pytest.raises(ValueError):
            CircuitSpec("x", 0, 1, 2)

    def test_needs_two_pins_per_net(self):
        with pytest.raises(ValueError):
            CircuitSpec("x", 4, 10, 19)

    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            CircuitSpec("x", 4, 5, 20, custom_fraction=1.5)


class TestGenerator:
    def spec(self, **kw):
        defaults = dict(
            name="gen", num_cells=10, num_nets=15, num_pins=50, seed=3
        )
        defaults.update(kw)
        return CircuitSpec(**defaults)

    def test_exact_counts(self):
        ckt = generate_circuit(self.spec())
        assert ckt.num_cells == 10
        assert ckt.num_nets == 15
        assert ckt.num_pins == 50

    def test_every_net_spans_two_cells(self):
        ckt = generate_circuit(self.spec(seed=5))
        for net in ckt.nets.values():
            assert len(set(net.cells())) >= 2

    def test_deterministic(self):
        a = generate_circuit(self.spec())
        b = generate_circuit(self.spec())
        assert dumps(a) == dumps(b)

    def test_seed_changes_circuit(self):
        a = generate_circuit(self.spec(seed=1))
        b = generate_circuit(self.spec(seed=2))
        assert dumps(a) != dumps(b)

    def test_custom_fraction(self):
        ckt = generate_circuit(self.spec(custom_fraction=0.4))
        assert len(ckt.custom_cells()) == 4

    def test_rectilinear_cells_present(self):
        ckt = generate_circuit(self.spec(rectilinear_fraction=1.0))
        multi_tile = [
            c
            for c in ckt.macro_cells()
            if len(c.instances[0].shape.tiles) > 1
        ]
        assert multi_tile

    def test_macro_pins_on_boundary(self):
        ckt = generate_circuit(self.spec(rectilinear_fraction=1.0))
        for cell in ckt.macro_cells():
            shape = cell.instances[0].shape
            for pin in cell.pins.values():
                x, y = pin.offset
                on_edge = any(
                    (e.is_vertical and abs(x - e.position) < 1e-6 and e.lo <= y <= e.hi)
                    or (not e.is_vertical and abs(y - e.position) < 1e-6 and e.lo <= x <= e.hi)
                    for e in shape.boundary_edges()
                )
                assert on_edge, f"{cell.name}.{pin.name} off boundary"

    def test_equivalent_pins_share_net(self):
        ckt = generate_circuit(self.spec(seed=8))
        for cell in ckt.macro_cells():
            by_class = {}
            for pin in cell.pins.values():
                if pin.equiv_class:
                    by_class.setdefault(pin.equiv_class, set()).add(pin.net)
            for nets in by_class.values():
                assert len(nets) == 1

    def test_valid_netlist(self):
        ckt = generate_circuit(self.spec(seed=9))
        assert ckt.validate() == []


class TestSuite:
    def test_names(self):
        assert set(CIRCUIT_NAMES) == set(PAPER_STATS)
        assert set(SMALL_CIRCUITS) <= set(CIRCUIT_NAMES)

    @pytest.mark.parametrize("name", ["i3", "p1", "x1", "d3"])
    def test_published_stats_matched(self, name):
        ckt = load_circuit(name)
        assert (ckt.num_cells, ckt.num_nets, ckt.num_pins) == PAPER_STATS[name]

    def test_spec_for_unknown(self):
        with pytest.raises(KeyError):
            spec_for("zz9")

    def test_trials_differ(self):
        a = load_circuit("i3", trial=0)
        b = load_circuit("i3", trial=1)
        assert dumps(a) != dumps(b)

    def test_load_suite_subset(self):
        suite = load_suite(["i3", "p1"])
        assert set(suite) == {"i3", "p1"}

    def test_paper_tables_cover_all_circuits(self):
        assert set(PAPER_TABLE3) == set(PAPER_STATS)
        assert set(PAPER_TABLE4) == set(PAPER_STATS)

    def test_paper_table4_averages(self):
        # Sanity on transcription: the paper reports avg 24.9 % TEIL red.
        reductions = [row[2] for row in PAPER_TABLE4.values()]
        assert sum(reductions) / len(reductions) == pytest.approx(24.9, abs=0.2)
