"""Measurement helpers."""

import pytest

from repro.bench import SeriesStats, format_table, mean, reduction_pct


class TestReduction:
    def test_positive_when_smaller(self):
        assert reduction_pct(100, 75) == 25.0

    def test_negative_when_larger(self):
        assert reduction_pct(100, 110) == pytest.approx(-10.0)

    def test_zero_baseline(self):
        assert reduction_pct(0, 50) == 0.0


class TestMean:
    def test_basic(self):
        assert mean([1, 2, 3]) == 2.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])


class TestSeriesStats:
    def test_aggregates(self):
        s = SeriesStats([3.0, 1.0, 2.0])
        assert (s.mean, s.min, s.max, s.count) == (2.0, 1.0, 3.0, 3)


class TestFormatTable:
    def test_alignment_and_floats(self):
        out = format_table(
            ["name", "value"], [["a", 1.234], ["bb", None], ["c", 10]]
        )
        lines = out.splitlines()
        assert len(lines) == 5
        assert "1.2" in out
        assert "-" in lines[1]
        assert "10" in lines[4]

    def test_wide_cells_stretch_columns(self):
        out = format_table(["h"], [["wide content"]])
        header = out.splitlines()[0]
        assert len(header) >= len("wide content")
