"""End-to-end resilience: kill/resume determinism, degradation, budgets.

The central property: a run killed at *any* checkpointed position and
resumed from disk produces bit-for-bit the same placement as the run
that was never interrupted.  The kills here are injected
:class:`SimulatedKill` faults — a ``BaseException``, exactly as abrupt
as a real SIGKILL from the flow's point of view, but deterministic.
"""

import pytest

from repro import TimberWolfConfig, place_and_route, resume_place_and_route
from repro.netlist import dumps, loads
from repro.resilience import (
    Budget,
    CheckpointError,
    CheckpointPolicy,
    Fault,
    JumpClock,
    SimulatedKill,
    inject_faults,
    latest_checkpoint,
    write_checkpoint,
)

from ..conftest import make_macro_circuit

SMOKE = TimberWolfConfig.smoke(seed=5)


def fixture_circuit():
    # Round-trip through the text format up front: the resumed process
    # runs on the checkpoint's serialized circuit, so the baseline must
    # anneal the identical parse.
    return loads(dumps(make_macro_circuit()))


@pytest.fixture(scope="module")
def baseline():
    return place_and_route(fixture_circuit(), SMOKE)


class TestCheckpointTransparency:
    def test_checkpointing_does_not_change_the_result(self, baseline, tmp_path):
        policy = CheckpointPolicy(directory=tmp_path, every_temperatures=5)
        result = place_and_route(fixture_circuit(), SMOKE, checkpoint=policy)
        assert result.teil == baseline.teil
        assert result.chip_area == baseline.chip_area
        assert result.placement() == baseline.placement()

    def test_periodic_checkpoints_written_and_pruned(self, tmp_path):
        policy = CheckpointPolicy(directory=tmp_path, every_temperatures=5, keep=2)
        place_and_route(fixture_circuit(), SMOKE, checkpoint=policy)
        files = list(tmp_path.glob("*.ckpt"))
        assert files, "no checkpoints written"
        assert len(files) <= 2


class TestKillAndResume:
    @pytest.mark.parametrize("kill_at", [3, 9])
    def test_stage1_kill_resumes_bit_for_bit(self, baseline, tmp_path, kill_at):
        policy = CheckpointPolicy(directory=tmp_path, every_temperatures=1)
        with inject_faults(
            Fault(site="anneal.temperature", at=kill_at, kind="kill")
        ):
            with pytest.raises(SimulatedKill):
                place_and_route(fixture_circuit(), SMOKE, checkpoint=policy)

        ckpt = latest_checkpoint(tmp_path)
        assert ckpt is not None
        resumed = resume_place_and_route(ckpt)
        assert resumed.resumed_from == str(ckpt)
        assert resumed.teil == baseline.teil
        assert resumed.chip_area == baseline.chip_area
        assert resumed.placement() == baseline.placement()
        assert not resumed.truncated

    def test_stage2_kill_resumes_bit_for_bit(self, baseline, tmp_path):
        policy = CheckpointPolicy(directory=tmp_path, every_temperatures=50)
        with inject_faults(Fault(site="channels.define", kind="kill")):
            with pytest.raises(SimulatedKill):
                place_and_route(fixture_circuit(), SMOKE, checkpoint=policy)

        ckpt = latest_checkpoint(tmp_path)
        assert ckpt is not None
        assert "stage2" in ckpt.name
        resumed = resume_place_and_route(ckpt)
        assert resumed.teil == baseline.teil
        assert resumed.placement() == baseline.placement()

    def test_resume_rejects_garbage(self, tmp_path):
        path = tmp_path / "junk.ckpt"
        path.write_bytes(b"not a checkpoint at all")
        with pytest.raises(CheckpointError):
            resume_place_and_route(path)

    def test_resume_rejects_unknown_phase(self, tmp_path):
        path = tmp_path / "odd.ckpt"
        write_checkpoint(path, {"phase": "stage99"}, "circuit x\n")
        with pytest.raises(CheckpointError, match="unknown checkpoint phase"):
            resume_place_and_route(path)


class TestGracefulDegradation:
    def test_router_net_failure_is_retried(self):
        with inject_faults(Fault(site="router.route_net", at=2)) as injector:
            result = place_and_route(fixture_circuit(), SMOKE)
        assert injector.fired
        routing = result.refinement.final_pass.routing
        assert routing.retried, "failed net was not rerouted with relaxed M"
        assert not routing.failed
        assert result.teil > 0

    def test_router_double_failure_falls_back_to_estimate(self):
        with inject_faults(
            Fault(site="router.route_net", at=2),
            Fault(site="router.route_net_retry", at=1),
        ):
            result = place_and_route(fixture_circuit(), SMOKE)
        routing = result.refinement.final_pass.routing
        assert routing.failed
        # The unroutable net degraded to a semi-perimeter estimate; the
        # flow still finished with a complete placement.
        assert set(routing.failed) <= set(routing.unrouted)
        assert result.teil > 0

    def test_estimator_failure_uses_fallback_plan(self):
        with inject_faults(Fault(site="estimator.determine_core")):
            result = place_and_route(fixture_circuit(), SMOKE)
        assert result.teil > 0
        (failure,) = result.failures
        assert failure["stage"] == "estimator.determine_core"
        assert failure["action"] == "fallback"
        assert "recovered failures" in result.summary()
        assert any(
            e.get("name") == "stage.failure"
            and e.get("stage") == "estimator.determine_core"
            for e in result.trace_events
        )


class TestBudgets:
    def test_temperature_budget_truncates_gracefully(self):
        result = place_and_route(
            fixture_circuit(), SMOKE, budget=Budget(temperatures=5)
        )
        assert result.truncated
        assert result.budget_report["exhausted"] == "temperatures"
        assert result.stage1.anneal.stop_reason == "budget:temperatures"
        assert len(result.stage1.anneal.steps) == 5
        # Stage 2 is skipped; the legalized stage-1 placement is returned.
        assert result.refinement is None
        assert result.teil > 0
        assert "TRUNCATED" in result.summary()

    def test_wall_budget_truncates_gracefully(self):
        clock = JumpClock(tick=1.0)
        budget = Budget(wall_seconds=5.0, clock=clock)
        result = place_and_route(fixture_circuit(), SMOKE, budget=budget)
        assert result.truncated
        assert result.budget_report["exhausted"] == "wall_seconds"
        assert result.teil > 0

    def test_unbudgeted_run_reports_nothing(self, baseline):
        assert baseline.budget_report is None
        assert not baseline.truncated
