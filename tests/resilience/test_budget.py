"""Run budgets: limit accounting, wall-clock handling, reports."""

import pytest

from repro.resilience import Budget, JumpClock


class TestValidation:
    @pytest.mark.parametrize(
        "kw",
        [
            {"wall_seconds": 0},
            {"wall_seconds": -1.0},
            {"temperatures": 0},
            {"moves": 0},
        ],
    )
    def test_rejects(self, kw):
        with pytest.raises(ValueError):
            Budget(**kw)

    def test_unlimited_never_exhausts(self):
        budget = Budget()
        budget.note_moves(10**9)
        for _ in range(100):
            budget.note_temperature()
        assert budget.exhausted() is None


class TestLimits:
    def test_moves(self):
        budget = Budget(moves=100)
        budget.note_moves(99)
        assert budget.exhausted() is None
        budget.note_moves(1)
        assert budget.exhausted() == "moves"

    def test_temperatures(self):
        budget = Budget(temperatures=2)
        budget.note_temperature()
        assert budget.exhausted() is None
        budget.note_temperature()
        assert budget.exhausted() == "temperatures"

    def test_wall_seconds_with_jump_clock(self):
        clock = JumpClock()
        budget = Budget(wall_seconds=60.0, clock=clock)
        budget.start()
        assert budget.exhausted() is None
        clock.jump(59.0)
        assert budget.exhausted() is None
        clock.jump(2.0)
        assert budget.exhausted() == "wall_seconds"

    def test_moves_reported_before_wall(self):
        clock = JumpClock()
        budget = Budget(wall_seconds=1.0, moves=5, clock=clock)
        budget.start()
        clock.jump(100.0)
        budget.note_moves(5)
        assert budget.exhausted() == "moves"


class TestClock:
    def test_start_is_idempotent(self):
        clock = JumpClock()
        budget = Budget(wall_seconds=10.0, clock=clock)
        budget.start()
        clock.jump(5.0)
        budget.start()  # resume path: must keep the original epoch
        assert budget.elapsed() == pytest.approx(5.0)

    def test_elapsed_zero_before_start(self):
        assert Budget(wall_seconds=10.0).elapsed() == 0.0

    def test_wall_check_self_starts(self):
        clock = JumpClock()
        budget = Budget(wall_seconds=10.0, clock=clock)
        # exhausted() on a never-started budget must not compare against
        # the epoch of the monotonic clock itself.
        assert budget.exhausted() is None
        clock.jump(11.0)
        assert budget.exhausted() == "wall_seconds"


class TestReport:
    def test_within_budget(self):
        budget = Budget(moves=100, temperatures=10)
        budget.note_moves(7)
        budget.note_temperature()
        report = budget.report()
        assert report["moves"] == 100
        assert report["moves_used"] == 7
        assert report["temperatures_used"] == 1
        assert report["exhausted"] is None
        assert report.exhausted_reason is None

    def test_exhausted(self):
        budget = Budget(moves=1)
        budget.note_moves(2)
        report = budget.report()
        assert report["exhausted"] == "moves"
        assert report.exhausted_reason == "moves"

    def test_to_dict_limits_only(self):
        budget = Budget(wall_seconds=3.5, temperatures=9)
        assert budget.to_dict() == {
            "wall_seconds": 3.5,
            "temperatures": 9,
            "moves": None,
        }

    def test_report_is_json_friendly(self):
        import json

        json.dumps(Budget(moves=5).report())
