"""Checkpoint files: integrity validation, pruning, corruption handling."""

import json
import os
import pickle

import pytest

from repro.resilience import (
    CHECKPOINT_MAGIC,
    CHECKPOINT_SCHEMA_VERSION,
    CheckpointError,
    CheckpointManager,
    CheckpointPolicy,
    circuit_fingerprint,
    latest_checkpoint,
    read_checkpoint,
    write_checkpoint,
)

CIRCUIT = "circuit demo\n"
PAYLOAD = {"phase": "stage1", "cursor": {"step_index": 7}, "x": [1, 2, 3]}


def write_sample(path):
    return write_checkpoint(path, dict(PAYLOAD), CIRCUIT)


class TestRoundTrip:
    def test_write_read(self, tmp_path):
        path = write_sample(tmp_path / "a.ckpt")
        header, payload = read_checkpoint(path)
        assert payload == PAYLOAD
        assert header["schema"] == CHECKPOINT_SCHEMA_VERSION
        assert header["phase"] == "stage1"
        assert header["circuit_sha256"] == circuit_fingerprint(CIRCUIT)

    def test_circuit_pin_accepts_match(self, tmp_path):
        path = write_sample(tmp_path / "a.ckpt")
        read_checkpoint(path, expect_circuit_sha=circuit_fingerprint(CIRCUIT))

    def test_no_temp_files_left_behind(self, tmp_path):
        write_sample(tmp_path / "a.ckpt")
        assert [p.name for p in tmp_path.iterdir()] == ["a.ckpt"]

    def test_creates_directory(self, tmp_path):
        path = write_sample(tmp_path / "deep" / "nested" / "a.ckpt")
        assert path.exists()


class TestCorruption:
    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            read_checkpoint(tmp_path / "nope.ckpt")

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "a.ckpt"
        path.write_bytes(b"definitely not a checkpoint")
        with pytest.raises(CheckpointError, match="bad magic"):
            read_checkpoint(path)

    def test_truncated_no_header(self, tmp_path):
        path = tmp_path / "a.ckpt"
        path.write_bytes(CHECKPOINT_MAGIC + b'{"schema": 1')
        with pytest.raises(CheckpointError, match="no header"):
            read_checkpoint(path)

    def test_corrupt_header_json(self, tmp_path):
        path = tmp_path / "a.ckpt"
        path.write_bytes(CHECKPOINT_MAGIC + b"{not json}\n" + b"body")
        with pytest.raises(CheckpointError, match="corrupt checkpoint header"):
            read_checkpoint(path)

    def test_header_not_object(self, tmp_path):
        path = tmp_path / "a.ckpt"
        path.write_bytes(CHECKPOINT_MAGIC + b"[1, 2]\n" + b"body")
        with pytest.raises(CheckpointError, match="not an object"):
            read_checkpoint(path)

    def test_wrong_schema(self, tmp_path):
        path = write_sample(tmp_path / "a.ckpt")
        blob = path.read_bytes()
        rest = blob[len(CHECKPOINT_MAGIC):]
        newline = rest.find(b"\n")
        header = json.loads(rest[:newline])
        header["schema"] = 99
        path.write_bytes(
            CHECKPOINT_MAGIC
            + json.dumps(header).encode()
            + b"\n"
            + rest[newline + 1:]
        )
        with pytest.raises(CheckpointError, match="unsupported checkpoint schema"):
            read_checkpoint(path)

    def test_truncated_payload(self, tmp_path):
        path = write_sample(tmp_path / "a.ckpt")
        path.write_bytes(path.read_bytes()[:-10])
        with pytest.raises(CheckpointError, match="truncated checkpoint payload"):
            read_checkpoint(path)

    def test_bit_flip_fails_checksum(self, tmp_path):
        path = write_sample(tmp_path / "a.ckpt")
        blob = bytearray(path.read_bytes())
        blob[-5] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(CheckpointError, match="checksum mismatch"):
            read_checkpoint(path)

    def test_stale_circuit_rejected(self, tmp_path):
        path = write_sample(tmp_path / "a.ckpt")
        with pytest.raises(CheckpointError, match="different circuit"):
            read_checkpoint(
                path, expect_circuit_sha=circuit_fingerprint("circuit other\n")
            )

    def test_non_dict_payload_rejected(self, tmp_path):
        import hashlib

        body = pickle.dumps([1, 2, 3])
        header = {
            "schema": CHECKPOINT_SCHEMA_VERSION,
            "payload_sha256": hashlib.sha256(body).hexdigest(),
            "payload_bytes": len(body),
        }
        path = tmp_path / "a.ckpt"
        path.write_bytes(
            CHECKPOINT_MAGIC + json.dumps(header).encode() + b"\n" + body
        )
        with pytest.raises(CheckpointError, match="not a dict"):
            read_checkpoint(path)


class TestLatest:
    def test_missing_directory(self, tmp_path):
        assert latest_checkpoint(tmp_path / "nope") is None

    def test_empty_directory(self, tmp_path):
        assert latest_checkpoint(tmp_path) is None

    def test_picks_newest_by_mtime(self, tmp_path):
        old = write_sample(tmp_path / "old.ckpt")
        new = write_sample(tmp_path / "new.ckpt")
        os.utime(old, (1000, 1000))
        os.utime(new, (2000, 2000))
        assert latest_checkpoint(tmp_path) == new


class TestPolicy:
    def test_defaults(self, tmp_path):
        policy = CheckpointPolicy(directory=tmp_path)
        assert policy.every_temperatures == 10
        assert policy.keep == 3

    @pytest.mark.parametrize("kw", [{"every_temperatures": 0}, {"keep": 0}])
    def test_validation(self, tmp_path, kw):
        with pytest.raises(ValueError):
            CheckpointPolicy(directory=tmp_path, **kw)


class TestManager:
    def make(self, tmp_path, keep=2):
        policy = CheckpointPolicy(directory=tmp_path, keep=keep)
        return CheckpointManager(policy, CIRCUIT, {"seed": 0})

    def test_save_embeds_config_and_circuit(self, tmp_path):
        manager = self.make(tmp_path)
        path = manager.save("stage1", "stage1-t0001", {"cursor": {}})
        _, payload = read_checkpoint(path)
        assert payload["config"] == {"seed": 0}
        assert payload["circuit_text"] == CIRCUIT
        assert payload["phase"] == "stage1"
        assert manager.latest == path

    def test_prune_keeps_newest(self, tmp_path):
        manager = self.make(tmp_path, keep=2)
        paths = [
            manager.save_stage1({"step_index": i}, {"records": []})
            for i in range(5)
        ]
        survivors = sorted(p.name for p in tmp_path.glob("*.ckpt"))
        assert len(survivors) == 2
        assert paths[-1].name in survivors

    def test_stage2_requires_stage1_summary(self, tmp_path):
        manager = self.make(tmp_path)
        with pytest.raises(RuntimeError, match="stage-1 summary"):
            manager.save_stage2(0, (3, (1,), None), {"records": []})

    def test_stage2_payload_shape(self, tmp_path):
        manager = self.make(tmp_path)
        manager.stage1_summary = {"teil": 1.0}
        path = manager.save_stage2(1, "rngstate", {"records": []})
        _, payload = read_checkpoint(path)
        assert payload["phase"] == "stage2"
        assert payload["pass_index"] == 1
        assert payload["stage1"] == {"teil": 1.0}
