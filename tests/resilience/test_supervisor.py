"""Stage supervision: capture, degrade, never swallow a kill."""

import pytest

from repro.resilience import SimulatedKill, StageSupervisor
from repro.telemetry import MemorySink, Tracer, use_tracer


def boom():
    raise ValueError("stage exploded")


class TestRun:
    def test_success_passes_through(self):
        sup = StageSupervisor()
        assert sup.run("ok", lambda: 42) == 42
        assert sup.failures == []

    def test_failure_without_fallback_returns_default(self):
        sup = StageSupervisor()
        assert sup.run("bad", boom, default="fallback-value") == "fallback-value"
        (failure,) = sup.failures
        assert failure.stage == "bad"
        assert failure.action == "skipped"
        assert "ValueError: stage exploded" in failure.error
        assert "stage exploded" in failure.traceback

    def test_failure_with_fallback(self):
        sup = StageSupervisor()
        assert sup.run("bad", boom, fallback=lambda: "degraded") == "degraded"
        (failure,) = sup.failures
        assert failure.action == "fallback"

    def test_fallback_failure_recorded_then_default(self):
        sup = StageSupervisor()
        result = sup.run("bad", boom, fallback=boom, default=None)
        assert result is None
        assert [f.stage for f in sup.failures] == ["bad", "bad.fallback"]
        assert sup.failures[1].action == "skipped"

    @pytest.mark.parametrize("species", [SimulatedKill, KeyboardInterrupt, SystemExit])
    def test_base_exceptions_propagate(self, species):
        sup = StageSupervisor()

        def kill():
            raise species("going down")

        with pytest.raises(species):
            sup.run("kill", kill)
        assert sup.failures == []

    def test_failures_accumulate_across_stages(self):
        sup = StageSupervisor()
        sup.run("a", boom)
        sup.run("b", boom)
        assert [f.stage for f in sup.failures] == ["a", "b"]

    def test_to_dict(self):
        sup = StageSupervisor()
        sup.run("bad", boom)
        record = sup.failures[0].to_dict()
        assert record == {
            "stage": "bad",
            "error": "ValueError: stage exploded",
            "action": "skipped",
        }


class TestTelemetry:
    def test_failure_emits_trace_event(self):
        sink = MemorySink()
        sup = StageSupervisor()
        with use_tracer(Tracer(sink)):
            sup.run("bad", boom)
        (event,) = [e for e in sink.events if e.get("name") == "stage.failure"]
        assert event["stage"] == "bad"
        assert event["action"] == "skipped"
        assert "ValueError" in event["error"]
