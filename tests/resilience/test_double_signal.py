"""A second SIGTERM during shutdown must never corrupt a checkpoint.

The first signal asks the flow to checkpoint and exit; a second signal
escalates to a hard KeyboardInterrupt that can land *inside*
``write_checkpoint``.  The atomic temp-file + ``os.replace`` protocol
has to guarantee that whatever survives on disk is either the previous
valid checkpoint or the complete new one — never a torn file under the
final name.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.netlist import dumps
from repro.resilience import (
    InterruptFlag,
    latest_checkpoint,
    trap_signals,
    write_checkpoint,
)
from repro.resilience.checkpoint import read_checkpoint

from ..conftest import make_macro_circuit

CIRCUIT = dumps(make_macro_circuit())


def interrupt_during(monkeypatch, stage):
    """Arrange for KeyboardInterrupt to fire at ``stage`` of the write."""
    if stage == "fsync":
        monkeypatch.setattr(
            os, "fsync", lambda fd: (_ for _ in ()).throw(KeyboardInterrupt())
        )
    elif stage == "replace":
        def torn_replace(src, dst):
            raise KeyboardInterrupt()

        monkeypatch.setattr(os, "replace", torn_replace)
    else:  # pragma: no cover - test bug
        raise AssertionError(stage)


class TestInterruptedWrite:
    @pytest.mark.parametrize("stage", ["fsync", "replace"])
    def test_fresh_write_leaves_nothing_behind(self, tmp_path, monkeypatch, stage):
        path = tmp_path / "a.ckpt"
        interrupt_during(monkeypatch, stage)
        with pytest.raises(KeyboardInterrupt):
            write_checkpoint(path, {"phase": "stage1"}, CIRCUIT)
        monkeypatch.undo()
        assert not path.exists()
        assert list(tmp_path.glob("*.tmp")) == []
        assert latest_checkpoint(tmp_path) is None

    @pytest.mark.parametrize("stage", ["fsync", "replace"])
    def test_overwrite_keeps_the_previous_checkpoint(
        self, tmp_path, monkeypatch, stage
    ):
        path = tmp_path / "a.ckpt"
        write_checkpoint(path, {"phase": "stage1", "marker": "old"}, CIRCUIT)
        interrupt_during(monkeypatch, stage)
        with pytest.raises(KeyboardInterrupt):
            write_checkpoint(path, {"phase": "stage1", "marker": "new"}, CIRCUIT)
        monkeypatch.undo()
        _, payload = read_checkpoint(path)
        assert payload["marker"] == "old"
        assert latest_checkpoint(tmp_path) == path

    def test_stray_tmp_files_are_invisible_to_resume(self, tmp_path):
        """A process killed between mkstemp and the cleanup handler can
        leak a ``*.tmp`` — discovery must skip it."""
        path = tmp_path / "a.ckpt"
        write_checkpoint(path, {"phase": "stage1"}, CIRCUIT)
        (tmp_path / "a.ckpt.h4x.tmp").write_bytes(b"REPROCKPT1\n{torn")
        (tmp_path / "b.ckpt.y2k.tmp").write_bytes(b"")
        assert latest_checkpoint(tmp_path) == path
        read_checkpoint(latest_checkpoint(tmp_path))  # parses clean


class TestSecondSignalEscalation:
    def test_second_sigterm_raises_keyboard_interrupt(self):
        flag = InterruptFlag()
        with trap_signals(flag):
            signal.raise_signal(signal.SIGTERM)
            assert flag.is_set()
            assert flag.signum == signal.SIGTERM
            with pytest.raises(KeyboardInterrupt, match="second signal"):
                signal.raise_signal(signal.SIGTERM)

    def test_escalation_mid_checkpoint_preserves_previous(
        self, tmp_path, monkeypatch
    ):
        """The composed scenario, in-process: the second SIGTERM lands
        during the shutdown checkpoint's fsync."""
        path = tmp_path / "a.ckpt"
        write_checkpoint(path, {"phase": "stage1", "marker": "old"}, CIRCUIT)

        real_fsync = os.fsync

        def fsync_then_signal(fd):
            real_fsync(fd)
            signal.raise_signal(signal.SIGTERM)

        flag = InterruptFlag()
        with trap_signals(flag):
            signal.raise_signal(signal.SIGTERM)  # first: sets the flag
            monkeypatch.setattr(os, "fsync", fsync_then_signal)
            with pytest.raises(KeyboardInterrupt):
                write_checkpoint(
                    path, {"phase": "stage1", "marker": "new"}, CIRCUIT
                )
            monkeypatch.undo()
        _, payload = read_checkpoint(path)
        assert payload["marker"] == "old"
        assert list(tmp_path.glob("*.tmp")) == []


class TestRealDoubleSigterm:
    def test_rapid_double_sigterm_never_corrupts_checkpoints(self, tmp_path):
        """Launch a real run, wait for its first checkpoint, then send
        two SIGTERMs back to back.  Every surviving ``*.ckpt`` must
        parse, and the latest must resume to completion."""
        from repro import resume_place_and_route
        from repro.bench import spec_for
        from repro.bench.circuits import generate_circuit
        from repro.netlist import dump

        circuit = tmp_path / "i1.twmc"
        dump(generate_circuit(spec_for("i1")), circuit)
        ckpt_dir = tmp_path / "ckpt"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, ["src", env.get("PYTHONPATH")])
        )
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "place", str(circuit),
                "--preset", "smoke", "--seed", "3",
                "--checkpoint-dir", str(ckpt_dir), "--checkpoint-every", "1",
                "--json", str(tmp_path / "result.json"),
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if any(ckpt_dir.glob("*.ckpt")):
                    break
                if process.poll() is not None:
                    pytest.fail("run exited before checkpointing")
                time.sleep(0.02)
            else:
                pytest.fail("no checkpoint appeared within 60s")
            try:
                process.send_signal(signal.SIGTERM)
                time.sleep(0.05)
                process.send_signal(signal.SIGTERM)
            except ProcessLookupError:
                pass  # already exiting: the race went the graceful way
            process.wait(timeout=60.0)
        finally:
            if process.poll() is None:  # pragma: no cover - cleanup
                process.kill()
                process.wait()

        survivors = sorted(ckpt_dir.glob("*.ckpt"))
        assert survivors, "double signal destroyed every checkpoint"
        for path in survivors:
            read_checkpoint(path)  # raises on any corruption
        assert not list(ckpt_dir.glob("*.tmp*"))
        resumed = resume_place_and_route(latest_checkpoint(ckpt_dir))
        assert resumed.teil > 0
