"""The incremental-cost drift guard: tolerance actions and telemetry."""

import warnings

import pytest

from repro.resilience import DriftError, DriftGuard
from repro.telemetry import MemorySink, Tracer, use_tracer


class FakeState:
    """A stand-in exposing the drift protocol of PlacementAnnealingState."""

    def __init__(self, max_relative=0.0):
        self.max_relative = max_relative
        self.resynced = 0

    def cost_drift(self):
        return {
            "c1": self.max_relative,
            "c2_raw": 0.0,
            "c3": 0.0,
            "max_relative": self.max_relative,
        }

    def resync(self):
        self.resynced += 1


class TestValidation:
    @pytest.mark.parametrize(
        "kw",
        [
            {"every": 0},
            {"every": 5, "tolerance": 0.0},
            {"every": 5, "action": "explode"},
        ],
    )
    def test_rejects(self, kw):
        with pytest.raises(ValueError):
            DriftGuard(**kw)


class TestCheck:
    def test_within_tolerance_is_silent(self):
        guard = DriftGuard(every=1, tolerance=1e-6)
        state = FakeState(max_relative=1e-9)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            report = guard.check(3, state, state.cost_drift())
        assert report.step_index == 3
        assert guard.reports == [report]

    def test_warn_action(self):
        guard = DriftGuard(every=1, tolerance=1e-6, action="warn")
        state = FakeState(max_relative=1e-3)
        with pytest.warns(UserWarning, match="drift"):
            guard.check(0, state, state.cost_drift())
        assert state.resynced == 0

    def test_resync_action(self):
        guard = DriftGuard(every=1, tolerance=1e-6, action="resync")
        state = FakeState(max_relative=1e-3)
        guard.check(0, state, state.cost_drift())
        assert state.resynced == 1

    def test_raise_action(self):
        guard = DriftGuard(every=1, tolerance=1e-6, action="raise")
        state = FakeState(max_relative=1e-3)
        with pytest.raises(DriftError, match="exceeds tolerance"):
            guard.check(7, state, state.cost_drift())


class TestObserver:
    def observe(self, guard, state, steps):
        obs = guard.observer()
        for step in range(steps):
            obs(step, None, state, None)

    def test_respects_cadence(self):
        guard = DriftGuard(every=3, tolerance=1.0)
        self.observe(guard, FakeState(), steps=9)
        assert [r.step_index for r in guard.reports] == [2, 5, 8]

    def test_skips_states_without_drift_protocol(self):
        guard = DriftGuard(every=1, tolerance=1.0)
        self.observe(guard, object(), steps=3)
        assert guard.reports == []


class TestTelemetry:
    def test_gauge_emitted(self):
        sink = MemorySink()
        guard = DriftGuard(every=1, tolerance=1.0)
        state = FakeState(max_relative=0.5)
        with use_tracer(Tracer(sink)):
            guard.check(4, state, state.cost_drift())
        (gauge,) = [e for e in sink.events if e.get("name") == "anneal.cost_drift"]
        assert gauge["ev"] == "gauge"
        assert gauge["value"] == 0.5
        assert gauge["step"] == 4

    def test_resync_event_emitted(self):
        sink = MemorySink()
        guard = DriftGuard(every=1, tolerance=1e-6, action="resync")
        state = FakeState(max_relative=1.0)
        with use_tracer(Tracer(sink)):
            guard.check(2, state, state.cost_drift())
        assert any(e.get("name") == "anneal.drift_resync" for e in sink.events)
