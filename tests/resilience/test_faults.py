"""The fault-injection harness itself: arming, firing, env parsing."""

import pytest

from repro.resilience import (
    Fault,
    FaultError,
    FaultInjector,
    JumpClock,
    SimulatedKill,
    fault_point,
    faults_from_env,
    inject_faults,
    install_injector,
)


class TestFault:
    @pytest.mark.parametrize(
        "kw", [{"at": 0}, {"times": 0}, {"kind": "panic"}]
    )
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            Fault(site="x", **kw)

    def test_kill_is_not_an_ordinary_exception(self):
        # Recovery code written as `except Exception` must not be able
        # to swallow a simulated kill.
        assert issubclass(SimulatedKill, BaseException)
        assert not issubclass(SimulatedKill, Exception)
        assert issubclass(FaultError, Exception)


class TestInjection:
    def test_unarmed_probe_is_a_noop(self):
        fault_point("anything.at.all")

    def test_fires_on_nth_visit_only(self):
        with inject_faults(Fault(site="s", at=3)) as injector:
            fault_point("s")
            fault_point("s")
            with pytest.raises(FaultError):
                fault_point("s")
            fault_point("s")  # past the window: quiet again
        assert injector.fired == [("s", 3)]
        assert injector.hits == {"s": 4}

    def test_times_widens_the_window(self):
        with inject_faults(Fault(site="s", at=2, times=2)):
            fault_point("s")
            with pytest.raises(FaultError):
                fault_point("s")
            with pytest.raises(FaultError):
                fault_point("s")
            fault_point("s")

    def test_kill_kind(self):
        with inject_faults(Fault(site="s", kind="kill")):
            with pytest.raises(SimulatedKill):
                fault_point("s")

    def test_sites_are_independent(self):
        with inject_faults(Fault(site="a")):
            fault_point("b")
            fault_point("b")
            with pytest.raises(FaultError):
                fault_point("a")

    def test_custom_message(self):
        with inject_faults(Fault(site="s", message="boom-7")):
            with pytest.raises(FaultError, match="boom-7"):
                fault_point("s")

    def test_default_message_names_site_and_context(self):
        with inject_faults(Fault(site="s")):
            with pytest.raises(FaultError, match="s") as exc_info:
                fault_point("s", net="n42")
        assert "n42" in str(exc_info.value)

    def test_disarmed_after_context(self):
        with inject_faults(Fault(site="s")):
            pass
        fault_point("s")

    def test_install_injector_for_process_scope(self):
        install_injector(FaultInjector([Fault(site="cli.site")]))
        try:
            with pytest.raises(FaultError):
                fault_point("cli.site")
        finally:
            install_injector(None)
        fault_point("cli.site")


class TestEnvParsing:
    def test_empty(self):
        assert faults_from_env({}) == []
        assert faults_from_env({"REPRO_FAULTS": "  "}) == []

    def test_site_only(self):
        (fault,) = faults_from_env({"REPRO_FAULTS": "router.route_net"})
        assert fault.site == "router.route_net"
        assert fault.at == 1
        assert fault.kind == "error"

    def test_full_spec(self):
        (fault,) = faults_from_env(
            {"REPRO_FAULTS": "anneal.temperature@5:kill:die now"}
        )
        assert fault.site == "anneal.temperature"
        assert fault.at == 5
        assert fault.kind == "kill"
        assert fault.message == "die now"

    def test_multiple_entries(self):
        faults = faults_from_env({"REPRO_FAULTS": "a@2, b:kill ,"})
        assert [(f.site, f.at, f.kind) for f in faults] == [
            ("a", 2, "error"),
            ("b", 1, "kill"),
        ]

    def test_bad_spec_raises(self):
        with pytest.raises(ValueError):
            faults_from_env({"REPRO_FAULTS": "a@0"})


class TestJumpClock:
    def test_tick_and_jump(self):
        clock = JumpClock(tick=0.5)
        assert clock() == 0.5
        assert clock() == 1.0
        clock.jump(10.0)
        assert clock() == 11.5
