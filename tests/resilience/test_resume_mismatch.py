"""Checkpoint/circuit mismatch: typed error, distinct exit code 6.

A checkpoint is pinned to its circuit by content hash.  Resuming it
against a different circuit can never succeed, so the CLI exits with a
dedicated status (6) and a machine-readable reason — the signal the
service supervisor uses to dead-letter the job instead of burning
retries on it.
"""

import json

import pytest

from repro import TimberWolfConfig, place_and_route, resume_place_and_route
from repro.__main__ import EXIT_CHECKPOINT_MISMATCH, main
from repro.netlist import dumps
from repro.resilience import (
    CheckpointError,
    CheckpointMismatch,
    CheckpointPolicy,
    latest_checkpoint,
    write_checkpoint,
)
from repro.resilience.checkpoint import circuit_fingerprint, read_checkpoint

from ..conftest import make_macro_circuit


@pytest.fixture()
def circuit_text():
    return dumps(make_macro_circuit())


@pytest.fixture()
def real_checkpoint(tmp_path, circuit_text):
    """A genuine mid-anneal checkpoint for the fixture circuit."""
    from repro.netlist import loads

    ckpt_dir = tmp_path / "ckpt"
    policy = CheckpointPolicy(directory=ckpt_dir, every_temperatures=1)
    place_and_route(loads(circuit_text), TimberWolfConfig.smoke(seed=5),
                    checkpoint=policy)
    path = latest_checkpoint(ckpt_dir)
    assert path is not None
    return path


class TestReadCheckpointPinning:
    def test_mismatch_raises_typed_error(self, tmp_path, circuit_text):
        path = tmp_path / "c.ckpt"
        write_checkpoint(path, {"circuit_text": circuit_text}, circuit_text)
        with pytest.raises(CheckpointMismatch, match="different circuit"):
            read_checkpoint(path, expect_circuit_sha="0" * 64)

    def test_mismatch_is_a_checkpoint_error(self):
        assert issubclass(CheckpointMismatch, CheckpointError)

    def test_matching_hash_reads_fine(self, tmp_path, circuit_text):
        path = tmp_path / "c.ckpt"
        write_checkpoint(path, {"circuit_text": circuit_text}, circuit_text)
        _, payload = read_checkpoint(
            path, expect_circuit_sha=circuit_fingerprint(circuit_text)
        )
        assert payload["circuit_text"] == circuit_text

    def test_embedded_circuit_must_match_header(self, tmp_path, circuit_text):
        """A spliced checkpoint (header from one run, payload from
        another) is rejected even without an expected hash."""
        path = tmp_path / "c.ckpt"
        write_checkpoint(
            path, {"circuit_text": "something else entirely"}, circuit_text
        )
        with pytest.raises(CheckpointMismatch, match="embedded circuit"):
            read_checkpoint(path)


class TestResumeFlow:
    def test_resume_with_wrong_expectation_fails(self, real_checkpoint):
        with pytest.raises(CheckpointMismatch):
            resume_place_and_route(
                real_checkpoint, expect_circuit_sha="f" * 64
            )

    def test_resume_with_correct_expectation_completes(
        self, real_checkpoint, circuit_text
    ):
        result = resume_place_and_route(
            real_checkpoint,
            expect_circuit_sha=circuit_fingerprint(circuit_text),
        )
        assert result.resumed_from == str(real_checkpoint)


class TestCliExitCode:
    def test_mismatch_exits_six_with_json_reason(
        self, tmp_path, circuit_text, capsys
    ):
        ckpt = tmp_path / "c.ckpt"
        write_checkpoint(ckpt, {"circuit_text": circuit_text}, circuit_text)
        other = tmp_path / "other.twmc"
        other.write_text(
            dumps(make_macro_circuit(num_cells=4, seed=99)), encoding="utf-8"
        )
        rc = main(["resume", str(ckpt), "--circuit", str(other)])
        assert rc == EXIT_CHECKPOINT_MISMATCH == 6
        err = json.loads(capsys.readouterr().err)
        assert err["error"] == "checkpoint_mismatch"
        assert err["checkpoint"] == str(ckpt)
        assert "different circuit" in err["reason"]

    def test_matching_circuit_resumes_via_cli(
        self, real_checkpoint, circuit_text, tmp_path, capsys
    ):
        same = tmp_path / "same.twmc"
        same.write_text(circuit_text, encoding="utf-8")
        rc = main(["resume", str(real_checkpoint), "--circuit", str(same)])
        assert rc == 0
        assert "resumed from" in capsys.readouterr().out

    def test_corrupt_checkpoint_still_exits_one(self, tmp_path, capsys):
        bad = tmp_path / "bad.ckpt"
        bad.write_bytes(b"not a checkpoint")
        rc = main(["resume", str(bad)])
        assert rc == 1
        assert "checkpoint error" in capsys.readouterr().err
