"""The ``python -m repro service`` verbs, driven in-process."""

import json

import pytest

from repro.__main__ import main
from repro.service import ServiceView
from repro.service.cli import EXIT_QUEUE_FULL


class TestSubmit:
    def test_submit_prints_job_id(self, service_root, circuit_file, capsys):
        rc = main(["service", "submit", str(service_root), str(circuit_file)])
        assert rc == 0
        job_id = capsys.readouterr().out.strip()
        with ServiceView(service_root) as view:
            assert view.job(job_id).state == "queued"

    def test_submit_json(self, service_root, circuit_file, capsys):
        rc = main(
            [
                "service", "submit", str(service_root), str(circuit_file),
                "--json", "--tenant", "alice", "--priority", "3",
                "--wall-timeout", "120", "--preset", "fast", "--seed", "7",
            ]
        )
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["tenant"] == "alice"
        assert doc["priority"] == 3
        assert doc["wall_timeout"] == 120.0
        assert doc["spec"]["preset"] == "fast"
        assert doc["spec"]["seed"] == 7

    def test_queue_full_exit_code(self, service_root, circuit_file, capsys):
        assert (
            main(
                [
                    "service", "submit", str(service_root),
                    str(circuit_file), "--max-queued", "1",
                ]
            )
            == 0
        )
        rc = main(
            [
                "service", "submit", str(service_root), str(circuit_file),
                "--max-queued", "1",
            ]
        )
        assert rc == EXIT_QUEUE_FULL
        err = json.loads(capsys.readouterr().err)
        assert err["error"] == "queue_full"


class TestStatus:
    def test_overview_and_single_job(self, service_root, circuit_file, capsys):
        main(["service", "submit", str(service_root), str(circuit_file)])
        job_id = capsys.readouterr().out.strip()

        assert main(["service", "status", str(service_root)]) == 0
        out = capsys.readouterr().out
        assert "queued=1" in out
        assert "no supervisor" in out
        assert job_id in out

        assert main(["service", "status", str(service_root), job_id, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["job_id"] == job_id
        assert doc["state"] == "queued"

    def test_prefix_lookup(self, service_root, circuit_file, capsys):
        main(["service", "submit", str(service_root), str(circuit_file)])
        job_id = capsys.readouterr().out.strip()
        prefix = job_id[: len(job_id) - 2]
        assert main(["service", "status", str(service_root), prefix, "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["job_id"] == job_id


class TestDrainAndEvents:
    def test_drain_sets_flag(self, service_root, circuit_file, capsys):
        main(["service", "submit", str(service_root), str(circuit_file)])
        capsys.readouterr()
        assert main(["service", "drain", str(service_root)]) == 0
        assert "drain requested" in capsys.readouterr().out
        with ServiceView(service_root) as view:
            assert view.store.draining() is True

    def test_events_dump(self, service_root, circuit_file, capsys):
        main(["service", "submit", str(service_root), str(circuit_file)])
        job_id = capsys.readouterr().out.strip()
        assert main(["service", "events", str(service_root)]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        docs = [json.loads(line) for line in lines]
        assert [d["event"] for d in docs] == ["job_submitted"]
        assert docs[0]["job_id"] == job_id


class TestRunBatch:
    def test_exit_when_idle_completes_the_queue(
        self, service_root, circuit_file, capsys
    ):
        main(["service", "submit", str(service_root), str(circuit_file)])
        job_id = capsys.readouterr().out.strip()
        rc = main(
            [
                "service", "run", str(service_root),
                "--exit-when-idle", "--workers", "1",
                "--poll-interval", "0.05",
            ]
        )
        assert rc == 0
        with ServiceView(service_root) as view:
            assert view.job(job_id).state == "done"
