"""The supervisor: settle routing, timeouts, drain, recovery, and a
real end-to-end pass including a worker SIGKILL mid-run.

The scheduling paths (timeout escalation, retry/dead-letter routing,
backpressure at the store) are tested deterministically: time is passed
in explicitly and worker processes are either fakes or plain ``sleep``
subprocesses, so no assertion depends on annealing speed.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.service import (
    JobSpec,
    RetryPolicy,
    ServiceConfig,
    ServicePaths,
    ServiceView,
    SqliteJobStore,
    Supervisor,
)
from repro.service.supervisor import ServiceBusy, WorkerHandle

SPEC = JobSpec(circuit="c.twmc")


class FakeProcess:
    """A Popen stand-in for settle/enforce tests."""

    def __init__(self, pid=99999):
        self.pid = pid
        self.terminated = False
        self.killed = False

    def poll(self):
        return None

    def terminate(self):
        self.terminated = True

    def kill(self):
        self.killed = True


class FakeLog:
    def close(self):
        pass


def make_supervisor(root, **overrides):
    defaults = dict(
        root=root,
        workers=1,
        poll_interval=0.02,
        grace=5.0,
        retry=RetryPolicy(base=0.1, factor=2.0, cap=0.5, jitter=0.0),
        exit_when_idle=True,
    )
    defaults.update(overrides)
    return Supervisor(ServiceConfig(**defaults))


def claimed_handle(sup, process=None, started=100.0, deadline=None):
    """Submit + claim one job and wrap it in a handle, as _launch would."""
    job, _ = sup.store.submit(SPEC)
    claimed = sup.store.claim_next(sup.owner, now=started)
    handle = WorkerHandle(
        job=claimed,
        process=process if process is not None else FakeProcess(),
        started=started,
        deadline=deadline,
        log_file=FakeLog(),
    )
    sup.handles[claimed.job_id] = handle
    return claimed.job_id, handle


class TestSettle:
    def test_exit_zero_with_result_is_done(self, service_root):
        sup = make_supervisor(service_root)
        job_id, handle = claimed_handle(sup)
        sup.paths.ensure_job_dirs(job_id)
        sup.paths.result(job_id).write_text('{"teil": 1}', encoding="utf-8")
        sup._settle(job_id, 0, handle, now=101.0)
        assert sup.store.get(job_id).state == "done"

    def test_exit_zero_without_result_retries(self, service_root):
        sup = make_supervisor(service_root)
        job_id, handle = claimed_handle(sup)
        sup._settle(job_id, 0, handle, now=101.0)
        job = sup.store.get(job_id)
        assert job.state == "queued"
        assert job.reason == "exit 0 without a result"

    def test_torn_result_does_not_count_as_done(self, service_root):
        sup = make_supervisor(service_root)
        job_id, handle = claimed_handle(sup)
        sup.paths.ensure_job_dirs(job_id)
        sup.paths.result(job_id).write_text('{"teil":', encoding="utf-8")
        sup._settle(job_id, 0, handle, now=101.0)
        assert sup.store.get(job_id).state == "queued"

    def test_exit_six_dead_letters_immediately(self, service_root):
        sup = make_supervisor(service_root)
        job_id, handle = claimed_handle(sup)
        sup._settle(job_id, 6, handle, now=101.0)
        job = sup.store.get(job_id)
        assert job.state == "dead"
        assert "checkpoint mismatch" in job.reason
        assert job.attempts == 1  # never retried

    def test_crash_requeues_with_backoff(self, service_root):
        sup = make_supervisor(service_root)
        job_id, handle = claimed_handle(sup)
        sup._settle(job_id, -signal.SIGKILL, handle, now=101.0)
        job = sup.store.get(job_id)
        assert job.state == "queued"
        assert job.reason == "killed by signal 9"
        assert job.next_attempt_at == pytest.approx(101.0 + 0.1)

    def test_backoff_grows_with_attempts(self, service_root):
        sup = make_supervisor(service_root)
        job_id, handle = claimed_handle(sup)
        sup._settle(job_id, 1, handle, now=101.0)
        sup.store.claim_next(sup.owner, now=200.0)
        sup._settle(job_id, 1, handle, now=201.0)
        job = sup.store.get(job_id)
        assert job.attempts == 2
        assert job.next_attempt_at == pytest.approx(201.0 + 0.2)

    def test_attempts_exhausted_dead_letters(self, service_root):
        sup = make_supervisor(service_root)
        job, _ = sup.store.submit(SPEC, max_attempts=2)
        for round_no in range(2):
            claimed = sup.store.claim_next(sup.owner, now=1000.0 * (round_no + 1))
            assert claimed is not None
            handle = WorkerHandle(
                job=claimed, process=FakeProcess(), started=0.0,
                deadline=None, log_file=FakeLog(),
            )
            sup._settle(job.job_id, 1, handle, now=1000.0 * (round_no + 1) + 1)
        final = sup.store.get(job.job_id)
        assert final.state == "dead"
        assert "attempts exhausted (2/2)" in final.reason

    def test_interrupt_during_drain_requeues_without_attempt(self, service_root):
        sup = make_supervisor(service_root)
        job_id, handle = claimed_handle(sup)
        sup._drain = True
        sup._settle(job_id, 3, handle, now=101.0)
        job = sup.store.get(job_id)
        assert job.state == "queued"
        assert job.attempts == 0  # refunded: the service interrupted it
        assert job.reason == "drained"


class TestEnforce:
    def test_wall_timeout_sends_sigterm(self, service_root):
        sup = make_supervisor(service_root, stale_after=1e9)
        process = FakeProcess()
        job_id, handle = claimed_handle(
            sup, process=process, started=100.0, deadline=160.0
        )
        sup._enforce(now=150.0)
        assert not process.terminated
        sup._enforce(now=161.0)
        assert process.terminated
        assert handle.term_reason == "wall-clock timeout"

    def test_escalates_to_sigkill_after_grace(self, service_root):
        sup = make_supervisor(service_root, grace=10.0, stale_after=1e9)
        process = FakeProcess()
        job_id, handle = claimed_handle(
            sup, process=process, started=100.0, deadline=160.0
        )
        sup._enforce(now=161.0)
        sup._enforce(now=165.0)
        assert not process.killed  # still within grace
        sup._enforce(now=172.0)
        assert process.killed

    def test_missing_heartbeat_past_stale_window_is_hung(self, service_root):
        sup = make_supervisor(service_root, stale_after=30.0)
        process = FakeProcess()
        job_id, handle = claimed_handle(sup, process=process, started=100.0)
        sup._enforce(now=120.0)
        assert not process.terminated
        sup._enforce(now=131.0)
        assert process.terminated
        assert handle.term_reason == "stale heartbeat"

    def test_fresh_heartbeat_keeps_worker_alive(self, service_root):
        sup = make_supervisor(service_root, stale_after=30.0)
        process = FakeProcess()
        job_id, handle = claimed_handle(sup, process=process, started=100.0)
        rundir = sup.paths.rundir(job_id)
        rundir.mkdir(parents=True)
        (rundir / "heartbeat.json").write_text(
            json.dumps({"phase": "stage1", "updated": 195.0, "seq": 1}),
            encoding="utf-8",
        )
        sup._enforce(now=200.0)
        assert not process.terminated

    def test_real_timeout_escalation_kills_a_stubborn_worker(self, service_root):
        """SIGTERM then SIGKILL against a process that ignores SIGTERM."""
        sup = make_supervisor(service_root, grace=0.2, stale_after=1e9)
        process = subprocess.Popen(
            [
                sys.executable,
                "-c",
                "import signal, sys, time;"
                "signal.signal(signal.SIGTERM, signal.SIG_IGN);"
                "print('ready', flush=True);"
                "time.sleep(60)",
            ],
            stdout=subprocess.PIPE,
        )
        try:
            assert process.stdout.readline().strip() == b"ready"
            job_id, handle = claimed_handle(
                sup, process=process, started=100.0, deadline=100.5
            )
            sup._enforce(now=101.0)  # SIGTERM (ignored)
            assert process.poll() is None
            time.sleep(0.05)
            sup._enforce(now=101.5)  # past grace: SIGKILL
            assert process.wait(timeout=5.0) == -signal.SIGKILL
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()


class TestDrainAndLease:
    def test_begin_drain_terminates_workers_and_sets_flag(self, service_root):
        sup = make_supervisor(service_root, stale_after=1e9)
        process = FakeProcess()
        job_id, handle = claimed_handle(sup, process=process)
        sup.request_drain()
        sup.tick(now=200.0)
        assert sup.store.draining() is True
        assert process.terminated
        assert handle.term_reason == "drain"

    def test_store_drain_flag_reaches_a_running_supervisor(self, service_root):
        """``service drain`` from another process: flag in the store."""
        sup = make_supervisor(service_root)
        sup.store.set_draining(True)
        sup.tick(now=100.0)
        assert sup._drain is True

    def test_second_supervisor_is_refused(self, service_root):
        sup = make_supervisor(service_root)
        sup.store.acquire_lease("other", info={"pid": os.getpid()})
        with pytest.raises(ServiceBusy):
            sup.run()


class TestRecovery:
    def seed_running_job(self, store, worker_pid=None):
        job, _ = store.submit(SPEC)
        store.claim_next("dead-supervisor")
        if worker_pid is not None:
            store.set_worker(job.job_id, worker_pid)
        return job

    def test_finished_orphan_adopted_as_done(self, service_root):
        sup = make_supervisor(service_root)
        job = self.seed_running_job(sup.store)
        sup.paths.ensure_job_dirs(job.job_id)
        sup.paths.result(job.job_id).write_text("{}", encoding="utf-8")
        stats = sup.recover()
        assert stats["adopted_done"] == 1
        assert sup.store.get(job.job_id).state == "done"

    def test_vanished_worker_requeued_without_attempt(self, service_root):
        sup = make_supervisor(service_root)
        job = self.seed_running_job(sup.store, worker_pid=2**31 - 1)
        stats = sup.recover()
        assert stats["requeued"] == 1
        recovered = sup.store.get(job.job_id)
        assert recovered.state == "queued"
        assert recovered.attempts == 0
        assert recovered.reason == "supervisor restart"

    def test_live_orphan_stopped_before_requeue(self, service_root):
        sup = make_supervisor(service_root, grace=5.0)
        orphan = subprocess.Popen([sys.executable, "-c", "import time; time.sleep(60)"])
        try:
            job = self.seed_running_job(sup.store, worker_pid=orphan.pid)
            stats = sup.recover()
            assert stats["orphans_stopped"] == 1
            # The orphan must actually be gone before a relaunch could
            # race it over the same job directory.
            assert orphan.wait(timeout=5.0) is not None
            assert sup.store.get(job.job_id).state == "queued"
        finally:
            if orphan.poll() is None:
                orphan.kill()
                orphan.wait()

    def test_recovery_clears_stale_drain_flag(self, service_root):
        sup = make_supervisor(service_root)
        sup.store.set_draining(True)
        sup.recover()
        assert sup.store.draining() is False


class TestEndToEnd:
    def test_jobs_run_to_done(self, service_root, circuit_file):
        with ServiceView(service_root) as view:
            j1 = view.submit(circuit_file, preset="smoke", tenant="alice")
            j2 = view.submit(circuit_file, preset="smoke", seed=1, tenant="bob")
        sup = make_supervisor(service_root, workers=2)
        assert sup.run() == 0
        with ServiceView(service_root) as view:
            for job_id in (j1.job_id, j2.job_id):
                doc = view.status(job_id)
                assert doc["state"] == "done"
                assert doc["attempts"] == 1
                assert doc["has_result"]
                assert doc["run_id"]
            names = [e["event"] for e in view.history(job_id=j1.job_id)]
        assert names == ["job_submitted", "job_start", "job_done"]

    def test_broken_circuit_dead_letters_after_retries(
        self, service_root, circuit_file
    ):
        with ServiceView(service_root) as view:
            job = view.submit(circuit_file, preset="smoke", max_attempts=2)
        paths = ServicePaths(service_root)
        paths.circuit(job.job_id).write_text("not a circuit", encoding="utf-8")
        sup = make_supervisor(service_root)
        assert sup.run() == 0
        with ServiceView(service_root) as view:
            dead = view.job(job.job_id)
            assert dead.state == "dead"
            assert dead.attempts == 2
            names = [e["event"] for e in view.history(job_id=job.job_id)]
        assert names.count("job_retry") == 1
        assert names[-1] == "job_dead"

    def test_sigkilled_worker_resumes_to_done(self, service_root, tmp_path):
        """Kill a worker mid-anneal: the retry resumes from the last
        checkpoint and the job still completes."""
        from repro.bench import spec_for
        from repro.bench.circuits import generate_circuit
        from repro.netlist import dump

        circuit = tmp_path / "i1.twmc"
        dump(generate_circuit(spec_for("i1")), circuit)
        with ServiceView(service_root) as view:
            job = view.submit(circuit, preset="smoke", checkpoint_every=1)
        paths = ServicePaths(service_root)
        sup = make_supervisor(service_root)
        thread = threading.Thread(target=sup.run)
        thread.start()
        try:
            # Wait for a live worker that has already checkpointed.
            deadline = time.monotonic() + 60.0
            pid = None
            while time.monotonic() < deadline:
                row = sup.store.get(job.job_id)
                has_ckpt = any(paths.checkpoint_dir(job.job_id).glob("*.ckpt"))
                if row.state == "running" and row.worker_pid and has_ckpt:
                    pid = row.worker_pid
                    break
                time.sleep(0.05)
            assert pid is not None, "worker never checkpointed"
            os.kill(pid, signal.SIGKILL)
        finally:
            thread.join(timeout=120.0)
        assert not thread.is_alive()
        with ServiceView(service_root) as view:
            final = view.job(job.job_id)
            names = [e["event"] for e in view.history(job_id=job.job_id)]
        assert final.state == "done"
        assert final.attempts == 2
        assert "job_retry" in names
        retry = next(
            e for e in ServiceView(service_root).history(job_id=job.job_id)
            if e["event"] == "job_retry"
        )
        assert retry["reason"] == "killed by signal 9"
        # The second attempt resumed rather than starting over.
        history = ServiceView(service_root).history(job_id=job.job_id)
        start_events = [e for e in history if e["event"] == "job_start"]
        assert [e.get("resumed") for e in start_events] == [False, True]
        # Trace continuity: the trace id minted at submit survives the
        # kill and the resume — one trace spans both attempts.
        assert job.trace_id
        assert final.trace_id == job.trace_id
        assert {e.get("trace_id") for e in history} == {job.trace_id}
        rundir = paths.rundir(job.job_id)
        attempt_traces = sorted(rundir.glob("trace-attempt-*.jsonl"))
        assert [p.name for p in attempt_traces] == [
            "trace-attempt-01.jsonl",
            "trace-attempt-02.jsonl",
        ]

        def read_trace(path):
            # The SIGKILLed attempt may leave a torn final line.
            events = []
            for line in path.read_text().splitlines():
                try:
                    events.append(json.loads(line))
                except json.JSONDecodeError:
                    pass
            return events

        merged = []
        for trace_path in attempt_traces:
            events = read_trace(trace_path)
            assert events, f"{trace_path.name} is empty"
            assert {e.get("trace_id") for e in events} == {job.trace_id}
            merged.extend(events)
        manifest = json.loads((rundir / "manifest.json").read_text())
        assert manifest["trace_id"] == job.trace_id
        # Merged across attempts, the span tree still shows the anneal
        # structure under the single trace id.
        from repro.obs.trace import span_tree

        def walk(node):
            yield node
            for child in node["children"]:
                yield from walk(child)

        names = {
            s["name"] for root in span_tree(merged) for s in walk(root)
        }
        assert {"flow", "stage1", "anneal"} <= names
