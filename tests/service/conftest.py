"""Shared fixtures for the placement-service tests."""

from __future__ import annotations

import pytest

from repro.netlist import dumps

from ..conftest import make_macro_circuit


@pytest.fixture()
def circuit_file(tmp_path):
    """A tiny circuit on disk: a smoke-preset worker finishes it in
    roughly a second, subprocess startup included."""
    path = tmp_path / "tiny.twmc"
    path.write_text(dumps(make_macro_circuit()), encoding="utf-8")
    return path


@pytest.fixture()
def service_root(tmp_path):
    return tmp_path / "svc"
