"""Distributed-trace propagation through the service layers.

Submission mints the job's trace id; the store persists it (including
across a schema migration from a pre-trace database); the supervisor
hands it to every worker attempt through the environment and stamps it
on every journal event.  The end-to-end SIGKILL/retry continuity check
lives in ``test_supervisor.py``'s ``TestEndToEnd``.
"""

import subprocess

from repro.netlist import dumps
from repro.service import (
    Job,
    JobSpec,
    ServiceConfig,
    ServicePaths,
    ServiceView,
    SqliteJobStore,
    Supervisor,
    build_worker_command,
)
from repro.telemetry.context import TRACEPARENT_ENV, TraceContext

from ..conftest import make_macro_circuit

SPEC = JobSpec(circuit="c.twmc")
TRACE_ID = "ab" * 16


class TestStorePersistence:
    def test_submit_round_trips_trace_id(self, tmp_path):
        with SqliteJobStore(tmp_path / "r.sqlite") as store:
            job, _ = store.submit(SPEC, trace_id=TRACE_ID)
            assert job.trace_id == TRACE_ID
            assert store.get(job.job_id).trace_id == TRACE_ID

    def test_trace_id_survives_claim(self, tmp_path):
        with SqliteJobStore(tmp_path / "r.sqlite") as store:
            job, _ = store.submit(SPEC, trace_id=TRACE_ID)
            claimed = store.claim_next("owner")
            assert claimed.job_id == job.job_id
            assert claimed.trace_id == TRACE_ID

    def test_pre_trace_database_migrates(self, tmp_path):
        """A jobs table created before the trace column existed gains it
        on the next writable open; old rows read back as None."""
        import sqlite3

        path = tmp_path / "old.sqlite"
        conn = sqlite3.connect(str(path))
        conn.executescript(
            """
            CREATE TABLE jobs (
                job_id TEXT PRIMARY KEY,
                created REAL NOT NULL, updated REAL NOT NULL,
                tenant TEXT NOT NULL DEFAULT 'default',
                priority INTEGER NOT NULL DEFAULT 0,
                state TEXT NOT NULL DEFAULT 'queued',
                attempts INTEGER NOT NULL DEFAULT 0,
                max_attempts INTEGER NOT NULL DEFAULT 5,
                next_attempt_at REAL NOT NULL DEFAULT 0,
                wall_timeout REAL, spec_json TEXT NOT NULL,
                started REAL, finished REAL, worker_pid INTEGER,
                lease_owner TEXT, run_id TEXT, reason TEXT
            );
            INSERT INTO jobs(job_id, created, updated, spec_json)
            VALUES('job-old', 1.0, 1.0,
                   '{"circuit": "c.twmc"}');
            """
        )
        conn.commit()
        conn.close()
        with SqliteJobStore(path) as store:
            assert store.get("job-old").trace_id is None
            job, _ = store.submit(SPEC, trace_id=TRACE_ID)
            assert store.get(job.job_id).trace_id == TRACE_ID

    def test_job_to_dict_exposes_trace_id(self):
        job = Job(job_id="j", spec=SPEC, trace_id=TRACE_ID)
        assert job.to_dict()["trace_id"] == TRACE_ID


class TestSubmitMintsTrace:
    def test_view_submit_sets_trace_id(self, tmp_path):
        circuit = tmp_path / "c.twmc"
        circuit.write_text(dumps(make_macro_circuit()), encoding="utf-8")
        with ServiceView(tmp_path / "svc") as view:
            a = view.submit(circuit)
            b = view.submit(circuit)
        assert a.trace_id and b.trace_id
        assert a.trace_id != b.trace_id  # one trace per job
        TraceContext(a.trace_id, "cd" * 8)  # well-formed: 32-hex

    def test_submission_event_carries_trace_id(self, tmp_path):
        circuit = tmp_path / "c.twmc"
        circuit.write_text(dumps(make_macro_circuit()), encoding="utf-8")
        with ServiceView(tmp_path / "svc") as view:
            job = view.submit(circuit)
            events = view.history(job_id=job.job_id)
        assert [e["event"] for e in events] == ["job_submitted"]
        assert events[0]["trace_id"] == job.trace_id


class TestWorkerCommand:
    def test_attempt_trace_file_is_per_attempt(self, tmp_path):
        # claim_next increments attempts before launch, so the claimed
        # job's ``attempts`` is the 1-based attempt number.
        paths = ServicePaths(tmp_path)
        paths.ensure_job_dirs("j1")
        first = Job(job_id="j1", spec=SPEC, attempts=1)
        retry = Job(job_id="j1", spec=SPEC, attempts=2)
        cmd1 = build_worker_command(paths, first, python="py")
        cmd2 = build_worker_command(paths, retry, python="py")
        trace1 = cmd1[cmd1.index("--trace") + 1]
        trace2 = cmd2[cmd2.index("--trace") + 1]
        assert trace1.endswith("trace-attempt-01.jsonl")
        assert trace2.endswith("trace-attempt-02.jsonl")
        assert trace1 != trace2  # a retry must not truncate attempt 1

    def test_trace_flag_appended_after_positional_verb(self, tmp_path):
        """The supervisor classifies attempts by ``command[3]``; the
        trace flag must ride at the end, not disturb the argv shape."""
        paths = ServicePaths(tmp_path)
        paths.ensure_job_dirs("j1")
        cmd = build_worker_command(
            paths, Job(job_id="j1", spec=SPEC), python="py"
        )
        assert cmd[3] == "place"
        assert cmd[-2] == "--trace"


class TestSupervisorLaunchEnv:
    def launch_one(self, tmp_path, monkeypatch, trace_id):
        root = tmp_path / "svc"
        sup = Supervisor(
            ServiceConfig(root=root, workers=1, exit_when_idle=True)
        )
        job, _ = sup.store.submit(SPEC, trace_id=trace_id)
        sup.paths.ensure_job_dirs(job.job_id)
        sup.paths.circuit(job.job_id).write_text("x", encoding="utf-8")
        captured = {}

        class FakeProcess:
            pid = 4242

            def poll(self):
                return None

        def fake_popen(command, **kwargs):
            captured["command"] = command
            captured.update(kwargs)
            return FakeProcess()

        monkeypatch.setattr(
            "repro.service.supervisor.subprocess.Popen", fake_popen
        )
        sup._launch(now=100.0)
        assert captured, "worker never launched"
        for handle in sup.handles.values():
            handle.log_file.close()
        return job, captured

    def test_traceparent_in_worker_env(self, tmp_path, monkeypatch):
        job, captured = self.launch_one(tmp_path, monkeypatch, TRACE_ID)
        env = captured["env"]
        ctx = TraceContext.parse(env[TRACEPARENT_ENV])
        assert ctx is not None
        assert ctx.trace_id == TRACE_ID
        assert "PATH" in env  # inherits the ambient environment

    def test_journal_start_event_stamped(self, tmp_path, monkeypatch):
        job, _ = self.launch_one(tmp_path, monkeypatch, TRACE_ID)
        from repro.service.events import read_events

        paths = ServicePaths(tmp_path / "svc")
        start = [
            e for e in read_events(paths.events) if e["event"] == "job_start"
        ]
        assert [e["trace_id"] for e in start] == [TRACE_ID]

    def test_no_trace_id_inherits_environment(self, tmp_path, monkeypatch):
        _, captured = self.launch_one(tmp_path, monkeypatch, None)
        assert captured["env"] is None

    def test_malformed_trace_id_degrades_to_fresh_env(
        self, tmp_path, monkeypatch
    ):
        _, captured = self.launch_one(tmp_path, monkeypatch, "not-hex")
        assert captured["env"] is None


class TestWorkerInheritsTrace:
    def test_cli_place_continues_env_trace(self, tmp_path, monkeypatch):
        """The worker-side half of the handoff: ``repro place`` under a
        REPRO_TRACEPARENT env stamps the parent's trace id on its own
        recorder and tracer (checked through _trace_context)."""
        from repro.__main__ import _trace_context
        from repro.telemetry.context import mint_context

        parent = mint_context()
        monkeypatch.setenv(TRACEPARENT_ENV, parent.to_traceparent())
        ctx = _trace_context()
        assert ctx.trace_id == parent.trace_id
        assert ctx.span_id != parent.span_id

    def test_checkpoint_trace_id_wins_over_env(self, tmp_path, monkeypatch):
        """On resume the checkpoint's trace is the run's identity even
        if the environment carries a different (stale) traceparent."""
        from repro.__main__ import _trace_context
        from repro.telemetry.context import mint_context

        monkeypatch.setenv(
            TRACEPARENT_ENV, mint_context().to_traceparent()
        )
        ctx = _trace_context("cd" * 16)
        assert ctx.trace_id == "cd" * 16
