"""Job and JobSpec: identity, serialization, state transitions."""

import pytest

from repro.service import JOB_STATES, TERMINAL_STATES, Job, JobSpec, new_job_id


class TestJobSpec:
    def test_round_trip(self):
        spec = JobSpec(
            circuit="c.twmc", preset="fast", seed=3, core="object",
            cooling="adaptive", checkpoint_every=2,
        )
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown job spec fields"):
            JobSpec.from_dict({"circuit": "c.twmc", "gpu": True})

    def test_defaults(self):
        spec = JobSpec(circuit="c.twmc")
        assert spec.preset == "smoke"
        assert spec.checkpoint_every == 5


class TestJob:
    def test_with_state(self):
        job = Job(job_id="j", spec=JobSpec(circuit="c"))
        running = job.with_state("running", attempts=1)
        assert running.state == "running"
        assert running.attempts == 1
        assert job.state == "queued"  # frozen original untouched

    def test_with_state_rejects_unknown(self):
        job = Job(job_id="j", spec=JobSpec(circuit="c"))
        with pytest.raises(ValueError, match="unknown job state"):
            job.with_state("paused")

    def test_terminal(self):
        job = Job(job_id="j", spec=JobSpec(circuit="c"))
        for state in JOB_STATES:
            assert job.with_state(state).terminal == (state in TERMINAL_STATES)

    def test_to_dict_is_plain_data(self):
        import json

        job = Job(job_id="j", spec=JobSpec(circuit="c"))
        doc = json.loads(json.dumps(job.to_dict()))
        assert doc["job_id"] == "j"
        assert doc["spec"]["circuit"] == "c"


class TestNewJobId:
    def test_unique(self):
        ids = {new_job_id() for _ in range(64)}
        assert len(ids) == 64

    def test_sortable_by_time(self):
        early = new_job_id(now=1_000_000.0)
        late = new_job_id(now=2_000_000.0)
        assert early < late
