"""Retry backoff, backpressure, and tenant fairness — pure logic."""

import random

import pytest

from repro.service import BackpressurePolicy, Job, JobSpec, RetryPolicy
from repro.service.policy import pick_fair


def job(job_id, tenant="default", priority=0, created=0.0):
    return Job(
        job_id=job_id, spec=JobSpec(circuit="c"), tenant=tenant,
        priority=priority, created=created,
    )


class TestRetryPolicy:
    def test_exponential_growth(self):
        policy = RetryPolicy(base=2.0, factor=2.0, cap=1000.0, jitter=0.0)
        assert [policy.delay(n) for n in (1, 2, 3, 4)] == [2.0, 4.0, 8.0, 16.0]

    def test_cap(self):
        policy = RetryPolicy(base=2.0, factor=2.0, cap=5.0, jitter=0.0)
        assert policy.delay(10) == 5.0

    def test_zero_attempts_no_delay(self):
        assert RetryPolicy().delay(0) == 0.0

    def test_jitter_bounds(self):
        policy = RetryPolicy(base=4.0, factor=2.0, cap=100.0, jitter=0.5)
        rng = random.Random(1)
        for _ in range(200):
            delay = policy.delay(1, rng)
            assert 4.0 <= delay <= 6.0

    def test_jitter_deterministic_under_seeded_rng(self):
        policy = RetryPolicy()
        a = [policy.delay(n, random.Random(9)) for n in range(1, 5)]
        b = [policy.delay(n, random.Random(9)) for n in range(1, 5)]
        assert a == b

    @pytest.mark.parametrize(
        "kwargs",
        [{"base": -1.0}, {"factor": 0.5}, {"jitter": -0.1}, {"cap": -2.0}],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestBackpressurePolicy:
    def test_reject_mode_never_picks_a_victim(self):
        policy = BackpressurePolicy(max_queued=2, shed=False)
        queued = [job("a", priority=0), job("b", priority=0)]
        assert policy.victim(queued, priority=10) is None

    def test_shed_requires_strictly_higher_priority(self):
        policy = BackpressurePolicy(max_queued=2, shed=True)
        queued = [job("a", priority=3), job("b", priority=3)]
        assert policy.victim(queued, priority=3) is None
        assert policy.victim(queued, priority=4) is not None

    def test_shed_picks_lowest_priority(self):
        policy = BackpressurePolicy(max_queued=3, shed=True)
        queued = [
            job("hi", priority=5),
            job("lo", priority=1),
            job("mid", priority=3),
        ]
        assert policy.victim(queued, priority=9).job_id == "lo"

    def test_shed_tie_prefers_newest_arrival(self):
        policy = BackpressurePolicy(max_queued=2, shed=True)
        queued = [
            job("old", priority=1, created=10.0),
            job("new", priority=1, created=20.0),
        ]
        assert policy.victim(queued, priority=2).job_id == "new"

    def test_validation(self):
        with pytest.raises(ValueError):
            BackpressurePolicy(max_queued=0)


class TestPickFair:
    def test_empty(self):
        assert pick_fair([], {}) is None

    def test_never_served_tenant_goes_first(self):
        ready = [job("a", tenant="alice"), job("b", tenant="bob")]
        assert pick_fair(ready, {"alice": 100.0}).job_id == "b"

    def test_least_recently_served_tenant_goes_first(self):
        ready = [job("a", tenant="alice"), job("b", tenant="bob")]
        picked = pick_fair(ready, {"alice": 50.0, "bob": 100.0})
        assert picked.job_id == "a"

    def test_round_robin_over_successive_picks(self):
        ready = [
            job(f"{tenant}{i}", tenant=tenant, created=float(i))
            for tenant in ("alice", "bob")
            for i in range(2)
        ]
        last = {}
        order = []
        now = 0.0
        while ready:
            picked = pick_fair(ready, last)
            order.append(picked.job_id)
            ready.remove(picked)
            now += 1.0
            last[picked.tenant] = now
        assert order == ["alice0", "bob0", "alice1", "bob1"]

    def test_priority_beats_fifo_within_tenant(self):
        ready = [
            job("first", created=1.0, priority=0),
            job("urgent", created=2.0, priority=5),
        ]
        assert pick_fair(ready, {}).job_id == "urgent"

    def test_fifo_within_same_priority(self):
        ready = [job("b", created=2.0), job("a", created=1.0)]
        assert pick_fair(ready, {}).job_id == "a"
