"""The SQLite job store: transitions, backpressure, fairness, lease."""

import os
import threading

import pytest

from repro.service import BackpressurePolicy, JobSpec, QueueFull, SqliteJobStore
from repro.service.store import StoreError

SPEC = JobSpec(circuit="c.twmc")


@pytest.fixture()
def store(tmp_path):
    with SqliteJobStore(tmp_path / "registry.sqlite") as store:
        yield store


class TestSubmitAndQuery:
    def test_submit_and_get(self, store):
        job, shed = store.submit(SPEC, tenant="alice", priority=2)
        assert shed is None
        loaded = store.get(job.job_id)
        assert loaded.state == "queued"
        assert loaded.tenant == "alice"
        assert loaded.priority == 2
        assert loaded.spec == SPEC

    def test_get_by_unique_prefix(self, store):
        job, _ = store.submit(SPEC)
        assert store.get(job.job_id[:-2]).job_id == job.job_id

    def test_get_unknown(self, store):
        with pytest.raises(StoreError, match="no job"):
            store.get("job-nope")

    def test_get_ambiguous_prefix(self, store):
        store.submit(SPEC, now=1000.0)
        store.submit(SPEC, now=1000.0)
        with pytest.raises(StoreError, match="ambiguous"):
            store.get("job-")

    def test_counts(self, store):
        store.submit(SPEC)
        job, _ = store.submit(SPEC)
        store.mark_dead(job.job_id, "x")
        counts = store.counts()
        assert counts["queued"] == 1
        assert counts["dead"] == 1

    def test_jobs_filters(self, store):
        store.submit(SPEC, tenant="alice")
        store.submit(SPEC, tenant="bob")
        assert len(store.jobs()) == 2
        assert [j.tenant for j in store.jobs(tenant="bob")] == ["bob"]
        assert store.jobs(state="done") == []
        with pytest.raises(StoreError, match="unknown job state"):
            store.jobs(state="sleeping")

    def test_max_attempts_validated(self, store):
        with pytest.raises(ValueError):
            store.submit(SPEC, max_attempts=0)


class TestClaim:
    def test_claim_counts_the_attempt(self, store):
        job, _ = store.submit(SPEC)
        claimed = store.claim_next("sup")
        assert claimed.job_id == job.job_id
        assert claimed.state == "running"
        assert claimed.attempts == 1
        assert store.get(job.job_id).lease_owner == "sup"

    def test_claim_empty_queue(self, store):
        assert store.claim_next("sup") is None

    def test_backoff_gates_readiness(self, store):
        job, _ = store.submit(SPEC)
        claimed = store.claim_next("sup", now=100.0)
        store.requeue(claimed.job_id, delay=50.0, reason="retry", now=100.0)
        assert store.claim_next("sup", now=120.0) is None
        ready = store.claim_next("sup", now=151.0)
        assert ready is not None
        assert ready.attempts == 2

    def test_requeue_without_counting_refunds_the_attempt(self, store):
        job, _ = store.submit(SPEC)
        store.claim_next("sup")
        store.requeue(job.job_id, reason="drain", count_attempt=False)
        assert store.get(job.job_id).attempts == 0

    def test_tenant_fairness_across_claims(self, store):
        for i in range(2):
            store.submit(SPEC, tenant="alice", now=float(i))
        for i in range(2):
            store.submit(SPEC, tenant="bob", now=float(10 + i))
        order = []
        now = 100.0
        while True:
            claimed = store.claim_next("sup", now=now)
            if claimed is None:
                break
            order.append(claimed.tenant)
            now += 1.0
        assert order == ["alice", "bob", "alice", "bob"]

    def test_priority_first_within_tenant(self, store):
        store.submit(SPEC, priority=0, now=1.0)
        urgent, _ = store.submit(SPEC, priority=9, now=2.0)
        assert store.claim_next("sup").job_id == urgent.job_id


class TestTerminalTransitions:
    def test_mark_done(self, store):
        job, _ = store.submit(SPEC)
        store.claim_next("sup")
        store.mark_done(job.job_id, run_id="r1")
        done = store.get(job.job_id)
        assert done.state == "done"
        assert done.run_id == "r1"
        assert done.finished is not None
        assert done.worker_pid is None

    def test_mark_dead_records_reason(self, store):
        job, _ = store.submit(SPEC)
        store.mark_dead(job.job_id, "attempts exhausted")
        dead = store.get(job.job_id)
        assert dead.state == "dead"
        assert dead.reason == "attempts exhausted"

    def test_set_worker(self, store):
        job, _ = store.submit(SPEC)
        store.claim_next("sup")
        store.set_worker(job.job_id, 4242)
        assert store.get(job.job_id).worker_pid == 4242


class TestBackpressure:
    def test_reject_at_high_water_mark(self, store):
        policy = BackpressurePolicy(max_queued=2, shed=False)
        store.submit(SPEC, backpressure=policy)
        store.submit(SPEC, backpressure=policy)
        with pytest.raises(QueueFull, match="high-water mark"):
            store.submit(SPEC, backpressure=policy)
        assert store.counts()["queued"] == 2

    def test_running_jobs_do_not_hold_queue_slots(self, store):
        policy = BackpressurePolicy(max_queued=1, shed=False)
        store.submit(SPEC, backpressure=policy)
        store.claim_next("sup")
        store.submit(SPEC, backpressure=policy)  # must not raise

    def test_shed_displaces_lowest_priority(self, store):
        policy = BackpressurePolicy(max_queued=2, shed=True)
        low, _ = store.submit(SPEC, priority=1, backpressure=policy)
        store.submit(SPEC, priority=5, backpressure=policy)
        new, shed = store.submit(SPEC, priority=9, backpressure=policy)
        assert shed.job_id == low.job_id
        assert store.get(low.job_id).state == "shed"
        assert new.job_id in shed.reason or shed.reason
        assert store.counts()["queued"] == 2

    def test_shed_refuses_equal_priority(self, store):
        policy = BackpressurePolicy(max_queued=1, shed=True)
        store.submit(SPEC, priority=5, backpressure=policy)
        with pytest.raises(QueueFull):
            store.submit(SPEC, priority=5, backpressure=policy)

    def test_concurrent_submitters_respect_the_mark(self, tmp_path):
        path = tmp_path / "registry.sqlite"
        SqliteJobStore(path).close()  # create schema once
        policy = BackpressurePolicy(max_queued=8, shed=False)
        accepted, rejected = [], []
        lock = threading.Lock()

        def submit_some(k):
            with SqliteJobStore(path) as store:
                for _ in range(4):
                    try:
                        job, _ = store.submit(SPEC, backpressure=policy)
                        with lock:
                            accepted.append(job.job_id)
                    except QueueFull:
                        with lock:
                            rejected.append(k)

        threads = [
            threading.Thread(target=submit_some, args=(k,)) for k in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        with SqliteJobStore(path) as store:
            assert store.counts()["queued"] == 8
        assert len(accepted) == 8
        assert len(rejected) == 8


class TestDrainFlagAndLease:
    def test_draining_flag(self, store):
        assert store.draining() is False
        store.set_draining(True)
        assert store.draining() is True
        store.set_draining(False)
        assert store.draining() is False

    def test_lease_exclusive_while_fresh_and_alive(self, store):
        assert store.acquire_lease("a", info={"pid": os.getpid()}) is True
        assert store.acquire_lease("b", info={"pid": os.getpid()}) is False
        assert store.lease()["owner"] == "a"

    def test_lease_reacquire_by_same_owner(self, store):
        assert store.acquire_lease("a", info={"pid": os.getpid()})
        assert store.acquire_lease("a", info={"pid": os.getpid()})

    def test_stale_lease_is_adoptable(self, store):
        assert store.acquire_lease(
            "a", info={"pid": os.getpid()}, stale_after=100.0
        )
        # Backdate the beat far past staleness.
        held = store.lease()
        held["beat"] = 0.0
        import json

        store._meta_set("lease", json.dumps(held))
        assert store.acquire_lease("b", info={"pid": os.getpid()}) is True

    def test_dead_holder_lease_is_adoptable(self, store):
        # A pid that cannot exist: max_pid is bounded well below 2**31.
        assert store.acquire_lease("a", info={"pid": 2**31 - 1})
        assert store.acquire_lease("b", info={"pid": os.getpid()}) is True

    def test_release_only_by_owner(self, store):
        store.acquire_lease("a", info={"pid": os.getpid()})
        store.release_lease("b")
        assert store.lease() is not None
        store.release_lease("a")
        assert store.lease() is None

    def test_refresh_advances_beat(self, store):
        store.acquire_lease("a", info={"pid": os.getpid()})
        held = store.lease()
        held["beat"] = 1.0
        import json

        store._meta_set("lease", json.dumps(held))
        store.refresh_lease("a")
        assert store.lease()["beat"] > 1.0


class TestSharedFile:
    def test_coexists_with_run_registry(self, tmp_path):
        """The jobs table lives in the same file as the run registry."""
        from repro.qor.registry import RunRegistry

        path = tmp_path / "registry.sqlite"
        with SqliteJobStore(path) as store:
            store.submit(SPEC)
            with RunRegistry(path) as registry:
                assert registry.runs() == []
            assert store.counts()["queued"] == 1

    def test_readonly_store(self, tmp_path):
        path = tmp_path / "registry.sqlite"
        with SqliteJobStore(path) as store:
            job, _ = store.submit(SPEC)
        with SqliteJobStore(path, readonly=True) as ro:
            assert ro.get(job.job_id).state == "queued"
