"""The /jobs routes of the observability server."""

import json
import threading

import pytest

from repro.obs.fleet import Fleet
from repro.obs.routes import handle_request
from repro.service import ServicePaths, ServiceView


@pytest.fixture()
def populated_root(service_root, circuit_file):
    with ServiceView(service_root) as view:
        job = view.submit(circuit_file, tenant="alice")
    return service_root, job


def fleet_for(service_root):
    return Fleet(ServicePaths(service_root).root / "runs")


class TestJobsRoutes:
    def test_jobs_overview(self, populated_root):
        root, job = populated_root
        response = handle_request(fleet_for(root), "/jobs", service=root)
        assert response.status == 200
        doc = json.loads(response.body)
        assert doc["counts"]["queued"] == 1
        assert doc["jobs"][0]["job_id"] == job.job_id

    def test_job_detail_includes_events(self, populated_root):
        root, job = populated_root
        response = handle_request(
            fleet_for(root), f"/jobs/{job.job_id}", service=root
        )
        doc = json.loads(response.body)
        assert doc["state"] == "queued"
        assert [e["event"] for e in doc["events"]] == ["job_submitted"]

    def test_unknown_job_404(self, populated_root):
        root, _ = populated_root
        response = handle_request(fleet_for(root), "/jobs/nope", service=root)
        assert response.status == 404

    def test_no_service_configured_404(self, populated_root):
        root, _ = populated_root
        assert handle_request(fleet_for(root), "/jobs").status == 404

    def test_missing_store_503(self, tmp_path):
        response = handle_request(
            Fleet(tmp_path), "/jobs", service=tmp_path / "absent"
        )
        assert response.status == 503

    def test_index_advertises_jobs_when_service_set(self, populated_root):
        root, _ = populated_root
        with_service = json.loads(
            handle_request(fleet_for(root), "/", service=root).body
        )
        without = json.loads(handle_request(fleet_for(root), "/").body)
        assert "/jobs" in with_service["endpoints"]
        assert "/jobs" not in without["endpoints"]

    def test_events_stream(self, populated_root):
        root, job = populated_root
        stop = threading.Event()
        response = handle_request(
            fleet_for(root),
            "/jobs/events",
            {"from_start": "1", "max_events": "1", "timeout": "2"},
            stop_event=stop,
            service=root,
        )
        assert response.content_type == "text/event-stream"
        frames = list(response.stream)
        assert len(frames) == 1
        assert frames[0].startswith(b"event: job_submitted\n")


class TestOverHttp:
    def test_server_serves_jobs(self, populated_root):
        import urllib.request

        from repro.obs.server import ObsServer

        root, job = populated_root
        with ObsServer(
            ServicePaths(root).root / "runs", service=root
        ) as server:
            server.start()
            with urllib.request.urlopen(f"{server.url}/jobs", timeout=5) as r:
                doc = json.loads(r.read())
            assert doc["counts"]["queued"] == 1
            with urllib.request.urlopen(
                f"{server.url}/jobs/{job.job_id}", timeout=5
            ) as r:
                assert json.loads(r.read())["job_id"] == job.job_id
