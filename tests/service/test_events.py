"""The queue-event journal: append, tail, torn lines, SSE frames."""

import threading

from repro.service import EventLog, EventTailer, read_events
from repro.service.events import stream_job_events


class TestEmitAndRead:
    def test_round_trip(self, tmp_path):
        log = EventLog(tmp_path / "events.jsonl")
        log.emit("job_submitted", "j1", tenant="alice")
        log.emit("job_start", "j1", attempt=1)
        events = read_events(log.path)
        assert [e["event"] for e in events] == ["job_submitted", "job_start"]
        assert events[0]["tenant"] == "alice"
        assert all("ts" in e for e in events)

    def test_filter_by_job(self, tmp_path):
        log = EventLog(tmp_path / "events.jsonl")
        log.emit("job_start", "j1")
        log.emit("job_start", "j2")
        log.emit("job_done", "j1")
        assert [e["event"] for e in read_events(log.path, job_id="j1")] == [
            "job_start",
            "job_done",
        ]

    def test_limit_keeps_newest(self, tmp_path):
        log = EventLog(tmp_path / "events.jsonl")
        for i in range(5):
            log.emit("e", "j", n=i)
        assert [e["n"] for e in read_events(log.path, limit=2)] == [3, 4]

    def test_missing_file(self, tmp_path):
        assert read_events(tmp_path / "nope.jsonl") == []

    def test_torn_trailing_line_skipped(self, tmp_path):
        log = EventLog(tmp_path / "events.jsonl")
        log.emit("ok", "j1")
        with open(log.path, "ab") as handle:
            handle.write(b'{"event": "torn", "job_')  # no newline: mid-crash
        assert [e["event"] for e in read_events(log.path)] == ["ok"]

    def test_garbage_line_skipped(self, tmp_path):
        log = EventLog(tmp_path / "events.jsonl")
        log.emit("ok", "j1")
        with open(log.path, "ab") as handle:
            handle.write(b"not json at all\n")
        log.emit("after", "j1")
        assert [e["event"] for e in read_events(log.path)] == ["ok", "after"]


class TestTailer:
    def test_yields_only_new_events(self, tmp_path):
        log = EventLog(tmp_path / "events.jsonl")
        log.emit("before")
        tailer = EventTailer(log.path)
        assert list(tailer.poll()) == []
        log.emit("after")
        assert [e["event"] for e in tailer.poll()] == ["after"]
        assert list(tailer.poll()) == []

    def test_from_start(self, tmp_path):
        log = EventLog(tmp_path / "events.jsonl")
        log.emit("first")
        tailer = EventTailer(log.path, from_start=True)
        assert [e["event"] for e in tailer.poll()] == ["first"]

    def test_torn_line_completes_across_polls(self, tmp_path):
        log = EventLog(tmp_path / "events.jsonl")
        tailer = EventTailer(log.path, from_start=True)
        with open(log.path, "ab") as handle:
            handle.write(b'{"event": "sp')
        assert list(tailer.poll()) == []
        with open(log.path, "ab") as handle:
            handle.write(b'lit"}\n')
        assert [e["event"] for e in tailer.poll()] == ["split"]

    def test_truncation_restarts(self, tmp_path):
        log = EventLog(tmp_path / "events.jsonl")
        log.emit("one")
        tailer = EventTailer(log.path, from_start=True)
        list(tailer.poll())
        log.path.write_bytes(b"")
        assert list(tailer.poll()) == []  # shrink observed: cursor resets
        log.emit("fresh")
        assert [e["event"] for e in tailer.poll()] == ["fresh"]

    def test_missing_file_tolerated(self, tmp_path):
        tailer = EventTailer(tmp_path / "nope.jsonl")
        assert list(tailer.poll()) == []


class TestSseStream:
    def test_frames_carry_event_names(self, tmp_path):
        log = EventLog(tmp_path / "events.jsonl")
        log.emit("job_submitted", "j1")
        log.emit("job_done", "j1")
        frames = list(
            stream_job_events(
                log.path, from_start=True, max_events=2, timeout=2.0,
                poll_interval=0.01,
            )
        )
        assert frames[0].startswith(b"event: job_submitted\n")
        assert frames[1].startswith(b"event: job_done\n")
        assert b'"job_id":"j1"' in frames[0].replace(b" ", b"")

    def test_job_filter(self, tmp_path):
        log = EventLog(tmp_path / "events.jsonl")
        log.emit("a", "j1")
        log.emit("b", "j2")
        frames = list(
            stream_job_events(
                log.path, from_start=True, job_id="j2", max_events=1,
                timeout=2.0, poll_interval=0.01,
            )
        )
        assert len(frames) == 1
        assert frames[0].startswith(b"event: b\n")

    def test_stop_event_ends_stream(self, tmp_path):
        log = EventLog(tmp_path / "events.jsonl")
        stop = threading.Event()
        stop.set()
        frames = list(
            stream_job_events(log.path, stop=stop, timeout=5.0)
        )
        assert frames == []
