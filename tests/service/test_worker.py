"""Service root layout and worker command construction."""

from repro.resilience import write_checkpoint
from repro.service import Job, JobSpec, ServicePaths, build_worker_command
from repro.service.worker import job_checkpoint


def make_job(job_id="j1", **spec_kwargs):
    return Job(job_id=job_id, spec=JobSpec(circuit="snap.twmc", **spec_kwargs))


class TestServicePaths:
    def test_layout_is_rooted(self, tmp_path):
        paths = ServicePaths(tmp_path)
        assert paths.registry == tmp_path / "registry.sqlite"
        assert paths.events == tmp_path / "events.jsonl"
        assert paths.circuit("j") == tmp_path / "jobs" / "j" / "circuit.twmc"
        assert paths.checkpoint_dir("j") == tmp_path / "jobs" / "j" / "ckpt"
        assert paths.result("j") == tmp_path / "jobs" / "j" / "result.json"
        assert paths.attempt_log("j", 2).name == "attempt-2.log"
        assert paths.rundir("j") == tmp_path / "runs" / "j"

    def test_ensure_job_dirs(self, tmp_path):
        paths = ServicePaths(tmp_path)
        paths.ensure_job_dirs("j")
        assert paths.checkpoint_dir("j").is_dir()


class TestBuildWorkerCommand:
    def test_first_attempt_is_a_fresh_place(self, tmp_path):
        paths = ServicePaths(tmp_path)
        paths.ensure_job_dirs("j1")
        job = make_job(preset="fast", seed=3, core="object",
                       cooling="adaptive", checkpoint_every=2)
        cmd = build_worker_command(paths, job, python="py")
        assert cmd[:4] == ["py", "-m", "repro", "place"]
        assert cmd[4] == str(paths.circuit("j1"))
        for flag, value in (
            ("--preset", "fast"),
            ("--seed", "3"),
            ("--core", "object"),
            ("--cooling", "adaptive"),
            ("--checkpoint-every", "2"),
            ("--checkpoint-dir", str(paths.checkpoint_dir("j1"))),
            ("--json", str(paths.result("j1"))),
            ("--rundir", str(paths.rundir("j1"))),
            ("--registry", str(paths.registry)),
        ):
            assert value == cmd[cmd.index(flag) + 1]

    def test_retry_resumes_from_newest_checkpoint(self, tmp_path):
        paths = ServicePaths(tmp_path)
        paths.ensure_job_dirs("j1")
        ckpt = paths.checkpoint_dir("j1") / "ckpt-t5.ckpt"
        write_checkpoint(ckpt, {"phase": "stage1"}, "circuit text")
        cmd = build_worker_command(paths, make_job(), python="py")
        assert cmd[:4] == ["py", "-m", "repro", "resume"]
        assert cmd[4] == str(ckpt)
        # Pinned to the job's snapshot: a foreign checkpoint exits 6.
        assert cmd[cmd.index("--circuit") + 1] == str(paths.circuit("j1"))
        assert "--preset" not in cmd

    def test_job_checkpoint_none_without_files(self, tmp_path):
        paths = ServicePaths(tmp_path)
        paths.ensure_job_dirs("j1")
        assert job_checkpoint(paths, "j1") is None

    def test_default_python_is_current_interpreter(self, tmp_path):
        import sys

        paths = ServicePaths(tmp_path)
        paths.ensure_job_dirs("j1")
        cmd = build_worker_command(paths, make_job())
        assert cmd[0] == sys.executable
