"""The ServiceView facade: snapshots, status documents, drain."""

import pytest

from repro.service import BackpressurePolicy, QueueFull, ServicePaths, ServiceView


class TestSubmit:
    def test_snapshot_freezes_the_circuit(self, service_root, circuit_file):
        with ServiceView(service_root) as view:
            job = view.submit(circuit_file, preset="smoke")
            original = circuit_file.read_text(encoding="utf-8")
            circuit_file.write_text("EDITED AFTER SUBMIT", encoding="utf-8")
            snapshot = ServicePaths(service_root).circuit(job.job_id)
            assert snapshot.read_text(encoding="utf-8") == original
            assert job.spec.circuit == str(snapshot)

    def test_missing_circuit_rejected_before_enqueue(self, service_root, tmp_path):
        with ServiceView(service_root) as view:
            with pytest.raises(OSError):
                view.submit(tmp_path / "nope.twmc")
            assert view.counts()["queued"] == 0

    def test_queue_full_cleans_up_the_snapshot(self, service_root, circuit_file):
        policy = BackpressurePolicy(max_queued=1, shed=False)
        with ServiceView(service_root) as view:
            view.submit(circuit_file, backpressure=policy)
            with pytest.raises(QueueFull):
                view.submit(circuit_file, backpressure=policy)
            jobs_dir = ServicePaths(service_root).jobs_dir
            assert len(list(jobs_dir.iterdir())) == 1
            events = [e["event"] for e in view.history()]
        assert events == ["job_submitted", "queue_full"]

    def test_shed_emits_both_events(self, service_root, circuit_file):
        policy = BackpressurePolicy(max_queued=1, shed=True)
        with ServiceView(service_root) as view:
            low = view.submit(circuit_file, priority=0, backpressure=policy)
            view.submit(circuit_file, priority=5, backpressure=policy)
            events = view.history()
            assert [e["event"] for e in events] == [
                "job_submitted", "job_submitted", "job_shed",
            ]
            assert events[-1]["job_id"] == low.job_id
            assert view.job(low.job_id).state == "shed"


class TestStatusAndOverview:
    def test_status_document(self, service_root, circuit_file):
        with ServiceView(service_root) as view:
            job = view.submit(circuit_file)
            doc = view.status(job.job_id)
        assert doc["state"] == "queued"
        assert doc["has_result"] is False
        assert doc["checkpoint"] is None
        assert doc["rundir"].endswith(job.job_id)

    def test_overview(self, service_root, circuit_file):
        with ServiceView(service_root) as view:
            view.submit(circuit_file, tenant="alice")
            overview = view.overview()
        assert overview["counts"]["queued"] == 1
        assert overview["draining"] is False
        assert overview["lease"] is None
        assert overview["jobs"][0]["tenant"] == "alice"

    def test_drain_sets_flag_and_event(self, service_root):
        with ServiceView(service_root) as view:
            view.drain()
            assert view.store.draining() is True
            assert [e["event"] for e in view.history()] == ["drain_requested"]
