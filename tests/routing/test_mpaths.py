"""Dijkstra and Yen's K-shortest loopless paths."""

import pytest

from repro.routing import dijkstra, k_shortest_paths, path_edges


def grid(n=4, weight=1.0):
    """An n x n grid graph with unit edges."""
    adj = {}

    def node(x, y):
        return y * n + x

    for y in range(n):
        for x in range(n):
            u = node(x, y)
            adj.setdefault(u, [])
            for dx, dy in ((1, 0), (0, 1)):
                if x + dx < n and y + dy < n:
                    v = node(x + dx, y + dy)
                    adj[u].append((v, weight))
                    adj.setdefault(v, []).append((u, weight))
    return (lambda u: adj[u]), node


class TestDijkstra:
    def test_shortest_on_grid(self):
        nb, node = grid()
        result = dijkstra(nb, {node(0, 0): 0.0}, {node(3, 3)})
        assert result is not None
        length, path = result
        assert length == 6.0
        assert path[0] == node(0, 0) and path[-1] == node(3, 3)

    def test_multi_source_picks_nearest(self):
        nb, node = grid()
        result = dijkstra(
            nb, {node(0, 0): 0.0, node(3, 2): 0.0}, {node(3, 3)}
        )
        assert result[0] == 1.0
        assert result[1][0] == node(3, 2)

    def test_source_cost_offsets(self):
        nb, node = grid()
        result = dijkstra(
            nb, {node(0, 0): 0.0, node(3, 2): 10.0}, {node(3, 3)}
        )
        # The distant source is cheaper than the near-but-penalized one.
        assert result[1][0] == node(0, 0)

    def test_source_is_target(self):
        nb, node = grid()
        result = dijkstra(nb, {node(1, 1): 0.0}, {node(1, 1)})
        assert result == (0.0, (node(1, 1),))

    def test_unreachable(self):
        adj = {0: [], 1: []}
        assert dijkstra(lambda u: adj[u], {0: 0.0}, {1}) is None

    def test_banned_nodes(self):
        nb, node = grid(3)
        banned = {node(1, 0), node(0, 1), node(1, 2)}
        result = dijkstra(
            nb, {node(0, 0): 0.0}, {node(2, 2)}, banned_nodes=banned
        )
        # Only the path through (1,1)... is blocked too? (0,0)->(1,0) and
        # (0,0)->(0,1) both banned: unreachable.
        assert result is None

    def test_banned_edges_directed(self):
        nb, node = grid(2)
        banned = {(node(0, 0), node(1, 0)), (node(0, 0), node(0, 1))}
        result = dijkstra(
            nb, {node(0, 0): 0.0}, {node(1, 1)}, banned_edges=banned
        )
        assert result is None


class TestKShortest:
    def test_counts_and_order(self):
        nb, node = grid()
        paths = k_shortest_paths(nb, {node(0, 0): 0.0}, {node(3, 3)}, 10)
        assert len(paths) == 10
        lengths = [p[0] for p in paths]
        assert lengths == sorted(lengths)
        assert lengths[0] == 6.0

    def test_all_loopless_and_distinct(self):
        nb, node = grid()
        paths = k_shortest_paths(nb, {node(0, 0): 0.0}, {node(3, 3)}, 15)
        seen = set()
        for _, path in paths:
            assert len(set(path)) == len(path)  # loopless
            assert path not in seen
            seen.add(path)

    def test_exhausts_small_graph(self):
        # A path graph has exactly one route.
        adj = {0: [(1, 1.0)], 1: [(0, 1.0), (2, 1.0)], 2: [(1, 1.0)]}
        paths = k_shortest_paths(lambda u: adj[u], {0: 0.0}, {2}, 5)
        assert len(paths) == 1

    def test_diamond_two_routes(self):
        adj = {
            0: [(1, 1.0), (2, 2.0)],
            1: [(0, 1.0), (3, 1.0)],
            2: [(0, 2.0), (3, 2.0)],
            3: [(1, 1.0), (2, 2.0)],
        }
        paths = k_shortest_paths(lambda u: adj[u], {0: 0.0}, {3}, 5)
        assert [p[0] for p in paths] == [2.0, 4.0]

    def test_k_validation(self):
        nb, node = grid()
        with pytest.raises(ValueError):
            k_shortest_paths(nb, {0: 0.0}, {1}, 0)

    def test_no_path(self):
        adj = {0: [], 1: []}
        assert k_shortest_paths(lambda u: adj[u], {0: 0.0}, {1}, 3) == []

    def test_multi_target(self):
        nb, node = grid()
        paths = k_shortest_paths(
            nb, {node(0, 0): 0.0}, {node(3, 3), node(1, 1)}, 4
        )
        assert paths[0][0] == 2.0  # the near target wins


class TestPathEdges:
    def test_normalized_pairs(self):
        edges = path_edges((3, 1, 2))
        assert edges == frozenset({(1, 3), (1, 2)})

    def test_empty_for_single_node(self):
        assert path_edges((5,)) == frozenset()
