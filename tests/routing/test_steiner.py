"""Multi-pin route generation (§4.2.1): Prim ordering + M alternatives."""

import pytest

from repro.routing import m_shortest_routes, prim_order


def grid(n=5):
    adj = {}

    def node(x, y):
        return y * n + x

    for y in range(n):
        for x in range(n):
            u = node(x, y)
            adj.setdefault(u, [])
            for dx, dy in ((1, 0), (0, 1)):
                if x + dx < n and y + dy < n:
                    v = node(x + dx, y + dy)
                    adj[u].append((v, 1.0))
                    adj.setdefault(v, []).append((u, 1.0))
    return (lambda u: adj[u]), node


class TestPrimOrder:
    def test_starts_at_first_group(self):
        nb, node = grid()
        order = prim_order(nb, [[node(0, 0)], [node(4, 4)], [node(1, 0)]])
        assert order[0] == 0

    def test_nearest_next(self):
        nb, node = grid()
        order = prim_order(nb, [[node(0, 0)], [node(4, 4)], [node(1, 0)]])
        assert order == [0, 2, 1]

    def test_empty(self):
        nb, _ = grid()
        assert prim_order(nb, []) == []

    def test_equivalent_member_counts(self):
        nb, node = grid()
        # Group 1 has a member adjacent to group 0 -> connected first.
        order = prim_order(
            nb, [[node(0, 0)], [node(4, 4), node(0, 1)], [node(2, 2)]]
        )
        assert order == [0, 1, 2]


class TestTwoPinNets:
    def test_shortest_first(self):
        nb, node = grid()
        routes = m_shortest_routes(nb, [[node(0, 0)], [node(3, 3)]], 8)
        assert len(routes) == 8
        assert routes[0].length == 6.0
        lengths = [r.length for r in routes]
        assert lengths == sorted(lengths)

    def test_distinct_edge_sets(self):
        nb, node = grid()
        routes = m_shortest_routes(nb, [[node(0, 0)], [node(3, 3)]], 10)
        seen = {r.edges for r in routes}
        assert len(seen) == len(routes)

    def test_m_one(self):
        nb, node = grid()
        routes = m_shortest_routes(nb, [[node(0, 0)], [node(2, 0)]], 1)
        assert len(routes) == 1
        assert routes[0].length == 2.0


class TestMultiPinNets:
    def test_three_corner_steiner(self):
        nb, node = grid(4)
        groups = [[node(0, 0)], [node(3, 0)], [node(0, 3)]]
        routes = m_shortest_routes(nb, groups, 10)
        # The optimal Steiner tree for three corners of a 3x3 extent is 6.
        assert routes[0].length == 6.0

    def test_four_corner_steiner(self):
        nb, node = grid(4)
        groups = [
            [node(0, 0)],
            [node(3, 0)],
            [node(0, 3)],
            [node(3, 3)],
        ]
        routes = m_shortest_routes(nb, groups, 15)
        # Optimal rectilinear Steiner length for the 4 corners: 9.
        assert routes[0].length == pytest.approx(9.0)

    def test_tree_lengths_deduplicate_shared_edges(self):
        nb, node = grid(4)
        groups = [[node(0, 0)], [node(2, 0)], [node(3, 0)]]
        routes = m_shortest_routes(nb, groups, 5)
        # A straight line: total tree length 3, not 2 + 3.
        assert routes[0].length == 3.0

    def test_route_nodes_cover_all_groups(self):
        nb, node = grid(4)
        groups = [[node(0, 0)], [node(3, 1)], [node(1, 3)]]
        for route in m_shortest_routes(nb, groups, 6):
            for group in groups:
                assert any(g in route.nodes for g in group)


class TestEquivalentPins:
    def test_picks_cheaper_member(self):
        nb, node = grid(4)
        # The second group may connect at (3,0) [far] or (1,0) [near].
        groups = [[node(0, 0)], [node(3, 3), node(1, 0)]]
        routes = m_shortest_routes(nb, groups, 4)
        assert routes[0].length == 1.0
        assert node(1, 0) in routes[0].nodes

    def test_figure10_style(self):
        nb, node = grid(5)
        groups = [
            [node(2, 0)],  # P2 start
            [node(0, 2)],  # P1
            [node(4, 2), node(2, 4)],  # P3A / P3B equivalents
            [node(4, 4)],  # P4
        ]
        routes = m_shortest_routes(nb, groups, 12)
        assert routes
        best = routes[0]
        # Both equivalents reachable; the route must contain at least one.
        assert node(4, 2) in best.nodes or node(2, 4) in best.nodes


class TestDegenerateCases:
    def test_single_group(self):
        nb, node = grid()
        routes = m_shortest_routes(nb, [[node(1, 1)]], 5)
        assert len(routes) == 1
        assert routes[0].length == 0.0
        assert routes[0].edges == frozenset()

    def test_empty_groups(self):
        nb, _ = grid()
        assert m_shortest_routes(nb, [], 5) == []

    def test_group_already_on_tree(self):
        nb, node = grid()
        # Two groups sharing a node: zero-cost connection.
        routes = m_shortest_routes(
            nb, [[node(0, 0)], [node(0, 0), node(4, 4)]], 3
        )
        assert routes[0].length == 0.0

    def test_disconnected_returns_empty(self):
        adj = {0: [], 1: []}
        assert m_shortest_routes(lambda u: adj[u], [[0], [1]], 3) == []

    def test_m_validation(self):
        nb, _ = grid()
        with pytest.raises(ValueError):
            m_shortest_routes(nb, [[0], [1]], 0)


class TestGroupDistances:
    def test_early_stop_matches_full_search(self):
        from repro.routing.steiner import _group_distances

        nb, node = grid(5)
        sources = {node(0, 0)}
        group_nodes = {1: {node(4, 4)}, 2: {node(2, 0)}, 3: {node(0, 3)}}
        settled = _group_distances(nb, sources, group_nodes)
        assert settled == {1: 8.0, 2: 2.0, 3: 3.0}

    def test_unreachable_group_absent(self):
        from repro.routing.steiner import _group_distances

        adj = {0: [(1, 1.0)], 1: [(0, 1.0)], 9: []}
        settled = _group_distances(lambda u: adj[u], {0}, {1: {1}, 2: {9}})
        assert settled == {1: 1.0}

    def test_group_with_multiple_members_takes_nearest(self):
        from repro.routing.steiner import _group_distances

        nb, node = grid(5)
        settled = _group_distances(
            nb, {node(0, 0)}, {1: {node(4, 4), node(1, 0)}}
        )
        assert settled == {1: 1.0}
