"""End-to-end global routing over a channel graph."""

import pytest

from repro.channels import ChannelGraph, decompose_free_space
from repro.geometry import Rect, TileSet
from repro.netlist import Circuit, MacroCell, Pin, PinKind
from repro.routing import GlobalRouter


def routed_setup(seed=0, m=6):
    """Four cells in a 2x2 arrangement with nets between them."""
    def cell(name, nets_and_offsets):
        pins = [
            Pin(f"p{k}", net, PinKind.FIXED, offset=off)
            for k, (net, off) in enumerate(nets_and_offsets)
        ]
        return MacroCell.rectangular(name, 10, 10, pins)

    cells = [
        cell("tl", [("n1", (5, 0)), ("nv", (0, -5))]),
        cell("tr", [("n1", (-5, 0)), ("n2", (0, -5))]),
        cell("bl", [("nv", (0, 5)), ("n3", (5, 0))]),
        cell("br", [("n2", (0, 5)), ("n3", (-5, 0))]),
    ]
    circuit = Circuit("quad", cells)

    centers = {"tl": (0, 14), "tr": (14, 14), "bl": (0, 0), "br": (14, 0)}
    shapes = {}
    positions = {}
    for name in centers:
        cx, cy = centers[name]
        shapes[name] = TileSet.rectangle(10, 10).translated(cx, cy)
        for pin in circuit.cells[name].pins.values():
            positions[(name, pin.name)] = (cx + pin.offset[0], cy + pin.offset[1])

    boundary = Rect(-10, -10, 24, 24)
    strips = decompose_free_space(shapes.values(), boundary)
    graph = ChannelGraph(strips, 1.0)
    for (cell_name, pin_name), pos in positions.items():
        graph.attach_pin(cell_name, pin_name, pos)
    return circuit, graph


class TestGlobalRouter:
    def test_routes_all_nets(self):
        circuit, graph = routed_setup()
        router = GlobalRouter(graph, m_routes=6, seed=0)
        result = router.route(circuit)
        assert set(result.routes) == {"n1", "n2", "n3", "nv"}
        assert result.unrouted == []
        assert result.total_length > 0

    def test_lengths_match_selected_alternatives(self):
        circuit, graph = routed_setup()
        result = GlobalRouter(graph, m_routes=6, seed=0).route(circuit)
        for net, k in result.interchange.selection.items():
            assert result.lengths[net] == result.alternatives[net][k].length

    def test_alternatives_sorted(self):
        circuit, graph = routed_setup()
        result = GlobalRouter(graph, m_routes=6, seed=0).route(circuit)
        for alts in result.alternatives.values():
            lengths = [a.length for a in alts]
            assert lengths == sorted(lengths)

    def test_congestion_report(self):
        circuit, graph = routed_setup()
        result = GlobalRouter(graph, m_routes=6, seed=0).route(circuit)
        report = result.congestion(graph)
        assert report.max_node_density() >= 1
        assert result.overflow == report.overflow(graph)

    def test_deterministic(self):
        circuit, graph = routed_setup()
        a = GlobalRouter(graph, m_routes=6, seed=3).route(circuit)
        circuit2, graph2 = routed_setup()
        b = GlobalRouter(graph2, m_routes=6, seed=3).route(circuit2)
        assert a.total_length == b.total_length
        assert a.interchange.selection == b.interchange.selection

    def test_m_validation(self):
        _, graph = routed_setup()
        with pytest.raises(ValueError):
            GlobalRouter(graph, m_routes=0)


class TestPinGroups:
    def test_equivalent_pins_grouped(self):
        pins = [
            Pin("pa", "n1", PinKind.FIXED, offset=(5, 0), equiv_class="E"),
            Pin("pb", "n1", PinKind.FIXED, offset=(-5, 0), equiv_class="E"),
            Pin("pc", "n2", PinKind.FIXED, offset=(0, 5)),
        ]
        a = MacroCell.rectangular("a", 10, 10, pins)
        b = MacroCell.rectangular(
            "b",
            10,
            10,
            [
                Pin("q1", "n1", PinKind.FIXED, offset=(0, -5)),
                Pin("q2", "n2", PinKind.FIXED, offset=(0, 5)),
            ],
        )
        circuit = Circuit("eq", [a, b])
        shapes = {
            "a": TileSet.rectangle(10, 10),
            "b": TileSet.rectangle(10, 10).translated(14, 0),
        }
        strips = decompose_free_space(shapes.values(), Rect(-10, -10, 24, 10))
        graph = ChannelGraph(strips, 1.0)
        for name, shape in shapes.items():
            c = shape.bbox.center
            for pin in circuit.cells[name].pins.values():
                graph.attach_pin(
                    name, pin.name, (c.x + pin.offset[0], c.y + pin.offset[1])
                )
        router = GlobalRouter(graph, m_routes=4, seed=0)
        groups = router.build_pin_groups(circuit)
        # Net n1: cell a's two equivalent pins form ONE group of 2 nodes.
        n1_groups = groups["n1"]
        assert sorted(len(g) for g in n1_groups) == [1, 2]

    def test_single_cell_net_skipped(self):
        pins = [
            Pin("pa", "loop", PinKind.FIXED, offset=(5, 0)),
            Pin("pb", "loop", PinKind.FIXED, offset=(-5, 0)),
            Pin("px", "real", PinKind.FIXED, offset=(0, 5)),
        ]
        a = MacroCell.rectangular("a", 10, 10, pins)
        b = MacroCell.rectangular(
            "b", 10, 10, [Pin("q", "real", PinKind.FIXED, offset=(0, -5))]
        )
        circuit = Circuit("loopnet", [a, b])
        shapes = {
            "a": TileSet.rectangle(10, 10),
            "b": TileSet.rectangle(10, 10).translated(14, 0),
        }
        strips = decompose_free_space(shapes.values(), Rect(-10, -10, 24, 10))
        graph = ChannelGraph(strips, 1.0)
        for name, shape in shapes.items():
            c = shape.bbox.center
            for pin in circuit.cells[name].pins.values():
                graph.attach_pin(
                    name, pin.name, (c.x + pin.offset[0], c.y + pin.offset[1])
                )
        result = GlobalRouter(graph, m_routes=4, seed=0).route(circuit)
        # "loop" spans two pins of one cell -> two singleton groups is
        # correct and routable; "real" must be routed.
        assert "real" in result.routes
