"""A* search and geometric ordering: equivalence with plain Dijkstra."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.routing import dijkstra, k_shortest_paths, m_shortest_routes
from repro.routing import prim_order, prim_order_geometric


def random_geometric_graph(seed, n=25):
    """Random points connected to their nearest neighbours with Manhattan
    edge lengths — the structure of a channel graph."""
    rng = random.Random(seed)
    positions = {i: (rng.uniform(0, 100), rng.uniform(0, 100)) for i in range(n)}
    adj = {i: [] for i in range(n)}

    def dist(a, b):
        pa, pb = positions[a], positions[b]
        return abs(pa[0] - pb[0]) + abs(pa[1] - pb[1])

    for i in range(n):
        nearest = sorted((dist(i, j), j) for j in range(n) if j != i)[:4]
        for d, j in nearest:
            if all(v != j for v, _ in adj[i]):
                adj[i].append((j, d))
            if all(v != i for v, _ in adj[j]):
                adj[j].append((i, d))
    return (lambda u: adj[u]), positions


class TestAStarEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000))
    def test_same_shortest_length(self, seed):
        nb, positions = random_geometric_graph(seed)
        rng = random.Random(seed + 1)
        src = rng.randrange(25)
        dst = rng.randrange(25)
        plain = dijkstra(nb, {src: 0.0}, {dst})
        astar = dijkstra(nb, {src: 0.0}, {dst}, positions=positions)
        assert (plain is None) == (astar is None)
        if plain is not None:
            assert astar[0] == pytest.approx(plain[0])

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_k_shortest_same_best(self, seed):
        nb, positions = random_geometric_graph(seed)
        rng = random.Random(seed + 2)
        src = rng.randrange(25)
        dst = rng.randrange(25)
        plain = k_shortest_paths(nb, {src: 0.0}, {dst}, 3)
        astar = k_shortest_paths(nb, {src: 0.0}, {dst}, 3, positions=positions)
        if plain:
            assert astar
            assert astar[0][0] == pytest.approx(plain[0][0])

    def test_multi_source_with_positions(self):
        nb, positions = random_geometric_graph(7)
        result = dijkstra(nb, {0: 0.0, 1: 0.0}, {5}, positions=positions)
        plain = dijkstra(nb, {0: 0.0, 1: 0.0}, {5})
        assert result[0] == pytest.approx(plain[0])


class TestGeometricOrdering:
    def test_matches_graph_order_on_grid(self):
        # On a unit grid, geometric and graph distances agree.
        n = 5
        adj = {}
        positions = {}

        def node(x, y):
            return y * n + x

        for y in range(n):
            for x in range(n):
                u = node(x, y)
                positions[u] = (float(x), float(y))
                adj.setdefault(u, [])
                for dx, dy in ((1, 0), (0, 1)):
                    if x + dx < n and y + dy < n:
                        v = node(x + dx, y + dy)
                        adj[u].append((v, 1.0))
                        adj.setdefault(v, []).append((u, 1.0))
        groups = [[node(0, 0)], [node(4, 4)], [node(1, 0)], [node(0, 3)]]
        graph_order = prim_order(lambda u: adj[u], groups)
        geo_order = prim_order_geometric(positions, groups)
        assert geo_order == graph_order

    def test_empty(self):
        assert prim_order_geometric({}, []) == []

    def test_routes_same_quality_with_positions(self):
        nb, positions = random_geometric_graph(3)
        groups = [[0], [7], [13]]
        plain = m_shortest_routes(nb, groups, 4)
        fast = m_shortest_routes(nb, groups, 4, positions=positions)
        if plain and fast:
            # The scalable configuration must not lose more than a few
            # percent on the best route.
            assert fast[0].length <= plain[0].length * 1.1 + 1e-9
