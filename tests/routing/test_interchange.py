"""The phase-two random route interchange (§4.2.2)."""

import random

import pytest

from repro.routing import RouteSelector
from repro.routing.steiner import RouteAlternative


def alt(edges, length):
    edge_set = frozenset(tuple(sorted(e)) for e in edges)
    nodes = frozenset(n for e in edge_set for n in e)
    return RouteAlternative(edge_set, nodes, length)


class TestBookkeeping:
    def test_initial_selection_shortest(self):
        alts = {"a": [alt([(0, 1)], 1.0), alt([(0, 2), (2, 1)], 2.0)]}
        sel = RouteSelector(alts, {(0, 1): 5, (0, 2): 5, (1, 2): 5})
        assert sel.selection == {"a": 0}
        assert sel.total_length == 1.0
        assert sel.overflow == 0

    def test_unsorted_alternatives_rejected(self):
        alts = {"a": [alt([(0, 1)], 2.0), alt([(0, 2)], 1.0)]}
        with pytest.raises(ValueError):
            RouteSelector(alts, {})

    def test_empty_alternatives_rejected(self):
        with pytest.raises(ValueError):
            RouteSelector({"a": []}, {})

    def test_density_tracking(self):
        alts = {
            "a": [alt([(0, 1)], 1.0)],
            "b": [alt([(0, 1)], 1.0)],
        }
        sel = RouteSelector(alts, {(0, 1): 1})
        assert sel.density((0, 1)) == 2
        assert sel.overflow == 1
        assert sel.overflowed_edges() == [(0, 1)]

    def test_uncapacitated_edges_never_overflow(self):
        alts = {
            "a": [alt([(0, 1)], 1.0)],
            "b": [alt([(0, 1)], 1.0)],
        }
        sel = RouteSelector(alts, {(0, 1): None})
        assert sel.overflow == 0

    def test_delta_computation(self):
        alts = {
            "a": [alt([(0, 1)], 1.0), alt([(0, 2), (2, 1)], 2.0)],
            "b": [alt([(0, 1)], 1.0)],
        }
        sel = RouteSelector(alts, {(0, 1): 1, (0, 2): 5, (1, 2): 5})
        d_x, d_len = sel._delta("a", 1)
        assert d_x == -1
        assert d_len == 1.0


class TestRun:
    def test_resolves_overflow(self):
        alts = {
            "a": [alt([(0, 1)], 1.0), alt([(0, 2), (2, 1)], 2.0)],
            "b": [alt([(0, 1)], 1.0), alt([(0, 3), (3, 1)], 2.0)],
        }
        caps = {(0, 1): 1, (0, 2): 5, (1, 2): 5, (0, 3): 5, (1, 3): 5}
        sel = RouteSelector(alts, caps)
        assert sel.overflow == 1
        result = sel.run(random.Random(0))
        assert result.overflow == 0
        # Exactly one net was diverted; total length 1 + 2.
        assert result.total_length == 3.0

    def test_already_feasible_converges_immediately(self):
        alts = {"a": [alt([(0, 1)], 1.0)], "b": [alt([(2, 3)], 1.0)]}
        sel = RouteSelector(alts, {(0, 1): 1, (2, 3): 1})
        result = sel.run(random.Random(0))
        assert result.converged_shortest
        assert result.attempts == 0

    def test_stagnation_stops(self):
        # Unresolvable: both nets have only the congested route.
        alts = {
            "a": [alt([(0, 1)], 1.0)],
            "b": [alt([(0, 1)], 1.0)],
        }
        sel = RouteSelector(alts, {(0, 1): 1})
        result = sel.run(random.Random(0), stagnation_limit=10)
        assert result.overflow == 1
        assert not result.converged_shortest

    def test_routes_reflect_selection(self):
        alts = {
            "a": [alt([(0, 1)], 1.0), alt([(0, 2), (2, 1)], 2.0)],
            "b": [alt([(0, 1)], 1.0), alt([(0, 3), (3, 1)], 2.0)],
        }
        caps = {(0, 1): 1, (0, 2): 5, (1, 2): 5, (0, 3): 5, (1, 3): 5}
        sel = RouteSelector(alts, caps)
        sel.run(random.Random(1))
        routes = sel.routes()
        assert set(routes) == {"a", "b"}
        for net, k in sel.selection.items():
            assert routes[net] == alts[net][k].edges

    def test_never_worsens_overflow(self):
        rng = random.Random(2)
        alts = {
            f"n{i}": [
                alt([(0, 1)], 1.0),
                alt([(0, 2), (2, 1)], 2.0),
                alt([(0, 3), (3, 1)], 2.0),
            ]
            for i in range(6)
        }
        caps = {(0, 1): 2, (0, 2): 2, (1, 2): 2, (0, 3): 2, (1, 3): 2}
        sel = RouteSelector(alts, caps)
        history = [sel.overflow]
        for _ in range(50):
            sel.run(rng, stagnation_limit=1)
            history.append(sel.overflow)
        assert all(a >= b for a, b in zip(history, history[1:]))

    def test_deterministic_given_seed(self):
        def run(seed):
            alts = {
                "a": [alt([(0, 1)], 1.0), alt([(0, 2), (2, 1)], 2.0)],
                "b": [alt([(0, 1)], 1.0), alt([(0, 3), (3, 1)], 2.0)],
            }
            caps = {(0, 1): 1, (0, 2): 5, (1, 2): 5, (0, 3): 5, (1, 3): 5}
            sel = RouteSelector(alts, caps)
            return sel.run(random.Random(seed)).selection

        assert run(5) == run(5)
