#!/usr/bin/env python
"""The full engineering loop on a benchmark circuit.

Runs the complete flow on a suite circuit, prints the engineering report
(channels, nets, annealing trace), validates detailed routability with
the VCG channel router (the paper's headline: placements need very
little modification during detailed routing), and writes an SVG of the
final placement with its critical regions.

Run:  python examples/routability_report.py [circuit] [preset]
"""

import sys

from repro import TimberWolfConfig, place_and_route
from repro.bench import CIRCUIT_NAMES, load_circuit
from repro.flow import validate_result
from repro.flow.report import full_report
from repro.viz import write_placement_svg


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "i3"
    preset = sys.argv[2] if len(sys.argv) > 2 else "fast"
    if name not in CIRCUIT_NAMES:
        raise SystemExit(f"unknown circuit {name!r}; choose from {CIRCUIT_NAMES}")
    config = {
        "smoke": TimberWolfConfig.smoke,
        "fast": TimberWolfConfig.fast,
        "paper": TimberWolfConfig.paper,
    }[preset](seed=7)

    circuit = load_circuit(name)
    print(f"running the full flow on {circuit} ({preset} preset)...")
    result = place_and_route(circuit, config)

    print()
    print(full_report(result))

    print("-- detailed routability " + "-" * 33)
    report = validate_result(result)
    print(report.summary())
    print(
        f"stage-2 placement modification: mean displacement "
        f"{result.mean_stage2_displacement:.3f} core-sides"
    )
    misses = [c for c in report.checks if not c.fits and c.nets > 0]
    for check in sorted(misses, key=lambda c: -c.shortfall)[:5]:
        a, b = check.cells
        print(
            f"  tight channel {a}|{b}: {check.nets} nets need "
            f"{check.tracks_needed} tracks, {check.tracks_available} reserved"
        )

    svg_path = f"{name}_placement.svg"
    final = result.refinement.final_pass
    write_placement_svg(
        result.state,
        svg_path,
        show_regions=True,
        regions=final.graph.regions,
        routes=final.routing.routes,
        graph=final.graph,
    )
    print(f"\nwrote {svg_path}")


if __name__ == "__main__":
    main()
