#!/usr/bin/env python
"""The full engineering loop on a benchmark circuit.

Runs the complete flow on a suite circuit, prints the engineering report
(channels, nets, annealing trace), validates detailed routability with
the VCG channel router (the paper's headline: placements need very
little modification during detailed routing), and writes an SVG of the
final placement with its critical regions.

Run:  python examples/routability_report.py [circuit] [preset] [--trace PATH]
"""

import argparse

from repro import FileSink, TimberWolfConfig, Tracer, place_and_route
from repro.bench import CIRCUIT_NAMES, load_circuit
from repro.flow import validate_result
from repro.flow.report import full_report
from repro.viz import write_placement_svg


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("circuit", nargs="?", default="i3")
    parser.add_argument(
        "preset", nargs="?", default="fast", choices=("smoke", "fast", "paper")
    )
    parser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="write a JSONL telemetry trace of the run to PATH",
    )
    args = parser.parse_args()

    name, preset = args.circuit, args.preset
    if name not in CIRCUIT_NAMES:
        raise SystemExit(f"unknown circuit {name!r}; choose from {CIRCUIT_NAMES}")
    config = {
        "smoke": TimberWolfConfig.smoke,
        "fast": TimberWolfConfig.fast,
        "paper": TimberWolfConfig.paper,
    }[preset](seed=7)

    circuit = load_circuit(name)
    print(f"running the full flow on {circuit} ({preset} preset)...")
    tracer = Tracer(FileSink(args.trace)) if args.trace else None
    try:
        result = place_and_route(circuit, config, tracer=tracer)
    finally:
        if tracer is not None:
            tracer.close()
    if args.trace:
        print(f"telemetry trace written to {args.trace}")

    print()
    print(full_report(result))

    print("-- detailed routability " + "-" * 33)
    report = validate_result(result)
    print(report.summary())
    print(
        f"stage-2 placement modification: mean displacement "
        f"{result.mean_stage2_displacement:.3f} core-sides"
    )
    misses = [c for c in report.checks if not c.fits and c.nets > 0]
    for check in sorted(misses, key=lambda c: -c.shortfall)[:5]:
        a, b = check.cells
        print(
            f"  tight channel {a}|{b}: {check.nets} nets need "
            f"{check.tracks_needed} tracks, {check.tracks_available} reserved"
        )

    svg_path = f"{name}_placement.svg"
    final = result.refinement.final_pass
    write_placement_svg(
        result.state,
        svg_path,
        show_regions=True,
        regions=final.graph.regions,
        routes=final.routing.routes,
        graph=final.graph,
    )
    print(f"\nwrote {svg_path}")


if __name__ == "__main__":
    main()
