#!/usr/bin/env python
"""Quickstart: place and globally route a small macro-cell chip.

Builds an eight-macro circuit in code, runs the full TimberWolfMC flow
(stage-1 annealing with the dynamic interconnect-area estimator, then
channel definition + global routing + placement refinement), and prints
the resulting metrics and cell positions.

Run:  python examples/quickstart.py [--trace PATH]

``--trace PATH`` writes a JSONL telemetry trace of the run; turn it into
the paper's diagnostic tables with
``python -m repro.telemetry.report PATH``.
"""

import argparse
import random

from repro import FileSink, TimberWolfConfig, Tracer, place_and_route
from repro.netlist import Circuit, MacroCell, Pin, PinKind


def build_circuit(seed: int = 7) -> Circuit:
    """Eight rectangular macros with pins on their bottom edges, wired
    into a dozen multi-pin nets."""
    rng = random.Random(seed)
    cells = []
    for i in range(8):
        width = rng.randint(14, 34)
        height = rng.randint(14, 34)
        pins = []
        for k in range(5):
            net = f"n{(i * 3 + k) % 12}"
            x = round(rng.uniform(-width / 2, width / 2), 1)
            pins.append(Pin(f"p{k}", net, PinKind.FIXED, offset=(x, -height / 2)))
        cells.append(MacroCell.rectangular(f"block{i}", width, height, pins))
    return Circuit("quickstart", cells)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="write a JSONL telemetry trace of the run to PATH",
    )
    parser.add_argument(
        "--chains", type=int, default=1,
        help="stage-1 annealing chains with best-of-K exchange "
        "(see examples/parallel_flow.py for the full tour)",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the parallel layer (1 = serial)",
    )
    args = parser.parse_args()

    circuit = build_circuit()
    print(f"placing {circuit}")

    # TimberWolfConfig.fast() is the paper's "early design stage" point
    # (A_c = 25); TimberWolfConfig.paper() is the full-quality A_c = 400.
    config = TimberWolfConfig.fast(seed=1)
    if args.chains != 1 or args.workers != 1:
        from dataclasses import replace

        from repro import ParallelConfig

        config = replace(
            config,
            parallel=ParallelConfig(workers=args.workers, chains=args.chains),
        )
    tracer = Tracer(FileSink(args.trace)) if args.trace else None
    try:
        result = place_and_route(circuit, config, tracer=tracer)
    finally:
        if tracer is not None:
            tracer.close()
    if args.trace:
        print(f"telemetry trace written to {args.trace}")

    print()
    print(result.summary())
    print()
    print("final cell positions (center x, center y):")
    for name, (x, y) in sorted(result.placement().items()):
        record = result.state.records[result.state.index[name]]
        print(f"  {name:8s}  ({x:8.1f}, {y:8.1f})  orientation R{record.orientation % 4 * 90}"
              f"{'M' if record.orientation >= 4 else ''}")

    final = result.refinement.final_pass
    print()
    print(f"channel graph: {final.graph}")
    print(f"global routing: {len(final.routing.routes)} nets, "
          f"total length {final.routing.total_length:.0f}, "
          f"overflow {final.routing.overflow}")


if __name__ == "__main__":
    main()
