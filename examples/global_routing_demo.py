#!/usr/bin/env python
"""Global routing on a hand-placed floorplan.

The global router is independent of the layout style (§4.2): its inputs
are just a net list and a channel graph.  This example builds a fixed
2 x 3 floorplan, extracts the critical regions and the free-space routing
graph, routes the nets with the M-shortest-route + random-interchange
algorithm, and then *validates* the w = (d + 2) * t_s width rule by
running the left-edge channel router on each channel's segments.

Run:  python examples/global_routing_demo.py
"""

from repro.channels import (
    ChannelGraph,
    ChannelSegment,
    channel_density,
    compute_congestion,
    decompose_free_space,
    extract_critical_regions,
    left_edge_route,
    region_densities,
    required_channel_width,
    tracks_used,
)
from repro.geometry import Rect, TileSet
from repro.netlist import Circuit, MacroCell, Pin, PinKind
from repro.routing import GlobalRouter

GAP = 8.0
CELL = 30.0


def build_floorplan():
    """Six 30x30 macros on a 2-row, 3-column grid with 8-unit channels."""
    cells = []
    shapes = {}
    positions = {}
    nets = [
        ("bus", [(0, "e"), (1, "w"), (2, "w"), (4, "n")]),
        ("clk", [(0, "s"), (3, "n"), (4, "n"), (5, "n")]),
        ("d0", [(1, "s"), (4, "e")]),
        ("d1", [(2, "s"), (5, "w")]),
        ("x0", [(0, "n"), (2, "n")]),
        ("x1", [(3, "e"), (5, "s")]),
    ]
    side_offset = {
        "e": (CELL / 2, 0.0),
        "w": (-CELL / 2, 0.0),
        "n": (0.0, CELL / 2),
        "s": (0.0, -CELL / 2),
    }
    pins_per_cell = {i: [] for i in range(6)}
    for net, members in nets:
        for cell_idx, side in members:
            pins_per_cell[cell_idx].append((net, side_offset[side]))

    for i in range(6):
        col, row = i % 3, i // 3
        cx = col * (CELL + GAP)
        cy = row * (CELL + GAP)
        pins = [
            Pin(f"p{k}", net, PinKind.FIXED, offset=off)
            for k, (net, off) in enumerate(pins_per_cell[i])
        ]
        name = f"u{i}"
        cells.append(MacroCell.rectangular(name, CELL, CELL, pins))
        shapes[name] = TileSet.rectangle(CELL, CELL).translated(cx, cy)
        for pin in pins:
            positions[(name, pin.name)] = (cx + pin.offset[0], cy + pin.offset[1])
    return Circuit("floorplan", cells), shapes, positions


def main() -> None:
    circuit, shapes, positions = build_floorplan()
    boundary = Rect.bounding(s.bbox for s in shapes.values()).expanded_uniform(GAP)

    regions = extract_critical_regions(shapes, boundary)
    free = decompose_free_space(shapes.values(), boundary)
    graph = ChannelGraph(free, circuit.track_spacing, regions=regions)
    for key, pos in positions.items():
        graph.attach_pin(*key, pos)
    print(f"channel definition: {graph}")

    router = GlobalRouter(graph, m_routes=10, seed=0)
    result = router.route(circuit)
    print(f"\nglobal routing of {len(result.routes)} nets:")
    for net in sorted(result.routes):
        k = result.interchange.selection[net]
        n_alts = len(result.alternatives[net])
        print(f"  {net:4s} route #{k + 1} of {n_alts}, length {result.lengths[net]:6.1f}")
    print(f"total length {result.total_length:.1f}, overflow X = {result.overflow}")

    densities = region_densities(graph, result.routes)
    print("\nchannel widths from Eqn 22, w = (d + 2) * t_s:")
    busiest = sorted(densities.items(), key=lambda kv: -kv[1])[:6]
    for idx, d in busiest:
        region = graph.regions[idx]
        w = required_channel_width(d, circuit.track_spacing)
        a, b = region.cells()
        print(f"  channel {a:8s}|{b:8s} density {d}  -> required width {w:.0f} "
              f"(available {region.width:.0f})")

    # Validate the premise of Eqn 22: a left-edge router achieves t = d on
    # each channel's interval set.
    print("\nleft-edge validation on the densest channel:")
    idx, d = busiest[0]
    region = graph.regions[idx]
    horizontal = region.axis == "horizontal"
    segments = []
    for net, edges in result.routes.items():
        span = []
        for u, v in edges:
            for node in (u, v):
                host = node if node < graph.num_free_nodes else graph.pin_host(node)
                rect = graph.node_rects[host]
                if rect.touches_or_intersects(region.rect):
                    x, y = graph.positions[node]
                    span.append(x if horizontal else y)
        if len(span) >= 2 and min(span) < max(span):
            segments.append(ChannelSegment(net, min(span), max(span)))
    if segments:
        assignment = left_edge_route(segments)
        t = tracks_used(assignment)
        d_seg = channel_density(segments)
        print(f"  {len(segments)} segments, density {d_seg}, left-edge tracks {t} "
              f"(t <= d + 1: {t <= d_seg + 1})")
    else:
        print("  (densest channel carries only through-traffic)")


if __name__ == "__main__":
    main()
