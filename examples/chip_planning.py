#!/usr/bin/env python
"""Chip planning: mixed macro and custom cells on one chip.

This is the capability that distinguished TimberWolfMC from earlier
annealing placers (§1): *custom* cells have only an estimated area, an
aspect-ratio range, and uncommitted pins, so the tool simultaneously
solves pin placement, aspect-ratio selection, orientation selection, and
placement.  The example mixes two fixed macros (a RAM with an L-shaped
outline and a ROM offered in two alternative instances) with three
custom blocks, then reports which aspect ratio, instance, and pin sites
the annealer chose for each.

Run:  python examples/chip_planning.py [--trace PATH]
"""

import argparse

from repro import FileSink, TimberWolfConfig, Tracer, place_and_route
from repro.geometry import TileSet
from repro.netlist import (
    FixedPlacement,
    Circuit,
    ContinuousAspectRatio,
    CustomCell,
    DiscreteAspectRatios,
    MacroCell,
    MacroInstance,
    Pin,
    PinKind,
)


def build_chip() -> Circuit:
    # An L-shaped RAM macro with fixed pins on its outline.
    ram_shape = TileSet.l_shape(60, 50, 24, 20)
    ram_pins = [
        Pin("addr0", "abus0", PinKind.FIXED, offset=(-30, 0)),
        Pin("addr1", "abus1", PinKind.FIXED, offset=(-30, 10)),
        Pin("data0", "dbus0", PinKind.FIXED, offset=(30, -15)),
        Pin("data1", "dbus1", PinKind.FIXED, offset=(30, -5)),
        Pin("clk", "clk", PinKind.FIXED, offset=(0, -25)),
    ]
    ram = MacroCell("ram", ram_pins, [MacroInstance("default", ram_shape)])

    # A ROM offered in two instances: wide/flat and tall/narrow.  The
    # annealer selects whichever fits the floorplan better.
    wide = TileSet.rectangle(48, 24)
    tall = TileSet.rectangle(24, 48)
    rom_pins = [
        Pin("a", "abus0", PinKind.FIXED, offset=(-24, 0)),
        Pin("d", "dbus0", PinKind.FIXED, offset=(24, 0)),
        Pin("ck", "clk", PinKind.FIXED, offset=(0, -12)),
    ]
    tall_offsets = {"a": (0.0, -24.0), "d": (0.0, 24.0), "ck": (-12.0, 0.0)}
    rom = MacroCell(
        "rom",
        rom_pins,
        [MacroInstance("wide", wide), MacroInstance("tall", tall, tall_offsets)],
    )

    # Custom blocks: estimated area, aspect-ratio freedom, movable pins.
    alu = CustomCell(
        "alu",
        [
            Pin("a0", "abus0", PinKind.EDGE),
            Pin("a1", "abus1", PinKind.EDGE),
            # A data-bus pin group confined to the left or right edge.
            Pin("d0", "dbus0", PinKind.GROUP, group="dbus",
                sides=frozenset({"left", "right"})),
            Pin("d1", "dbus1", PinKind.GROUP, group="dbus",
                sides=frozenset({"left", "right"})),
            Pin("ck", "clk", PinKind.EDGE),
            Pin("f", "flags", PinKind.EDGE),
        ],
        area=1800.0,
        aspect=ContinuousAspectRatio(0.5, 2.0),
        sites_per_edge=6,
    )
    ctl = CustomCell(
        "control",
        [
            # An ordered pin sequence along one edge (a register file port).
            Pin("s0", "abus0", PinKind.SEQUENCE, group="seq", sequence_index=0,
                sides=frozenset({"top"})),
            Pin("s1", "abus1", PinKind.SEQUENCE, group="seq", sequence_index=1,
                sides=frozenset({"top"})),
            Pin("fl", "flags", PinKind.EDGE),
            Pin("ck", "clk", PinKind.EDGE),
        ],
        area=900.0,
        aspect=DiscreteAspectRatios((0.5, 1.0, 2.0)),
        sites_per_edge=4,
    )
    io = CustomCell(
        "iobuf",
        [
            Pin("d0", "dbus0", PinKind.EDGE),
            Pin("d1", "dbus1", PinKind.EDGE),
            Pin("fl", "flags", PinKind.EDGE),
        ],
        area=700.0,
        aspect=ContinuousAspectRatio(0.4, 2.5),
        sites_per_edge=4,
    )
    # A pre-placed analog block: committed early, the annealer must plan
    # around it (FixedPlacement cells are never moved or reoriented).
    pll = MacroCell.rectangular(
        "pll",
        24,
        24,
        [Pin("ck", "clk", PinKind.FIXED, offset=(12, 0))],
        fixed=FixedPlacement(-60.0, 55.0),
    )
    return Circuit("chipplan", [ram, rom, alu, ctl, io, pll])


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="write a JSONL telemetry trace of the run to PATH",
    )
    args = parser.parse_args()

    circuit = build_chip()
    print(f"chip-planning {circuit}")
    print(f"  macros : {[c.name for c in circuit.macro_cells()]}")
    print(f"  customs: {[c.name for c in circuit.custom_cells()]}")

    tracer = Tracer(FileSink(args.trace)) if args.trace else None
    try:
        result = place_and_route(circuit, TimberWolfConfig.fast(seed=5), tracer=tracer)
    finally:
        if tracer is not None:
            tracer.close()
    if args.trace:
        print(f"telemetry trace written to {args.trace}")
    print()
    print(result.summary())

    state = result.state
    print()
    print("chip-planning decisions:")
    pll_center = state.records[state.index["pll"]].center
    print(f"  pll: pre-placed, held at {pll_center} (fixed)")
    rom_record = state.records[state.index["rom"]]
    rom_cell = circuit.cells["rom"]
    print(f"  rom: instance {rom_cell.instances[rom_record.instance].name!r}, "
          f"orientation {rom_record.orientation}")
    for cell in circuit.custom_cells():
        record = state.records[state.index[cell.name]]
        w, h = cell.dimensions(record.aspect_ratio)
        print(f"  {cell.name}: aspect ratio {record.aspect_ratio:.2f} "
              f"({w:.0f} x {h:.0f})")
        for group, (side, start) in sorted(record.pin_sites.items()):
            label = group.replace("__pin__", "pin ")
            print(f"      {label:12s} -> {side} edge, site {start}")


if __name__ == "__main__":
    main()
