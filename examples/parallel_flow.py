#!/usr/bin/env python
"""Tour of the parallel execution layer (``repro.parallel``).

Runs the same circuit three ways and compares the outcomes:

1. the classic serial flow (one chain, one process);
2. K annealing chains with best-of-K exchange, serial backend
   (``workers=1`` — same answer as any worker count, just slower);
3. the same K chains across real worker processes, plus the per-net
   router fan-out in stage 2.

The key property on display: runs 2 and 3 produce the *identical*
placement — the multi-chain result depends on ``(seed, chains,
exchange_period)`` only, never on ``workers`` — while run 1 differs
(it is a different algorithm: a single chain, no exchange).

Run:  python examples/parallel_flow.py [--chains K] [--workers W]
      [--mover serial|batched]

``--mover batched`` swaps every chain onto the vectorized sweep kernel
(``BatchMoveGenerator``); the worker-count invariance holds there too.
"""

import argparse
import time
from dataclasses import replace

from repro import ParallelConfig, TimberWolfConfig, place_and_route

from quickstart import build_circuit


def run(circuit, config, label):
    t0 = time.perf_counter()
    result = place_and_route(circuit, config)
    elapsed = time.perf_counter() - t0
    print(
        f"  {label:28s}  TEIL {result.teil:10.1f}  "
        f"area {result.chip_area:10.1f}  {elapsed:6.2f}s"
    )
    return result


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--chains", type=int, default=4)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--exchange-period", type=int, default=10)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--mover",
        choices=("serial", "batched"),
        default="serial",
        help="move engine for every run: one-at-a-time Metropolis or "
        "the vectorized batched sweep kernel",
    )
    args = parser.parse_args()

    circuit = build_circuit()
    base = TimberWolfConfig.smoke(seed=args.seed)
    if args.mover == "batched":
        base = replace(base, core="array", mover="batched")
    print(f"placing {circuit} (seed {args.seed}, mover {args.mover})")

    serial = run(circuit, base, "serial (1 chain)")

    multi = replace(
        base,
        parallel=ParallelConfig(
            workers=1,
            chains=args.chains,
            exchange_period=args.exchange_period,
        ),
    )
    one_worker = run(circuit, multi, f"{args.chains} chains, 1 worker")

    pooled = replace(
        multi,
        parallel=replace(multi.parallel, workers=args.workers),
    )
    n_workers = run(
        circuit, pooled, f"{args.chains} chains, {args.workers} workers"
    )

    same = one_worker.placement() == n_workers.placement()
    print()
    print(f"multi-chain TEIL vs serial: {one_worker.teil:.1f} vs {serial.teil:.1f}")
    print(
        "worker-count invariance: "
        + ("OK — identical placements" if same else "FAILED — placements differ!")
    )
    if not same:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
