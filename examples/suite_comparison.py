#!/usr/bin/env python
"""Benchmark-suite comparison: TimberWolfMC vs the baseline placers.

Loads one of the synthetic suite circuits (matching the published
cell/net/pin statistics of the paper's industrial circuits), places it
with the random, greedy, and quadratic baselines and with the full
TimberWolfMC flow, and prints a Table-4-style comparison.

Run:  python examples/suite_comparison.py [circuit] [preset]
      circuit defaults to i3, preset to fast (smoke|fast|paper)
"""

import sys

from repro import TimberWolfConfig, place_and_route
from repro.baselines import ALL_BASELINES, route_baseline
from repro.bench import (
    CIRCUIT_NAMES,
    PAPER_STATS,
    PAPER_TABLE4,
    format_table,
    load_circuit,
    reduction_pct,
)


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "i3"
    preset = sys.argv[2] if len(sys.argv) > 2 else "fast"
    if name not in CIRCUIT_NAMES:
        raise SystemExit(f"unknown circuit {name!r}; choose from {CIRCUIT_NAMES}")
    config = {
        "smoke": TimberWolfConfig.smoke,
        "fast": TimberWolfConfig.fast,
        "paper": TimberWolfConfig.paper,
    }[preset](seed=1)

    circuit = load_circuit(name)
    cells, nets, pins = PAPER_STATS[name]
    print(f"circuit {name}: {cells} cells, {nets} nets, {pins} pins "
          f"(statistics from the paper's Table 4)")

    rows = []
    results = {}
    for placer_cls in ALL_BASELINES:
        placer = placer_cls(seed=1)
        result = placer.place(load_circuit(name))
        # Areas are compared after reserving the Eqn-22 channel widths the
        # routed baseline would need — the same accounting TimberWolfMC's
        # own area carries.
        routed = route_baseline(result, m_routes=config.m_routes, seed=1)
        results[placer.name] = (routed.teil, routed.chip_area)
        rows.append([placer.name, round(routed.teil), round(routed.chip_area)])

    print(f"\nrunning TimberWolfMC ({preset} preset)...")
    ours = place_and_route(circuit, config)
    rows.append(["timberwolfmc", round(ours.teil), round(ours.chip_area)])

    print()
    print(format_table(["placer", "TEIL", "chip area"], rows))

    best_teil = min(t for t, _ in results.values())
    best_area = min(a for _, a in results.values())
    paper_teil_red = PAPER_TABLE4[name][2]
    print()
    print(f"TEIL reduction vs best baseline: "
          f"{reduction_pct(best_teil, ours.teil):+.1f}%  "
          f"(paper, vs its comparator: {paper_teil_red:+.1f}%)")
    print(f"area reduction vs best baseline: "
          f"{reduction_pct(best_area, ours.chip_area):+.1f}%")
    print()
    print(ours.summary())


if __name__ == "__main__":
    main()
