"""Table 3 — accuracy of the dynamic interconnect-area estimator.

The paper measures, for nine industrial circuits, how much the TEIL and
the core area change between the end of stage 1 and the end of stage 2.
Small changes mean the stage-1 dynamic estimator already reserved the
right interconnect space.  Published averages: TEIL reduced a further
4.4 %, area changed 4.1 % on average.

This bench reruns the comparison on the synthetic suite: for each
circuit it records the stage-1 metrics (on the legalized stage-1
placement) and the final metrics, and prints the percentage changes next
to the published ones.
"""

from __future__ import annotations

import pytest

from repro import place_and_route
from repro.bench import PAPER_TABLE3, PAPER_STATS, load_circuit, mean

from .common import bench_circuits, bench_config, bench_trials, emit


def run_table3():
    rows = []
    changes_teil = []
    changes_area = []
    for name in bench_circuits():
        trials = min(bench_trials(), PAPER_TABLE3[name][0])
        teil_changes = []
        area_changes = []
        for trial in range(max(1, trials)):
            circuit = load_circuit(name, trial=trial)
            result = place_and_route(circuit, bench_config(seed=trial))
            teil_changes.append(result.teil_change_pct)
            area_changes.append(result.area_change_pct)
        cells, nets, pins = PAPER_STATS[name]
        _, paper_teil, paper_area = PAPER_TABLE3[name]
        rows.append(
            [
                name,
                cells,
                nets,
                pins,
                len(teil_changes),
                mean(teil_changes),
                paper_teil,
                mean(area_changes),
                paper_area,
            ]
        )
        changes_teil.append(mean(teil_changes))
        changes_area.append(mean(area_changes))
    rows.append(
        [
            "Avg.",
            "",
            "",
            "",
            "",
            mean(changes_teil),
            4.4,
            mean(changes_area),
            4.1,
        ]
    )
    return rows


def test_table3(benchmark):
    rows = benchmark.pedantic(run_table3, rounds=1, iterations=1)
    emit(
        "table3",
        "Table 3: stage-2 vs stage-1 TEIL / area change (%)",
        [
            "circuit",
            "cells",
            "nets",
            "pins",
            "trials",
            "TEIL red %",
            "paper",
            "area red %",
            "paper",
        ],
        rows,
        notes=(
            "Shape check: both averages should be small (single-digit %),\n"
            "showing the stage-1 estimator already reserved the right area."
        ),
    )
    avg_teil = rows[-1][5]
    avg_area = rows[-1][7]
    # The reproduced shape: stage 2 changes the placement only mildly.
    assert abs(avg_teil) < 30.0
    assert abs(avg_area) < 40.0
