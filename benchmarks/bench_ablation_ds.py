"""§3.2.3 ablation — the Ds displacement-point selector versus Dr.

The paper compared the evenly-dispersed selector Ds against uniformly
random selection Dr: final TEIL was only slightly better with Ds, but
the average residual cell overlap after stage 1 was 22 percent lower —
Ds concentrates low-T moves on grid-aligned refinement steps.

This bench runs paired stage-1 anneals (same seeds) with each selector.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.bench import CircuitSpec, generate_circuit, mean
from repro.placement import run_stage1

from .common import bench_config, bench_trials, emit, stage1_metrics


def run_selector_comparison():
    spec = CircuitSpec(
        name="ds", num_cells=18, num_nets=60, num_pins=220, seed=23
    )
    circuit = generate_circuit(spec)
    trials = max(2, bench_trials() * 2)
    results = {}
    for selector in ("ds", "dr"):
        teils = []
        overlaps = []
        for trial in range(trials):
            cfg = replace(bench_config(seed=trial + 11), selector=selector)
            result = run_stage1(circuit, cfg)
            residual, teil = stage1_metrics(result)
            teils.append(teil)
            overlaps.append(residual)
        results[selector] = (mean(teils), mean(overlaps))
    return results


def test_ablation_ds_vs_dr(benchmark):
    results = benchmark.pedantic(run_selector_comparison, rounds=1, iterations=1)
    ds_teil, ds_overlap = results["ds"]
    dr_teil, dr_overlap = results["dr"]
    overlap_change = (
        100.0 * (1.0 - ds_overlap / dr_overlap) if dr_overlap > 0 else 0.0
    )
    emit(
        "ablation_ds",
        "Ablation (3.2.3): Ds vs Dr displacement-point selection",
        ["selector", "avg TEIL", "avg residual overlap"],
        [
            ["Ds (paper)", round(ds_teil), round(ds_overlap, 1)],
            ["Dr (random)", round(dr_teil), round(dr_overlap, 1)],
            ["overlap reduction %", "", round(overlap_change, 1)],
        ],
        notes=(
            "Shape check: TEIL comparable between the selectors; the paper\n"
            "measured ~22 % lower residual overlap with Ds."
        ),
    )
    # TEIL comparable: within 25 % of each other.
    assert ds_teil < dr_teil * 1.25
    assert dr_teil < ds_teil * 1.25
