"""End-to-end flow benchmark: serial vs batched mover, full ``place``.

``bench_moves_per_sec`` times the inner loop in isolation; this harness
answers the question that actually matters for the flow: how much faster
is a complete ``place`` run when stage 1 anneals on the batched sweep
kernel (``--mover batched``), and how much placement quality does the
coarser move set cost?  For synthetic circuits at N ∈ {50, 100, 200}
cells it runs the full two-stage flow twice per size — once per mover,
same seed, same schedule — and records:

* the stage-1 span wall-clock (from the run's own telemetry; this is
  where the movers differ — stage 2 is identical code for both) and the
  total flow wall-clock;
* final TEIL / chip area / stage-1 residual overlap for both movers,
  plus the batched-vs-serial gaps in percent.

The batched mover proposes displacements and interchanges only (no
orientation / aspect / pin-group moves), so it is *not* bit-identical to
the serial cascade — parity is a QoR gate, not an equality check.  The
thresholds below were set empirically from smoke-effort runs and leave
headroom over the observed gaps.

``--quick`` (the CI smoke mode) additionally enforces three gates at the
gate size: stage-1 speedup >= 2x, TEIL/area parity within thresholds,
and the scratch-buffer invariant — after a short warmup the batch
kernel's pool must stop allocating (``scratch_misses`` stays flat), i.e.
steady-state sweeps are allocation-free.

Results go to ``BENCH_flow.json`` at the repository root and into the
bench registry (``flow_e2e``), so the flow-level trajectory is
machine-readable from PR to PR.

Usage::

    PYTHONPATH=src python benchmarks/bench_flow_e2e.py [--quick]
        [--output PATH] [--sizes 50,100,200]
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from dataclasses import replace
from pathlib import Path
from typing import Dict, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))
if str(REPO_ROOT / "benchmarks") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from repro import TimberWolfConfig, place_and_route  # noqa: E402
from repro.annealing import RangeLimiter  # noqa: E402
from repro.bench import CircuitSpec, generate_circuit  # noqa: E402
from repro.estimator import determine_core  # noqa: E402
from repro.placement import BatchMoveGenerator, make_placement_state  # noqa: E402

FULL_SIZES = (50, 100, 200)
QUICK_SIZES = (50,)

MOVERS = ("serial", "batched")

#: The size the quick-mode gates and the flattened registry metrics are
#: taken at (the smallest full-sweep size: the batched kernel's edge is
#: *smallest* here, so a gate that passes at N=50 passes everywhere).
GATE_SIZE = 50

#: Minimum batched-over-serial stage-1 wall-clock speedup enforced in
#: --quick mode.  Measured ~4-5x at smoke effort; 2x leaves room for CI
#: host noise.
MIN_STAGE1_SPEEDUP = 2.0

#: QoR parity budgets, batched vs serial, enforced in --quick mode.
#: The batched mover trades the full §3.2.1 cascade (orientation,
#: aspect, pin-group moves) for vectorized displace/interchange sweeps;
#: at smoke effort that costs ~30% TEIL and a few percent area
#: (measured), so the budgets sit above that with margin.  A regression
#: that pushes past them means the batched path stopped annealing, not
#: that it annealed slightly worse.
MAX_TEIL_GAP_PCT = 45.0
MAX_AREA_GAP_PCT = 20.0

#: Scratch-invariant drill: minimum warmup sweeps (warmup actually runs
#: until BOTH move kinds have fired at least once — each kind's buffers
#: allocate on its first batch, and with r_ratio=10 the interchange kind
#: fires only ~1 sweep in 11), then steady-state sweeps during which the
#: kernel's buffer pool must not allocate once.
SCRATCH_WARMUP_SWEEPS = 12
SCRATCH_WARMUP_CAP = 400
SCRATCH_STEADY_SWEEPS = 50


def build_circuit(n: int, seed: int = 0):
    """A synthetic n-cell circuit (25% custom cells, same recipe as the
    moves/sec bench so the two artifacts describe the same workload)."""
    spec = CircuitSpec(
        name=f"flow{n}",
        num_cells=n,
        num_nets=2 * n,
        num_pins=5 * n,
        seed=seed,
        custom_fraction=0.25,
    )
    return generate_circuit(spec)


def flow_config(mover: str, seed: int) -> TimberWolfConfig:
    """Smoke-effort flow config: identical for both movers except the
    mover switch itself (both run the array core so the cost model and
    schedule are the same code)."""
    return replace(
        TimberWolfConfig.smoke(seed),
        core="array",
        mover=mover,
        attempts_per_cell=10,
    )


def _stage_wall(result, name: str) -> Optional[float]:
    """Wall-clock of a named stage span from the run's own trace."""
    for event in result.trace_events or ():
        if event.get("ev") == "span_end" and event.get("name") == name:
            return float(event["wall_s"])
    return None


def run_one(circuit, mover: str, seed: int) -> Dict:
    """One full place run; returns the timing + QoR row."""
    config = flow_config(mover, seed)
    start = time.perf_counter()
    result = place_and_route(circuit, config)
    total = time.perf_counter() - start
    stage1_wall = _stage_wall(result, "stage1")
    stage2_wall = _stage_wall(result, "stage2")
    return {
        "mover": mover,
        "total_seconds": round(total, 3),
        "stage1_seconds": round(stage1_wall, 3) if stage1_wall else None,
        "stage2_seconds": round(stage2_wall, 3) if stage2_wall else None,
        "teil": round(result.teil, 1),
        "chip_area": round(result.chip_area, 1),
        "stage1_teil": round(result.stage1_teil, 1),
        "residual_overlap": round(result.stage1.residual_overlap, 2),
        "temperatures": result.stage1.anneal.num_temperatures,
    }


def _gap_pct(batched: float, serial: float) -> float:
    """How much worse (positive) the batched number is, in percent."""
    if serial == 0:
        return 0.0
    return round(100.0 * (batched - serial) / abs(serial), 2)


def verify_scratch_invariant(n: int = GATE_SIZE, seed: int = 5) -> Dict:
    """Run warmup + steady-state batched sweeps and check the kernel's
    scratch pool allocates only during warmup.

    Every ``_buf`` miss increments ``scratch_misses``; once each
    call-site/shape pair has been seen, steady-state sweeps must reuse
    the pooled arrays.  A nonzero steady-state delta means a per-sweep
    allocation crept back into the kernel — exactly the churn this PR
    removed.
    """
    circuit = build_circuit(n, seed=seed)
    state = make_placement_state("array", circuit, determine_core(circuit))
    state.randomize(random.Random(seed))
    core = state.core
    limiter = RangeLimiter(
        full_span_x=core.width, full_span_y=core.height, t_infinity=500.0
    )
    generator = BatchMoveGenerator(state, limiter, batch=max(2, n), seed=seed)
    generator.begin()
    try:
        warmup = 0
        while warmup < SCRATCH_WARMUP_CAP:
            generator.step(50.0)
            warmup += 1
            if warmup >= SCRATCH_WARMUP_SWEEPS and all(
                attempts > 0 for attempts, _ in generator.stats.values()
            ):
                break
        after_warmup = generator.kernel.scratch_misses
        for _ in range(SCRATCH_STEADY_SWEEPS):
            generator.step(50.0)
        steady = generator.kernel.scratch_misses
    finally:
        generator.finish()
    return {
        "size": n,
        "warmup_sweeps": warmup,
        "steady_sweeps": SCRATCH_STEADY_SWEEPS,
        "misses_after_warmup": after_warmup,
        "misses_after_steady": steady,
        "steady_state_allocations": steady - after_warmup,
    }


def run(sizes, seed: int) -> Dict:
    from common import host_metadata  # noqa: E402 (needs the path bootstrap)

    out: Dict = {
        "benchmark": "flow_e2e",
        "host": host_metadata(),
        "seed": seed,
        "gates": {
            "min_stage1_speedup": MIN_STAGE1_SPEEDUP,
            "max_teil_gap_pct": MAX_TEIL_GAP_PCT,
            "max_area_gap_pct": MAX_AREA_GAP_PCT,
        },
        "sizes": {},
    }
    for n in sizes:
        circuit = build_circuit(n, seed=seed)
        row: Dict = {}
        for mover in MOVERS:
            row[mover] = run_one(circuit, mover, seed)
            r = row[mover]
            print(
                f"  N={n:<4} {mover:<8} stage1 {r['stage1_seconds']:>7.2f}s  "
                f"total {r['total_seconds']:>7.2f}s  TEIL {r['teil']:>10.1f}  "
                f"area {r['chip_area']:>10.1f}",
                flush=True,
            )
        serial, batched = row["serial"], row["batched"]
        row["stage1_speedup"] = round(
            serial["stage1_seconds"] / batched["stage1_seconds"], 2
        )
        row["total_speedup"] = round(
            serial["total_seconds"] / batched["total_seconds"], 2
        )
        row["teil_gap_pct"] = _gap_pct(batched["teil"], serial["teil"])
        row["area_gap_pct"] = _gap_pct(batched["chip_area"], serial["chip_area"])
        print(
            f"  N={n:<4} {'':8} stage1 speedup {row['stage1_speedup']:.2f}x  "
            f"total {row['total_speedup']:.2f}x  "
            f"TEIL gap {row['teil_gap_pct']:+.1f}%  "
            f"area gap {row['area_gap_pct']:+.1f}%"
        )
        out["sizes"][str(n)] = row

    scratch = verify_scratch_invariant(n=min(GATE_SIZE, max(sizes)))
    out["scratch"] = scratch
    print(
        f"  scratch pool: {scratch['misses_after_warmup']} buffers after "
        f"warmup, {scratch['steady_state_allocations']} allocations across "
        f"{scratch['steady_sweeps']} steady-state sweeps"
    )
    return out


def _registry_payload(results: Dict, sizes, quick: bool) -> Dict:
    gate_key = (
        str(GATE_SIZE)
        if str(GATE_SIZE) in results["sizes"]
        else str(sizes[-1])
    )
    row = results["sizes"][gate_key]
    return {
        "quick": quick,
        "sizes": [str(n) for n in sizes],
        "gate_size": gate_key,
        "stage1_speedup": row["stage1_speedup"],
        "total_speedup": row["total_speedup"],
        "teil_gap_pct": row["teil_gap_pct"],
        "area_gap_pct": row["area_gap_pct"],
        "serial_stage1_seconds": row["serial"]["stage1_seconds"],
        "batched_stage1_seconds": row["batched"]["stage1_seconds"],
        "serial_teil": row["serial"]["teil"],
        "batched_teil": row["batched"]["teil"],
        "serial_chip_area": row["serial"]["chip_area"],
        "batched_chip_area": row["batched"]["chip_area"],
        "scratch_steady_allocations": results["scratch"][
            "steady_state_allocations"
        ],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="gate size only, with the CI gates enforced",
    )
    parser.add_argument(
        "--sizes", type=str, default=None, help="comma-separated cell counts"
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_flow.json",
        help="where to write the JSON results",
    )
    args = parser.parse_args(argv)

    if args.sizes:
        sizes = tuple(int(s) for s in args.sizes.split(","))
    else:
        sizes = QUICK_SIZES if args.quick else FULL_SIZES

    print(
        f"flow e2e benchmark: sizes={sizes}, both movers, full place runs"
    )
    results = run(sizes, args.seed)
    results["quick"] = args.quick

    from common import bench_config_sha, record_bench_result  # noqa: E402

    results["config_sha256"] = bench_config_sha()
    payload = _registry_payload(results, sizes, args.quick)
    history = record_bench_result("flow_e2e", payload)
    results["history"] = [
        {
            k: h.get(k)
            for k in (
                "recorded",
                "quick",
                "stage1_speedup",
                "total_speedup",
                "teil_gap_pct",
                "area_gap_pct",
                "scratch_steady_allocations",
            )
        }
        for h in history
    ]
    args.output.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nwrote {args.output} ({len(history)} recorded runs for this config)")

    failed = False
    scratch = results["scratch"]["steady_state_allocations"]
    if scratch != 0:
        print(
            f"FAIL: batch kernel allocated {scratch} scratch buffers across "
            f"{results['scratch']['steady_sweeps']} steady-state sweeps; the "
            "pool must stop allocating after warmup"
        )
        failed = True
    else:
        print("scratch gate ok (0 steady-state allocations)")
    if args.quick:
        row = results["sizes"][payload["gate_size"]]
        speedup = row["stage1_speedup"]
        if speedup < MIN_STAGE1_SPEEDUP:
            print(
                f"FAIL: batched stage-1 at N={payload['gate_size']} is only "
                f"{speedup:.2f}x serial; the gate requires "
                f">= {MIN_STAGE1_SPEEDUP:.1f}x"
            )
            failed = True
        else:
            print(
                f"speedup gate ok ({speedup:.2f}x >= "
                f"{MIN_STAGE1_SPEEDUP:.1f}x serial stage-1)"
            )
        teil_gap, area_gap = row["teil_gap_pct"], row["area_gap_pct"]
        if teil_gap > MAX_TEIL_GAP_PCT:
            print(
                f"FAIL: batched TEIL is {teil_gap:+.1f}% vs serial; parity "
                f"budget is {MAX_TEIL_GAP_PCT:.0f}%"
            )
            failed = True
        elif area_gap > MAX_AREA_GAP_PCT:
            print(
                f"FAIL: batched chip area is {area_gap:+.1f}% vs serial; "
                f"parity budget is {MAX_AREA_GAP_PCT:.0f}%"
            )
            failed = True
        else:
            print(
                f"parity gate ok (TEIL {teil_gap:+.1f}% <= "
                f"{MAX_TEIL_GAP_PCT:.0f}%, area {area_gap:+.1f}% <= "
                f"{MAX_AREA_GAP_PCT:.0f}%)"
            )
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
