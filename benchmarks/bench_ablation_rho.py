"""§3.2.2 ablation — the range-limiter shrink exponent rho.

The paper tested 1 <= rho <= 10: final TEIL was flat for rho in [1, 4],
but the *residual cell overlapping* at the end of stage 1 fell as rho
grew (smaller windows at a given T mean more local moves that squeeze
out overlap), motivating the choice rho = 4.

This bench sweeps rho and reports final TEIL and residual overlap.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.bench import CircuitSpec, generate_circuit, mean
from repro.placement import run_stage1

from .common import bench_config, bench_trials, emit, stage1_metrics

RHO_VALUES = (1.0, 2.0, 4.0, 8.0)


def run_rho_sweep():
    spec = CircuitSpec(
        name="rho", num_cells=20, num_nets=70, num_pins=260, seed=17
    )
    circuit = generate_circuit(spec)
    trials = max(1, bench_trials())
    rows = []
    for rho in RHO_VALUES:
        teils = []
        overlaps = []
        for trial in range(trials):
            cfg = replace(bench_config(seed=trial + 5), rho=rho)
            result = run_stage1(circuit, cfg)
            residual, teil = stage1_metrics(result)
            teils.append(teil)
            overlaps.append(residual)
        rows.append([rho, mean(teils), mean(overlaps)])
    return rows


def test_ablation_rho(benchmark):
    rows = benchmark.pedantic(run_rho_sweep, rounds=1, iterations=1)
    best_teil = min(r[1] for r in rows)
    emit(
        "ablation_rho",
        "Ablation (3.2.2): rho vs final TEIL and residual overlap",
        ["rho", "avg TEIL", "TEIL (norm)", "residual overlap"],
        [
            [rho, round(t), f"{t / best_teil:.3f}", round(o, 1)]
            for rho, t, o in rows
        ],
        notes=(
            "Shape check: TEIL roughly flat across rho; residual overlap\n"
            "highest at rho = 1 (window never shrinks, no quench moves)."
        ),
    )
    by_rho = {r[0]: r for r in rows}
    # rho = 1 leaves the window full-size: its residual overlap must not
    # beat the shrinking windows.
    assert by_rho[1.0][2] >= min(by_rho[4.0][2], by_rho[8.0][2])
