"""§3.1.2 ablation — the overlap-penalty normalization eta (Eqn 9).

The paper calibrated p2 so that p2 * C2 = eta * C1 at T-inf and found
performance insensitive across 0.25 <= eta <= 1.0, degrading only below
0.25 (overlap ignored too long) or beyond 1.0 (TEIC ignored).

This bench sweeps eta and reports final TEIL and residual overlap.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro import place_and_route
from repro.bench import CircuitSpec, generate_circuit, mean
from repro.placement import run_stage1

from .common import bench_config, bench_trials, emit

ETA_VALUES = (0.1, 0.25, 0.5, 1.0, 2.0)


def run_eta_sweep():
    spec = CircuitSpec(
        name="eta", num_cells=18, num_nets=60, num_pins=220, seed=31
    )
    circuit = generate_circuit(spec)
    trials = max(1, bench_trials())
    rows = []
    for eta in ETA_VALUES:
        teils = []
        overlaps = []
        for trial in range(trials):
            cfg = replace(
                bench_config(seed=trial + 3), eta=eta, refinement_passes=1
            )
            # Stage-1 residual overlap is the direct eta effect; the TEIL
            # comparison runs the full flow so every configuration is
            # measured at equal feasibility (stage 2 spaces out whatever
            # overlap stage 1 left, so under-penalized runs pay their
            # true wirelength).
            stage1 = run_stage1(circuit, cfg)
            overlaps.append(stage1.residual_overlap)
            result = place_and_route(circuit, cfg)
            teils.append(result.teil)
        rows.append([eta, mean(teils), mean(overlaps)])
    return rows


def test_ablation_eta(benchmark):
    rows = benchmark.pedantic(run_eta_sweep, rounds=1, iterations=1)
    best = min(r[1] for r in rows)
    emit(
        "ablation_eta",
        "Ablation (3.1.2): overlap normalization eta vs final TEIL",
        ["eta", "avg TEIL", "TEIL (norm)", "residual overlap"],
        [
            [eta, round(t), f"{t / best:.3f}", round(o, 1)]
            for eta, t, o in rows
        ],
        notes=(
            "Shape check: the paper's plateau — TEIL roughly flat for\n"
            "0.25 <= eta <= 1.0; larger eta trades TEIL for less overlap."
        ),
    )
    by_eta = {r[0]: r for r in rows}
    # The paper's plateau, at equal feasibility: eta = 0.25, 0.5, and 1.0
    # land within 30 % of one another on final TEIL.
    plateau = [by_eta[0.25][1], by_eta[0.5][1], by_eta[1.0][1]]
    assert max(plateau) <= min(plateau) * 1.3
    # Stage-1 residual overlap falls monotonically with eta.
    overlaps = [by_eta[e][2] for e in (0.1, 0.25, 0.5, 1.0, 2.0)]
    assert overlaps[0] > overlaps[-1]
