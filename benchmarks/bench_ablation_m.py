"""§4.2.1 ablation — M, the number of stored alternative routes per net.

The paper stores "typically on the order of 20 or more" alternatives:
phase two can only trade a net onto a route that phase one stored, so M
bounds how much congestion the interchange can dissolve.  This bench
routes one placed circuit at increasing M and reports the overflow X
after the interchange and the selected total length L.
"""

from __future__ import annotations

import random

import pytest

from repro.routing import GlobalRouter, RouteSelector

from .bench_router import build_routing_instance
from .common import emit

M_VALUES = (1, 2, 4, 8, 16)


def run_m_sweep():
    circuit, graph = build_routing_instance("p1")
    capacities = {e.key: e.capacity for e in graph.edges()}
    rows = []
    for m in M_VALUES:
        router = GlobalRouter(graph, m_routes=m, seed=0)
        net_groups = router.build_pin_groups(circuit)
        alternatives = {}
        for net, groups in net_groups.items():
            groups = [g for g in groups if g]
            if len(groups) >= 2:
                alts = router.route_net(groups)
                if alts:
                    alternatives[net] = alts
        selector = RouteSelector(alternatives, capacities)
        before_x = selector.overflow
        result = selector.run(random.Random(0))
        rows.append(
            [
                m,
                before_x,
                result.overflow,
                round(result.total_length, 1),
                result.accepted,
            ]
        )
    return rows


def test_ablation_m(benchmark):
    rows = benchmark.pedantic(run_m_sweep, rounds=1, iterations=1)
    emit(
        "ablation_m",
        "Ablation (4.2.1): alternatives per net M vs overflow removal",
        ["M", "X before", "X after", "total length L", "moves accepted"],
        rows,
        notes=(
            "Shape check: with M = 1 the interchange has no alternatives\n"
            "and X stays at its initial value; growing M lets phase two\n"
            "dissolve congestion at a small cost in total length."
        ),
    )
    by_m = {r[0]: r for r in rows}
    # M = 1 cannot move anything.
    assert by_m[1][1] == by_m[1][2]
    # More alternatives never leave more overflow (on this instance).
    finals = [by_m[m][2] for m in M_VALUES]
    assert finals[-1] <= finals[0]