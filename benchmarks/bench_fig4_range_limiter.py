"""Figure 4 — the range-limiter window shrinking with temperature.

Figure 4 is illustrative: the window spans the whole core at T-inf and
contracts with log T down to its minimum span at T0.  This bench prints
the window-span-versus-temperature series for the paper's rho = 4 and
checks its defining properties (monotone in T, full span at T-inf,
minimum span at the end, Eqn 28 consistency for the stage-2 entry
point mu = 0.03).
"""

from __future__ import annotations

import pytest

from repro.annealing import MIN_WINDOW_SPAN, RangeLimiter

from .common import emit

T_INFINITY = 1.0e5
SPAN = 2000.0


def run_fig4():
    limiter = RangeLimiter(SPAN, SPAN, T_INFINITY, rho=4.0)
    temps = [T_INFINITY / (10 ** k) for k in range(0, 13)]
    rows = []
    for t in temps:
        rows.append(
            [
                f"{t:.3g}",
                limiter.window_x(t),
                limiter.window_x(t) / SPAN,
                "yes" if limiter.at_minimum(t) else "",
            ]
        )
    return limiter, rows


def test_fig4_range_limiter(benchmark):
    limiter, rows = benchmark.pedantic(run_fig4, rounds=1, iterations=1)
    emit(
        "fig4",
        "Figure 4: range-limiter window span vs temperature (rho = 4)",
        ["T", "W(T)", "fraction of core", "at minimum"],
        [[t, f"{w:.1f}", f"{f:.4f}", m] for t, w, f, m in rows],
        notes=(
            "Shape check: full-core window at T-inf, log-linear shrink,\n"
            "clamped at the 6-grid-unit minimum span that ends stage 1."
        ),
    )
    spans = [float(r[1]) for r in rows]
    assert spans[0] == pytest.approx(SPAN)
    assert all(a >= b for a, b in zip(spans, spans[1:]))
    assert spans[-1] == MIN_WINDOW_SPAN
    # Eqn 28 consistency: at T' the window is mu of the full span.
    t_prime = limiter.temperature_for_fraction(0.03)
    assert limiter.window_x(t_prime) / SPAN == pytest.approx(0.03, rel=1e-6)
