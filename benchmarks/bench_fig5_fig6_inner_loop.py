"""Figures 5 and 6 — quality versus the inner-loop criterion A_c.

The paper sweeps A_c (attempted states per cell per temperature) on
30-60-cell circuits: the final TEIL (Figure 5) and the final chip area
after global routing and refinement (Figure 6) both improve with A_c and
saturate near A_c ~ 400, while execution time grows linearly — A_c = 25
is ~16x cheaper than A_c = 400 at a ~13 % TEIL penalty.

This bench sweeps a scaled-down A_c ladder on a mid-sized synthetic
circuit, printing normalized TEIL, normalized chip area, and measured
run time per point.
"""

from __future__ import annotations

import os
from dataclasses import replace

import pytest

from repro import place_and_route
from repro.bench import CircuitSpec, generate_circuit

from .common import Stopwatch, bench_config, emit


def ac_ladder():
    if os.environ.get("REPRO_BENCH_PRESET", "smoke") == "paper":
        return (25, 50, 100, 200, 400)
    return (2, 5, 10, 25, 50)


def run_fig56():
    spec = CircuitSpec(
        name="fig56", num_cells=30, num_nets=110, num_pins=400, seed=7
    )
    circuit = generate_circuit(spec)
    rows = []
    for ac in ac_ladder():
        cfg = replace(
            bench_config(seed=3),
            attempts_per_cell=ac,
            refine_attempts_per_cell=max(2, ac // 2),
        )
        with Stopwatch() as sw:
            result = place_and_route(circuit, cfg)
        rows.append([ac, result.teil, result.chip_area, sw.seconds])
    best_teil = min(r[1] for r in rows)
    best_area = min(r[2] for r in rows)
    return [
        [ac, teil / best_teil, area / best_area, elapsed]
        for ac, teil, area, elapsed in rows
    ]


def test_fig5_fig6_inner_loop(benchmark):
    rows = benchmark.pedantic(run_fig56, rounds=1, iterations=1)
    emit(
        "fig5_fig6",
        "Figures 5-6: normalized TEIL / chip area vs inner-loop A_c",
        ["A_c", "TEIL (norm)", "area (norm)", "time (s)"],
        [
            [ac, f"{t:.3f}", f"{a:.3f}", f"{s:.1f}"]
            for ac, t, a, s in rows
        ],
        notes=(
            "Shape check: quality improves (normalized values fall toward\n"
            "1.0) as A_c grows, while run time rises roughly linearly —\n"
            "the paper's cost/quality dial."
        ),
    )
    # Largest A_c must be at or near the best TEIL; smallest must be worst
    # or close to it (allowing annealing noise).
    assert rows[-1][1] <= rows[0][1] * 1.05
    # Run time grows with A_c.
    assert rows[-1][3] > rows[0][3]
