"""Benchmark collection configuration (pytest-benchmark)."""
