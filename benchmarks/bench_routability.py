"""The headline claim (§1, §6): placements need little modification
during detailed routing.

Two measurements per suite circuit, with the interconnect estimator on
versus off:

* *fit fraction* — every critical region of the final placement is
  detail-routed with the VCG-constrained channel router and compared
  against the width the flow reserved (repro.flow.validate).  Stage 2
  always delivers a routable placement (the spacing step provides any
  missing room), so both configurations score high here.
* *stage-2 displacement* — how far cells moved between the end of
  stage 1 and the final placement, normalized by the core side.  This is
  the paper's actual claim: *with* the estimator, stage 1 already left
  room for routing and stage 2 barely moves anything; *without* it, the
  space must be created after the fact by shoving the placement apart.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro import place_and_route
from repro.bench import load_circuit, mean
from repro.flow import validate_result

from .common import bench_circuits, bench_config, emit


def run_routability():
    rows = []
    displacement = {"with": [], "without": []}
    fit = {"with": [], "without": []}
    for name in bench_circuits():
        for label, scale in (("with", 1.0), ("without", 0.0)):
            cfg = replace(
                bench_config(seed=2),
                estimator_scale=scale,
                refinement_passes=2,
            )
            result = place_and_route(load_circuit(name), cfg)
            report = validate_result(result)
            rows.append(
                [
                    name,
                    f"{label} estimator",
                    round(report.fit_fraction, 2),
                    report.worst_shortfall,
                    round(result.mean_stage2_displacement, 3),
                ]
            )
            displacement[label].append(result.mean_stage2_displacement)
            fit[label].append(report.fit_fraction)
    rows.append(
        [
            "Avg.",
            "with estimator",
            round(mean(fit["with"]), 2),
            "",
            round(mean(displacement["with"]), 3),
        ]
    )
    rows.append(
        [
            "Avg.",
            "without",
            round(mean(fit["without"]), 2),
            "",
            round(mean(displacement["without"]), 3),
        ]
    )
    return rows, fit, displacement


def test_routability(benchmark):
    rows, fit, displacement = benchmark.pedantic(
        run_routability, rounds=1, iterations=1
    )
    emit(
        "routability",
        "Detailed routability and stage-2 placement modification",
        [
            "circuit",
            "configuration",
            "fit fraction",
            "worst shortfall",
            "stage-2 displacement",
        ],
        rows,
        notes=(
            "Shape check: fit fractions are high either way (stage 2 always\n"
            "creates the room detailed routing needs); the estimator's value\n"
            "is the much smaller stage-2 displacement — the paper's 'very\n"
            "little placement modification during detailed routing'."
        ),
    )
    # The reproduced headline: placements are overwhelmingly routable...
    assert mean(fit["with"]) >= 0.75
    # ...and the estimator reduces how far stage 2 must move the cells.
    assert mean(displacement["with"]) < mean(displacement["without"])