"""Micro-benchmarks of the flow's hot kernels.

These are conventional pytest-benchmark timings (many rounds) rather
than experiment regenerations: the tile-overlap computation and the
dynamic expansion dominate stage-1 moves, and Dijkstra dominates the
router, so their costs set the flow's wall-clock scaling.
"""

from __future__ import annotations

import random

import pytest

from repro.bench import CircuitSpec, generate_circuit
from repro.estimator import determine_core
from repro.geometry import TileSet
from repro.placement import MoveGenerator, PlacementState
from repro.annealing import RangeLimiter
from repro.routing import dijkstra


@pytest.fixture(scope="module")
def placed_state():
    spec = CircuitSpec(
        name="kern", num_cells=20, num_nets=70, num_pins=260, seed=5
    )
    circuit = generate_circuit(spec)
    plan = determine_core(circuit)
    state = PlacementState(circuit, plan)
    state.randomize(random.Random(0))
    return state, plan


def test_tile_overlap_kernel(benchmark):
    a = TileSet.l_shape(40, 40, 15, 15)
    b = TileSet.t_shape(40, 40, 12, 12).translated(20, 10)
    result = benchmark(a.overlap_area, b)
    assert result >= 0


def test_expanded_shape_kernel(benchmark, placed_state):
    state, _ = placed_state
    world = state._world_shape(0)
    result = benchmark(state._expanded_shape, 0, world)
    assert result.area >= world.area


def test_move_cell_kernel(benchmark, placed_state):
    state, _ = placed_state

    def move_and_restore():
        delta, snap = state.move_cell(0, center=(10.0, 10.0))
        state.restore(snap)
        return delta

    benchmark(move_and_restore)


def test_generate_step_kernel(benchmark, placed_state):
    state, plan = placed_state
    limiter = RangeLimiter(plan.core.width, plan.core.height, 1e5)
    gen = MoveGenerator(state, limiter)
    rng = random.Random(1)
    benchmark(gen.step, 1e3, rng)


def test_dijkstra_kernel(benchmark):
    n = 30
    adj = {}

    def node(x, y):
        return y * n + x

    for y in range(n):
        for x in range(n):
            u = node(x, y)
            adj.setdefault(u, [])
            for dx, dy in ((1, 0), (0, 1)):
                if x + dx < n and y + dy < n:
                    v = node(x + dx, y + dy)
                    adj[u].append((v, 1.0))
                    adj.setdefault(v, []).append((u, 1.0))

    result = benchmark(
        dijkstra, lambda u: adj[u], {0: 0.0}, {n * n - 1}
    )
    assert result[0] == 2 * (n - 1)
