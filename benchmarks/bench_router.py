"""§4.2 — the global router: phase-1 quality and phase-2 overflow removal.

The paper's claims: phase one finds (for nets under ~20 pins) the
minimal Steiner route among the M alternatives, and phase two removes
capacity overflow while increasing total length only slightly, without
net-ordering dependence.  This bench routes a placed suite circuit and
reports total length and overflow before/after the interchange, plus
kernel timings for the M-shortest-route generation.
"""

from __future__ import annotations

import random

import pytest

from repro import TimberWolfConfig
from repro.bench import load_circuit
from repro.placement import run_stage1
from repro.placement.legalize import remove_overlaps
from repro.placement.refine import channel_boundary
from repro.channels import ChannelGraph, decompose_free_space, extract_critical_regions
from repro.routing import GlobalRouter, RouteSelector

from .common import bench_config, emit


def build_routing_instance(name="i3"):
    circuit = load_circuit(name)
    stage1 = run_stage1(circuit, bench_config(seed=2))
    state = stage1.state
    remove_overlaps(state, min_gap=circuit.track_spacing)
    shapes = {n: state.world_shape(n) for n in state.names}
    boundary = channel_boundary(state, circuit.track_spacing)
    regions = extract_critical_regions(shapes, boundary)
    free = decompose_free_space(shapes.values(), boundary)
    graph = ChannelGraph(free, circuit.track_spacing, regions=regions)
    for cell_name in state.names:
        for pin_name in circuit.cells[cell_name].pins:
            graph.attach_pin(
                cell_name, pin_name, state.pin_position(cell_name, pin_name)
            )
    return circuit, graph


def test_router_phases(benchmark):
    circuit, graph = build_routing_instance()
    router = GlobalRouter(graph, m_routes=bench_config().m_routes, seed=0)

    def phase1():
        net_groups = router.build_pin_groups(circuit)
        alternatives = {}
        for net, groups in net_groups.items():
            groups = [g for g in groups if g]
            if len(groups) >= 2:
                alts = router.route_net(groups)
                if alts:
                    alternatives[net] = alts
        return alternatives

    alternatives = benchmark.pedantic(phase1, rounds=1, iterations=1)
    capacities = {e.key: e.capacity for e in graph.edges()}

    selector = RouteSelector(alternatives, capacities)
    before_len = selector.total_length
    before_overflow = selector.overflow
    result = selector.run(random.Random(0))

    emit(
        "router",
        "Global router (4.2): phase-2 interchange effect",
        ["metric", "before", "after"],
        [
            ["total length L", round(before_len, 1), round(result.total_length, 1)],
            ["overflow X", before_overflow, result.overflow],
            ["nets routed", len(alternatives), len(alternatives)],
            [
                "alternatives/net (max)",
                max(len(a) for a in alternatives.values()),
                "",
            ],
        ],
        notes=(
            "Shape check: the interchange never increases X; the total\n"
            "length rises only by the detour cost of the diverted nets."
        ),
    )
    assert result.overflow <= before_overflow
    if before_overflow == 0:
        assert result.total_length == before_len
    # Detours are bounded: length growth stays modest.
    assert result.total_length <= before_len * 1.5 + 1e-9
