"""Parallel execution layer benchmark: multi-chain SA + router fan-out.

Two questions, answered against an N-cell synthetic circuit (default
N=200, the size the ISSUE's speedup criterion names):

1. *Stage-1 wall-clock.*  K chains at 1/K of the serial per-step move
   budget perform the same total number of moves as the serial run;
   with K workers they should finish in a fraction of the serial time.
   The harness times K ∈ {1, 2, 4} (chains == workers) against the
   serial baseline and reports the speedups plus each run's final cost.
   It also re-runs the widest configuration with ``workers=1`` and
   asserts the placement is bit-identical — the determinism contract,
   measured, not assumed.

2. *Routing wall-clock + identity.*  The per-net fan-out routes the
   same channel graph with 1 and 4 workers; the committed routes must
   be identical and the pooled pass should be faster once nets are
   expensive enough to dominate the process overhead.

Results go to ``BENCH_parallel.json`` at the repository root, stamped
with host metadata (CPU count, Python version, platform) — a speedup
claim is only meaningful relative to ``host.cpu_count``.  On a
single-CPU host the expected stage-1 speedup is ~1.0x (there is nothing
to run the extra workers on); the artifact records whatever the host
can actually deliver.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel.py [--quick]
        [--cells N] [--output PATH]
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path
from typing import Dict

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))
if str(REPO_ROOT / "benchmarks") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from common import host_metadata  # noqa: E402

from dataclasses import replace  # noqa: E402

from repro import ParallelConfig, TimberWolfConfig  # noqa: E402
from repro.bench import CircuitSpec, generate_circuit  # noqa: E402
from repro.channels import (  # noqa: E402
    ChannelGraph,
    decompose_free_space,
)
from repro.parallel.multichain import run_multichain_stage1  # noqa: E402
from repro.placement import remove_overlaps  # noqa: E402
from repro.placement.refine import channel_boundary  # noqa: E402
from repro.placement.stage1 import run_stage1  # noqa: E402
from repro.routing import GlobalRouter  # noqa: E402

CHAIN_COUNTS = (1, 2, 4)


def build_circuit(n: int, seed: int = 0):
    """The N-cell synthetic (25% custom cells), as in the moves bench."""
    spec = CircuitSpec(
        name=f"par{n}",
        num_cells=n,
        num_nets=2 * n,
        num_pins=5 * n,
        seed=seed,
        custom_fraction=0.25,
    )
    return generate_circuit(spec)


def base_config(attempts_per_cell: int, max_temperatures: int, seed: int = 3):
    return replace(
        TimberWolfConfig.smoke(seed=seed),
        attempts_per_cell=attempts_per_cell,
        max_temperatures=max_temperatures,
    )


def bench_stage1(circuit, attempts: int, max_temperatures: int) -> Dict:
    """Serial stage 1 vs K chains × K workers at attempts/K per chain —
    equal total move budget, so the comparison is work-normalized."""
    config = base_config(attempts, max_temperatures)
    start = time.perf_counter()
    serial = run_stage1(circuit, config, rng=random.Random(config.seed))
    serial_seconds = time.perf_counter() - start
    serial_moves = sum(s.attempts for s in serial.anneal.steps)
    out: Dict = {
        "serial": {
            "seconds": round(serial_seconds, 3),
            "final_cost": round(serial.anneal.final_cost, 4),
            "moves": serial_moves,
        },
        "chains": {},
    }
    print(
        f"  stage1 serial             {serial_seconds:7.2f}s  "
        f"cost {serial.anneal.final_cost:12.2f}  ({serial_moves} moves)"
    )
    for k in CHAIN_COUNTS:
        if k == 1:
            continue
        per_chain = max(1, attempts // k)
        cfg = replace(
            base_config(per_chain, max_temperatures),
            parallel=ParallelConfig(
                workers=k, chains=k, exchange_period=max(2, max_temperatures // 4)
            ),
        )
        start = time.perf_counter()
        result = run_multichain_stage1(circuit, cfg)
        seconds = time.perf_counter() - start
        speedup = serial_seconds / seconds if seconds > 0 else float("inf")
        row = {
            "workers": k,
            "attempts_per_cell_per_chain": per_chain,
            "seconds": round(seconds, 3),
            "speedup_vs_serial": round(speedup, 3),
            "final_cost": round(result.anneal.final_cost, 4),
        }
        # The contract: the same (seed, chains, exchange_period) run
        # serially must land on the identical placement.
        start = time.perf_counter()
        check = run_multichain_stage1(
            circuit, replace(cfg, parallel=replace(cfg.parallel, workers=1))
        )
        row["one_worker_seconds"] = round(time.perf_counter() - start, 3)
        row["deterministic_across_workers"] = (
            check.state.state_dict() == result.state.state_dict()
        )
        out["chains"][str(k)] = row
        print(
            f"  stage1 {k} chains x {k} workers {seconds:7.2f}s  "
            f"cost {result.anneal.final_cost:12.2f}  "
            f"speedup {speedup:5.2f}x  "
            f"identical={row['deterministic_across_workers']}"
        )
    return out


def bench_routing(circuit, config, state) -> Dict:
    """Route the legalized placement's channel graph with 1 vs 4
    workers; the committed routes must match edge-for-edge."""
    remove_overlaps(state, min_gap=circuit.track_spacing)
    shapes = {name: state.world_shape(name) for name in state.names}
    boundary = channel_boundary(state, circuit.track_spacing)
    free = decompose_free_space(shapes.values(), boundary)
    graph = ChannelGraph(free, circuit.track_spacing)
    for name in state.names:
        for pin_name in circuit.cells[name].pins:
            graph.attach_pin(name, pin_name, state.pin_position(name, pin_name))

    out: Dict = {"nets": len(circuit.nets), "workers": {}}
    reference = None
    for workers in (1, 4):
        start = time.perf_counter()
        result = GlobalRouter(
            graph, m_routes=config.m_routes, seed=0, workers=workers
        ).route(circuit)
        seconds = time.perf_counter() - start
        row = {
            "seconds": round(seconds, 3),
            "total_length": round(result.total_length, 3),
            "routed_nets": len(result.routes),
            "overflow": result.overflow,
        }
        if reference is None:
            reference = result
            row["speedup_vs_serial"] = 1.0
        else:
            serial_s = out["workers"]["1"]["seconds"]
            row["speedup_vs_serial"] = round(
                serial_s / seconds if seconds > 0 else float("inf"), 3
            )
            row["identical_to_serial"] = (
                result.routes == reference.routes
                and result.lengths == reference.lengths
                and result.interchange.selection
                == reference.interchange.selection
            )
        out["workers"][str(workers)] = row
        print(
            f"  routing {workers} worker(s)       {seconds:7.2f}s  "
            f"length {result.total_length:12.1f}  "
            f"({len(result.routes)} nets)"
        )
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small circuit / few steps (CI smoke)"
    )
    parser.add_argument(
        "--cells", type=int, default=None, help="synthetic circuit size (default 200)"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_parallel.json",
        help="where to write the JSON results",
    )
    args = parser.parse_args(argv)

    n = args.cells if args.cells else (40 if args.quick else 200)
    attempts = 4 if args.quick else 8
    max_temperatures = 8 if args.quick else 40

    circuit = build_circuit(n)
    print(
        f"parallel benchmark: N={n}, attempts/cell={attempts}, "
        f"{max_temperatures} temperatures, cpus={host_metadata()['cpu_count']}"
    )
    results: Dict = {
        "benchmark": "parallel",
        "host": host_metadata(),
        "cells": n,
        "quick": args.quick,
        "stage1": bench_stage1(circuit, attempts, max_temperatures),
    }

    config = base_config(attempts, max_temperatures)
    stage1 = run_stage1(circuit, config, rng=random.Random(config.seed))
    results["routing"] = bench_routing(circuit, config, stage1.state)

    # Registry-backed trajectory: append this result and embed the
    # trailing history for the same config hash so the JSON artifact
    # can never go silently stale.
    from common import bench_config_sha, record_bench_result  # noqa: E402

    best_chain = max(
        (row["speedup_vs_serial"] for row in results["stage1"]["chains"].values()),
        default=1.0,
    )
    results["config_sha256"] = bench_config_sha()
    history = record_bench_result(
        "parallel",
        {
            "quick": args.quick,
            "cells": n,
            "best_stage1_speedup": best_chain,
            "routing_speedup": results["routing"]["workers"]
            .get("4", {})
            .get("speedup_vs_serial"),
            "serial_stage1_seconds": results["stage1"]["serial"]["seconds"],
        },
    )
    results["history"] = [
        {k: h.get(k) for k in ("recorded", "quick", "cells",
                               "best_stage1_speedup", "routing_speedup")}
        for h in history
    ]
    args.output.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nwrote {args.output} ({len(history)} recorded runs for this config)")

    failures = []
    for k, row in results["stage1"]["chains"].items():
        if not row["deterministic_across_workers"]:
            failures.append(f"stage1 K={k}: workers changed the placement")
    pooled = results["routing"]["workers"].get("4", {})
    if pooled and not pooled.get("identical_to_serial", True):
        failures.append("routing: pooled routes differ from serial")
    for f in failures:
        print(f"FAIL: {f}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
