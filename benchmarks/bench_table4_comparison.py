"""Table 4 — TimberWolfMC versus other placement methods.

The paper compares TEIL and final chip area against industrial,
university, and manual placements, reporting average reductions of
24.9 % (TEIL) and 26.9 % (area).  We regenerate the comparison against
the reimplemented classical baselines (random, greedy constructive,
resistive-network/quadratic): for each circuit the reduction is measured
against the *best* baseline, which is the conservative reading of the
paper's per-circuit comparators.
"""

from __future__ import annotations

import pytest

from repro import place_and_route
from repro.baselines import ALL_BASELINES, route_baseline
from repro.bench import PAPER_TABLE4, load_circuit, mean, reduction_pct

from .common import bench_circuits, bench_config, emit


def run_table4():
    rows = []
    teil_reds = []
    area_reds = []
    for name in bench_circuits():
        circuit = load_circuit(name)
        config = bench_config(seed=1)
        ours = place_and_route(circuit, config)
        base_teil = []
        base_area = []
        for placer_cls in ALL_BASELINES:
            baseline = placer_cls(seed=1).place(load_circuit(name))
            base_teil.append(baseline.teil)
            # Areas are compared post-routing on both sides: the baseline
            # placement gets the same Eqn-22 channel reservation the
            # TimberWolfMC result already carries.
            routed = route_baseline(baseline, m_routes=config.m_routes, seed=1)
            base_area.append(routed.chip_area)
        best_teil = min(base_teil)
        best_area = min(base_area)
        teil_red = reduction_pct(best_teil, ours.teil)
        area_red = reduction_pct(best_area, ours.chip_area)
        w, h = ours.chip_dimensions
        paper_teil_red = PAPER_TABLE4[name][2]
        paper_area_red = PAPER_TABLE4[name][3]
        rows.append(
            [
                name,
                round(ours.teil),
                f"{w:.0f}x{h:.0f}",
                teil_red,
                paper_teil_red,
                area_red,
                paper_area_red,
            ]
        )
        teil_reds.append(teil_red)
        area_reds.append(area_red)
    rows.append(
        ["Avg.", "", "", mean(teil_reds), 24.9, mean(area_reds), 26.9]
    )
    return rows


def test_table4(benchmark):
    rows = benchmark.pedantic(run_table4, rounds=1, iterations=1)
    emit(
        "table4",
        "Table 4: TimberWolfMC vs best baseline (reduction %)",
        [
            "circuit",
            "TEIL",
            "area (x*y)",
            "TEIL red %",
            "paper",
            "area red %",
            "paper",
        ],
        rows,
        notes=(
            "Shape check: TimberWolfMC wins on TEIL against every baseline\n"
            "(positive reductions), in the double-digit range the paper saw."
        ),
    )
    avg_teil_red = rows[-1][3]
    # The reproduced shape: TimberWolfMC beats the baselines on wirelength.
    assert avg_teil_red > 0.0
