"""Figure 3 — final TEIL versus the displacement/interchange ratio r.

The paper sweeps r (single-cell displacements per pairwise interchange)
on ~25-cell circuits and finds a flat minimum: any r in 7..15 lands
within one percent of the best TEIL, with degradation at the extremes
(too few interchanges or too few displacements).

This bench sweeps r on a 25-cell synthetic circuit and prints the
normalized average final TEIL per r value.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.bench import CircuitSpec, generate_circuit, mean
from repro.placement import run_stage1

from .common import bench_config, bench_trials, emit, stage1_metrics

R_VALUES = (1.0, 2.0, 4.0, 7.0, 10.0, 15.0, 22.0, 30.0)


def run_fig3():
    spec = CircuitSpec(
        name="fig3", num_cells=25, num_nets=90, num_pins=320, seed=42
    )
    circuit = generate_circuit(spec)
    trials = max(1, bench_trials())
    averages = []
    for r in R_VALUES:
        teils = []
        for trial in range(trials):
            cfg = replace(bench_config(seed=trial), r_ratio=r)
            result = run_stage1(circuit, cfg)
            _, teil = stage1_metrics(result)
            teils.append(teil)
        averages.append(mean(teils))
    best = min(averages)
    return [
        [r, avg, avg / best] for r, avg in zip(R_VALUES, averages)
    ]


def test_fig3_move_ratio(benchmark):
    rows = benchmark.pedantic(run_fig3, rounds=1, iterations=1)
    emit(
        "fig3",
        "Figure 3: normalized avg final TEIL vs ratio r",
        ["r", "avg TEIL", "normalized"],
        [[r, round(t), f"{n:.3f}"] for r, t, n in rows],
        notes=(
            "Shape check: a broad flat minimum around r ~ 7-15; the paper\n"
            "reports that range within one percent of the optimum."
        ),
    )
    norms = {r: n for r, _, n in rows}
    # The mid-range must not be dramatically worse than the best point.
    assert min(norms[7.0], norms[10.0], norms[15.0]) < 1.10
