"""Scalability of the stage-1 move kernel with circuit size.

The paper reports stage-1 CPU time directly proportional to A_c; the
other axis is circuit size.  One generate-and-accept cycle costs
O(N_c) for the overlap row plus O(pins per cell) for the nets, so the
per-move time should grow roughly linearly in N_c — this bench measures
it across a size ladder and reports the per-move cost.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.annealing import RangeLimiter
from repro.bench import CircuitSpec, generate_circuit
from repro.estimator import determine_core
from repro.placement import MoveGenerator, PlacementState

from .common import emit

SIZES = (10, 20, 40, 60)
MOVES_PER_POINT = 400


def measure(num_cells: int) -> float:
    spec = CircuitSpec(
        name=f"scale{num_cells}",
        num_cells=num_cells,
        num_nets=num_cells * 3,
        num_pins=num_cells * 10,
        seed=num_cells,
    )
    circuit = generate_circuit(spec)
    plan = determine_core(circuit)
    state = PlacementState(circuit, plan)
    rng = random.Random(0)
    state.randomize(rng)
    limiter = RangeLimiter(plan.core.width, plan.core.height, 1e5)
    gen = MoveGenerator(state, limiter)
    # Warm the caches.
    for _ in range(20):
        gen.step(1e4, rng)
    start = time.perf_counter()
    for _ in range(MOVES_PER_POINT):
        gen.step(1e4, rng)
    return (time.perf_counter() - start) / MOVES_PER_POINT


def run_scalability():
    return [[n, measure(n) * 1e6] for n in SIZES]


def test_scalability(benchmark):
    rows = benchmark.pedantic(run_scalability, rounds=1, iterations=1)
    base = rows[0][1]
    emit(
        "scalability",
        "Stage-1 move cost vs circuit size",
        ["cells", "us/move", "vs 10 cells"],
        [[n, f"{us:.0f}", f"{us / base:.2f}x"] for n, us in rows],
        notes=(
            "Shape check: per-move cost grows roughly linearly with the\n"
            "cell count (the O(N) overlap row dominates), far below the\n"
            "quadratic growth a naive full-recompute would show."
        ),
    )
    # 6x the cells should cost much less than 36x per move (sub-quadratic).
    assert rows[-1][1] < rows[0][1] * (SIZES[-1] / SIZES[0]) ** 2 / 2
