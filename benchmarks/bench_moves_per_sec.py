"""Moves-per-second benchmark for the placement hot loop.

The paper's wall-clock claims (§6, Table 4) rest on each annealing move
being cheap; this harness measures exactly that.  For synthetic circuits
at N ∈ {20, 50, 100, 200} cells it times every move kind the §3.2.1
generate cascade issues — displace, inverted displace, interchange,
pin-group move, and the move+restore rejection cycle — under BOTH
placement cores (the object graph and the struct-of-arrays kernel),
plus a mixed anneal at a fixed temperature per core.  The array core's
headline number is the *batched* mixed anneal (``BatchMoveGenerator``),
whose speedup over the committed object-core baseline is what the CI
quick gate enforces.  Before any timing, a seeded 500-move walk is
replayed under both cores and the harness exits non-zero if a single
accept/reject decision or cost diverges.

Results go to ``BENCH_placement.json`` at the repository root so the
repo's perf trajectory is machine-readable from PR to PR.

Usage::

    PYTHONPATH=src python benchmarks/bench_moves_per_sec.py [--quick]
        [--output PATH] [--sizes 20,50,100,200]

``--quick`` shrinks both the size sweep and the per-kind move counts to
a few seconds total (the CI smoke mode) and enforces the gates: replay
identity, telemetry overhead, and the minimum mixed-anneal speedup.
"""

from __future__ import annotations

import argparse
import json
import random
import statistics
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))
if str(REPO_ROOT / "benchmarks") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from repro.annealing import RangeLimiter  # noqa: E402
from repro.bench import CircuitSpec, generate_circuit  # noqa: E402
from repro.estimator import determine_core  # noqa: E402
from repro.netlist import CustomCell  # noqa: E402
from repro.placement import (  # noqa: E402
    BatchMoveGenerator,
    MoveGenerator,
    PlacementState,
    make_placement_state,
)
from repro.telemetry import (  # noqa: E402
    FileSink,
    NullSink,
    Tracer,
    current_tracer,
    use_tracer,
)

FULL_SIZES = (20, 50, 100, 200)
QUICK_SIZES = (20, 50)

#: Both inner-loop implementations; "array" additionally gets the
#: batched mixed anneal.
CORES = ("object", "array")

#: Temperature for the mixed anneal: high enough that a realistic
#: fraction of moves is accepted, low enough that some restore.
MIXED_TEMPERATURE = 50.0

#: The committed object-core mixed-anneal rate at N=50 (BENCH_placement
#: .json as of the run-registry PR).  The array kernel's speedup is
#: measured against this constant so the gate cannot drift with the
#: object core's own performance.
BASELINE_MIXED_MOVES_PER_SEC_N50 = 11995.9

#: Minimum batched-array speedup over the committed baseline enforced in
#: --quick (CI) mode; the full bench targets (and records) >= 10x.
MIN_QUICK_SPEEDUP = 5.0

#: The size the gates and the flattened registry metrics are taken at.
GATE_SIZE = 50

#: Length of the cross-core replay walk (mirrors the property tests).
REPLAY_STEPS = 500


def build_state(n: int, seed: int = 0, core: str = "object") -> PlacementState:
    """A randomized placement of a synthetic n-cell circuit (25% custom
    cells so pin-group and aspect moves are exercised)."""
    spec = CircuitSpec(
        name=f"moves{n}",
        num_cells=n,
        num_nets=2 * n,
        num_pins=5 * n,
        seed=seed,
        custom_fraction=0.25,
    )
    circuit = generate_circuit(spec)
    state = make_placement_state(core, circuit, determine_core(circuit))
    state.randomize(random.Random(seed))
    return state


def _make_limiter(state: PlacementState) -> RangeLimiter:
    core = state.core
    return RangeLimiter(
        full_span_x=core.width,
        full_span_y=core.height,
        t_infinity=10.0 * MIXED_TEMPERATURE,
    )


def _movable(state: PlacementState) -> List[int]:
    return [i for i in range(len(state.names)) if state.movable[i]]


def _custom_with_groups(state: PlacementState) -> List[int]:
    return [
        i
        for i in range(len(state.names))
        if isinstance(state.cell(i), CustomCell) and state._groups[i]
    ]


def _random_target(state: PlacementState, rng: random.Random):
    core = state.core
    return (rng.uniform(core.x1, core.x2), rng.uniform(core.y1, core.y2))


def _time_loop(body: Callable[[], None], n_moves: int, repeats: int = 3) -> float:
    """Wall-clock the loop ``repeats`` times and keep the best rate.

    Best-of is the standard defence against scheduler noise: interference
    only ever slows a run down, so the fastest repeat is the closest
    estimate of the code's intrinsic speed.
    """
    best = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(n_moves):
            body()
        elapsed = time.perf_counter() - start
        rate = n_moves / elapsed if elapsed > 0 else float("inf")
        if rate > best:
            best = rate
    return best


def bench_kind(
    state: PlacementState,
    kind: str,
    n_moves: int,
    seed: int = 1,
    repeats: int = 3,
) -> Optional[float]:
    """Moves/sec for one move kind (None if the circuit lacks the kind)."""
    rng = random.Random(seed)
    movable = _movable(state)
    if len(movable) < 2:
        return None

    if kind == "displace":

        def body() -> None:
            idx = movable[rng.randrange(len(movable))]
            _, snap = state.move_cell(idx, center=_random_target(state, rng))
            if rng.random() < 0.5:
                state.restore(snap)

    elif kind == "displace_inverted":

        def body() -> None:
            idx = movable[rng.randrange(len(movable))]
            _, snap = state.move_cell_inverted(idx, _random_target(state, rng))
            if rng.random() < 0.5:
                state.restore(snap)

    elif kind == "swap":

        def body() -> None:
            pi = rng.randrange(len(movable))
            pj = rng.randrange(len(movable) - 1)
            if pj >= pi:
                pj += 1
            _, snap = state.swap_cells(movable[pi], movable[pj])
            if rng.random() < 0.5:
                state.restore(snap)

    elif kind == "pin_group":
        customs = _custom_with_groups(state)
        if not customs:
            return None
        sides = ("left", "right", "bottom", "top")

        def body() -> None:
            idx = customs[rng.randrange(len(customs))]
            groups = state._groups[idx]
            key, _ = groups[rng.randrange(len(groups))]
            cell = state.cell(idx)
            _, snap = state.move_pin_group(
                idx,
                key,
                sides[rng.randrange(4)],
                rng.randrange(cell.sites_per_edge),
            )
            if rng.random() < 0.5:
                state.restore(snap)

    elif kind == "reject":
        # The pure rejection cycle: every move is taken back, so this
        # times move + snapshot + restore together.

        def body() -> None:
            idx = movable[rng.randrange(len(movable))]
            _, snap = state.move_cell(idx, center=_random_target(state, rng))
            state.restore(snap)

    else:
        raise ValueError(f"unknown move kind {kind!r}")

    return round(_time_loop(body, n_moves, repeats), 1)


def bench_mixed(
    state: PlacementState, n_steps: int, seed: int = 2, repeats: int = 3
) -> Dict:
    """Drive MoveGenerator.step at a fixed T; returns moves/sec (best of
    ``repeats`` passes) plus the generator's attempt/accept counters."""
    limiter = _make_limiter(state)
    generator = MoveGenerator(state, limiter)
    best = 0.0
    total_attempts = 0
    for _ in range(repeats):
        rng = random.Random(seed)
        start = time.perf_counter()
        attempts = 0
        for _ in range(n_steps):
            a, _ = generator.step(MIXED_TEMPERATURE, rng)
            attempts += a
        elapsed = time.perf_counter() - start
        total_attempts += attempts
        rate = attempts / elapsed if elapsed > 0 else float("inf")
        if rate > best:
            best = rate
    return {
        "moves_per_sec": round(best, 1),
        "attempts": total_attempts,
        "per_kind": {k: list(v) for k, v in sorted(generator.stats.items())},
    }


def bench_mixed_batched(
    state, n_steps: int, seed: int = 2, repeats: int = 3
) -> Dict:
    """The array core's batched mixed anneal: ``BatchMoveGenerator``
    proposing one batch of distinct-cell moves per step.  The batch size
    is the cell count, so each step is one inner-loop sweep; begin() /
    finish() (the object<->array handoff) run outside the timed region,
    as they do once per anneal, not per move."""
    limiter = _make_limiter(state)
    best = 0.0
    total_attempts = 0
    batch = max(2, len(_movable(state)))
    for _ in range(repeats):
        generator = BatchMoveGenerator(
            state, limiter, batch=batch, seed=seed
        )
        generator.begin()
        # Untimed warmup: the first few vectorized steps pay numpy's
        # allocator/rng setup, which would dominate a short quick-mode
        # window and make the CI speedup gate flap.
        for _ in range(5):
            generator.step(MIXED_TEMPERATURE)
        start = time.perf_counter()
        attempts = 0
        for _ in range(n_steps):
            a, _ = generator.step(MIXED_TEMPERATURE)
            attempts += a
        elapsed = time.perf_counter() - start
        generator.finish()
        total_attempts += attempts
        rate = attempts / elapsed if elapsed > 0 else float("inf")
        if rate > best:
            best = rate
    return {
        "moves_per_sec": round(best, 1),
        "attempts": total_attempts,
        "batch": batch,
        "per_kind": {k: list(v) for k, v in sorted(generator.stats.items())},
    }


def verify_replay(
    n: int = GATE_SIZE, steps: int = REPLAY_STEPS, seed: int = 4
) -> Dict:
    """Replay one seeded mixed-anneal walk under both cores and compare
    every (attempts, accepts, cost) triple bit-for-bit.

    This is the bench-side mirror of the round-trip property tests: the
    array kernel must make the exact accept/reject decisions the object
    core makes, or every checkpoint and telemetry artifact it produces
    is silently incomparable.
    """
    traces: Dict[str, List] = {}
    for core in CORES:
        state = build_state(n, core=core)
        generator = MoveGenerator(state, _make_limiter(state))
        rng = random.Random(seed)
        trace = []
        for _ in range(steps):
            attempts, accepts = generator.step(MIXED_TEMPERATURE, rng)
            trace.append((attempts, accepts, state.cost()))
        traces[core] = trace
    first_divergence = None
    for i, (obj, arr) in enumerate(zip(traces["object"], traces["array"])):
        if obj != arr:
            first_divergence = {"step": i, "object": list(obj), "array": list(arr)}
            break
    return {
        "size": n,
        "steps": steps,
        "seed": seed,
        "identical": first_divergence is None,
        "first_divergence": first_divergence,
    }


#: The engine emits one ``anneal.temperature`` event per inner loop; the
#: overhead bench mirrors that cadence: one event every EVENT_EVERY steps.
EVENT_EVERY = 50

#: CI smoke mode fails when the null-sink mixed-anneal rate falls more
#: than this far below the untraced baseline.
MAX_NULL_OVERHEAD_PCT = 3.0

#: CI budget for the sampling profiler at its default rate (97 Hz): the
#: profiled mixed-anneal rate must stay within this percentage of the
#: unprofiled baseline.  Sampling happens on a separate thread, so the
#: cost is GIL contention during ``sys._current_frames()``, not
#: per-move bookkeeping.
MAX_PROFILER_OVERHEAD_PCT = 5.0

#: Shortest acceptable timed pass for the overhead measurement.  A
#: sub-50ms pass is dominated by scheduler noise — that is how earlier
#: artifacts recorded a *negative* file-sink overhead — so the step
#: count is scaled until one untraced pass takes at least this long.
MIN_MEASURE_SECONDS = 0.25

#: Repeats per variant for the overhead measurement; the reported rate
#: is the per-variant MEDIAN, which (unlike best-of) is an unbiased
#: location estimate, so the overhead of two variants can be subtracted
#: honestly.
OVERHEAD_REPEATS = 5


def _mixed_rate(state: PlacementState, limiter, n_steps: int, seed: int) -> float:
    """One timed mixed-anneal pass under the ambient tracer, emitting
    engine-cadence events; returns attempts/sec."""
    tracer = current_tracer()
    rng = random.Random(seed)
    generator = MoveGenerator(state, limiter)
    attempts = 0
    start = time.perf_counter()
    for i in range(n_steps):
        a, _ = generator.step(MIXED_TEMPERATURE, rng)
        attempts += a
        if tracer.enabled and (i + 1) % EVENT_EVERY == 0:
            tracer.event(
                "anneal.temperature",
                step=i,
                T=MIXED_TEMPERATURE,
                attempts=attempts,
                cost=state.cost(),
            )
    elapsed = time.perf_counter() - start
    return attempts / elapsed if elapsed > 0 else float("inf")


def bench_telemetry_overhead(
    state: PlacementState,
    n_steps: int,
    seed: int = 3,
    repeats: int = OVERHEAD_REPEATS,
) -> Dict:
    """Mixed-anneal rate with telemetry off, null sink, file sink, and
    the sampling profiler attached at its default rate.

    Statistically honest protocol: the step count is first auto-scaled
    so one untraced pass takes at least ``MIN_MEASURE_SECONDS``; the
    three variants then run interleaved (round-robin per repeat) so slow
    thermal/scheduler drift hits them equally, and the MEDIAN rate per
    variant is reported.  ``null_overhead_pct`` is the instrumentation
    cost of the default (disabled) telemetry path versus the untraced
    hot loop — the number the CI gate bounds at 3 %.
    """
    import contextlib
    import os
    import tempfile

    from repro.telemetry.profile import SamplingProfiler

    repeats = max(repeats, OVERHEAD_REPEATS)
    limiter = _make_limiter(state)

    # Calibrate the measurement window on the untraced loop.
    start = time.perf_counter()
    _mixed_rate(state, limiter, n_steps, seed)
    elapsed = time.perf_counter() - start
    if 0 < elapsed < MIN_MEASURE_SECONDS:
        n_steps = int(n_steps * MIN_MEASURE_SECONDS / elapsed) + 1

    fd, trace_path = tempfile.mkstemp(suffix=".jsonl", prefix="bench_trace_")
    os.close(fd)
    rates: Dict[str, List[float]] = {
        "baseline": [],
        "null_sink": [],
        "file_sink": [],
        "profiler": [],
    }
    profiler_samples = 0
    try:
        for _ in range(repeats):
            for mode in ("baseline", "null_sink", "file_sink", "profiler"):
                if mode == "baseline":
                    ctx = contextlib.nullcontext()
                elif mode == "null_sink":
                    ctx = use_tracer(Tracer(NullSink()))
                elif mode == "file_sink":
                    sink = FileSink(trace_path)
                    ctx = use_tracer(Tracer(sink))
                else:
                    ctx = SamplingProfiler()  # default rate, this thread
                with ctx:
                    rate = _mixed_rate(state, limiter, n_steps, seed)
                if mode == "file_sink":
                    sink.close()
                elif mode == "profiler":
                    profiler_samples += ctx.sample_count
                rates[mode].append(rate)
        trace_bytes = os.path.getsize(trace_path)
    finally:
        os.unlink(trace_path)

    median = {mode: statistics.median(vals) for mode, vals in rates.items()}

    def overhead(variant: str) -> float:
        if median["baseline"] <= 0:
            return 0.0
        return round(100.0 * (1.0 - median[variant] / median["baseline"]), 2)

    return {
        "baseline_moves_per_sec": round(median["baseline"], 1),
        "null_sink_moves_per_sec": round(median["null_sink"], 1),
        "file_sink_moves_per_sec": round(median["file_sink"], 1),
        "profiler_moves_per_sec": round(median["profiler"], 1),
        "null_overhead_pct": overhead("null_sink"),
        "file_overhead_pct": overhead("file_sink"),
        "profiler_overhead_pct": overhead("profiler"),
        "max_null_overhead_pct": MAX_NULL_OVERHEAD_PCT,
        "max_profiler_overhead_pct": MAX_PROFILER_OVERHEAD_PCT,
        "profiler_samples": profiler_samples,
        "trace_bytes": trace_bytes,
        "steps": n_steps,
        "repeats": repeats,
        "estimator": "median",
        "min_measure_seconds": MIN_MEASURE_SECONDS,
    }


def run(sizes, moves_per_kind: int, mixed_steps: int, repeats: int = 3) -> Dict:
    from common import host_metadata  # noqa: E402 (needs the path bootstrap)

    kinds = ("displace", "displace_inverted", "swap", "pin_group", "reject")
    out: Dict = {
        "benchmark": "moves_per_sec",
        "host": host_metadata(),
        "baseline_mixed_moves_per_sec_n50": BASELINE_MIXED_MOVES_PER_SEC_N50,
        "sizes": {},
    }

    replay = verify_replay(n=min(GATE_SIZE, max(sizes)))
    out["replay"] = replay
    status = "identical" if replay["identical"] else "DIVERGED"
    print(
        f"  replay: {replay['steps']} seeded moves under both cores -> {status}"
    )

    for n in sizes:
        row: Dict = {}
        for core in CORES:
            state = build_state(n, core=core)
            crow: Dict = {}
            for kind in kinds:
                rate = bench_kind(state, kind, moves_per_kind, repeats=repeats)
                crow[kind] = rate
                rate_s = f"{rate:>10.0f}" if rate is not None else "       n/a"
                print(
                    f"  N={n:<4} {core:<6} {kind:<18} {rate_s} moves/sec",
                    flush=True,
                )
            crow["mixed_anneal"] = bench_mixed(state, mixed_steps, repeats=repeats)
            print(
                f"  N={n:<4} {core:<6} {'mixed_anneal':<18} "
                f"{crow['mixed_anneal']['moves_per_sec']:>10.0f} moves/sec"
            )
            row[core] = crow
        batched = bench_mixed_batched(
            build_state(n, core="array"), mixed_steps, repeats=repeats
        )
        row["array_batched_mixed"] = batched
        speedup = batched["moves_per_sec"] / BASELINE_MIXED_MOVES_PER_SEC_N50
        row["mixed_speedup_vs_baseline"] = round(speedup, 2)
        print(
            f"  N={n:<4} {'array':<6} {'batched_mixed':<18} "
            f"{batched['moves_per_sec']:>10.0f} moves/sec "
            f"({speedup:.1f}x committed N=50 baseline)"
        )
        out["sizes"][str(n)] = row

    # Telemetry overhead on the largest size (worst case for per-event
    # payloads relative to nothing; the hot loop itself is size-invariant).
    n = sizes[-1]
    overhead = bench_telemetry_overhead(
        build_state(n), max(mixed_steps, 150)
    )
    overhead["size"] = n
    out["telemetry_overhead"] = overhead
    print(
        f"  N={n:<4} telemetry overhead (median of {overhead['repeats']}): "
        f"null {overhead['null_overhead_pct']:+.1f}%  "
        f"file {overhead['file_overhead_pct']:+.1f}%  "
        f"profiler {overhead['profiler_overhead_pct']:+.1f}%  "
        f"({overhead['trace_bytes']} trace bytes, "
        f"{overhead['profiler_samples']} profile samples)"
    )
    return out


def _registry_payload(results: Dict, sizes, quick: bool) -> Dict:
    """Flatten the gate-size row into per-kind, per-core registry
    metrics so ``python -m repro qor gate --bench moves_per_sec`` can
    gate each one against the rolling history."""
    gate_key = str(GATE_SIZE) if str(GATE_SIZE) in results["sizes"] else str(
        sizes[-1]
    )
    row = results["sizes"][gate_key]
    payload: Dict = {
        "quick": quick,
        "sizes": [str(n) for n in sizes],
        "gate_size": gate_key,
        "null_overhead_pct": results["telemetry_overhead"]["null_overhead_pct"],
        "file_overhead_pct": results["telemetry_overhead"]["file_overhead_pct"],
        "profiler_overhead_pct": results["telemetry_overhead"][
            "profiler_overhead_pct"
        ],
        "replay_identical": results["replay"]["identical"],
        "mixed_speedup_vs_baseline": row["mixed_speedup_vs_baseline"],
        "best_mixed_moves_per_sec": max(
            r["array_batched_mixed"]["moves_per_sec"]
            for r in results["sizes"].values()
        ),
        "array_batched_mixed_moves_per_sec": row["array_batched_mixed"][
            "moves_per_sec"
        ],
    }
    for core in CORES:
        payload[f"{core}_mixed_moves_per_sec"] = row[core]["mixed_anneal"][
            "moves_per_sec"
        ]
        for kind in ("displace", "displace_inverted", "swap", "pin_group",
                     "reject"):
            rate = row[core].get(kind)
            if rate is not None:
                payload[f"{core}_{kind}_moves_per_sec"] = rate
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small sizes / few moves (CI smoke)"
    )
    parser.add_argument(
        "--sizes", type=str, default=None, help="comma-separated cell counts"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_placement.json",
        help="where to write the JSON results",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="timed passes per kind; the best is reported (default 3, 1 in --quick)",
    )
    args = parser.parse_args(argv)

    if args.sizes:
        sizes = tuple(int(s) for s in args.sizes.split(","))
    else:
        sizes = QUICK_SIZES if args.quick else FULL_SIZES
    moves_per_kind = 150 if args.quick else 600
    mixed_steps = 150 if args.quick else 300
    repeats = args.repeats if args.repeats else (1 if args.quick else 3)

    print(
        f"moves/sec benchmark: sizes={sizes}, {moves_per_kind} moves/kind, "
        f"best of {repeats}, both cores"
    )
    results = run(sizes, moves_per_kind, mixed_steps, repeats=repeats)
    results["quick"] = args.quick

    # Registry-backed trajectory: append this result, embed the trailing
    # history for the same config hash so the JSON is self-describing
    # and never silently stale.
    from common import bench_config_sha, record_bench_result  # noqa: E402

    results["config_sha256"] = bench_config_sha()
    payload = _registry_payload(results, sizes, args.quick)
    history = record_bench_result("moves_per_sec", payload)
    results["history"] = [
        {
            k: h.get(k)
            for k in (
                "recorded",
                "quick",
                "best_mixed_moves_per_sec",
                "array_batched_mixed_moves_per_sec",
                "object_mixed_moves_per_sec",
                "mixed_speedup_vs_baseline",
                "null_overhead_pct",
                "profiler_overhead_pct",
                "replay_identical",
            )
        }
        for h in history
    ]
    args.output.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nwrote {args.output} ({len(history)} recorded runs for this config)")

    failed = False
    if not results["replay"]["identical"]:
        print(
            "FAIL: array core diverged from the object core on the seeded "
            f"replay at step {results['replay']['first_divergence']['step']}: "
            f"{results['replay']['first_divergence']}"
        )
        failed = True
    if args.quick:
        # CI smoke gates: the disabled-telemetry hot loop must stay within
        # MAX_NULL_OVERHEAD_PCT of the untraced baseline, and the batched
        # array anneal must hold its speedup over the committed baseline.
        null_pct = results["telemetry_overhead"]["null_overhead_pct"]
        if null_pct > MAX_NULL_OVERHEAD_PCT:
            print(
                f"FAIL: null-sink telemetry overhead {null_pct:.1f}% exceeds "
                f"{MAX_NULL_OVERHEAD_PCT:.0f}% budget"
            )
            failed = True
        else:
            print(f"telemetry overhead gate ok ({null_pct:+.1f}% <= "
                  f"{MAX_NULL_OVERHEAD_PCT:.0f}%)")
        prof_pct = results["telemetry_overhead"]["profiler_overhead_pct"]
        if prof_pct > MAX_PROFILER_OVERHEAD_PCT:
            print(
                f"FAIL: sampling-profiler overhead {prof_pct:.1f}% exceeds "
                f"{MAX_PROFILER_OVERHEAD_PCT:.0f}% budget"
            )
            failed = True
        else:
            print(f"profiler overhead gate ok ({prof_pct:+.1f}% <= "
                  f"{MAX_PROFILER_OVERHEAD_PCT:.0f}%)")
        speedup = payload["mixed_speedup_vs_baseline"]
        if speedup < MIN_QUICK_SPEEDUP:
            print(
                f"FAIL: batched array mixed anneal at N={payload['gate_size']} "
                f"is {speedup:.2f}x the committed baseline "
                f"({BASELINE_MIXED_MOVES_PER_SEC_N50:.0f} moves/sec); "
                f"the gate requires >= {MIN_QUICK_SPEEDUP:.0f}x"
            )
            failed = True
        else:
            print(
                f"speedup gate ok ({speedup:.2f}x >= "
                f"{MIN_QUICK_SPEEDUP:.0f}x committed baseline)"
            )
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
