"""Moves-per-second benchmark for the placement hot loop.

The paper's wall-clock claims (§6, Table 4) rest on each annealing move
being cheap; this harness measures exactly that.  For synthetic circuits
at N ∈ {20, 50, 100, 200} cells it times every move kind the §3.2.1
generate cascade issues against ``PlacementState`` directly — displace,
inverted displace, interchange, pin-group move, and the move+restore
rejection cycle — plus one mixed anneal driven through ``MoveGenerator``
at a fixed temperature.  Results go to ``BENCH_placement.json`` at the
repository root so the repo's perf trajectory is machine-readable from
PR to PR.

Usage::

    PYTHONPATH=src python benchmarks/bench_moves_per_sec.py [--quick]
        [--output PATH] [--sizes 20,50,100,200]

``--quick`` shrinks both the size sweep and the per-kind move counts to
a few seconds total (the CI smoke mode).
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))
if str(REPO_ROOT / "benchmarks") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from repro.annealing import RangeLimiter  # noqa: E402
from repro.bench import CircuitSpec, generate_circuit  # noqa: E402
from repro.estimator import determine_core  # noqa: E402
from repro.netlist import CustomCell  # noqa: E402
from repro.placement import MoveGenerator, PlacementState  # noqa: E402
from repro.telemetry import (  # noqa: E402
    FileSink,
    NullSink,
    Tracer,
    current_tracer,
    use_tracer,
)

FULL_SIZES = (20, 50, 100, 200)
QUICK_SIZES = (20, 50)

#: Temperature for the mixed anneal: high enough that a realistic
#: fraction of moves is accepted, low enough that some restore.
MIXED_TEMPERATURE = 50.0


def build_state(n: int, seed: int = 0) -> PlacementState:
    """A randomized placement of a synthetic n-cell circuit (25% custom
    cells so pin-group and aspect moves are exercised)."""
    spec = CircuitSpec(
        name=f"moves{n}",
        num_cells=n,
        num_nets=2 * n,
        num_pins=5 * n,
        seed=seed,
        custom_fraction=0.25,
    )
    circuit = generate_circuit(spec)
    state = PlacementState(circuit, determine_core(circuit))
    state.randomize(random.Random(seed))
    return state


def _movable(state: PlacementState) -> List[int]:
    return [i for i in range(len(state.names)) if state.movable[i]]


def _custom_with_groups(state: PlacementState) -> List[int]:
    return [
        i
        for i in range(len(state.names))
        if isinstance(state.cell(i), CustomCell) and state._groups[i]
    ]


def _random_target(state: PlacementState, rng: random.Random):
    core = state.core
    return (rng.uniform(core.x1, core.x2), rng.uniform(core.y1, core.y2))


def _time_loop(body: Callable[[], None], n_moves: int, repeats: int = 3) -> float:
    """Wall-clock the loop ``repeats`` times and keep the best rate.

    Best-of is the standard defence against scheduler noise: interference
    only ever slows a run down, so the fastest repeat is the closest
    estimate of the code's intrinsic speed.
    """
    best = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(n_moves):
            body()
        elapsed = time.perf_counter() - start
        rate = n_moves / elapsed if elapsed > 0 else float("inf")
        if rate > best:
            best = rate
    return best


def bench_kind(
    state: PlacementState,
    kind: str,
    n_moves: int,
    seed: int = 1,
    repeats: int = 3,
) -> Optional[float]:
    """Moves/sec for one move kind (None if the circuit lacks the kind)."""
    rng = random.Random(seed)
    movable = _movable(state)
    if len(movable) < 2:
        return None

    if kind == "displace":

        def body() -> None:
            idx = movable[rng.randrange(len(movable))]
            _, snap = state.move_cell(idx, center=_random_target(state, rng))
            if rng.random() < 0.5:
                state.restore(snap)

    elif kind == "displace_inverted":

        def body() -> None:
            idx = movable[rng.randrange(len(movable))]
            _, snap = state.move_cell_inverted(idx, _random_target(state, rng))
            if rng.random() < 0.5:
                state.restore(snap)

    elif kind == "swap":

        def body() -> None:
            pi = rng.randrange(len(movable))
            pj = rng.randrange(len(movable) - 1)
            if pj >= pi:
                pj += 1
            _, snap = state.swap_cells(movable[pi], movable[pj])
            if rng.random() < 0.5:
                state.restore(snap)

    elif kind == "pin_group":
        customs = _custom_with_groups(state)
        if not customs:
            return None
        sides = ("left", "right", "bottom", "top")

        def body() -> None:
            idx = customs[rng.randrange(len(customs))]
            groups = state._groups[idx]
            key, _ = groups[rng.randrange(len(groups))]
            cell = state.cell(idx)
            _, snap = state.move_pin_group(
                idx,
                key,
                sides[rng.randrange(4)],
                rng.randrange(cell.sites_per_edge),
            )
            if rng.random() < 0.5:
                state.restore(snap)

    elif kind == "reject":
        # The pure rejection cycle: every move is taken back, so this
        # times move + snapshot + restore together.

        def body() -> None:
            idx = movable[rng.randrange(len(movable))]
            _, snap = state.move_cell(idx, center=_random_target(state, rng))
            state.restore(snap)

    else:
        raise ValueError(f"unknown move kind {kind!r}")

    return round(_time_loop(body, n_moves, repeats), 1)


def bench_mixed(
    state: PlacementState, n_steps: int, seed: int = 2, repeats: int = 3
) -> Dict:
    """Drive MoveGenerator.step at a fixed T; returns moves/sec (best of
    ``repeats`` passes) plus the generator's attempt/accept counters."""
    core = state.core
    limiter = RangeLimiter(
        full_span_x=core.width,
        full_span_y=core.height,
        t_infinity=10.0 * MIXED_TEMPERATURE,
    )
    generator = MoveGenerator(state, limiter)
    best = 0.0
    total_attempts = 0
    for _ in range(repeats):
        rng = random.Random(seed)
        start = time.perf_counter()
        attempts = 0
        for _ in range(n_steps):
            a, _ = generator.step(MIXED_TEMPERATURE, rng)
            attempts += a
        elapsed = time.perf_counter() - start
        total_attempts += attempts
        rate = attempts / elapsed if elapsed > 0 else float("inf")
        if rate > best:
            best = rate
    return {
        "moves_per_sec": round(best, 1),
        "attempts": total_attempts,
        "per_kind": {k: list(v) for k, v in sorted(generator.stats.items())},
    }


#: The engine emits one ``anneal.temperature`` event per inner loop; the
#: overhead bench mirrors that cadence: one event every EVENT_EVERY steps.
EVENT_EVERY = 50

#: CI smoke mode fails when the null-sink mixed-anneal rate falls more
#: than this far below the untraced baseline.
MAX_NULL_OVERHEAD_PCT = 3.0


def _mixed_rate(state: PlacementState, limiter, n_steps: int, seed: int) -> float:
    """One timed mixed-anneal pass under the ambient tracer, emitting
    engine-cadence events; returns attempts/sec."""
    tracer = current_tracer()
    rng = random.Random(seed)
    generator = MoveGenerator(state, limiter)
    attempts = 0
    start = time.perf_counter()
    for i in range(n_steps):
        a, _ = generator.step(MIXED_TEMPERATURE, rng)
        attempts += a
        if tracer.enabled and (i + 1) % EVENT_EVERY == 0:
            tracer.event(
                "anneal.temperature",
                step=i,
                T=MIXED_TEMPERATURE,
                attempts=attempts,
                cost=state.cost(),
            )
    elapsed = time.perf_counter() - start
    return attempts / elapsed if elapsed > 0 else float("inf")


def bench_telemetry_overhead(
    state: PlacementState, n_steps: int, seed: int = 3, repeats: int = 3
) -> Dict:
    """Mixed-anneal rate with telemetry off, null sink, and file sink.

    The three variants run interleaved (round-robin per repeat) so slow
    thermal/scheduler drift hits them equally; the best rate per variant
    is kept.  ``null_overhead_pct`` is the instrumentation cost of the
    default (disabled) telemetry path versus the untraced hot loop — the
    number the ISSUE bounds at 3 %.
    """
    import contextlib
    import os
    import tempfile

    core = state.core
    limiter = RangeLimiter(
        full_span_x=core.width,
        full_span_y=core.height,
        t_infinity=10.0 * MIXED_TEMPERATURE,
    )
    fd, trace_path = tempfile.mkstemp(suffix=".jsonl", prefix="bench_trace_")
    os.close(fd)
    best = {"baseline": 0.0, "null_sink": 0.0, "file_sink": 0.0}
    try:
        for _ in range(repeats):
            for mode in ("baseline", "null_sink", "file_sink"):
                if mode == "baseline":
                    ctx = contextlib.nullcontext()
                elif mode == "null_sink":
                    ctx = use_tracer(Tracer(NullSink()))
                else:
                    sink = FileSink(trace_path)
                    ctx = use_tracer(Tracer(sink))
                with ctx:
                    rate = _mixed_rate(state, limiter, n_steps, seed)
                if mode == "file_sink":
                    sink.close()
                if rate > best[mode]:
                    best[mode] = rate
        trace_bytes = os.path.getsize(trace_path)
    finally:
        os.unlink(trace_path)

    def overhead(variant: str) -> float:
        if best["baseline"] <= 0:
            return 0.0
        return round(100.0 * (1.0 - best[variant] / best["baseline"]), 2)

    return {
        "baseline_moves_per_sec": round(best["baseline"], 1),
        "null_sink_moves_per_sec": round(best["null_sink"], 1),
        "file_sink_moves_per_sec": round(best["file_sink"], 1),
        "null_overhead_pct": overhead("null_sink"),
        "file_overhead_pct": overhead("file_sink"),
        "max_null_overhead_pct": MAX_NULL_OVERHEAD_PCT,
        "trace_bytes": trace_bytes,
        "steps": n_steps,
        "repeats": repeats,
    }


def run(sizes, moves_per_kind: int, mixed_steps: int, repeats: int = 3) -> Dict:
    from common import host_metadata  # noqa: E402 (needs the path bootstrap)

    kinds = ("displace", "displace_inverted", "swap", "pin_group", "reject")
    out: Dict = {
        "benchmark": "moves_per_sec",
        "host": host_metadata(),
        "sizes": {},
    }
    for n in sizes:
        state = build_state(n)
        row: Dict = {}
        for kind in kinds:
            rate = bench_kind(state, kind, moves_per_kind, repeats=repeats)
            row[kind] = rate
            rate_s = f"{rate:>10.0f}" if rate is not None else "       n/a"
            print(f"  N={n:<4} {kind:<18} {rate_s} moves/sec", flush=True)
        mixed = bench_mixed(state, mixed_steps, repeats=repeats)
        row["mixed_anneal"] = mixed
        print(
            f"  N={n:<4} {'mixed_anneal':<18} "
            f"{mixed['moves_per_sec']:>10.0f} moves/sec"
        )
        out["sizes"][str(n)] = row

    # Telemetry overhead on the largest size (worst case for per-event
    # payloads relative to nothing; the hot loop itself is size-invariant).
    n = sizes[-1]
    overhead = bench_telemetry_overhead(
        build_state(n), max(mixed_steps, 150), repeats=max(repeats, 3)
    )
    overhead["size"] = n
    out["telemetry_overhead"] = overhead
    print(
        f"  N={n:<4} telemetry overhead: "
        f"null {overhead['null_overhead_pct']:+.1f}%  "
        f"file {overhead['file_overhead_pct']:+.1f}%  "
        f"({overhead['trace_bytes']} trace bytes)"
    )
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small sizes / few moves (CI smoke)"
    )
    parser.add_argument(
        "--sizes", type=str, default=None, help="comma-separated cell counts"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_placement.json",
        help="where to write the JSON results",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="timed passes per kind; the best is reported (default 3, 1 in --quick)",
    )
    args = parser.parse_args(argv)

    if args.sizes:
        sizes = tuple(int(s) for s in args.sizes.split(","))
    else:
        sizes = QUICK_SIZES if args.quick else FULL_SIZES
    moves_per_kind = 150 if args.quick else 600
    mixed_steps = 60 if args.quick else 300
    repeats = args.repeats if args.repeats else (1 if args.quick else 3)

    print(
        f"moves/sec benchmark: sizes={sizes}, {moves_per_kind} moves/kind, "
        f"best of {repeats}"
    )
    results = run(sizes, moves_per_kind, mixed_steps, repeats=repeats)
    results["quick"] = args.quick

    # Registry-backed trajectory: append this result, embed the trailing
    # history for the same config hash so the JSON is self-describing
    # and never silently stale.
    from common import bench_config_sha, record_bench_result  # noqa: E402

    results["config_sha256"] = bench_config_sha()
    history = record_bench_result(
        "moves_per_sec",
        {
            "quick": args.quick,
            "sizes": list(str(n) for n in sizes),
            "null_overhead_pct": results["telemetry_overhead"]["null_overhead_pct"],
            "best_mixed_moves_per_sec": max(
                row["mixed_anneal"]["moves_per_sec"]
                for row in results["sizes"].values()
            ),
        },
    )
    results["history"] = [
        {k: h.get(k) for k in ("recorded", "quick", "best_mixed_moves_per_sec",
                               "null_overhead_pct")}
        for h in history
    ]
    args.output.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nwrote {args.output} ({len(history)} recorded runs for this config)")

    if args.quick:
        # CI smoke gate: the disabled-telemetry hot loop must stay within
        # MAX_NULL_OVERHEAD_PCT of the untraced baseline.
        null_pct = results["telemetry_overhead"]["null_overhead_pct"]
        if null_pct > MAX_NULL_OVERHEAD_PCT:
            print(
                f"FAIL: null-sink telemetry overhead {null_pct:.1f}% exceeds "
                f"{MAX_NULL_OVERHEAD_PCT:.0f}% budget"
            )
            return 1
        print(f"telemetry overhead gate ok ({null_pct:+.1f}% <= "
              f"{MAX_NULL_OVERHEAD_PCT:.0f}%)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
