"""The largest suite circuit (l1: 62 cells, 570 nets, 4309 pins) end to end.

The paper's l1 was its biggest test case (a manual Intel layout, 19 %
TEIL / 50 % area reduction, 4 h on a MicroVAX II).  This bench runs the
complete flow on the synthetic l1 — the scalability proof for the whole
pipeline: stage-1 annealing over 62 rectilinear/custom cells, channel
extraction over hundreds of edges, global routing of 570 multi-pin nets
on a pin-heavy graph, refinement, and the detailed-routability check.
"""

from __future__ import annotations

import pytest

from repro import place_and_route
from repro.bench import load_circuit
from repro.flow import validate_result

from .common import Stopwatch, bench_config, emit


def run_l1():
    with Stopwatch() as sw:
        circuit = load_circuit("l1")
        result = place_and_route(circuit, bench_config(seed=1))
    report = validate_result(result)
    return result, report, sw.seconds


def test_large_circuit(benchmark):
    result, report, elapsed = benchmark.pedantic(run_l1, rounds=1, iterations=1)
    emit(
        "large_circuit",
        "l1 end to end (62 cells, 570 nets, 4309 pins)",
        ["metric", "value"],
        [
            ["TEIL", round(result.teil)],
            ["chip area", round(result.chip_area)],
            ["stage-2 TEIL change %", round(result.teil_change_pct, 1)],
            ["stage-2 area change %", round(result.area_change_pct, 1)],
            ["stage-2 displacement (core-sides)", round(result.mean_stage2_displacement, 3)],
            ["routing overflow", result.routed_overflow],
            ["routability fit fraction", round(report.fit_fraction, 2)],
            ["wall clock (s)", round(elapsed, 1)],
        ],
        notes=(
            "Shape check: the full pipeline completes on the paper's\n"
            "largest circuit with small stage-2 drift and a routable\n"
            "placement (the MicroVAX II needed 4 hours at A_c = 400)."
        ),
    )
    assert not result.refinement.final_pass.routing.unrouted
    assert report.fit_fraction >= 0.7
    assert abs(result.teil_change_pct) < 30
