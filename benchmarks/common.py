"""Shared infrastructure for the experiment benches.

Every table and figure of the paper's evaluation has a bench module that
regenerates it.  The absolute numbers differ from the 1988 testbed (our
circuits are synthetic and the machine is not a MicroVAX II); the benches
print both the measured rows and the paper's published rows so the
*shape* of each result can be compared directly.

Environment knobs:

* ``REPRO_BENCH_PRESET`` — ``smoke`` (default), ``fast``, or ``paper``:
  annealing effort per data point.
* ``REPRO_BENCH_CIRCUITS`` — comma-separated suite circuit names to use
  instead of the default small subset.
* ``REPRO_BENCH_TRIALS`` — trials per configuration (default 1).

Each bench also writes its table to ``benchmarks/results/<name>.txt`` so
EXPERIMENTS.md can reference stable artifacts.
"""

from __future__ import annotations

import os
import time
from dataclasses import replace
from pathlib import Path
from typing import List

from repro import TimberWolfConfig
from repro.bench import SMALL_CIRCUITS, format_table

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: The bench clock.  Always monotonic (never ``time.time``): wall-clock
#: adjustments must not corrupt a measured rate or duration.
bench_clock = time.perf_counter


class Stopwatch:
    """Tiny monotonic stopwatch for the benches.

    Use as a context manager; ``seconds`` holds the elapsed monotonic
    time after the block (and keeps counting until the block exits)::

        with Stopwatch() as sw:
            run_stage1(...)
        print(sw.seconds)
    """

    def __init__(self) -> None:
        self._start = 0.0
        self.seconds = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = bench_clock()
        return self

    def __exit__(self, *exc) -> None:
        self.seconds = bench_clock() - self._start


def host_metadata() -> dict:
    """Host facts stamped into every JSON bench artifact.

    Throughput and speedup numbers are meaningless without the machine
    they were measured on — in particular ``cpu_count`` bounds any
    parallel speedup the artifact can honestly claim.
    """
    import platform

    return {
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
    }


def bench_config(seed: int = 0) -> TimberWolfConfig:
    """The per-data-point annealing effort, selected by environment."""
    preset = os.environ.get("REPRO_BENCH_PRESET", "smoke").lower()
    if preset == "paper":
        return TimberWolfConfig.paper(seed)
    if preset == "fast":
        return TimberWolfConfig.fast(seed)
    if preset == "smoke":
        # Slightly more effort than the unit-test preset: the experiment
        # shapes need real annealing to show up.
        return replace(
            TimberWolfConfig.smoke(seed),
            attempts_per_cell=10,
            m_routes=6,
        )
    raise ValueError(f"unknown REPRO_BENCH_PRESET {preset!r}")


def bench_circuits() -> List[str]:
    names = os.environ.get("REPRO_BENCH_CIRCUITS")
    if names:
        return [n.strip() for n in names.split(",") if n.strip()]
    return list(SMALL_CIRCUITS)


def bench_trials() -> int:
    return int(os.environ.get("REPRO_BENCH_TRIALS", "1"))


def stage1_metrics(result) -> tuple:
    """(residual overlap, legalized TEIL) of a stage-1 result.

    The residual overlap is recorded first (it is the §3.2.2/3.2.3
    metric); the TEIL is then measured on the *legalized* placement so
    that runs which under-penalized overlap pay their true wirelength
    cost — otherwise stacked cells would report absurdly short nets.
    """
    from repro.placement import remove_overlaps

    residual = result.residual_overlap
    remove_overlaps(result.state, min_gap=result.state.circuit.track_spacing)
    return residual, result.state.teil()


def emit(name: str, title: str, headers, rows, notes: str = "") -> str:
    """Print a result table and persist it under benchmarks/results/."""
    table = format_table(headers, rows)
    text = f"== {title} ==\n{table}\n"
    if notes:
        text += notes.rstrip() + "\n"
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    return text


#: The registry the benches append their results to.  Committed to the
#: repo, so the measured trajectory (including machine and config hash)
#: persists across PRs instead of each run overwriting the last.
BENCH_REGISTRY = Path(__file__).resolve().parent.parent / "BENCH_registry.sqlite"


def bench_config_sha() -> str:
    """Content hash of the active bench configuration — two bench rows
    are comparable iff their config hashes match."""
    from repro.qor import config_fingerprint

    return config_fingerprint(bench_config())


def record_bench_result(name: str, payload: dict, registry_path=None) -> list:
    """Append one bench result to the bench registry and return the
    (oldest-first) recorded history for the same bench + config hash.

    The returned history is what the ``BENCH_*.json`` artifacts embed,
    so a stale JSON can always be re-derived from the registry.
    """
    from repro.qor import RunRegistry

    path = Path(registry_path) if registry_path is not None else BENCH_REGISTRY
    sha = bench_config_sha()
    entry = dict(payload)
    entry.setdefault("recorded", time.time())
    entry.setdefault("host", host_metadata())
    with RunRegistry(path) as registry:
        registry.record_bench(name, sha, entry)
        history = registry.bench_history(name, config_sha256=sha)
    return history
