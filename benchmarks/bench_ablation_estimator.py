"""Core-contribution ablation — the dynamic interconnect-area estimator.

The paper's central claim (§1, §2.2, Table 3): because stage 1 reserves
interconnect area around every cell *while placing*, the placement needs
"very little placement modification during detailed routing" — the TEIL
and core area barely change when stage 2 measures the real channel
requirements.

This bench removes the estimator (Cw scaled to zero: cells carry no
margins and the core is sized for cell area only) and reruns the flow.
Without the estimator, stage 2 must blow the placement apart to create
routing space, which shows up as a much larger stage-2 area increase.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro import place_and_route
from repro.bench import CircuitSpec, generate_circuit, mean

from .common import bench_config, bench_trials, emit


def run_estimator_ablation():
    spec = CircuitSpec(
        name="est", num_cells=16, num_nets=60, num_pins=240, seed=29
    )
    circuit = generate_circuit(spec)
    trials = max(1, bench_trials())
    rows = []
    for label, scale in (("with estimator", 1.0), ("without (Cw = 0)", 0.0)):
        area_changes = []
        teil_changes = []
        final_areas = []
        for trial in range(trials):
            cfg = replace(
                bench_config(seed=trial + 7),
                estimator_scale=scale,
                refinement_passes=2,
            )
            result = place_and_route(circuit, cfg)
            # Positive = stage 2 shrank it; negative = stage 2 inflated it.
            area_changes.append(result.area_change_pct)
            teil_changes.append(result.teil_change_pct)
            final_areas.append(result.chip_area)
        rows.append(
            [label, mean(teil_changes), mean(area_changes), mean(final_areas)]
        )
    return rows


def test_ablation_estimator(benchmark):
    rows = benchmark.pedantic(run_estimator_ablation, rounds=1, iterations=1)
    emit(
        "ablation_estimator",
        "Ablation (2.2): dynamic interconnect-area estimator on/off",
        [
            "configuration",
            "stage-2 TEIL change %",
            "stage-2 area change %",
            "final chip area",
        ],
        [
            [label, round(t, 1), round(a, 1), round(area)]
            for label, t, a, area in rows
        ],
        notes=(
            "Shape check: with the estimator, stage 1 has already reserved\n"
            "the routing space and the finished chip is smaller; without it\n"
            "stage 2 must create the space after the fact and the final\n"
            "chip area is substantially larger (the paper's §2.2 claim)."
        ),
    )
    with_est = rows[0]
    without = rows[1]
    # The estimator's value: stage 1 having reserved the right space,
    # stage 2 barely changes the placement; without it, stage 2 must blow
    # the chip apart to create the routing room (the Table-3 story).
    assert abs(with_est[2]) < abs(without[2])
