#!/usr/bin/env python
"""CI rehearsal of the kill-and-resume guarantee, across real processes.

The drill:

1. Run the flow to completion in a subprocess → the reference JSON.
2. Run it again with checkpointing armed, SIGTERM it mid-anneal, and
   require exit status 3 (graceful interrupt) plus a checkpoint on disk.
3. Resume from the newest checkpoint with ``python -m repro resume`` and
   require the final JSON to match the reference exactly (all placement
   coordinates, costs, and routing — only wall-clock fields may differ).

Exits non-zero, with a diagnostic, on any deviation.  Artifacts (the
checkpoints, both JSON dumps, the trace) are left in ``--workdir`` for
the CI job to upload.

With ``--chains K --workers W`` the same drill runs the multi-chain
stage-1 (phase ``parallel1`` checkpoints at round boundaries); pick a
small ``--exchange-period`` so a round-boundary checkpoint lands before
the SIGTERM does.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

#: Fields that legitimately differ between the reference and resumed
#: runs: wall-clock timings and resume provenance.
VOLATILE_KEYS = {"elapsed_seconds", "seconds", "resumed_from", "budget_report"}

EXIT_INTERRUPTED = 3


def scrub(value):
    """Recursively drop wall-clock / provenance fields."""
    if isinstance(value, dict):
        return {k: scrub(v) for k, v in value.items() if k not in VOLATILE_KEYS}
    if isinstance(value, list):
        return [scrub(v) for v in value]
    return value


def run(cmd, env, **kwargs):
    print("+", " ".join(str(c) for c in cmd), flush=True)
    return subprocess.run([str(c) for c in cmd], env=env, **kwargs)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workdir", default="/tmp/kill_resume")
    parser.add_argument("--circuit", default="i1", help="suite circuit name")
    parser.add_argument("--preset", default="smoke")
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument(
        "--kill-after",
        type=float,
        default=1.0,
        help="seconds to let the victim run before SIGTERM",
    )
    parser.add_argument(
        "--chains",
        type=int,
        default=1,
        help="stage-1 annealing chains (>1 drills the parallel1 "
        "round-boundary checkpoints)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the parallel layer",
    )
    parser.add_argument(
        "--exchange-period",
        type=int,
        default=10,
        help="temperature decrements between chain exchanges (small "
        "values land a checkpoint early, before the kill)",
    )
    parser.add_argument(
        "--mover",
        choices=("serial", "batched"),
        default="serial",
        help="move engine under drill: the batched sweep kernel must "
        "resume bit-for-bit just like the serial mover",
    )
    args = parser.parse_args()

    work = Path(args.workdir)
    work.mkdir(parents=True, exist_ok=True)
    ckpt_dir = work / "checkpoints"
    env = dict(os.environ)
    repo = Path(__file__).resolve().parent.parent
    env["PYTHONPATH"] = str(repo / "src")

    circuit_file = work / f"{args.circuit}.twmc"
    base_json = work / "reference.json"
    resumed_json = work / "resumed.json"

    run(
        ["python", "-m", "repro", "generate", args.circuit, circuit_file],
        env, check=True,
    )
    place = [
        "python", "-m", "repro", "place", circuit_file,
        "--preset", args.preset, "--seed", str(args.seed),
    ]
    if args.mover != "serial":
        place += ["--mover", args.mover]
    if args.chains != 1 or args.workers != 1:
        place += [
            "--chains", str(args.chains),
            "--workers", str(args.workers),
            "--exchange-period", str(args.exchange_period),
        ]
    run(place + ["--json", base_json], env, check=True)

    # The victim: checkpoint every temperature, killed mid-run.  A tight
    # cadence guarantees a checkpoint exists whenever the signal lands.
    victim = subprocess.Popen(
        [str(c) for c in place] + [
            "--json", str(work / "interrupted.json"),
            "--checkpoint-dir", str(ckpt_dir),
            "--checkpoint-every", "1",
            "--trace", str(work / "interrupted_trace.jsonl"),
        ],
        env=env,
    )
    time.sleep(args.kill_after)
    victim.send_signal(signal.SIGTERM)
    status = victim.wait(timeout=120)
    if status == 0:
        print(
            f"victim finished before the SIGTERM landed (after "
            f"{args.kill_after}s); lower --kill-after",
            file=sys.stderr,
        )
        return 1
    if status != EXIT_INTERRUPTED:
        print(
            f"victim exited with {status}, expected {EXIT_INTERRUPTED} "
            "(graceful interrupt)",
            file=sys.stderr,
        )
        return 1

    checkpoints = sorted(ckpt_dir.glob("*.ckpt"))
    if not checkpoints:
        print("no checkpoint was written before the kill", file=sys.stderr)
        return 1
    newest = max(checkpoints, key=lambda p: (p.stat().st_mtime, p.name))
    print(f"killed at {newest.name}; resuming")

    run(
        ["python", "-m", "repro", "resume", newest, "--json", resumed_json],
        env, check=True,
    )

    reference = scrub(json.loads(base_json.read_text()))
    resumed = scrub(json.loads(resumed_json.read_text()))
    if reference != resumed:
        for key in sorted(set(reference) | set(resumed)):
            if reference.get(key) != resumed.get(key):
                print(f"MISMATCH in {key!r}", file=sys.stderr)
        print(
            "resumed run does not reproduce the uninterrupted run",
            file=sys.stderr,
        )
        return 1
    print("kill-and-resume OK: resumed run is identical to the reference")
    return 0


if __name__ == "__main__":
    sys.exit(main())
