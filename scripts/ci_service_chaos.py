#!/usr/bin/env python
"""Chaos drill and load smoke for the placement service.

Chaos mode (the default):

1. Submit a batch of jobs (the i1 benchmark circuit, smoke preset,
   seeds cycling over a small set) into a fresh service root.
2. Run the supervisor as a real subprocess with ``--exit-when-idle``.
3. While the fleet anneals, SIGKILL at least ``--worker-kills`` workers
   (only ones that have already checkpointed, so the resume path is the
   one being exercised) and SIGKILL + restart the supervisor itself.
4. When the queue drains, assert:
   - every submitted job is ``done`` — none lost, dead, or shed;
   - the event journal shows exactly one ``job_done`` per job;
   - every job's ``result.json`` is identical to a fault-free reference
     run of the same seed, after scrubbing volatile keys — the service's
     crash recovery must not change QoR by a single unit.
5. Record throughput (jobs/min) and p95 queue latency into
   ``BENCH_service.json``.

Load mode (``--mode load``) is the same pipeline minus the violence:
a pure throughput/latency measurement for the benchmark file.

Exits non-zero with a diagnostic on any deviation.  Artifacts (the
service root with ``events.jsonl``, per-attempt worker logs, supervisor
logs, the bench document) are left in ``--workdir`` for CI to upload.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = str(REPO / "src")
sys.path.insert(0, SRC)

from repro.service import ServicePaths, ServiceView  # noqa: E402

#: Keys that legitimately differ between a fault-free run and a
#: crash-recovered one (timings and resume provenance) — everything
#: else must match exactly.
VOLATILE_KEYS = {"elapsed_seconds", "seconds", "resumed_from", "budget_report"}

SEEDS = (3, 4, 5)


def scrub(value):
    if isinstance(value, dict):
        return {k: scrub(v) for k, v in value.items() if k not in VOLATILE_KEYS}
    if isinstance(value, list):
        return [scrub(v) for v in value]
    return value


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def make_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [SRC, os.environ.get("PYTHONPATH")])
    )
    return env


def pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except OSError:
        return False
    return True


def generate_circuit(path: Path) -> None:
    from repro.bench import spec_for
    from repro.bench.circuits import generate_circuit as build
    from repro.netlist import dump

    dump(build(spec_for("i1")), path)


def reference_results(circuit: Path, seeds, workdir: Path):
    """Fault-free ``place`` per seed, via the same CLI the workers use."""
    refs = {}
    for seed in seeds:
        out = workdir / f"reference-seed{seed}.json"
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro", "place", str(circuit),
                "--preset", "smoke", "--seed", str(seed), "--json", str(out),
            ],
            env=make_env(),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
        )
        if proc.returncode != 0:
            fail(f"reference run seed={seed} failed: {proc.stderr.decode()}")
        refs[seed] = scrub(json.loads(out.read_text()))
    return refs


def start_supervisor(root: Path, workers: int, log_path: Path, retry_base: float):
    log = open(log_path, "a")
    proc = subprocess.Popen(
        [
            sys.executable, "-u", "-m", "repro", "service", "run", str(root),
            "--workers", str(workers), "--poll-interval", "0.1",
            "--retry-base", str(retry_base), "--retry-cap", "2.0",
            "--exit-when-idle",
        ],
        env=make_env(),
        stdout=log,
        stderr=subprocess.STDOUT,
    )
    return proc, log


def submit_jobs(root: Path, circuit: Path, count: int):
    job_seeds = {}
    with ServiceView(root) as view:
        for index in range(count):
            seed = SEEDS[index % len(SEEDS)]
            job = view.submit(
                circuit,
                preset="smoke",
                seed=seed,
                checkpoint_every=1,
                tenant=f"tenant-{index % 2}",
            )
            job_seeds[job.job_id] = seed
    return job_seeds


def terminal_count(counts) -> int:
    return sum(counts.get(state, 0) for state in ("done", "dead", "shed"))


def run_fleet(root, workers, njobs, *, worker_kills, supervisor_restarts,
              retry_base, timeout, sup_log):
    """Drive the supervisor (with optional violence) until the queue drains.

    Returns (killed_worker_pids, restarts_done).
    """
    paths = ServicePaths(root)
    proc, log = start_supervisor(root, workers, sup_log, retry_base)
    killed = []
    restarts_done = 0
    deadline = time.monotonic() + timeout
    try:
        while True:
            if time.monotonic() > deadline:
                fail(f"queue did not drain within {timeout}s "
                     f"(killed={killed}, restarts={restarts_done})")
            with ServiceView(root, readonly=True) as view:
                counts = view.counts()
                running = view.jobs(state="running")
            if terminal_count(counts) >= njobs:
                break
            if len(killed) < worker_kills:
                for row in running:
                    pid = row.worker_pid
                    if not pid or pid in killed or not pid_alive(pid):
                        continue
                    # Only kill workers that already checkpointed: the
                    # retry must land on the resume path.
                    if not any(paths.checkpoint_dir(row.job_id).glob("*.ckpt")):
                        continue
                    try:
                        os.kill(pid, signal.SIGKILL)
                    except OSError:
                        continue
                    killed.append(pid)
                    print(f"chaos: SIGKILLed worker {pid} ({row.job_id})")
                    break
            if (
                restarts_done < supervisor_restarts
                and killed
                and counts.get("done", 0) >= 1
                and proc.poll() is None
            ):
                os.kill(proc.pid, signal.SIGKILL)
                proc.wait()
                log.close()
                restarts_done += 1
                print(f"chaos: SIGKILLed supervisor {proc.pid}; restarting")
                time.sleep(0.5)
                proc, log = start_supervisor(root, workers, sup_log, retry_base)
            elif proc.poll() is not None:
                fail(f"supervisor exited early with {proc.returncode} "
                     f"(see {sup_log})")
            time.sleep(0.2)
        if proc.wait(timeout=120.0) != 0:
            fail(f"supervisor exited {proc.returncode} after drain")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
        log.close()
    return killed, restarts_done


def verify_outcomes(root, job_seeds, refs):
    paths = ServicePaths(root)
    with ServiceView(root, readonly=True) as view:
        jobs = {job.job_id: job for job in view.jobs(limit=10_000)}
        events = view.history(limit=100_000)
    if set(jobs) != set(job_seeds):
        fail(f"job set changed: submitted {sorted(job_seeds)}, "
             f"store has {sorted(jobs)}")
    not_done = {j.job_id: j.state for j in jobs.values() if j.state != "done"}
    if not_done:
        fail(f"jobs lost to the chaos: {not_done}")
    done_events = [e["job_id"] for e in events if e["event"] == "job_done"]
    duplicates = {j for j in done_events if done_events.count(j) > 1}
    if duplicates:
        fail(f"duplicate job_done events for {sorted(duplicates)}")
    if set(done_events) != set(job_seeds):
        fail("journal job_done set does not match the submitted set")
    for job_id, seed in job_seeds.items():
        result_path = paths.result(job_id)
        if not result_path.exists():
            fail(f"{job_id}: done but no result.json")
        got = scrub(json.loads(result_path.read_text()))
        if got != refs[seed]:
            fail(f"{job_id}: QoR diverged from fault-free seed={seed} reference")
    return events, jobs


def latency_stats(events):
    submitted = {}
    first_start = {}
    for event in events:
        job_id = event.get("job_id")
        if event["event"] == "job_submitted":
            submitted[job_id] = event["ts"]
        elif event["event"] == "job_start" and job_id not in first_start:
            first_start[job_id] = event["ts"]
    waits = sorted(
        first_start[j] - submitted[j] for j in first_start if j in submitted
    )
    if not waits:
        return {"p50_queue_latency_s": None, "p95_queue_latency_s": None}
    pick = lambda q: waits[min(len(waits) - 1, int(q * (len(waits) - 1)))]  # noqa: E731
    return {
        "p50_queue_latency_s": round(pick(0.50), 3),
        "p95_queue_latency_s": round(pick(0.95), 3),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workdir", required=True)
    parser.add_argument("--mode", choices=("chaos", "load"), default="chaos")
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized batch (fewer jobs, same guarantees)")
    parser.add_argument("--jobs", type=int, default=None)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--worker-kills", type=int, default=2)
    parser.add_argument("--supervisor-restarts", type=int, default=1)
    parser.add_argument("--timeout", type=float, default=600.0)
    parser.add_argument("--output", default=None,
                        help="bench JSON path (default workdir/BENCH_service.json)")
    args = parser.parse_args()

    workdir = Path(args.workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    root = workdir / "svc"
    njobs = args.jobs or (6 if args.quick else 12)
    chaos = args.mode == "chaos"
    worker_kills = args.worker_kills if chaos else 0
    restarts = args.supervisor_restarts if chaos else 0
    retry_base = 0.2  # fast retries: chaos cares about recovery, not pacing

    circuit = workdir / "i1.twmc"
    generate_circuit(circuit)
    seeds_used = sorted({SEEDS[i % len(SEEDS)] for i in range(njobs)})
    print(f"mode={args.mode} jobs={njobs} workers={args.workers} "
          f"worker_kills={worker_kills} supervisor_restarts={restarts}")
    refs = reference_results(circuit, seeds_used, workdir)

    job_seeds = submit_jobs(root, circuit, njobs)
    started = time.monotonic()
    killed, restarts_done = run_fleet(
        root, args.workers, njobs,
        worker_kills=worker_kills,
        supervisor_restarts=restarts,
        retry_base=retry_base,
        timeout=args.timeout,
        sup_log=workdir / "supervisor.log",
    )
    elapsed = time.monotonic() - started

    if chaos and len(killed) < args.worker_kills:
        fail(f"only {len(killed)}/{args.worker_kills} workers were killed "
             "before the queue drained — batch too small for the drill")
    if chaos and restarts_done < restarts:
        fail(f"only {restarts_done}/{restarts} supervisor restarts happened")

    events, jobs = verify_outcomes(root, job_seeds, refs)
    retried = sum(1 for j in jobs.values() if j.attempts > 1)

    bench = {
        "benchmark": "service_chaos" if chaos else "service_load",
        "mode": args.mode,
        "circuit": "i1",
        "preset": "smoke",
        "jobs": njobs,
        "workers": args.workers,
        "worker_kills": len(killed),
        "supervisor_restarts": restarts_done,
        "jobs_retried": retried,
        "elapsed_seconds": round(elapsed, 2),
        "jobs_per_min": round(njobs / elapsed * 60.0, 2),
        "qor_identical_to_reference": True,
        **latency_stats(events),
    }
    out = Path(args.output) if args.output else workdir / "BENCH_service.json"
    out.write_text(json.dumps(bench, indent=2) + "\n")
    print(json.dumps(bench, indent=2))
    print(f"ok: {njobs} jobs done, none lost, QoR identical to fault-free "
          f"reference ({len(killed)} worker kills, {restarts_done} "
          f"supervisor restarts, {retried} jobs retried)")


if __name__ == "__main__":
    main()
