#!/usr/bin/env python
"""CI rehearsal of the observability server, across real processes.

The drill:

1. Run one flow to completion into a runs root (the "done" run).
2. Launch a second, long flow in a subprocess (the "live" run) and wait
   for its first heartbeat.
3. Launch ``python -m repro serve`` as a third subprocess on an
   ephemeral port and parse the bound URL from its banner.
4. Against that server:
   - ``GET /runs`` must list both runs, with the completed one ``done``
     and the in-flight one ``running``;
   - ``GET /metrics`` must be valid Prometheus exposition (proved by
     the strict ``parse_prometheus`` round-trip) and carry samples for
     the live run;
   - ``GET /runs/<live>/events`` must deliver at least one ``beat``
     SSE event (the stream transcript is saved as an artifact);
   - ``GET /runs/<live>/health`` must produce the analytics document.
5. ``python -m repro status`` must exit 0 against the live run while it
   is beating.

Exits non-zero, with a diagnostic, on any deviation.  Artifacts (the
rundirs, the SSE transcript, server/flow logs) are left in
``--workdir`` for the CI job to upload.
"""

from __future__ import annotations

import argparse
import json
import re
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = str(REPO / "src")
sys.path.insert(0, SRC)

from repro.qor import parse_prometheus  # noqa: E402


def run_cli(args, env, **kw):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args], env=env, **kw
    )


def popen_cli(args, env, **kw):
    return subprocess.Popen(
        [sys.executable, "-u", "-m", "repro", *args], env=env, **kw
    )


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def fetch(url: str, timeout: float = 15.0) -> bytes:
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.read()


def wait_for(predicate, timeout: float, what: str):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(0.25)
    fail(f"timed out after {timeout:.0f}s waiting for {what}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workdir", default="/tmp/obs_ci")
    parser.add_argument(
        "--sse-timeout", type=float, default=30.0,
        help="seconds to wait for the first SSE beat event",
    )
    args = parser.parse_args()

    workdir = Path(args.workdir)
    runs = workdir / "runs"
    runs.mkdir(parents=True, exist_ok=True)
    import os

    env = dict(os.environ, PYTHONPATH=SRC)

    circuit = workdir / "i1.twmc"
    run_cli(["generate", "i1", str(circuit)], env, check=True)

    # 1. The completed run.
    print("== completed flow (smoke preset) ==")
    run_cli(
        [
            "place", str(circuit), "--preset", "smoke", "--seed", "7",
            "--rundir", str(runs / "done-run"),
            "--registry", str(runs / "registry.sqlite"),
        ],
        env, check=True,
        stdout=(workdir / "done-run.log").open("w"), stderr=subprocess.STDOUT,
    )

    # 2. The live run: paper preset anneals for minutes; we kill it
    #    once the assertions are through.  A wall budget is the safety
    #    net if this script dies first.
    print("== live flow (paper preset, killed after the assertions) ==")
    live = popen_cli(
        [
            "place", str(circuit), "--preset", "paper", "--seed", "1",
            "--budget-seconds", "600",
            "--rundir", str(runs / "live-run"),
            "--registry", str(runs / "registry.sqlite"),
        ],
        env,
        stdout=(workdir / "live-run.log").open("w"), stderr=subprocess.STDOUT,
    )
    server = None
    try:
        wait_for(
            lambda: (runs / "live-run" / "heartbeat.json").is_file(),
            60.0, "the live run's first heartbeat",
        )

        # 3. The server, on an ephemeral port.
        server = popen_cli(
            ["serve", str(runs), "--port", "0"],
            env,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        banner = server.stdout.readline()
        match = re.search(r"at (http://[\d.]+:\d+)", banner)
        if not match:
            fail(f"could not parse server banner: {banner!r}")
        base = match.group(1)
        print(f"server at {base}")

        # 4a. /runs lists both, with the right states.
        def states():
            listing = json.loads(fetch(base + "/runs"))["runs"]
            by_dir = {
                Path(r["rundir"]).name: r["state"]
                for r in listing if r["rundir"]
            }
            if by_dir.get("done-run") == "done" and by_dir.get(
                "live-run"
            ) == "running":
                return listing
            return None

        listing = wait_for(states, 30.0, "/runs to show done + running")
        print(f"/runs ok: {[(r['run_id'], r['state']) for r in listing]}")
        live_id = next(
            r["run_id"] for r in listing
            if r["rundir"] and Path(r["rundir"]).name == "live-run"
        )

        # 4b. /metrics is valid exposition with live-run samples.
        metrics = fetch(base + "/metrics").decode("utf-8")
        (workdir / "metrics.prom").write_text(metrics)
        parsed = parse_prometheus(metrics)
        info_keys = [k for k in parsed if k.startswith("repro_run_info")]
        if len(info_keys) < 2:
            fail(f"expected >=2 repro_run_info samples, got {info_keys}")
        if not any(f'run_id="{live_id}"' in k for k in parsed):
            fail(f"no /metrics sample labelled with live run {live_id}")
        print(f"/metrics ok: {len(parsed)} samples parse round-trip")

        # 4c. SSE delivers at least one beat event.
        sse_path = workdir / "sse_stream.txt"
        beats = 0
        deadline = time.monotonic() + args.sse_timeout
        request = urllib.request.urlopen(
            f"{base}/runs/{live_id}/events?timeout={args.sse_timeout:.0f}",
            timeout=args.sse_timeout + 10,
        )
        with request, sse_path.open("wb") as transcript:
            buffer = b""
            while time.monotonic() < deadline:
                chunk = request.read(1)
                if not chunk:
                    break
                transcript.write(chunk)
                buffer += chunk
                beats = buffer.count(b"event: beat")
                if beats >= 1 and buffer.endswith(b"\n\n"):
                    break
        if beats < 1:
            fail(f"SSE stream delivered no beat events (see {sse_path})")
        print(f"/events ok: {beats} beat event(s) streamed -> {sse_path}")

        # 4d. /health produces the analytics document.
        health = json.loads(fetch(f"{base}/runs/{live_id}/health"))
        for key in ("state", "acceptance", "cost", "eta", "divergence"):
            if key not in health:
                fail(f"/health missing {key!r}: {sorted(health)}")
        if health["state"] != "running":
            fail(f"/health state {health['state']!r}, expected running")
        print(
            f"/health ok: state={health['state']} "
            f"flags={health['flags']} anneal_beats={health['anneal_beats']}"
        )

        # 5. status exits 0 against the beating run.
        status = run_cli(["status", str(runs / "live-run")], env,
                         stdout=subprocess.DEVNULL)
        if status.returncode != 0:
            fail(f"status exited {status.returncode} on a live run")
        print("status ok: exit 0 while the run beats")
    finally:
        if server is not None:
            server.terminate()
            server.wait(timeout=10)
        live.kill()
        live.wait(timeout=10)

    print("OBS CI PASSED")
    return 0


if __name__ == "__main__":
    sys.exit(main())
