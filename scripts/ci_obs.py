#!/usr/bin/env python
"""CI rehearsal of the observability server, across real processes.

The drill:

1. Run one flow to completion into a runs root (the "done" run).
2. Launch a second, long flow in a subprocess (the "live" run) and wait
   for its first heartbeat.
3. Launch ``python -m repro serve`` as a third subprocess on an
   ephemeral port and parse the bound URL from its banner.
4. Against that server:
   - ``GET /runs`` must list both runs, with the completed one ``done``
     and the in-flight one ``running``;
   - ``GET /metrics`` must be valid Prometheus exposition (proved by
     the strict ``parse_prometheus`` round-trip) and carry samples for
     the live run;
   - ``GET /runs/<live>/events`` must deliver at least one ``beat``
     SSE event (the stream transcript is saved as an artifact);
   - ``GET /runs/<live>/health`` must produce the analytics document.
5. ``python -m repro status`` must exit 0 against the live run while it
   is beating.
6. A third completed run (N=50, batched mover) executes under
   ``--trace`` and ``--profile``; against the server,
   ``/runs/<id>/trace`` must return its merged span tree (JSON and
   HTML) and ``/runs/<id>/profile`` non-empty collapsed stacks with
   stage attribution.  The collapsed file is kept as the flamegraph
   artifact.
7. The distributed-trace drill: a service job is submitted, its first
   worker is SIGKILLed after a checkpoint, and once the retry completes
   the service-enabled server's ``/trace/<trace_id>`` must join both
   attempts and the supervisor journal under the single trace id minted
   at submit; ``/metrics`` must export the ``repro_jobs`` state gauges
   and queue-latency quantiles.

Exits non-zero, with a diagnostic, on any deviation.  Artifacts (the
rundirs, the SSE transcript, the collapsed profile, server/flow logs)
are left in ``--workdir`` for the CI job to upload.
"""

from __future__ import annotations

import argparse
import json
import re
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = str(REPO / "src")
sys.path.insert(0, SRC)

from repro.qor import parse_prometheus  # noqa: E402


def run_cli(args, env, **kw):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args], env=env, **kw
    )


def popen_cli(args, env, **kw):
    return subprocess.Popen(
        [sys.executable, "-u", "-m", "repro", *args], env=env, **kw
    )


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def fetch(url: str, timeout: float = 15.0) -> bytes:
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.read()


def wait_for(predicate, timeout: float, what: str):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(0.25)
    fail(f"timed out after {timeout:.0f}s waiting for {what}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workdir", default="/tmp/obs_ci")
    parser.add_argument(
        "--sse-timeout", type=float, default=30.0,
        help="seconds to wait for the first SSE beat event",
    )
    args = parser.parse_args()

    workdir = Path(args.workdir)
    runs = workdir / "runs"
    runs.mkdir(parents=True, exist_ok=True)
    import os

    env = dict(os.environ, PYTHONPATH=SRC)

    circuit = workdir / "i1.twmc"
    run_cli(["generate", "i1", str(circuit)], env, check=True)

    # 1. The completed run.
    print("== completed flow (smoke preset) ==")
    run_cli(
        [
            "place", str(circuit), "--preset", "smoke", "--seed", "7",
            "--rundir", str(runs / "done-run"),
            "--registry", str(runs / "registry.sqlite"),
        ],
        env, check=True,
        stdout=(workdir / "done-run.log").open("w"), stderr=subprocess.STDOUT,
    )

    # 1b. The traced + profiled run: batched mover on an N=50 circuit,
    #     the configuration the profiler overhead budget is written for.
    print("== traced flow (batched N=50, --trace --profile) ==")
    from dataclasses import replace as spec_replace

    from repro.bench import spec_for
    from repro.bench.circuits import generate_circuit
    from repro.netlist import dump as dump_circuit

    big = workdir / "n50.twmc"
    dump_circuit(
        generate_circuit(spec_replace(spec_for("i1"), name="n50",
                                      num_cells=50)),
        big,
    )
    traced_dir = runs / "traced-run"
    traced_dir.mkdir(parents=True, exist_ok=True)
    run_cli(
        [
            "place", str(big), "--preset", "smoke", "--seed", "11",
            "--mover", "batched",
            "--trace", str(traced_dir / "trace.jsonl"),
            "--profile",
            "--rundir", str(traced_dir),
            "--registry", str(runs / "registry.sqlite"),
        ],
        env, check=True,
        stdout=(workdir / "traced-run.log").open("w"),
        stderr=subprocess.STDOUT,
    )
    collapsed = traced_dir / "profile.collapsed"
    if not collapsed.is_file() or not collapsed.read_text().strip():
        fail(f"traced run produced no collapsed stacks at {collapsed}")

    # 2. The live run: paper preset anneals for minutes; we kill it
    #    once the assertions are through.  A wall budget is the safety
    #    net if this script dies first.
    print("== live flow (paper preset, killed after the assertions) ==")
    live = popen_cli(
        [
            "place", str(circuit), "--preset", "paper", "--seed", "1",
            "--budget-seconds", "600",
            "--rundir", str(runs / "live-run"),
            "--registry", str(runs / "registry.sqlite"),
        ],
        env,
        stdout=(workdir / "live-run.log").open("w"), stderr=subprocess.STDOUT,
    )
    server = None
    try:
        wait_for(
            lambda: (runs / "live-run" / "heartbeat.json").is_file(),
            60.0, "the live run's first heartbeat",
        )

        # 3. The server, on an ephemeral port.
        server = popen_cli(
            ["serve", str(runs), "--port", "0"],
            env,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        banner = server.stdout.readline()
        match = re.search(r"at (http://[\d.]+:\d+)", banner)
        if not match:
            fail(f"could not parse server banner: {banner!r}")
        base = match.group(1)
        print(f"server at {base}")

        # 4a. /runs lists both, with the right states.
        def states():
            listing = json.loads(fetch(base + "/runs"))["runs"]
            by_dir = {
                Path(r["rundir"]).name: r["state"]
                for r in listing if r["rundir"]
            }
            if by_dir.get("done-run") == "done" and by_dir.get(
                "live-run"
            ) == "running":
                return listing
            return None

        listing = wait_for(states, 30.0, "/runs to show done + running")
        print(f"/runs ok: {[(r['run_id'], r['state']) for r in listing]}")
        live_id = next(
            r["run_id"] for r in listing
            if r["rundir"] and Path(r["rundir"]).name == "live-run"
        )

        # 4b. /metrics is valid exposition with live-run samples.
        metrics = fetch(base + "/metrics").decode("utf-8")
        (workdir / "metrics.prom").write_text(metrics)
        parsed = parse_prometheus(metrics)
        info_keys = [k for k in parsed if k.startswith("repro_run_info")]
        if len(info_keys) < 2:
            fail(f"expected >=2 repro_run_info samples, got {info_keys}")
        if not any(f'run_id="{live_id}"' in k for k in parsed):
            fail(f"no /metrics sample labelled with live run {live_id}")
        print(f"/metrics ok: {len(parsed)} samples parse round-trip")

        # 4c. SSE delivers at least one beat event.
        sse_path = workdir / "sse_stream.txt"
        beats = 0
        deadline = time.monotonic() + args.sse_timeout
        request = urllib.request.urlopen(
            f"{base}/runs/{live_id}/events?timeout={args.sse_timeout:.0f}",
            timeout=args.sse_timeout + 10,
        )
        with request, sse_path.open("wb") as transcript:
            buffer = b""
            while time.monotonic() < deadline:
                chunk = request.read(1)
                if not chunk:
                    break
                transcript.write(chunk)
                buffer += chunk
                beats = buffer.count(b"event: beat")
                if beats >= 1 and buffer.endswith(b"\n\n"):
                    break
        if beats < 1:
            fail(f"SSE stream delivered no beat events (see {sse_path})")
        print(f"/events ok: {beats} beat event(s) streamed -> {sse_path}")

        # 4d. /health produces the analytics document.
        health = json.loads(fetch(f"{base}/runs/{live_id}/health"))
        for key in ("state", "acceptance", "cost", "eta", "divergence"):
            if key not in health:
                fail(f"/health missing {key!r}: {sorted(health)}")
        if health["state"] != "running":
            fail(f"/health state {health['state']!r}, expected running")
        print(
            f"/health ok: state={health['state']} "
            f"flags={health['flags']} anneal_beats={health['anneal_beats']}"
        )

        # 4e. /runs/<traced>/trace serves the merged span tree.
        traced_id = next(
            r["run_id"] for r in json.loads(fetch(base + "/runs"))["runs"]
            if r["rundir"] and Path(r["rundir"]).name == "traced-run"
        )
        trace_doc = json.loads(fetch(f"{base}/runs/{traced_id}/trace"))
        if not trace_doc.get("trace_id"):
            fail(f"trace doc has no trace_id: {sorted(trace_doc)}")
        if trace_doc.get("span_count", 0) < 3:
            fail(f"trace doc has {trace_doc.get('span_count')} spans")
        span_names = set()

        def collect(node):
            span_names.add(node["name"])
            for child in node.get("children", ()):
                collect(child)

        for process in trace_doc["processes"]:
            for root in process["spans"]:
                collect(root)
        for required in ("flow", "stage1", "anneal"):
            if required not in span_names:
                fail(f"span {required!r} missing from trace: {span_names}")
        html = fetch(f"{base}/runs/{traced_id}/trace?format=html").decode()
        if trace_doc["trace_id"] not in html:
            fail("HTML waterfall does not mention the trace id")
        print(
            f"/trace ok: {trace_doc['span_count']} spans under "
            f"{trace_doc['trace_id'][:8]}… with waterfall HTML"
        )

        # 4f. /runs/<traced>/profile serves collapsed stacks with
        #     stage attribution; keep the flamegraph input as artifact.
        prof_text = fetch(f"{base}/runs/{traced_id}/profile").decode()
        if not prof_text.strip():
            fail("profile endpoint returned empty collapsed stacks")
        prof_doc = json.loads(
            fetch(f"{base}/runs/{traced_id}/profile?format=json")
        )
        if prof_doc.get("samples", 0) < 1:
            fail(f"profile doc has no samples: {prof_doc}")
        if "stages" not in prof_doc:
            fail(f"profile doc has no stage attribution: {sorted(prof_doc)}")
        (workdir / "profile.collapsed").write_text(prof_text)
        print(
            f"/profile ok: {prof_doc['samples']} samples, stages "
            f"{sorted(prof_doc['stages'])} -> {workdir / 'profile.collapsed'}"
        )

        # 5. status exits 0 against the beating run.
        status = run_cli(["status", str(runs / "live-run")], env,
                         stdout=subprocess.DEVNULL)
        if status.returncode != 0:
            fail(f"status exited {status.returncode} on a live run")
        print("status ok: exit 0 while the run beats")
    finally:
        if server is not None:
            server.terminate()
            server.wait(timeout=10)
        live.kill()
        live.wait(timeout=10)

    service_trace_drill(workdir, circuit, env)

    print("OBS CI PASSED")
    return 0


def service_trace_drill(workdir: Path, circuit: Path, env) -> None:
    """Step 7: one trace id must span a SIGKILLed-and-retried service
    job — minted at submit, carried by both worker attempts, joined
    with the supervisor journal by ``/trace/<trace_id>``."""
    import os
    import signal

    from repro.service import ServicePaths, ServiceView

    print("== service trace drill (SIGKILL first attempt, retry) ==")
    root = workdir / "service"
    submitted = run_cli(
        [
            "service", "submit", str(root), str(circuit),
            "--preset", "smoke", "--seed", "3",
            "--checkpoint-every", "1", "--json",
        ],
        env, check=True, stdout=subprocess.PIPE, text=True,
    )
    job = json.loads(submitted.stdout)
    job_id, trace_id = job["job_id"], job["trace_id"]
    if not trace_id:
        fail("service submit minted no trace_id")
    print(f"submitted {job_id} under trace {trace_id[:8]}…")

    paths = ServicePaths(root)
    supervisor = popen_cli(
        [
            "service", "run", str(root), "--workers", "1",
            "--poll-interval", "0.05", "--retry-base", "0.2",
            "--exit-when-idle",
        ],
        env,
        stdout=(workdir / "supervisor.log").open("w"),
        stderr=subprocess.STDOUT,
    )
    try:
        # Kill the first worker only once it has checkpointed, so the
        # retry exercises the resume path.
        def killable_pid():
            with ServiceView(root) as view:
                row = view.job(job_id)
            if (
                row.state == "running"
                and row.worker_pid
                and any(paths.checkpoint_dir(job_id).glob("*.ckpt"))
            ):
                return row.worker_pid
            return None

        pid = wait_for(killable_pid, 120.0, "a checkpointed worker to kill")
        os.kill(pid, signal.SIGKILL)
        print(f"SIGKILLed worker {pid}")
        supervisor.wait(timeout=300)
    finally:
        if supervisor.poll() is None:
            supervisor.kill()
            supervisor.wait(timeout=10)

    with ServiceView(root) as view:
        final = view.job(job_id)
    if final.state != "done" or final.attempts != 2:
        fail(
            f"expected done after 2 attempts, got {final.state} "
            f"after {final.attempts} (see {workdir / 'supervisor.log'})"
        )
    if final.trace_id != trace_id:
        fail(f"trace id changed: {trace_id} -> {final.trace_id}")

    server = popen_cli(
        ["serve", "--service", str(root), "--port", "0"],
        env,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    try:
        banner = server.stdout.readline()
        match = re.search(r"at (http://[\d.]+:\d+)", banner)
        if not match:
            fail(f"could not parse server banner: {banner!r}")
        base = match.group(1)

        doc = json.loads(fetch(f"{base}/trace/{trace_id}"))
        (workdir / "fleet_trace.json").write_text(json.dumps(doc, indent=2))
        if doc["trace_id"] != trace_id:
            fail(f"/trace joined ids {doc['trace_ids']}, wanted {trace_id}")
        processes = [p for run in doc["runs"] for p in run["processes"]]
        if len(processes) < 2:
            fail(f"expected >=2 worker attempts in trace, got {processes}")
        starts = [
            e for e in doc["journal"] if e.get("event") == "job_start"
        ]
        retries = [
            e for e in doc["journal"] if e.get("event") == "job_retry"
        ]
        if len(starts) != 2 or len(retries) != 1:
            fail(
                f"journal shows {len(starts)} starts / {len(retries)} "
                f"retries, wanted 2 / 1"
            )
        span_names = set()

        def collect(node):
            span_names.add(node["name"])
            for child in node.get("children", ()):
                collect(child)

        for process in processes:
            for root_span in process["spans"]:
                collect(root_span)
        for required in ("flow", "stage1", "anneal"):
            if required not in span_names:
                fail(f"span {required!r} missing from trace: {span_names}")
        print(
            f"/trace/{trace_id[:8]}… ok: {doc['span_count']} spans across "
            f"{len(processes)} attempts + {len(doc['journal'])} journal lines"
        )

        metrics = fetch(base + "/metrics").decode("utf-8")
        parsed = parse_prometheus(metrics)
        done_key = 'repro_jobs{state="done"}'
        if parsed.get(done_key) != 1.0:
            fail(f"{done_key} = {parsed.get(done_key)}, wanted 1")
        if "repro_job_queue_latency_count" not in parsed:
            fail("queue-latency summary missing from /metrics")
        print("service /metrics ok: repro_jobs gauges + queue latency")
    finally:
        server.terminate()
        server.wait(timeout=10)


if __name__ == "__main__":
    sys.exit(main())
