"""Rectilinear geometry substrate for macro/custom cell layout.

Everything TimberWolfMC manipulates is axis-aligned: rectangular tiles,
tile unions (rectilinear cells), their boundary edges, and the eight
orientations a cell may assume.
"""

from .rect import Point, Rect, interval_contains, interval_overlap, total_pairwise_overlap
from .tiles import (
    BOTTOM,
    LEFT,
    RIGHT,
    TOP,
    BoundaryEdge,
    TileSet,
)
from . import orientation

__all__ = [
    "Point",
    "Rect",
    "interval_contains",
    "interval_overlap",
    "total_pairwise_overlap",
    "BoundaryEdge",
    "TileSet",
    "LEFT",
    "RIGHT",
    "BOTTOM",
    "TOP",
    "orientation",
]
