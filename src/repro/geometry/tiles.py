"""Rectilinear shapes stored as unions of non-overlapping rectangular tiles.

The paper represents "the area occupied by each rectilinear cell ... as a
set of one or more non-overlapping rectangular tiles" (§2.2).  ``TileSet``
is that representation, together with the operations the placement and
channel-definition algorithms need:

* overlap area between two tile sets (the O(i, j) of Eqn 8),
* per-edge outward expansion (the dynamic interconnect-area border),
* transformation through the eight orientations,
* extraction of the boundary edges of the union (used by the channel
  definition algorithm of §4.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from . import orientation as ori
from .rect import Rect, interval_overlap

#: Outward normal directions for boundary edges.
LEFT, RIGHT, BOTTOM, TOP = "left", "right", "bottom", "top"

_VERTICAL_SIDES = (LEFT, RIGHT)
_HORIZONTAL_SIDES = (BOTTOM, TOP)


@dataclass(frozen=True)
class BoundaryEdge:
    """One maximal axis-aligned segment of a tile-union boundary.

    ``side`` names the outward normal direction.  For a vertical edge
    (side left/right) ``position`` is its x coordinate and ``lo``/``hi``
    bound its y span; for a horizontal edge the roles are exchanged.
    """

    side: str
    position: float
    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.side not in (LEFT, RIGHT, BOTTOM, TOP):
            raise ValueError(f"bad side {self.side!r}")
        if self.lo > self.hi:
            raise ValueError("malformed boundary edge span")

    @property
    def is_vertical(self) -> bool:
        return self.side in _VERTICAL_SIDES

    @property
    def length(self) -> float:
        return self.hi - self.lo

    @property
    def midpoint(self) -> Tuple[float, float]:
        mid = (self.lo + self.hi) / 2.0
        if self.is_vertical:
            return (self.position, mid)
        return (mid, self.position)

    def translated(self, dx: float, dy: float) -> "BoundaryEdge":
        if self.is_vertical:
            return BoundaryEdge(self.side, self.position + dx, self.lo + dy, self.hi + dy)
        return BoundaryEdge(self.side, self.position + dy, self.lo + dx, self.hi + dx)


def _subtract_intervals(
    lo: float, hi: float, holes: List[Tuple[float, float]]
) -> List[Tuple[float, float]]:
    """Remove the (possibly overlapping) holes from [lo, hi]."""
    if not holes:
        return [(lo, hi)]
    holes = sorted(holes)
    result: List[Tuple[float, float]] = []
    cursor = lo
    for h_lo, h_hi in holes:
        if h_hi <= cursor:
            continue
        if h_lo > hi:
            break
        if h_lo > cursor:
            result.append((cursor, min(h_lo, hi)))
        cursor = max(cursor, h_hi)
        if cursor >= hi:
            break
    if cursor < hi:
        result.append((cursor, hi))
    return [(a, b) for a, b in result if b > a]


class TileSet:
    """An immutable union of non-overlapping rectangles.

    Coordinates are cell-local.  On construction the tiles are validated
    to be pairwise non-overlapping (touching is fine) and, for multi-tile
    shapes, edge-connected — a disconnected "cell" is almost certainly an
    input error.
    """

    __slots__ = ("_tiles", "_bbox", "_area")

    def __init__(self, tiles: Iterable[Rect], check_connected: bool = True):
        tile_list = tuple(tiles)
        if not tile_list:
            raise ValueError("a TileSet needs at least one tile")
        for t in tile_list:
            if t.area <= 0:
                raise ValueError(f"tile with non-positive area: {t}")
        for i in range(len(tile_list)):
            for j in range(i + 1, len(tile_list)):
                if tile_list[i].intersects(tile_list[j]):
                    raise ValueError(
                        f"tiles {i} and {j} overlap: {tile_list[i]} / {tile_list[j]}"
                    )
        if check_connected and len(tile_list) > 1:
            _check_connected(tile_list)
        self._tiles = tile_list
        self._bbox = Rect.bounding(tile_list)
        self._area = sum(t.area for t in tile_list)

    # -- constructors ---------------------------------------------------

    @staticmethod
    def rectangle(width: float, height: float) -> "TileSet":
        """A single rectangular tile centered at the origin."""
        return TileSet([Rect.from_center(0.0, 0.0, width, height)])

    @staticmethod
    def l_shape(width: float, height: float, notch_w: float, notch_h: float) -> "TileSet":
        """An L-shaped cell: a width x height box with its upper-right
        notch_w x notch_h corner removed, then re-centered at the origin."""
        if notch_w >= width or notch_h >= height:
            raise ValueError("notch must be strictly smaller than the cell")
        lower = Rect(0.0, 0.0, width, height - notch_h)
        upper = Rect(0.0, height - notch_h, width - notch_w, height)
        return TileSet([lower, upper]).recentered()

    @staticmethod
    def t_shape(width: float, height: float, stem_w: float, cap_h: float) -> "TileSet":
        """A T-shaped cell: a full-width cap of height cap_h over a centered
        stem, re-centered at the origin."""
        if stem_w >= width or cap_h >= height:
            raise ValueError("stem/cap must be strictly smaller than the cell")
        x0 = (width - stem_w) / 2.0
        stem = Rect(x0, 0.0, x0 + stem_w, height - cap_h)
        cap = Rect(0.0, height - cap_h, width, height)
        return TileSet([stem, cap]).recentered()

    # -- accessors -------------------------------------------------------

    @property
    def tiles(self) -> Tuple[Rect, ...]:
        return self._tiles

    @property
    def bbox(self) -> Rect:
        return self._bbox

    @property
    def area(self) -> float:
        return self._area

    @property
    def width(self) -> float:
        return self._bbox.width

    @property
    def height(self) -> float:
        return self._bbox.height

    def __len__(self) -> int:
        return len(self._tiles)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TileSet):
            return NotImplemented
        return set(self._tiles) == set(other._tiles)

    def __hash__(self) -> int:
        return hash(frozenset(self._tiles))

    def __repr__(self) -> str:
        return f"TileSet({len(self._tiles)} tiles, bbox={self._bbox})"

    # -- geometry --------------------------------------------------------

    def contains_point(self, x: float, y: float) -> bool:
        return any(t.contains_point(x, y) for t in self._tiles)

    def overlap_area(self, other: "TileSet") -> float:
        """The paper's O(i, j): summed common area over all tile pairs (Eqn 8)."""
        # Broad-phase reject: disjoint bounding boxes share no area.
        if not self._bbox.intersects(other._bbox):
            return 0.0
        a, b = self._tiles, other._tiles
        if len(a) == 1 and len(b) == 1:
            # Rectangular cells dominate real netlists; skip the loop.
            return a[0].overlap_area(b[0])
        total = 0.0
        for ti in a:
            for tj in b:
                total += ti.overlap_area(tj)
        return total

    def recentered(self) -> "TileSet":
        """Translate so the bounding-box center sits at the origin."""
        c = self._bbox.center
        return self.translated(-c.x, -c.y)

    def translated(self, dx: float, dy: float) -> "TileSet":
        # Translation preserves whatever invariants the input satisfied
        # (expanded tile unions legitimately self-overlap), so the
        # validating constructor is bypassed.
        rects = [t.translated(dx, dy) for t in self._tiles]
        out = TileSet.__new__(TileSet)
        out._tiles = tuple(rects)
        out._bbox = self._bbox.translated(dx, dy)
        out._area = self._area
        return out

    def transformed(self, orientation: int) -> "TileSet":
        """Apply one of the eight orientations about the origin."""
        tiles = self._tiles
        if len(tiles) == 1:
            # Single-rect cells re-orient on every aspect/rotation move;
            # a lone transformed tile needs no validation pass.
            only = ori.transform_rect(orientation, tiles[0])
            out = TileSet.__new__(TileSet)
            out._tiles = (only,)
            out._bbox = only
            out._area = only.area
            return out
        return TileSet(
            [ori.transform_rect(orientation, t) for t in self._tiles],
            check_connected=False,
        )

    def expanded_uniform(self, margin: float) -> "TileSet":
        """Expand every tile outward by ``margin`` on all four sides.

        Expanded tiles may overlap each other; since expansion only feeds
        the overlap-area penalty (an upper-bound-ish estimate is fine and
        is what the original implementation computed tile-by-tile), the
        non-overlap invariant is deliberately not enforced here.
        """
        if margin < 0:
            raise ValueError("margin must be non-negative")
        rects = [t.expanded_uniform(margin) for t in self._tiles]
        out = TileSet.__new__(TileSet)
        out._tiles = tuple(rects)
        out._bbox = Rect.bounding(rects)
        out._area = sum(r.area for r in rects)
        return out

    def translated_expanded(
        self,
        dx: float,
        dy: float,
        left: float,
        bottom: float,
        right: float,
        top: float,
    ) -> "TileSet":
        """``translated(dx, dy).expanded_per_side(left, bottom, right, top)``
        without materializing the intermediate tile set (the annealing hot
        path builds one expanded set per move); the arithmetic composes
        the two steps verbatim, so the result is bit-identical."""
        if min(left, bottom, right, top) < 0:
            raise ValueError("expansions must be non-negative")
        rects = [
            Rect(
                (t.x1 + dx) - left,
                (t.y1 + dy) - bottom,
                (t.x2 + dx) + right,
                (t.y2 + dy) + top,
            )
            for t in self._tiles
        ]
        out = TileSet.__new__(TileSet)
        out._tiles = tuple(rects)
        if len(rects) == 1:
            only = rects[0]
            out._bbox = only
            out._area = only.area
        else:
            out._bbox = Rect.bounding(rects)
            out._area = sum(r.area for r in rects)
        return out

    def expanded_per_side(
        self, left: float, bottom: float, right: float, top: float
    ) -> "TileSet":
        """Expand every tile outward by per-side amounts (dynamic estimator)."""
        if min(left, bottom, right, top) < 0:
            raise ValueError("expansions must be non-negative")
        rects = [t.expanded(left, bottom, right, top) for t in self._tiles]
        out = TileSet.__new__(TileSet)
        out._tiles = tuple(rects)
        if len(rects) == 1:
            # Single-tile fast path (this runs on every annealing move).
            only = rects[0]
            out._bbox = only
            out._area = only.area
        else:
            out._bbox = Rect.bounding(rects)
            out._area = sum(r.area for r in rects)
        return out

    # -- boundary extraction ----------------------------------------------

    def boundary_edges(self) -> List[BoundaryEdge]:
        """Maximal boundary segments of the tile union with outward normals.

        A segment of a tile edge lies on the union boundary exactly where
        the region immediately outside that edge is not covered by a
        sibling tile.  Segments from different tiles that are collinear
        and contiguous are merged into maximal edges.
        """
        raw: List[BoundaryEdge] = []
        for t in self._tiles:
            raw.extend(self._tile_boundary(t, LEFT))
            raw.extend(self._tile_boundary(t, RIGHT))
            raw.extend(self._tile_boundary(t, BOTTOM))
            raw.extend(self._tile_boundary(t, TOP))
        return _merge_collinear(raw)

    def _tile_boundary(self, tile: Rect, side: str) -> List[BoundaryEdge]:
        if side == LEFT:
            pos, lo, hi = tile.x1, tile.y1, tile.y2
        elif side == RIGHT:
            pos, lo, hi = tile.x2, tile.y1, tile.y2
        elif side == BOTTOM:
            pos, lo, hi = tile.y1, tile.x1, tile.x2
        else:
            pos, lo, hi = tile.y2, tile.x1, tile.x2

        holes: List[Tuple[float, float]] = []
        for other in self._tiles:
            if other is tile:
                continue
            if side == LEFT and other.x1 < pos <= other.x2:
                holes.append((other.y1, other.y2))
            elif side == RIGHT and other.x1 <= pos < other.x2:
                holes.append((other.y1, other.y2))
            elif side == BOTTOM and other.y1 < pos <= other.y2:
                holes.append((other.x1, other.x2))
            elif side == TOP and other.y1 <= pos < other.y2:
                holes.append((other.x1, other.x2))
        return [
            BoundaryEdge(side, pos, a, b)
            for a, b in _subtract_intervals(lo, hi, holes)
        ]

    def boundary_length(self) -> float:
        """Perimeter of the tile union."""
        return sum(e.length for e in self.boundary_edges())


def _merge_collinear(edges: List[BoundaryEdge]) -> List[BoundaryEdge]:
    groups: Dict[Tuple[str, float], List[BoundaryEdge]] = {}
    for e in edges:
        groups.setdefault((e.side, e.position), []).append(e)
    merged: List[BoundaryEdge] = []
    for (side, pos), group in groups.items():
        group.sort(key=lambda e: e.lo)
        cur_lo, cur_hi = group[0].lo, group[0].hi
        for e in group[1:]:
            if e.lo <= cur_hi:
                cur_hi = max(cur_hi, e.hi)
            else:
                merged.append(BoundaryEdge(side, pos, cur_lo, cur_hi))
                cur_lo, cur_hi = e.lo, e.hi
        merged.append(BoundaryEdge(side, pos, cur_lo, cur_hi))
    merged.sort(key=lambda e: (e.side, e.position, e.lo))
    return merged


def _check_connected(tiles: Sequence[Rect]) -> None:
    """Raise if the tiles do not form a single edge-connected component."""
    n = len(tiles)
    parent = list(range(n))

    def find(a: int) -> int:
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        return a

    for i in range(n):
        for j in range(i + 1, n):
            a, b = tiles[i], tiles[j]
            touch_x = (
                (a.x2 == b.x1 or b.x2 == a.x1)
                and interval_overlap(a.y1, a.y2, b.y1, b.y2) > 0
            )
            touch_y = (
                (a.y2 == b.y1 or b.y2 == a.y1)
                and interval_overlap(a.x1, a.x2, b.x1, b.x2) > 0
            )
            if touch_x or touch_y:
                ra, rb = find(i), find(j)
                parent[ra] = rb
    roots = {find(i) for i in range(n)}
    if len(roots) > 1:
        raise ValueError(f"tiles form {len(roots)} disconnected components")
