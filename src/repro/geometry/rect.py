"""Axis-aligned rectangle and interval primitives.

All geometry in this package uses the integer grid of the input netlist
(the paper's "grid size inherent in the specification of the cell geometry
and pin locations"), although the primitives accept floats so that the
interconnect-area estimator can expand edges by fractional amounts before
rounding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class Point:
    """A point on the placement grid."""

    x: float
    y: float

    def translated(self, dx: float, dy: float) -> "Point":
        return Point(self.x + dx, self.y + dy)

    def manhattan_to(self, other: "Point") -> float:
        return abs(self.x - other.x) + abs(self.y - other.y)

    def as_tuple(self) -> Tuple[float, float]:
        return (self.x, self.y)


def interval_overlap(lo1: float, hi1: float, lo2: float, hi2: float) -> float:
    """Length of the overlap of two closed intervals (0 if disjoint)."""
    return max(0.0, min(hi1, hi2) - max(lo1, lo2))


def interval_contains(lo: float, hi: float, v: float) -> bool:
    """True if v lies within [lo, hi]."""
    return lo <= v <= hi


@dataclass(frozen=True)
class Rect:
    """A closed axis-aligned rectangle given by its lower-left and upper-right corners.

    Degenerate rectangles (zero width or height) are permitted; they are
    useful as edge segments.  ``x1 <= x2`` and ``y1 <= y2`` is enforced.
    """

    x1: float
    y1: float
    x2: float
    y2: float

    def __post_init__(self) -> None:
        if self.x1 > self.x2 or self.y1 > self.y2:
            raise ValueError(
                f"malformed Rect: ({self.x1}, {self.y1}, {self.x2}, {self.y2})"
            )

    # -- constructors -------------------------------------------------

    @staticmethod
    def from_center(cx: float, cy: float, width: float, height: float) -> "Rect":
        """Build a rectangle centered at (cx, cy)."""
        if width < 0 or height < 0:
            raise ValueError("width and height must be non-negative")
        hw, hh = width / 2.0, height / 2.0
        return Rect(cx - hw, cy - hh, cx + hw, cy + hh)

    @staticmethod
    def bounding(rects: Iterable["Rect"]) -> "Rect":
        """The bounding box of a non-empty collection of rectangles."""
        rects = list(rects)
        if not rects:
            raise ValueError("bounding box of an empty collection")
        return Rect(
            min(r.x1 for r in rects),
            min(r.y1 for r in rects),
            max(r.x2 for r in rects),
            max(r.y2 for r in rects),
        )

    # -- basic measures -----------------------------------------------

    @property
    def width(self) -> float:
        return self.x2 - self.x1

    @property
    def height(self) -> float:
        return self.y2 - self.y1

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def perimeter(self) -> float:
        return 2.0 * (self.width + self.height)

    @property
    def center(self) -> Point:
        return Point((self.x1 + self.x2) / 2.0, (self.y1 + self.y2) / 2.0)

    @property
    def aspect_ratio(self) -> float:
        """Height over width (the TimberWolfMC convention)."""
        if self.width == 0:
            raise ZeroDivisionError("aspect ratio of a zero-width rectangle")
        return self.height / self.width

    def is_degenerate(self) -> bool:
        return self.width == 0 or self.height == 0

    # -- predicates ----------------------------------------------------

    def contains_point(self, x: float, y: float) -> bool:
        return self.x1 <= x <= self.x2 and self.y1 <= y <= self.y2

    def contains_rect(self, other: "Rect") -> bool:
        return (
            self.x1 <= other.x1
            and self.y1 <= other.y1
            and self.x2 >= other.x2
            and self.y2 >= other.y2
        )

    def intersects(self, other: "Rect") -> bool:
        """True if the two rectangles share interior area (not mere touching)."""
        return (
            self.x1 < other.x2
            and other.x1 < self.x2
            and self.y1 < other.y2
            and other.y1 < self.y2
        )

    def touches_or_intersects(self, other: "Rect") -> bool:
        """True if the closed rectangles share at least a point."""
        return (
            self.x1 <= other.x2
            and other.x1 <= self.x2
            and self.y1 <= other.y2
            and other.y1 <= self.y2
        )

    # -- operations -----------------------------------------------------

    def overlap_area(self, other: "Rect") -> float:
        """Common area of two rectangles (the paper's Ot function)."""
        # interval_overlap inlined: this is the innermost call of the C2
        # narrow phase, executed a few times per annealing move.
        w = min(self.x2, other.x2) - max(self.x1, other.x1)
        if w <= 0.0:
            return 0.0
        h = min(self.y2, other.y2) - max(self.y1, other.y1)
        if h <= 0.0:
            return 0.0
        return w * h

    def intersection(self, other: "Rect") -> Optional["Rect"]:
        """The intersection rectangle, or None when the closed rects are disjoint."""
        x1 = max(self.x1, other.x1)
        y1 = max(self.y1, other.y1)
        x2 = min(self.x2, other.x2)
        y2 = min(self.y2, other.y2)
        if x1 > x2 or y1 > y2:
            return None
        return Rect(x1, y1, x2, y2)

    def union_bbox(self, other: "Rect") -> "Rect":
        return Rect(
            min(self.x1, other.x1),
            min(self.y1, other.y1),
            max(self.x2, other.x2),
            max(self.y2, other.y2),
        )

    def translated(self, dx: float, dy: float) -> "Rect":
        return Rect(self.x1 + dx, self.y1 + dy, self.x2 + dx, self.y2 + dy)

    def expanded(self, left: float, bottom: float, right: float, top: float) -> "Rect":
        """Expand each side outward by the given non-negative amounts.

        This is the dynamic interconnect-area expansion of §2.2: each tile
        edge is moved outward by the estimated interconnect width assigned
        to it.
        """
        return Rect(self.x1 - left, self.y1 - bottom, self.x2 + right, self.y2 + top)

    def expanded_uniform(self, margin: float) -> "Rect":
        return self.expanded(margin, margin, margin, margin)

    def scaled(self, sx: float, sy: float) -> "Rect":
        """Scale about the origin."""
        xs = sorted((self.x1 * sx, self.x2 * sx))
        ys = sorted((self.y1 * sy, self.y2 * sy))
        return Rect(xs[0], ys[0], xs[1], ys[1])

    def corners(self) -> List[Point]:
        """Corner points in counter-clockwise order starting at lower-left."""
        return [
            Point(self.x1, self.y1),
            Point(self.x2, self.y1),
            Point(self.x2, self.y2),
            Point(self.x1, self.y2),
        ]

    def __iter__(self) -> Iterator[float]:
        return iter((self.x1, self.y1, self.x2, self.y2))


def total_pairwise_overlap(rects: List[Rect]) -> float:
    """Sum of overlap areas over all unordered rectangle pairs."""
    total = 0.0
    for i in range(len(rects)):
        for j in range(i + 1, len(rects)):
            total += rects[i].overlap_area(rects[j])
    return total
