"""The eight cell orientations of macro/custom cell layout.

TimberWolfMC considers all eight orientations of every cell: four rotations
(0, 90, 180, 270 degrees) optionally composed with a mirror.  We encode an
orientation as an integer 0..7::

    index = rotation_count + 4 * mirrored

where ``rotation_count`` counts counter-clockwise 90-degree rotations and
``mirrored`` flips across the y axis *before* rotating.  Orientation 0 is
the canonical orientation in which cell geometry is specified.

All transforms act on coordinates relative to the cell center, so that a
cell placed at center (cx, cy) with orientation o maps a local point (x, y)
to ``(cx, cy) + transform_point(o, x, y)``.
"""

from __future__ import annotations

from typing import List, Tuple

from .rect import Rect

N_ORIENTATIONS = 8

#: Orientations whose rotation is 90 or 270 degrees swap a cell's width and
#: height — the paper's "aspect ratio inversion".
_ROT_SWAPS = (False, True, False, True)


def is_valid(orientation: int) -> bool:
    return 0 <= orientation < N_ORIENTATIONS


def _check(orientation: int) -> None:
    if not is_valid(orientation):
        raise ValueError(f"orientation must be in 0..7, got {orientation}")


def rotation_count(orientation: int) -> int:
    """Number of CCW 90-degree rotations encoded by the orientation."""
    _check(orientation)
    return orientation % 4


def is_mirrored(orientation: int) -> bool:
    _check(orientation)
    return orientation >= 4


def swaps_axes(orientation: int) -> bool:
    """True when the orientation exchanges the x and y extents of shapes."""
    _check(orientation)
    return _ROT_SWAPS[orientation % 4]


def transform_point(orientation: int, x: float, y: float) -> Tuple[float, float]:
    """Map a cell-local point through the orientation (about the cell center)."""
    _check(orientation)
    if orientation >= 4:
        x = -x
    rot = orientation % 4
    if rot == 0:
        return (x, y)
    if rot == 1:
        return (-y, x)
    if rot == 2:
        return (-x, -y)
    return (y, -x)


def inverse(orientation: int) -> int:
    """The orientation that undoes this one."""
    _check(orientation)
    rot = orientation % 4
    if orientation < 4:
        return (4 - rot) % 4
    # A mirror composed with a rotation is an involution.
    return orientation


def compose(first: int, second: int) -> int:
    """Orientation equivalent to applying ``first`` then ``second``."""
    _check(first)
    _check(second)
    # Work it out by transforming two independent probe points.
    probes = [(1.0, 0.0), (0.0, 1.0)]
    images = [transform_point(second, *transform_point(first, x, y)) for x, y in probes]
    for cand in range(N_ORIENTATIONS):
        if all(
            transform_point(cand, *p) == img for p, img in zip(probes, images)
        ):
            return cand
    raise AssertionError("orientation composition must close over the group")


def transform_rect(orientation: int, rect: Rect) -> Rect:
    """Map a cell-local rectangle through the orientation (about the center)."""
    ax, ay = transform_point(orientation, rect.x1, rect.y1)
    bx, by = transform_point(orientation, rect.x2, rect.y2)
    return Rect(min(ax, bx), min(ay, by), max(ax, bx), max(ay, by))


def aspect_inverting_orientation(orientation: int) -> int:
    """An orientation with the same mirror parity but swapped extents.

    The paper's generate function retries a failed displacement after
    "changing the orientation of the cell such that its aspect ratio is
    inverted"; rotating by a further 90 degrees accomplishes exactly that.
    """
    _check(orientation)
    base = orientation - orientation % 4
    return base + (orientation % 4 + 1) % 4


def all_orientations() -> List[int]:
    return list(range(N_ORIENTATIONS))


#: Human-readable names, following the convention R<degrees> / MX (mirror).
NAMES = ("R0", "R90", "R180", "R270", "MX", "MXR90", "MXR180", "MXR270")


def name(orientation: int) -> str:
    _check(orientation)
    return NAMES[orientation]


def from_name(label: str) -> int:
    try:
        return NAMES.index(label)
    except ValueError:
        raise ValueError(f"unknown orientation name: {label!r}") from None
