"""The generic simulated annealing engine of §2.1.

The TimberWolfMC annealer is characterized by five pieces: the *generate*
function, the acceptance function *accept*, the temperature *update*
function, the inner-loop criterion, and the stopping criterion.  The
paper's generate function is not a single move: one call may cascade
through several accept-tested attempts (displace, then the aspect-
inverted displacement, then an orientation change, then pin moves...).
``AnnealingState.step`` therefore performs one full generate-and-accept
cycle and reports how many attempts were made and accepted; the
``Annealer`` supplies the temperature ladder, inner-loop length, and
stopping criterion around it.

States whose generate *is* a single move can instead implement
``propose`` and mix in ``ProposalState`` to get the standard Metropolis
treatment.
"""

from __future__ import annotations

import math
import random
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..telemetry import Tracer, current_tracer


def metropolis_accept(delta: float, temperature: float, rng: random.Random) -> bool:
    """The standard acceptance function: downhill always, uphill with
    probability exp(-delta / T)."""
    if delta <= 0:
        return True
    if temperature <= 0:
        return False
    exponent = -delta / temperature
    if exponent < -700.0:  # exp underflow guard
        return False
    return rng.random() < math.exp(exponent)


class AnnealingState(ABC):
    """Problem-specific state manipulated by the annealer."""

    @abstractmethod
    def step(self, temperature: float, rng: random.Random) -> Tuple[int, int]:
        """Run one generate-and-accept cycle.

        Returns ``(attempts, accepts)`` — how many new states were
        attempted during the cascade and how many were kept.
        """

    @abstractmethod
    def cost(self) -> float:
        """Current total cost (used for bookkeeping and invariant checks)."""

    def moves_per_iteration(self) -> int:
        """Scale factor for the inner loop: A = A_c * moves_per_iteration
        (Eqn 17 uses the number of cells N_c)."""
        return 1

    def on_temperature(self, temperature: float) -> None:
        """Hook invoked at the start of every temperature step."""

    def telemetry_snapshot(self, temperature: float) -> Optional[Dict[str, float]]:
        """Extra per-temperature fields for the ``anneal.temperature``
        trace event (cost components, range-limiter window, ...).  Only
        called when tracing is enabled; None adds nothing."""
        return None


class Proposal(ABC):
    """A tentatively applied single move, for ``ProposalState`` users."""

    @property
    @abstractmethod
    def delta(self) -> float:
        """Change in total cost already applied to the state."""

    @abstractmethod
    def revert(self) -> None:
        """Undo the move, restoring the previous state exactly."""


@dataclass
class SimpleProposal(Proposal):
    """A proposal backed by a plain undo callback."""

    delta_cost: float
    undo: Callable[[], None]

    @property
    def delta(self) -> float:
        return self.delta_cost

    def revert(self) -> None:
        self.undo()


class ProposalState(AnnealingState):
    """Mixin turning a single-move ``propose`` into the ``step`` contract."""

    @abstractmethod
    def propose(self, temperature: float, rng: random.Random) -> Optional[Proposal]:
        """Generate, and tentatively apply, one new state (None = no move)."""

    def step(self, temperature: float, rng: random.Random) -> Tuple[int, int]:
        proposal = self.propose(temperature, rng)
        if proposal is None:
            return (1, 0)
        if metropolis_accept(proposal.delta, temperature, rng):
            return (1, 1)
        proposal.revert()
        return (1, 0)


@dataclass
class TemperatureStats:
    """Per-temperature-step statistics (feeds the figures and EXPERIMENTS)."""

    temperature: float
    attempts: int = 0
    accepts: int = 0
    cost_after: float = 0.0
    #: Wall-clock duration of the inner loop (monotonic), for moves/sec.
    seconds: float = 0.0

    @property
    def acceptance_rate(self) -> float:
        return self.accepts / self.attempts if self.attempts else 0.0


@dataclass
class AnnealResult:
    """Outcome of one annealing run."""

    final_cost: float
    steps: List[TemperatureStats] = field(default_factory=list)

    @property
    def total_attempts(self) -> int:
        return sum(s.attempts for s in self.steps)

    @property
    def total_accepts(self) -> int:
        return sum(s.accepts for s in self.steps)

    @property
    def num_temperatures(self) -> int:
        return len(self.steps)

    @property
    def initial_acceptance_rate(self) -> float:
        return self.steps[0].acceptance_rate if self.steps else 0.0


class StoppingCriterion(ABC):
    """Decides when to end the annealing, consulted after each inner loop."""

    @abstractmethod
    def should_stop(self, temperature: float, stats: TemperatureStats) -> bool:
        ...

    def reset(self) -> None:
        """Prepare for a fresh run (criteria may carry history)."""


class WindowStop(StoppingCriterion):
    """Stage-1 stopping: an inner loop has run with the range-limiter
    window at its minimum span (§3.3)."""

    def __init__(self, limiter) -> None:
        self._limiter = limiter

    def should_stop(self, temperature: float, stats: TemperatureStats) -> bool:
        return self._limiter.at_minimum(temperature)


class FrozenStop(StoppingCriterion):
    """Stop when the cost is unchanged for N consecutive inner loops
    (the stage-2 final-pass criterion, N = 3)."""

    def __init__(self, patience: int = 3, tolerance: float = 1e-9) -> None:
        if patience < 1:
            raise ValueError("patience must be at least 1")
        self._patience = patience
        self._tolerance = tolerance
        self._last_cost: Optional[float] = None
        self._streak = 0

    def reset(self) -> None:
        self._last_cost = None
        self._streak = 0

    def should_stop(self, temperature: float, stats: TemperatureStats) -> bool:
        if self._last_cost is not None and abs(
            stats.cost_after - self._last_cost
        ) <= self._tolerance:
            self._streak += 1
        else:
            self._streak = 0
        self._last_cost = stats.cost_after
        return self._streak >= self._patience


class FloorStop(StoppingCriterion):
    """Stop once the temperature falls below a floor (safety net)."""

    def __init__(self, t_floor: float) -> None:
        if t_floor <= 0:
            raise ValueError("t_floor must be positive")
        self._t_floor = t_floor

    def should_stop(self, temperature: float, stats: TemperatureStats) -> bool:
        return temperature <= self._t_floor


class AnyOf(StoppingCriterion):
    """Stop when any member criterion fires (all are consulted so that
    history-carrying criteria stay up to date)."""

    def __init__(self, *criteria: StoppingCriterion) -> None:
        if not criteria:
            raise ValueError("AnyOf needs at least one criterion")
        self._criteria = criteria

    def reset(self) -> None:
        for c in self._criteria:
            c.reset()

    def should_stop(self, temperature: float, stats: TemperatureStats) -> bool:
        fired = [c.should_stop(temperature, stats) for c in self._criteria]
        return any(fired)


class AllOf(StoppingCriterion):
    """Stop only when every member criterion fires.

    Used by stage 1 to keep annealing at the minimum window span until
    the temperature is genuinely cold: on paper-scale cores the window
    bottoms out at a cold T anyway, but on small cores the window
    condition alone would stop the run while uphill moves are still
    routinely accepted.
    """

    def __init__(self, *criteria: StoppingCriterion) -> None:
        if not criteria:
            raise ValueError("AllOf needs at least one criterion")
        self._criteria = criteria

    def reset(self) -> None:
        for c in self._criteria:
            c.reset()

    def should_stop(self, temperature: float, stats: TemperatureStats) -> bool:
        fired = [c.should_stop(temperature, stats) for c in self._criteria]
        return all(fired)


class Annealer:
    """Runs the annealing loop: an inner loop at each T, then cool.

    ``attempts_per_cell`` is the paper's A_c; the inner loop performs
    A_c * state.moves_per_iteration() generate calls per temperature.
    ``max_temperatures`` bounds runaway schedules (the paper targets
    about 120 temperature values).
    """

    def __init__(
        self,
        schedule,
        stopping: StoppingCriterion,
        attempts_per_cell: int = 100,
        max_temperatures: int = 400,
        seed: Optional[int] = None,
        rng: Optional[random.Random] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if attempts_per_cell < 1:
            raise ValueError("attempts_per_cell must be at least 1")
        if max_temperatures < 1:
            raise ValueError("max_temperatures must be at least 1")
        self.schedule = schedule
        self.stopping = stopping
        self.attempts_per_cell = attempts_per_cell
        self.max_temperatures = max_temperatures
        self.rng = rng if rng is not None else random.Random(seed)
        #: None defers to the ambient ``current_tracer()`` at run time.
        self.tracer = tracer

    def run(self, state: AnnealingState) -> AnnealResult:
        tracer = self.tracer if self.tracer is not None else current_tracer()
        self.stopping.reset()
        result = AnnealResult(final_cost=state.cost())
        temperature = self.schedule.t_infinity
        inner_moves = self.attempts_per_cell * state.moves_per_iteration()

        with tracer.span(
            "anneal",
            t_infinity=temperature,
            inner_moves=inner_moves,
            initial_cost=round(result.final_cost, 4),
        ):
            for step_index in range(self.max_temperatures):
                state.on_temperature(temperature)
                stats = TemperatureStats(temperature=temperature)
                t0 = time.monotonic()
                for _ in range(inner_moves):
                    attempts, accepts = state.step(temperature, self.rng)
                    stats.attempts += attempts
                    stats.accepts += accepts
                stats.seconds = time.monotonic() - t0
                stats.cost_after = state.cost()
                result.steps.append(stats)
                if tracer.enabled:
                    self._emit_temperature(tracer, state, step_index, stats)
                if self.stopping.should_stop(temperature, stats):
                    break
                temperature = self.schedule.next_temperature(temperature)

            result.final_cost = state.cost()
        return result

    @staticmethod
    def _emit_temperature(
        tracer: Tracer,
        state: AnnealingState,
        step_index: int,
        stats: TemperatureStats,
    ) -> None:
        """One ``anneal.temperature`` event: the per-temperature snapshot
        behind the paper's Figs. 3-6 (T, acceptance ratio, cost, rate,
        plus whatever the state's ``telemetry_snapshot`` contributes)."""
        fields = {
            "step": step_index,
            "T": round(stats.temperature, 6),
            "attempts": stats.attempts,
            "accepts": stats.accepts,
            "acceptance": round(stats.acceptance_rate, 4),
            "cost": round(stats.cost_after, 4),
            "moves_per_sec": round(stats.attempts / stats.seconds, 1)
            if stats.seconds > 0
            else None,
        }
        extra = state.telemetry_snapshot(stats.temperature)
        if extra:
            fields.update(extra)
        tracer.event("anneal.temperature", **fields)
