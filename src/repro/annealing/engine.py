"""The generic simulated annealing engine of §2.1.

The TimberWolfMC annealer is characterized by five pieces: the *generate*
function, the acceptance function *accept*, the temperature *update*
function, the inner-loop criterion, and the stopping criterion.  The
paper's generate function is not a single move: one call may cascade
through several accept-tested attempts (displace, then the aspect-
inverted displacement, then an orientation change, then pin moves...).
``AnnealingState.step`` therefore performs one full generate-and-accept
cycle and reports how many attempts were made and accepted; the
``Annealer`` supplies the temperature ladder, inner-loop length, and
stopping criterion around it.

States whose generate *is* a single move can instead implement
``propose`` and mix in ``ProposalState`` to get the standard Metropolis
treatment.
"""

from __future__ import annotations

import math
import random
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..qor.heartbeat import current_heartbeat
from ..resilience.faults import fault_point
from ..telemetry import Tracer, current_tracer


def metropolis_accept(delta: float, temperature: float, rng: random.Random) -> bool:
    """The standard acceptance function: downhill always, uphill with
    probability exp(-delta / T)."""
    if delta <= 0:
        return True
    if temperature <= 0:
        return False
    exponent = -delta / temperature
    if exponent < -700.0:  # exp underflow guard
        return False
    return rng.random() < math.exp(exponent)


class AnnealingState(ABC):
    """Problem-specific state manipulated by the annealer."""

    @abstractmethod
    def step(self, temperature: float, rng: random.Random) -> Tuple[int, int]:
        """Run one generate-and-accept cycle.

        Returns ``(attempts, accepts)`` — how many new states were
        attempted during the cascade and how many were kept.
        """

    @abstractmethod
    def cost(self) -> float:
        """Current total cost (used for bookkeeping and invariant checks)."""

    def moves_per_iteration(self) -> int:
        """Scale factor for the inner loop: A = A_c * moves_per_iteration
        (Eqn 17 uses the number of cells N_c)."""
        return 1

    def on_temperature(self, temperature: float) -> None:
        """Hook invoked at the start of every temperature step."""

    def telemetry_snapshot(self, temperature: float) -> Optional[Dict[str, float]]:
        """Extra per-temperature fields for the ``anneal.temperature``
        trace event (cost components, range-limiter window, ...).  Only
        called when tracing is enabled; None adds nothing."""
        return None


class Proposal(ABC):
    """A tentatively applied single move, for ``ProposalState`` users."""

    @property
    @abstractmethod
    def delta(self) -> float:
        """Change in total cost already applied to the state."""

    @abstractmethod
    def revert(self) -> None:
        """Undo the move, restoring the previous state exactly."""


@dataclass
class SimpleProposal(Proposal):
    """A proposal backed by a plain undo callback."""

    delta_cost: float
    undo: Callable[[], None]

    @property
    def delta(self) -> float:
        return self.delta_cost

    def revert(self) -> None:
        self.undo()


class ProposalState(AnnealingState):
    """Mixin turning a single-move ``propose`` into the ``step`` contract."""

    @abstractmethod
    def propose(self, temperature: float, rng: random.Random) -> Optional[Proposal]:
        """Generate, and tentatively apply, one new state (None = no move)."""

    def step(self, temperature: float, rng: random.Random) -> Tuple[int, int]:
        proposal = self.propose(temperature, rng)
        if proposal is None:
            return (1, 0)
        if metropolis_accept(proposal.delta, temperature, rng):
            return (1, 1)
        proposal.revert()
        return (1, 0)


@dataclass
class TemperatureStats:
    """Per-temperature-step statistics (feeds the figures and EXPERIMENTS)."""

    temperature: float
    attempts: int = 0
    accepts: int = 0
    cost_after: float = 0.0
    #: Wall-clock duration of the inner loop (monotonic), for moves/sec.
    seconds: float = 0.0

    @property
    def acceptance_rate(self) -> float:
        return self.accepts / self.attempts if self.attempts else 0.0


@dataclass
class AnnealResult:
    """Outcome of one annealing run."""

    final_cost: float
    steps: List[TemperatureStats] = field(default_factory=list)
    #: True when a run budget ended the anneal before its stopping
    #: criterion fired (the result is the best-so-far state, not the
    #: converged one).
    truncated: bool = False
    #: Why the loop ended: "stopping", "max_temperatures", or
    #: "budget:<limit>".
    stop_reason: Optional[str] = None

    @property
    def total_attempts(self) -> int:
        return sum(s.attempts for s in self.steps)

    @property
    def total_accepts(self) -> int:
        return sum(s.accepts for s in self.steps)

    @property
    def num_temperatures(self) -> int:
        return len(self.steps)

    @property
    def initial_acceptance_rate(self) -> float:
        return self.steps[0].acceptance_rate if self.steps else 0.0


class StoppingCriterion(ABC):
    """Decides when to end the annealing, consulted after each inner loop."""

    @abstractmethod
    def should_stop(self, temperature: float, stats: TemperatureStats) -> bool:
        ...

    def reset(self) -> None:
        """Prepare for a fresh run (criteria may carry history)."""

    def state_dict(self) -> Dict[str, Any]:
        """History carried across a checkpoint (stateless: empty)."""
        return {}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore history saved by :meth:`state_dict`."""

    def floor_estimate(self, stats: "TemperatureStats") -> Optional[float]:
        """The temperature at which this criterion expects to fire,
        given the inner loop just completed — the anchor heartbeat ETAs
        walk the schedule down to.  None when the stop is not
        temperature-predictable (window- or history-driven)."""
        return None


class WindowStop(StoppingCriterion):
    """Stage-1 stopping: an inner loop has run with the range-limiter
    window at its minimum span (§3.3)."""

    def __init__(self, limiter) -> None:
        self._limiter = limiter

    def should_stop(self, temperature: float, stats: TemperatureStats) -> bool:
        return self._limiter.at_minimum(temperature)


class FrozenStop(StoppingCriterion):
    """Stop when the cost is unchanged for N consecutive inner loops
    (the stage-2 final-pass criterion, N = 3)."""

    def __init__(self, patience: int = 3, tolerance: float = 1e-9) -> None:
        if patience < 1:
            raise ValueError("patience must be at least 1")
        self._patience = patience
        self._tolerance = tolerance
        self._last_cost: Optional[float] = None
        self._streak = 0

    def reset(self) -> None:
        self._last_cost = None
        self._streak = 0

    def state_dict(self) -> Dict[str, Any]:
        return {"last_cost": self._last_cost, "streak": self._streak}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        self._last_cost = state["last_cost"]
        self._streak = state["streak"]

    def should_stop(self, temperature: float, stats: TemperatureStats) -> bool:
        if self._last_cost is not None and abs(
            stats.cost_after - self._last_cost
        ) <= self._tolerance:
            self._streak += 1
        else:
            self._streak = 0
        self._last_cost = stats.cost_after
        return self._streak >= self._patience


class FloorStop(StoppingCriterion):
    """Stop once the temperature falls below a floor (safety net)."""

    def __init__(self, t_floor: float) -> None:
        if t_floor <= 0:
            raise ValueError("t_floor must be positive")
        self._t_floor = t_floor

    def should_stop(self, temperature: float, stats: TemperatureStats) -> bool:
        return temperature <= self._t_floor

    def floor_estimate(self, stats: TemperatureStats) -> Optional[float]:
        return self._t_floor


class AnyOf(StoppingCriterion):
    """Stop when any member criterion fires (all are consulted so that
    history-carrying criteria stay up to date)."""

    def __init__(self, *criteria: StoppingCriterion) -> None:
        if not criteria:
            raise ValueError("AnyOf needs at least one criterion")
        self._criteria = criteria

    def reset(self) -> None:
        for c in self._criteria:
            c.reset()

    def state_dict(self) -> Dict[str, Any]:
        return {"children": [c.state_dict() for c in self._criteria]}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        for criterion, child in zip(self._criteria, state["children"]):
            criterion.load_state_dict(child)

    def should_stop(self, temperature: float, stats: TemperatureStats) -> bool:
        fired = [c.should_stop(temperature, stats) for c in self._criteria]
        return any(fired)

    def floor_estimate(self, stats: TemperatureStats) -> Optional[float]:
        # Whichever member fires first ends the run: the highest floor.
        floors = [
            f
            for f in (c.floor_estimate(stats) for c in self._criteria)
            if f is not None
        ]
        return max(floors) if floors else None


class AllOf(StoppingCriterion):
    """Stop only when every member criterion fires.

    Used by stage 1 to keep annealing at the minimum window span until
    the temperature is genuinely cold: on paper-scale cores the window
    bottoms out at a cold T anyway, but on small cores the window
    condition alone would stop the run while uphill moves are still
    routinely accepted.
    """

    def __init__(self, *criteria: StoppingCriterion) -> None:
        if not criteria:
            raise ValueError("AllOf needs at least one criterion")
        self._criteria = criteria

    def reset(self) -> None:
        for c in self._criteria:
            c.reset()

    def state_dict(self) -> Dict[str, Any]:
        return {"children": [c.state_dict() for c in self._criteria]}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        for criterion, child in zip(self._criteria, state["children"]):
            criterion.load_state_dict(child)

    def should_stop(self, temperature: float, stats: TemperatureStats) -> bool:
        fired = [c.should_stop(temperature, stats) for c in self._criteria]
        return all(fired)

    def floor_estimate(self, stats: TemperatureStats) -> Optional[float]:
        # Every member must fire; the estimable ones give an optimistic
        # (lowest-floor) bound — the stop cannot come before it.
        floors = [
            f
            for f in (c.floor_estimate(stats) for c in self._criteria)
            if f is not None
        ]
        return min(floors) if floors else None


@dataclass
class AnnealCursor:
    """A resumable position in an annealing run.

    The cursor means "about to start temperature step ``step_index`` at
    ``temperature``": the RNG state and the stopping criterion's history
    are captured *after* the previous step was fully accounted, so a run
    resumed from the cursor performs the exact float and RNG operation
    sequence the uninterrupted run would have.
    """

    step_index: int
    temperature: float
    rng_state: Any
    stopping_state: Dict[str, Any]
    #: Completed steps, packed as (T, attempts, accepts, cost_after, s).
    steps: List[Tuple[float, int, int, float, float]]
    #: True when the stopping criterion fired on the step that produced
    #: this cursor: the anneal is complete, there is no next step to
    #: resume into.  (An interrupt can land on the final temperature —
    #: without this flag a resume would anneal one step too many.)
    done: bool = False
    #: Feedback state of an adaptive cooling schedule (empty for the
    #: stateless table schedules); restored on resume so the adaptive
    #: alpha / window trajectory continues bit-for-bit.
    schedule_state: Dict[str, Any] = field(default_factory=dict)
    #: Private state of the move generator driving the annealing state
    #: (empty for generators that draw from the engine RNG only; the
    #: batched mover stores its numpy bit-generator state here so a
    #: resumed run replays the same proposal stream).
    generator_state: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "step_index": self.step_index,
            "temperature": self.temperature,
            "rng_state": self.rng_state,
            "stopping_state": self.stopping_state,
            "steps": list(self.steps),
            "done": self.done,
            "schedule_state": self.schedule_state,
            "generator_state": self.generator_state,
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "AnnealCursor":
        return AnnealCursor(
            step_index=data["step_index"],
            temperature=data["temperature"],
            rng_state=data["rng_state"],
            stopping_state=data["stopping_state"],
            steps=[tuple(s) for s in data["steps"]],
            done=data.get("done", False),
            schedule_state=data.get("schedule_state", {}),
            generator_state=data.get("generator_state", {}),
        )


class Annealer:
    """Runs the annealing loop: an inner loop at each T, then cool.

    ``attempts_per_cell`` is the paper's A_c; the inner loop performs
    A_c * state.moves_per_iteration() generate calls per temperature.
    ``max_temperatures`` bounds runaway schedules (the paper targets
    about 120 temperature values).

    ``eta_floor`` is the temperature at which the caller expects the
    anneal to stop (the stage's floor criterion); when set, heartbeats
    carry an ETA derived from walking the cooling schedule down to it.
    """

    def __init__(
        self,
        schedule,
        stopping: StoppingCriterion,
        attempts_per_cell: int = 100,
        max_temperatures: int = 400,
        seed: Optional[int] = None,
        rng: Optional[random.Random] = None,
        tracer: Optional[Tracer] = None,
        eta_floor: Optional[float] = None,
    ) -> None:
        if attempts_per_cell < 1:
            raise ValueError("attempts_per_cell must be at least 1")
        if max_temperatures < 1:
            raise ValueError("max_temperatures must be at least 1")
        self.schedule = schedule
        self.stopping = stopping
        self.attempts_per_cell = attempts_per_cell
        self.max_temperatures = max_temperatures
        self.rng = rng if rng is not None else random.Random(seed)
        #: None defers to the ambient ``current_tracer()`` at run time.
        self.tracer = tracer
        self.eta_floor = eta_floor

    def run(
        self,
        state: AnnealingState,
        *,
        budget=None,
        resume: Optional[AnnealCursor] = None,
        observers: Sequence[Callable] = (),
    ) -> AnnealResult:
        """Run the annealing loop.

        ``budget`` is a :class:`~repro.resilience.budget.Budget`; when
        it exhausts, the loop ends gracefully with the result flagged
        ``truncated``.  ``resume`` is an :class:`AnnealCursor` from a
        checkpoint: the loop continues at the cursor's temperature with
        the RNG and stopping history restored, reproducing the
        uninterrupted run bit-for-bit.  ``observers`` are called after
        every completed temperature step as ``obs(step_index, stats,
        state, make_cursor)`` (checkpoint writers, drift guards); an
        observer may raise to abort the run.
        """
        tracer = self.tracer if self.tracer is not None else current_tracer()
        heartbeat = current_heartbeat()
        self.stopping.reset()
        if resume is not None:
            self.stopping.load_state_dict(resume.stopping_state)
            self.rng.setstate(resume.rng_state)
            if resume.schedule_state:
                loader = getattr(self.schedule, "load_state_dict", None)
                if loader is not None:
                    loader(resume.schedule_state)
            if resume.generator_state:
                gen_loader = getattr(state, "load_generator_state", None)
                if gen_loader is not None:
                    gen_loader(resume.generator_state)
            if resume.done:
                # The snapshot was taken on the anneal's final step: the
                # state is already converged, nothing left to run.
                result = AnnealResult(final_cost=state.cost())
                result.steps = [TemperatureStats(*p) for p in resume.steps]
                result.stop_reason = "stopping"
                return result
            start_index = resume.step_index
            temperature = resume.temperature
            prior = [TemperatureStats(*packed) for packed in resume.steps]
        else:
            start_index = 0
            temperature = self.schedule.t_infinity
            prior = []
        result = AnnealResult(final_cost=state.cost())
        result.steps = prior
        inner_moves = self.attempts_per_cell * state.moves_per_iteration()
        if budget is not None:
            budget.start()

        with tracer.span(
            "anneal",
            t_infinity=self.schedule.t_infinity,
            inner_moves=inner_moves,
            initial_cost=round(result.final_cost, 4),
            resumed_at=start_index if resume is not None else None,
        ):
            truncated = False
            stop_reason = None
            step_index = start_index
            while step_index < self.max_temperatures:
                if budget is not None:
                    reason = budget.exhausted()
                    if reason is not None:
                        truncated, stop_reason = True, f"budget:{reason}"
                        break
                state.on_temperature(temperature)
                fault_point(
                    "anneal.temperature", step=step_index, temperature=temperature
                )
                stats = TemperatureStats(temperature=temperature)
                t0 = time.monotonic()
                midloop_reason = None
                if budget is None:
                    for _ in range(inner_moves):
                        attempts, accepts = state.step(temperature, self.rng)
                        stats.attempts += attempts
                        stats.accepts += accepts
                else:
                    # Budgeted inner loop: identical move sequence, plus a
                    # strided budget check so a wall deadline ends the run
                    # within ~32 moves instead of a full inner loop.
                    done = 0
                    for k in range(inner_moves):
                        attempts, accepts = state.step(temperature, self.rng)
                        stats.attempts += attempts
                        stats.accepts += accepts
                        done += 1
                        if (k & 31) == 31:
                            budget.note_moves(done)
                            done = 0
                            midloop_reason = budget.exhausted()
                            if midloop_reason is not None:
                                break
                    if done:
                        budget.note_moves(done)
                stats.seconds = time.monotonic() - t0
                stats.cost_after = state.cost()
                result.steps.append(stats)
                # Adaptive schedules read the inner loop just completed
                # before the next alpha / window decision is made.
                observe = getattr(self.schedule, "observe", None)
                if observe is not None:
                    observe(stats)
                if budget is not None:
                    budget.note_temperature()
                if tracer.enabled:
                    self._emit_temperature(tracer, state, step_index, stats)
                if heartbeat.enabled:
                    self._emit_heartbeat(heartbeat, state, step_index, stats)
                # The stopping criterion consumes this step's stats before
                # observers run, so a checkpoint cursor captures its
                # post-update history.
                should_stop = self.stopping.should_stop(temperature, stats)
                if observers:
                    make_cursor = self._cursor_factory(
                        step_index, temperature, result, should_stop, state
                    )
                    for observer in observers:
                        observer(step_index, stats, state, make_cursor)
                if midloop_reason is not None:
                    truncated, stop_reason = True, f"budget:{midloop_reason}"
                    break
                if should_stop:
                    stop_reason = "stopping"
                    break
                temperature = self.schedule.next_temperature(temperature)
                step_index += 1
            else:
                stop_reason = "max_temperatures"

            result.final_cost = state.cost()
        result.truncated = truncated
        result.stop_reason = stop_reason
        return result

    def _cursor_factory(
        self,
        step_index: int,
        temperature: float,
        result: AnnealResult,
        should_stop: bool,
        state: Optional[AnnealingState] = None,
    ) -> Callable[[], AnnealCursor]:
        def make_cursor() -> AnnealCursor:
            dump = getattr(self.schedule, "state_dict", None)
            gen_dump = getattr(state, "generator_state_dict", None)
            return AnnealCursor(
                step_index=step_index + 1,
                temperature=self.schedule.next_temperature(temperature),
                rng_state=self.rng.getstate(),
                stopping_state=self.stopping.state_dict(),
                steps=[
                    (s.temperature, s.attempts, s.accepts, s.cost_after, s.seconds)
                    for s in result.steps
                ],
                done=should_stop,
                schedule_state=dump() if dump is not None else {},
                generator_state=gen_dump() if gen_dump is not None else {},
            )

        return make_cursor

    def _eta_floor_for(self, stats: TemperatureStats) -> Optional[float]:
        """The temperature ETAs walk down to: the declared ``eta_floor``
        sharpened by whatever the stopping criterion itself predicts
        (e.g. the adaptive flow's :class:`CostFloorStop`, whose floor
        depends on the live cost and usually fires far above the static
        safety-net floor)."""
        estimated = self.stopping.floor_estimate(stats)
        candidates = [f for f in (self.eta_floor, estimated) if f is not None]
        return max(candidates) if candidates else None

    def _eta_steps(
        self, temperature: float, step_index: int, stats: TemperatureStats
    ) -> Optional[int]:
        """Temperature steps left before the schedule reaches the ETA
        floor, bounded by ``max_temperatures``.  None when neither a
        declared floor nor the stopping criterion gives an anchor (the
        stop is purely data-dependent).

        A schedule may provide its own ``eta_steps(temperature, floor,
        cap)`` (the adaptive schedule does: a geometric projection of
        its *current* alpha); the fixed table schedules are walked
        exactly, band by band.
        """
        floor = self._eta_floor_for(stats)
        if floor is None or floor <= 0:
            return None
        remaining_cap = self.max_temperatures - step_index - 1
        projector = getattr(self.schedule, "eta_steps", None)
        if projector is not None:
            steps = projector(temperature, floor, remaining_cap)
            return min(steps, remaining_cap) if steps is not None else None
        steps = 0
        t = temperature
        while t > floor and steps < remaining_cap:
            t = self.schedule.next_temperature(t)
            steps += 1
        return steps

    def _emit_heartbeat(
        self,
        heartbeat,
        state: AnnealingState,
        step_index: int,
        stats: TemperatureStats,
    ) -> None:
        """One live beat per temperature step: current T, acceptance,
        cost components, and an ETA from the cooling schedule.

        Feedback-driven schedules cannot promise their future alphas,
        so their ETAs are flagged ``eta_estimated`` — and when even an
        estimate is impossible the beat carries an explicit
        ``eta_steps: null`` rather than a silently bogus number.
        """
        fields: Dict[str, Any] = {
            "step": step_index,
            "T": round(stats.temperature, 6),
            "acceptance": round(stats.acceptance_rate, 4),
            "cost": round(stats.cost_after, 4),
        }
        extra = state.telemetry_snapshot(stats.temperature)
        if extra:
            for key in ("c1", "c2", "c3", "window"):
                if key in extra:
                    fields[key] = extra[key]
        adaptive = getattr(self.schedule, "observe", None) is not None
        eta_steps = self._eta_steps(stats.temperature, step_index, stats)
        if eta_steps is not None:
            fields["eta_steps"] = eta_steps
            if stats.seconds > 0:
                fields["eta_seconds"] = round(eta_steps * stats.seconds, 1)
            if adaptive:
                fields["eta_estimated"] = True
        elif adaptive:
            fields["eta_steps"] = None
            fields["eta_seconds"] = None
        heartbeat.beat("anneal", **fields)

    def _emit_temperature(
        self,
        tracer: Tracer,
        state: AnnealingState,
        step_index: int,
        stats: TemperatureStats,
    ) -> None:
        """One ``anneal.temperature`` event: the per-temperature snapshot
        behind the paper's Figs. 3-6 (T, acceptance ratio, cost, rate,
        plus whatever the state's ``telemetry_snapshot`` and an adaptive
        schedule's ``telemetry_fields`` contribute)."""
        fields = {
            "step": step_index,
            "T": round(stats.temperature, 6),
            "attempts": stats.attempts,
            "accepts": stats.accepts,
            "acceptance": round(stats.acceptance_rate, 4),
            "cost": round(stats.cost_after, 4),
            "moves_per_sec": round(stats.attempts / stats.seconds, 1)
            if stats.seconds > 0
            else None,
        }
        extra = state.telemetry_snapshot(stats.temperature)
        if extra:
            fields.update(extra)
        schedule_fields = getattr(self.schedule, "telemetry_fields", None)
        if schedule_fields is not None:
            fields.update(schedule_fields())
        tracer.event("anneal.temperature", **fields)
