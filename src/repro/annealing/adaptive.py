"""Acceptance-ratio-driven cooling: the VPR-style adaptive alternative.

The paper's Tables 1/2 prescribe alpha(T) as a function of temperature
alone, calibrated once on 25-cell industrial circuits.  The adaptive
schedule (ported from the VPR placer family; see the `cgra_pnr` thunder
kernel) instead reads the *measured* acceptance ratio of the inner loop
just completed and picks alpha from it::

    r_accept > 0.96  ->  alpha = 0.50    (high-T plateau: cool fast)
    r_accept > 0.80  ->  alpha = 0.90
    r_accept > 0.15  ->  alpha = 0.95    (the productive mid-range)
    otherwise        ->  alpha = 0.80    (quench)

The displacement window follows the same feedback: after every inner
loop the limit is rescaled by ``1 - 0.44 + r_accept`` — it grows while
more than 44 % of moves are accepted and shrinks below that — and is
clamped to ``[min_span, full_span]``.  The steady state of that update
holds the acceptance ratio near 0.44, which is VPR's target for maximum
annealing efficiency.

The classes here duck-type the interfaces the engine and stage drivers
already use: :class:`AdaptiveCooling` stands in for a
``CoolingSchedule`` (``t_infinity`` / ``next_temperature``), and
:class:`AdaptiveRangeLimiter` for a ``RangeLimiter`` (``window_x`` /
``window_y`` / ``at_minimum`` / ``temperature_for_fraction``).  Both
carry their feedback state through ``state_dict`` / ``load_state_dict``
so checkpoint/resume replays the adaptive trajectory bit-for-bit, and
expose ``telemetry_fields`` so per-temperature trace events record the
chosen alpha and the current window.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional

from .engine import StoppingCriterion, TemperatureStats
from .range_limiter import MIN_WINDOW_SPAN

#: (threshold, alpha) bands of the adaptive update, highest first.
ADAPTIVE_ALPHA_BANDS = (
    (0.96, 0.50),
    (0.80, 0.90),
    (0.15, 0.95),
    (-1.0, 0.80),
)

#: The acceptance ratio the d_limit feedback loop converges toward.
TARGET_ACCEPT_RATIO = 0.44


def adaptive_alpha(r_accept: float) -> float:
    """The cooling factor for a measured acceptance ratio."""
    for threshold, alpha in ADAPTIVE_ALPHA_BANDS:
        if r_accept > threshold:
            return alpha
    return ADAPTIVE_ALPHA_BANDS[-1][1]


class AdaptiveRangeLimiter:
    """A displacement window driven by the acceptance ratio, not by T.

    Starts at the full core spans (any move can go anywhere, as at T∞)
    and rescales by ``1 - 0.44 + r_accept`` after every inner loop,
    clamped to ``[min_span, full span]``.  Stands in for
    :class:`~repro.annealing.range_limiter.RangeLimiter` wherever the
    stage drivers consult the window.
    """

    def __init__(
        self,
        full_span_x: float,
        full_span_y: float,
        t_infinity: float,
        min_span: float = MIN_WINDOW_SPAN,
    ) -> None:
        if full_span_x <= 0 or full_span_y <= 0:
            raise ValueError("window spans must be positive")
        if t_infinity <= 0:
            raise ValueError("t_infinity must be positive")
        if min_span <= 0:
            raise ValueError("min_span must be positive")
        self.full_span_x = float(full_span_x)
        self.full_span_y = float(full_span_y)
        self.t_infinity = float(t_infinity)
        self.min_span = float(min_span)
        self.d_limit_x = self.full_span_x
        self.d_limit_y = self.full_span_y

    # -- RangeLimiter interface -----------------------------------------

    def window_x(self, temperature: float) -> float:
        return max(self.min_span, self.d_limit_x)

    def window_y(self, temperature: float) -> float:
        return max(self.min_span, self.d_limit_y)

    def at_minimum(self, temperature: float) -> bool:
        return self.d_limit_x <= self.min_span and self.d_limit_y <= self.min_span

    def temperature_for_fraction(self, mu: float) -> float:
        """The stage-2 handoff temperature for window fraction ``mu``.

        The adaptive window has no closed-form T(W) relation, so this
        uses the paper's Eqn 28 with the reference rho = 4 — the same
        T' the Table-2 flow would start refinement from.
        """
        if not 0.0 < mu <= 1.0:
            raise ValueError("mu must lie in (0, 1]")
        return mu ** math.log(10.0, 4.0) * self.t_infinity

    # -- adaptive feedback ----------------------------------------------

    def observe(self, stats: TemperatureStats) -> None:
        factor = 1.0 - TARGET_ACCEPT_RATIO + stats.acceptance_rate
        self.d_limit_x = min(
            self.full_span_x, max(self.min_span, self.d_limit_x * factor)
        )
        self.d_limit_y = min(
            self.full_span_y, max(self.min_span, self.d_limit_y * factor)
        )

    def state_dict(self) -> Dict[str, Any]:
        return {"d_limit_x": self.d_limit_x, "d_limit_y": self.d_limit_y}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        self.d_limit_x = state["d_limit_x"]
        self.d_limit_y = state["d_limit_y"]

    def telemetry_fields(self) -> Dict[str, float]:
        return {
            "d_limit_x": round(self.d_limit_x, 3),
            "d_limit_y": round(self.d_limit_y, 3),
        }


class AdaptiveCooling:
    """An acceptance-ratio-driven cooling schedule.

    Duck-types ``CoolingSchedule`` where the engine needs it
    (``t_infinity``, ``next_temperature``) and additionally implements
    the engine's optional feedback protocol: ``observe(stats)`` after
    every inner loop, ``state_dict``/``load_state_dict`` for resumable
    cursors, and ``telemetry_fields`` for per-temperature snapshots.

    ``scale`` is the paper's S_T, kept so stage drivers can anchor
    their temperature floors exactly as they do for the table schedule.
    When a ``limiter`` (:class:`AdaptiveRangeLimiter`) is attached, its
    feedback and checkpoint state ride along with the schedule's.
    """

    def __init__(
        self,
        t_infinity: float,
        scale: float = 1.0,
        limiter: Optional[AdaptiveRangeLimiter] = None,
    ) -> None:
        if t_infinity <= 0:
            raise ValueError("t_infinity must be positive")
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.t_infinity = float(t_infinity)
        self.scale = float(scale)
        self.limiter = limiter
        # Before the first inner loop completes, assume the high-T
        # plateau (virtually everything accepted): fast cooling.
        self._r_accept = 1.0
        self._alpha = adaptive_alpha(self._r_accept)

    @property
    def r_accept(self) -> float:
        """The most recently observed acceptance ratio."""
        return self._r_accept

    def alpha(self, temperature: float) -> float:
        """Current alpha (independent of T; signature mirrors the table
        schedule so plotting code can treat both uniformly)."""
        return self._alpha

    def next_temperature(self, temperature: float) -> float:
        return temperature * self._alpha

    def eta_steps(
        self, temperature: float, floor: float, cap: Optional[int] = None
    ) -> Optional[int]:
        """Projected temperature steps to reach ``floor`` — a geometric
        extrapolation of the *current* alpha, since future alphas depend
        on acceptance ratios not yet measured.  The engine flags
        heartbeat ETAs built from this as estimates.  None when no
        finite projection exists."""
        if floor <= 0 or temperature <= floor:
            return 0 if temperature <= floor and floor > 0 else None
        if not 0.0 < self._alpha < 1.0:
            return None
        steps = int(math.ceil(math.log(floor / temperature) / math.log(self._alpha)))
        steps = max(0, steps)
        return min(steps, cap) if cap is not None else steps

    # -- engine feedback protocol ---------------------------------------

    def observe(self, stats: TemperatureStats) -> None:
        self._r_accept = stats.acceptance_rate
        self._alpha = adaptive_alpha(self._r_accept)
        if self.limiter is not None:
            self.limiter.observe(stats)

    def state_dict(self) -> Dict[str, Any]:
        state: Dict[str, Any] = {"r_accept": self._r_accept, "alpha": self._alpha}
        if self.limiter is not None:
            state["limiter"] = self.limiter.state_dict()
        return state

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        self._r_accept = state["r_accept"]
        self._alpha = state["alpha"]
        if self.limiter is not None and "limiter" in state:
            self.limiter.load_state_dict(state["limiter"])

    def telemetry_fields(self) -> Dict[str, float]:
        fields = {
            "alpha": round(self._alpha, 4),
            "r_accept": round(self._r_accept, 4),
        }
        if self.limiter is not None:
            fields.update(self.limiter.telemetry_fields())
        return fields


class CostFloorStop(StoppingCriterion):
    """The VPR stopping rule: quit once T falls below a small fraction
    of the per-net cost (``T < coefficient * cost / num_nets``).  At
    that point even a one-net improvement is effectively never accepted
    uphill, so further cooling is wasted work."""

    def __init__(self, num_nets: int, coefficient: float = 0.005) -> None:
        if num_nets < 1:
            raise ValueError("num_nets must be at least 1")
        if coefficient <= 0:
            raise ValueError("coefficient must be positive")
        self._num_nets = num_nets
        self._coefficient = coefficient

    def should_stop(self, temperature: float, stats: TemperatureStats) -> bool:
        return temperature < self._coefficient * stats.cost_after / self._num_nets

    def floor_estimate(self, stats: TemperatureStats) -> Optional[float]:
        """The current cost-derived floor.  The cost keeps falling as
        the anneal proceeds — so does this floor — which makes ETAs
        anchored on it estimates, refreshed every beat."""
        return self._coefficient * stats.cost_after / self._num_nets
