"""Cooling schedules and temperature scaling (Eqns 18-21, Tables 1-2).

The paper's update function is ``T_new = alpha(T_old) * T_old`` with an
experimentally determined, piecewise-constant alpha.  Temperatures are
scaled by S_T = c̄_a / c̄_a* (Eqn 20), where c̄_a is the average cell area
*including* the estimated interconnect area, so the same schedule works
across circuit and grid sizes.  The reference values are c̄_a* = 1e4 and
T∞* = 1e5, calibrated on 25-cell industrial circuits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

#: Reference average cell area (c̄_a*) and initial temperature (T∞*).
REFERENCE_CELL_AREA = 1.0e4
REFERENCE_T_INFINITY = 1.0e5

#: Table 1 — stage 1: (smallest T_old / S_T for this row, alpha).
STAGE1_TABLE: Tuple[Tuple[float, float], ...] = (
    (7000.0, 0.85),
    (200.0, 0.92),
    (10.0, 0.85),
    (0.0, 0.80),
)

#: Table 2 — stage 2 (low-temperature refinement).
STAGE2_TABLE: Tuple[Tuple[float, float], ...] = (
    (10.0, 0.82),
    (0.0, 0.70),
)


def temperature_scale(average_cell_area: float) -> float:
    """S_T of Eqn 20: the ratio of the circuit's average cell area
    (including estimated interconnect area) to the reference c̄_a*."""
    if average_cell_area <= 0:
        raise ValueError("average cell area must be positive")
    return average_cell_area / REFERENCE_CELL_AREA


@dataclass(frozen=True)
class CoolingSchedule:
    """A piecewise-geometric cooling schedule.

    ``table`` rows are (threshold, alpha) pairs sorted by decreasing
    threshold; alpha(T) is the alpha of the first row whose threshold
    satisfies ``T >= threshold * scale``.
    """

    table: Tuple[Tuple[float, float], ...]
    scale: float = 1.0
    t_infinity: float = REFERENCE_T_INFINITY

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        if self.t_infinity <= 0:
            raise ValueError("t_infinity must be positive")
        thresholds = [row[0] for row in self.table]
        if thresholds != sorted(thresholds, reverse=True):
            raise ValueError("schedule thresholds must be strictly decreasing")
        if thresholds[-1] != 0.0:
            raise ValueError("schedule must end with a catch-all threshold of 0")
        for _, alpha in self.table:
            if not 0.0 < alpha < 1.0:
                raise ValueError(f"alpha must lie in (0, 1), got {alpha}")

    def alpha(self, temperature: float) -> float:
        """The multiplicative cooling factor alpha(T_old) (Eqn 18)."""
        for threshold, alpha in self.table:
            if temperature >= threshold * self.scale:
                return alpha
        return self.table[-1][1]

    def next_temperature(self, temperature: float) -> float:
        """update(T): T_new = alpha(T_old) * T_old."""
        return temperature * self.alpha(temperature)

    def temperatures(self, t_floor: float, limit: int = 10_000) -> Sequence[float]:
        """The full temperature ladder from T∞ down to (and excluding) t_floor."""
        if t_floor <= 0:
            raise ValueError("t_floor must be positive")
        out = []
        t = self.t_infinity
        while t > t_floor and len(out) < limit:
            out.append(t)
            t = self.next_temperature(t)
        return out


def stage1_schedule(average_cell_area: float = REFERENCE_CELL_AREA) -> CoolingSchedule:
    """The Table 1 schedule, scaled per Eqns 19-21 for the given circuit.

    The initial temperature T∞ = S_T * T∞* is chosen so that virtually
    every proposed state is accepted at the start.
    """
    s_t = temperature_scale(average_cell_area)
    return CoolingSchedule(STAGE1_TABLE, s_t, s_t * REFERENCE_T_INFINITY)


def stage2_schedule(
    average_cell_area: float = REFERENCE_CELL_AREA,
    t_start: float = None,
) -> CoolingSchedule:
    """The Table 2 low-temperature schedule for placement refinement.

    ``t_start`` is the stage-2 starting temperature T' of Eqn 28 (derived
    from the window fraction mu); it defaults to S_T * T∞* so callers can
    override it once mu is known.
    """
    s_t = temperature_scale(average_cell_area)
    if t_start is None:
        t_start = s_t * REFERENCE_T_INFINITY
    return CoolingSchedule(STAGE2_TABLE, s_t, t_start)
