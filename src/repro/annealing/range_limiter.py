"""The range-limiter window and displacement-point selection (§3.2.2-3.2.3).

At low temperatures, long-distance moves are almost always rejected, so
the window from which a new cell location is drawn shrinks with the
logarithm of T (Eqns 12-14)::

    W_x(T) = W_x_inf * rho**log10(T) / lambda,   lambda = rho**log10(T_inf)

rho = 4 gave the lowest final TEIL *and* the lowest residual overlap in
the paper's sweeps (any rho in [1, 4] matched on TEIL alone).

The displacement-point selector Ds (Eqn 15-16) restricts moves to a small
set of evenly dispersed points: the step in each axis is an integer in
{-3..3} times W(T)/6, giving the 48 candidate points of §3.2.3.  The
paper prints the y divisor as 4, which would let |dy| exceed the stated
0.5*W_y(T) bound; we use 6 for both axes, consistent with that bound and
with the 7 x 7 - 1 = 48 point count.  A uniform selector Dr is provided
for the ablation benchmark.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Tuple

#: Step multipliers of the Ds selector (excluding (0, 0), chosen jointly).
STEP_MULTIPLIERS = (-3, -2, -1, 0, 1, 2, 3)

#: Window span, in grid units, at which stage 1 terminates (§3.2.3).
MIN_WINDOW_SPAN = 6.0


@dataclass(frozen=True)
class RangeLimiter:
    """The shrinking window controlling single-cell displacements.

    ``full_span_x`` / ``full_span_y`` are W_x∞ / W_y∞ — the window spans at
    T = T∞, normally the full core spans (so the first moves can reach
    anywhere).  ``t_infinity`` anchors the normalization constant lambda.
    """

    full_span_x: float
    full_span_y: float
    t_infinity: float
    rho: float = 4.0
    min_span: float = MIN_WINDOW_SPAN

    def __post_init__(self) -> None:
        if self.full_span_x <= 0 or self.full_span_y <= 0:
            raise ValueError("window spans must be positive")
        if self.t_infinity <= 0:
            raise ValueError("t_infinity must be positive")
        if not 1.0 <= self.rho <= 10.0:
            raise ValueError("rho must lie in [1, 10]")
        if self.min_span <= 0:
            raise ValueError("min_span must be positive")

    def _shrink_factor(self, temperature: float) -> float:
        if temperature <= 0:
            return 0.0
        if self.rho == 1.0:
            return 1.0  # rho = 1 never shrinks the window
        lam = self.rho ** math.log10(self.t_infinity)
        return self.rho ** math.log10(temperature) / lam

    def window_x(self, temperature: float) -> float:
        """W_x(T) of Eqn 12, floored at the minimum span."""
        return max(self.min_span, self.full_span_x * self._shrink_factor(temperature))

    def window_y(self, temperature: float) -> float:
        """W_y(T) of Eqn 13, floored at the minimum span."""
        return max(self.min_span, self.full_span_y * self._shrink_factor(temperature))

    def at_minimum(self, temperature: float) -> bool:
        """True when the window has reached its minimum span — the stage-1
        stopping condition."""
        factor = self._shrink_factor(temperature)
        return (
            self.full_span_x * factor <= self.min_span
            and self.full_span_y * factor <= self.min_span
        )

    def temperature_for_fraction(self, mu: float) -> float:
        """Invert Eqn 12: the temperature T' at which the window is the
        fraction ``mu`` of its full span (Eqn 28: T' = mu**log_rho(10) * T∞)."""
        if not 0.0 < mu <= 1.0:
            raise ValueError("mu must lie in (0, 1]")
        if self.rho == 1.0:
            raise ValueError("rho = 1 window never shrinks; no such temperature")
        return mu ** math.log(10.0, self.rho) * self.t_infinity


def select_displacement_ds(
    rng: random.Random,
    center: Tuple[float, float],
    limiter: RangeLimiter,
    temperature: float,
) -> Tuple[float, float]:
    """The Ds selector of §3.2.3: pick one of the 48 evenly dispersed
    points in the window centered on ``center`` (never the center itself)."""
    step_x = max(1.0, limiter.window_x(temperature) / 6.0)
    step_y = max(1.0, limiter.window_y(temperature) / 6.0)
    while True:
        ix = rng.choice(STEP_MULTIPLIERS)
        iy = rng.choice(STEP_MULTIPLIERS)
        if ix or iy:
            return (center[0] + ix * step_x, center[1] + iy * step_y)


def select_displacement_dr(
    rng: random.Random,
    center: Tuple[float, float],
    limiter: RangeLimiter,
    temperature: float,
) -> Tuple[float, float]:
    """The Dr selector: a uniformly random point in the window (the
    baseline Ds was compared against; kept for the ablation benchmark)."""
    half_x = limiter.window_x(temperature) / 2.0
    half_y = limiter.window_y(temperature) / 2.0
    return (
        center[0] + rng.uniform(-half_x, half_x),
        center[1] + rng.uniform(-half_y, half_y),
    )
