"""Top-level TimberWolfMC flow orchestration."""

from .timberwolf import TimberWolfResult, place_and_route
from .resume import resume_place_and_route
from .export import export_json, result_to_dict
from .validate import ChannelCheck, RoutabilityReport, check_routability, validate_result

__all__ = [
    "TimberWolfResult",
    "place_and_route",
    "resume_place_and_route",
    "export_json",
    "result_to_dict",
    "ChannelCheck",
    "RoutabilityReport",
    "check_routability",
    "validate_result",
]
