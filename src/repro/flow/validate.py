"""Detailed-routability validation of a finished flow.

The paper's headline claim is that TimberWolfMC placements "require very
little placement modification during detailed routing" — i.e. when a
channel router finally runs, each channel fits in the width the flow
reserved.  This module closes that loop without a full detailed router:
for every critical region of the final placement it

1. collects the channel's pin columns from the global routes (each net
   crossing the channel contributes entry/exit columns; pins on the
   bounding cell edges contribute their projections),
2. runs the VCG-constrained left-edge channel router on them, and
3. compares the tracks it needed against the tracks the region's width
   provides.

The resulting :class:`RoutabilityReport` is the reproduction's analogue
of "did detailed routing fit": the fraction of channels that fit, and
the worst shortfall.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..channels import (
    ChannelCycleError,
    ChannelGraph,
    ChannelPin,
    CriticalRegion,
    route_channel,
)
from ..geometry import Rect


@dataclass
class ChannelCheck:
    """Routability of one channel."""

    region_index: int
    cells: Tuple[str, str]
    tracks_needed: Optional[int]  # None when the VCG was cyclic
    tracks_available: int
    nets: int

    @property
    def fits(self) -> bool:
        return self.tracks_needed is not None and (
            self.tracks_needed <= self.tracks_available
        )

    @property
    def shortfall(self) -> int:
        if self.tracks_needed is None:
            return 0
        return max(0, self.tracks_needed - self.tracks_available)


@dataclass
class RoutabilityReport:
    """Aggregate detailed-routability of a placement."""

    checks: List[ChannelCheck] = field(default_factory=list)
    cyclic_channels: int = 0

    @property
    def num_channels(self) -> int:
        return len(self.checks)

    @property
    def num_routed_channels(self) -> int:
        return sum(1 for c in self.checks if c.nets > 0)

    @property
    def num_fitting(self) -> int:
        return sum(1 for c in self.checks if c.fits)

    @property
    def fit_fraction(self) -> float:
        routed = [c for c in self.checks if c.nets > 0]
        if not routed:
            return 1.0
        return sum(1 for c in routed if c.fits) / len(routed)

    @property
    def worst_shortfall(self) -> int:
        return max((c.shortfall for c in self.checks), default=0)

    def summary(self) -> str:
        return (
            f"{self.num_fitting}/{self.num_routed_channels} routed channels "
            f"fit their reserved width "
            f"(fit fraction {self.fit_fraction:.2f}, worst shortfall "
            f"{self.worst_shortfall} tracks, {self.cyclic_channels} cyclic)"
        )


def _channel_axis_coords(region: CriticalRegion) -> Tuple[int, int]:
    """(along, across) coordinate indices for a region's axis."""
    # A vertical channel runs in y: columns are y coordinates.
    return (1, 0) if region.axis == "vertical" else (0, 1)


def channel_pins_from_routes(
    graph: ChannelGraph,
    region: CriticalRegion,
    routes: Dict[str, List[Tuple[int, int]]],
) -> List[ChannelPin]:
    """Build the channel-router instance for one critical region.

    Every route edge whose L-path crosses the region contributes the
    crossing positions as pin columns; which shore (top/bottom in channel
    coordinates) is taken from which side of the channel centerline the
    endpoint lies on.
    """
    along, across = _channel_axis_coords(region)
    center_across = region.center[across]
    pins: List[ChannelPin] = []
    lo = region.rect.y1 if region.axis == "vertical" else region.rect.x1
    hi = region.rect.y2 if region.axis == "vertical" else region.rect.x2

    for net, edges in routes.items():
        for u, v in edges:
            p = graph.positions[u]
            q = graph.positions[v]
            for point in (p, q):
                column = point[along]
                if lo <= column <= hi and _near_region(region.rect, point):
                    side = "top" if point[across] >= center_across else "bottom"
                    pins.append(ChannelPin(net, column, side))
    return _dedupe(pins)


def _near_region(rect: Rect, point: Tuple[float, float]) -> bool:
    """Is the graph node close enough to the channel to enter it?"""
    margin = max(rect.width, rect.height)
    return rect.expanded_uniform(margin).contains_point(*point)


def _dedupe(pins: List[ChannelPin]) -> List[ChannelPin]:
    seen = set()
    out = []
    for pin in pins:
        key = (pin.net, round(pin.column, 6), pin.side)
        if key not in seen:
            seen.add(key)
            out.append(pin)
    return out


def check_routability(
    graph: ChannelGraph,
    routes: Dict[str, List[Tuple[int, int]]],
    track_spacing: float,
) -> RoutabilityReport:
    """Run the channel router over every critical region of a placement."""
    report = RoutabilityReport()
    for region in graph.regions:
        pins = channel_pins_from_routes(graph, region, routes)
        nets = len({p.net for p in pins})
        available = region.capacity(track_spacing)
        if not pins:
            report.checks.append(
                ChannelCheck(region.index, region.cells(), 0, available, 0)
            )
            continue
        try:
            routed = route_channel(pins)
            needed: Optional[int] = routed.num_tracks
        except ChannelCycleError:
            needed = None
            report.cyclic_channels += 1
        report.checks.append(
            ChannelCheck(region.index, region.cells(), needed, available, nets)
        )
    return report


def validate_result(result, seed: int = 0) -> RoutabilityReport:
    """Routability report for a completed :class:`TimberWolfResult`.

    Channels are re-extracted and nets re-routed on the *final* placement
    (the stored refinement pass reflects the placement before its last
    anneal), so the report judges exactly what would go to detailed
    routing.
    """
    import random

    from ..placement.refine import define_and_route

    if result.refinement is None or not result.refinement.passes:
        raise ValueError("the flow ran without refinement; nothing to validate")
    graph, routing, _ = define_and_route(
        result.circuit, result.state, result.config, random.Random(seed)
    )
    return check_routability(
        graph,
        {net: list(edges) for net, edges in routing.routes.items()},
        result.circuit.track_spacing,
    )
