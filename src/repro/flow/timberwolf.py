"""The complete TimberWolfMC flow: stage 1 plus stage-2 refinement.

``place_and_route`` is the top-level entry point a downstream user calls:

    from repro import place_and_route, TimberWolfConfig
    result = place_and_route(circuit, TimberWolfConfig.fast(seed=1))
    print(result.summary())
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..config import TimberWolfConfig
from ..netlist import Circuit
from ..placement.legalize import remove_overlaps
from ..placement.refine import RefinementResult, run_refinement
from ..placement.stage1 import Stage1Result, run_stage1
from ..placement.state import PlacementState
from ..telemetry import MemorySink, Tracer, profiled, use_tracer


@dataclass
class TimberWolfResult:
    """Everything produced by one full run of the flow."""

    circuit: Circuit
    config: TimberWolfConfig
    stage1: Stage1Result
    refinement: Optional[RefinementResult]
    stage1_teil: float
    stage1_chip_area: float
    stage1_placement: Dict[str, Tuple[float, float]]
    elapsed_seconds: float
    #: The run's telemetry events (spans, per-temperature snapshots,
    #: router records, ...) when tracing was active; None when telemetry
    #: was disabled.  ``repro.flow.report`` reads stage timings and
    #: router/channel statistics from here.
    trace_events: Optional[List[Dict[str, Any]]] = field(
        default=None, repr=False, compare=False
    )

    @property
    def state(self) -> PlacementState:
        return self.stage1.state

    @property
    def teil(self) -> float:
        """Final total estimated interconnect length."""
        return self.state.teil()

    @property
    def chip_area(self) -> float:
        """Final chip area (bounding box including interconnect area)."""
        return self.state.chip_area()

    @property
    def chip_dimensions(self) -> Tuple[float, float]:
        bbox = self.state.chip_bbox()
        return (bbox.width, bbox.height)

    @property
    def teil_change_pct(self) -> float:
        """Stage-2 TEIL relative to stage 1, as the percentage *reduction*
        reported in Table 3 (positive = stage 2 improved the TEIL)."""
        if self.stage1_teil == 0:
            return 0.0
        return 100.0 * (1.0 - self.teil / self.stage1_teil)

    @property
    def area_change_pct(self) -> float:
        """Stage-2 core-area change versus stage 1 (Table 3 convention:
        positive = stage 2 shrank the area)."""
        if self.stage1_chip_area == 0:
            return 0.0
        return 100.0 * (1.0 - self.chip_area / self.stage1_chip_area)

    @property
    def mean_stage2_displacement(self) -> float:
        """Average distance cells moved between the end of stage 1 and
        the final placement, normalized by the core's side length — the
        direct measure of how much 'placement modification' stage 2 (the
        routing-aware phase) had to perform."""
        state = self.state
        side = max(state.core.width, state.core.height)
        if side == 0 or not self.stage1_placement:
            return 0.0
        total = 0.0
        for name, (x0, y0) in self.stage1_placement.items():
            x1, y1 = state.records[state.index[name]].center
            total += abs(x1 - x0) + abs(y1 - y0)
        return total / len(self.stage1_placement) / side

    @property
    def routed_overflow(self) -> int:
        if self.refinement is None or not self.refinement.passes:
            return 0
        return self.refinement.final_pass.overflow

    def placement(self) -> Dict[str, Tuple[float, float]]:
        """Final cell centers by name."""
        state = self.state
        return {name: state.records[state.index[name]].center for name in state.names}

    def summary(self) -> str:
        w, h = self.chip_dimensions
        lines = [
            f"circuit {self.circuit.name}: {self.circuit.num_cells} cells, "
            f"{self.circuit.num_nets} nets, {self.circuit.num_pins} pins",
            f"  TEIL  {self.teil:12.1f}   (stage 1: {self.stage1_teil:.1f}, "
            f"change {self.teil_change_pct:+.1f}%)",
            f"  area  {self.chip_area:12.1f}   ({w:.0f} x {h:.0f}, "
            f"change {self.area_change_pct:+.1f}%)",
            f"  residual overlap {self.stage1.residual_overlap:10.2f}",
            f"  routing overflow {self.routed_overflow:d}",
            f"  elapsed {self.elapsed_seconds:.1f}s",
        ]
        return "\n".join(lines)


def place_and_route(
    circuit: Circuit,
    config: Optional[TimberWolfConfig] = None,
    tracer: Optional[Tracer] = None,
    collect_trace: bool = True,
) -> TimberWolfResult:
    """Run the full two-stage TimberWolfMC flow on a circuit.

    ``tracer`` routes the run's telemetry (stage spans, per-temperature
    annealing snapshots, router events) into the caller's sinks — e.g.
    ``Tracer(FileSink(path))`` for a JSONL trace that
    :mod:`repro.telemetry.report` can turn into the paper's diagnostic
    tables.  With ``collect_trace`` (the default) the same events are
    also kept in memory on ``result.trace_events`` so
    :mod:`repro.flow.report` can include stage timings and router
    statistics; pass ``collect_trace=False`` with no tracer to run with
    telemetry fully disabled.
    """
    config = config if config is not None else TimberWolfConfig()
    start = time.monotonic()

    mem = MemorySink() if collect_trace else None
    if tracer is None:
        run_tracer = Tracer(mem) if mem is not None else Tracer()
        borrowed = False
    else:
        run_tracer = tracer
        borrowed = True
        if mem is not None:
            run_tracer.add_sink(mem)

    try:
        with use_tracer(run_tracer):
            stage1, refinement, stage1_metrics = _run_flow(
                circuit, config, run_tracer
            )
    finally:
        if borrowed and mem is not None:
            run_tracer.remove_sink(mem)

    stage1_teil, stage1_area, stage1_placement = stage1_metrics
    return TimberWolfResult(
        circuit=circuit,
        config=config,
        stage1=stage1,
        refinement=refinement,
        stage1_teil=stage1_teil,
        stage1_chip_area=stage1_area,
        stage1_placement=stage1_placement,
        elapsed_seconds=time.monotonic() - start,
        trace_events=mem.events if mem is not None else None,
    )


def _run_flow(
    circuit: Circuit, config: TimberWolfConfig, tracer: Tracer
) -> Tuple[Stage1Result, Optional[RefinementResult], Tuple]:
    """The instrumented flow body: one span per stage (Table-4 rows)."""
    rng = random.Random(config.seed)
    prof = config.enable_profiling
    with tracer.span(
        "flow",
        circuit=circuit.name,
        cells=circuit.num_cells,
        nets=circuit.num_nets,
        pins=circuit.num_pins,
        seed=config.seed,
    ):
        with tracer.span("stage1"), profiled("stage1", prof, tracer):
            stage1 = run_stage1(circuit, config, rng)

        # Record the stage-1 metrics on a *legal* placement so the Table-3
        # comparison is apples-to-apples with the stage-2 numbers.
        with tracer.span("stage1.legalize"):
            remove_overlaps(stage1.state, min_gap=circuit.track_spacing)
        stage1_teil = stage1.state.teil()
        stage1_area = stage1.state.chip_area()
        stage1_placement = {
            name: stage1.state.records[stage1.state.index[name]].center
            for name in stage1.state.names
        }
        if tracer.enabled:
            tracer.event(
                "stage1.legalized",
                teil=round(stage1_teil, 2),
                chip_area=round(stage1_area, 2),
            )

        refinement = None
        if config.refinement_passes > 0:
            with tracer.span("stage2"), profiled("stage2", prof, tracer):
                refinement = run_refinement(circuit, stage1, config, rng)
    return stage1, refinement, (stage1_teil, stage1_area, stage1_placement)
