"""The complete TimberWolfMC flow: stage 1 plus stage-2 refinement.

``place_and_route`` is the top-level entry point a downstream user calls:

    from repro import place_and_route, TimberWolfConfig
    result = place_and_route(circuit, TimberWolfConfig.fast(seed=1))
    print(result.summary())
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..config import TimberWolfConfig
from ..netlist import Circuit, dumps
from ..parallel.seeds import spawn_seed
from ..placement.legalize import remove_overlaps
from ..placement.refine import RefinementResult, run_refinement
from ..obs.client import ObsClient
from ..placement.stage1 import Stage1Result, run_stage1
from ..placement.state import PlacementState
from ..resilience.budget import Budget
from ..resilience.checkpoint import CheckpointManager, CheckpointPolicy
from ..resilience.control import RunControl
from ..resilience.interrupt import trap_signals
from ..telemetry import MemorySink, Tracer, profiled, use_tracer


@dataclass
class TimberWolfResult:
    """Everything produced by one full run of the flow."""

    circuit: Circuit
    config: TimberWolfConfig
    stage1: Stage1Result
    refinement: Optional[RefinementResult]
    stage1_teil: float
    stage1_chip_area: float
    stage1_placement: Dict[str, Tuple[float, float]]
    elapsed_seconds: float
    #: The run's telemetry events (spans, per-temperature snapshots,
    #: router records, ...) when tracing was active; None when telemetry
    #: was disabled.  ``repro.flow.report`` reads stage timings and
    #: router/channel statistics from here.
    trace_events: Optional[List[Dict[str, Any]]] = field(
        default=None, repr=False, compare=False
    )
    #: True when a run budget cut the flow short (stage 1 or stage 2
    #: ended early; the placement is the best-so-far, not converged).
    truncated: bool = False
    #: The budget's final accounting (``Budget.report()``), when one was
    #: attached to the run.
    budget_report: Optional[Dict[str, Any]] = None
    #: Stage failures the supervisor recovered from (estimator fallback,
    #: skipped refinement passes, ...), as plain dicts.
    failures: List[Dict[str, Any]] = field(default_factory=list)
    #: Path of the checkpoint this run resumed from, when it did.
    resumed_from: Optional[str] = None

    @property
    def state(self) -> PlacementState:
        return self.stage1.state

    @property
    def teil(self) -> float:
        """Final total estimated interconnect length."""
        return self.state.teil()

    @property
    def chip_area(self) -> float:
        """Final chip area (bounding box including interconnect area)."""
        return self.state.chip_area()

    @property
    def chip_dimensions(self) -> Tuple[float, float]:
        bbox = self.state.chip_bbox()
        return (bbox.width, bbox.height)

    @property
    def teil_change_pct(self) -> float:
        """Stage-2 TEIL relative to stage 1, as the percentage *reduction*
        reported in Table 3 (positive = stage 2 improved the TEIL)."""
        if self.stage1_teil == 0:
            return 0.0
        return 100.0 * (1.0 - self.teil / self.stage1_teil)

    @property
    def area_change_pct(self) -> float:
        """Stage-2 core-area change versus stage 1 (Table 3 convention:
        positive = stage 2 shrank the area)."""
        if self.stage1_chip_area == 0:
            return 0.0
        return 100.0 * (1.0 - self.chip_area / self.stage1_chip_area)

    @property
    def mean_stage2_displacement(self) -> float:
        """Average distance cells moved between the end of stage 1 and
        the final placement, normalized by the core's side length — the
        direct measure of how much 'placement modification' stage 2 (the
        routing-aware phase) had to perform."""
        state = self.state
        side = max(state.core.width, state.core.height)
        if side == 0 or not self.stage1_placement:
            return 0.0
        total = 0.0
        for name, (x0, y0) in self.stage1_placement.items():
            x1, y1 = state.records[state.index[name]].center
            total += abs(x1 - x0) + abs(y1 - y0)
        return total / len(self.stage1_placement) / side

    @property
    def routed_overflow(self) -> int:
        if self.refinement is None or not self.refinement.passes:
            return 0
        return self.refinement.final_pass.overflow

    def placement(self) -> Dict[str, Tuple[float, float]]:
        """Final cell centers by name."""
        state = self.state
        return {name: state.records[state.index[name]].center for name in state.names}

    def summary(self) -> str:
        w, h = self.chip_dimensions
        lines = [
            f"circuit {self.circuit.name}: {self.circuit.num_cells} cells, "
            f"{self.circuit.num_nets} nets, {self.circuit.num_pins} pins",
            f"  TEIL  {self.teil:12.1f}   (stage 1: {self.stage1_teil:.1f}, "
            f"change {self.teil_change_pct:+.1f}%)",
            f"  area  {self.chip_area:12.1f}   ({w:.0f} x {h:.0f}, "
            f"change {self.area_change_pct:+.1f}%)",
            f"  residual overlap {self.stage1.residual_overlap:10.2f}",
            f"  routing overflow {self.routed_overflow:d}",
            f"  elapsed {self.elapsed_seconds:.1f}s",
        ]
        if self.truncated:
            reason = ""
            if self.budget_report is not None:
                reason = f" ({self.budget_report.get('exhausted')})"
            lines.append(f"  TRUNCATED: run budget exhausted{reason}")
        if self.failures:
            stages = ", ".join(f["stage"] for f in self.failures)
            lines.append(f"  recovered failures: {stages}")
        return "\n".join(lines)


def _build_control(
    circuit: Circuit,
    config: TimberWolfConfig,
    budget: Optional[Budget],
    checkpoint: Optional[CheckpointPolicy],
) -> RunControl:
    manager = None
    if checkpoint is not None:
        manager = CheckpointManager(checkpoint, dumps(circuit), config.to_dict())
    return RunControl(budget=budget, manager=manager)


def _stage1_summary(
    stage1: Stage1Result, stage1_metrics: Tuple
) -> Dict[str, Any]:
    """The plain-data stage-1 record a stage-2 checkpoint carries, so a
    resumed process can rebuild the :class:`Stage1Result` (the placement
    state itself travels in the checkpoint's ``state`` entry)."""
    teil, area, placement = stage1_metrics
    anneal = stage1.anneal
    return {
        "p2": stage1.p2,
        "anneal_steps": [
            (s.temperature, s.attempts, s.accepts, s.cost_after, s.seconds)
            for s in anneal.steps
        ],
        "anneal_final_cost": anneal.final_cost,
        "anneal_truncated": anneal.truncated,
        "anneal_stop_reason": anneal.stop_reason,
        "teil": teil,
        "chip_area": area,
        "placement": {name: tuple(c) for name, c in placement.items()},
    }


def place_and_route(
    circuit: Circuit,
    config: Optional[TimberWolfConfig] = None,
    tracer: Optional[Tracer] = None,
    collect_trace: bool = True,
    budget: Optional[Budget] = None,
    checkpoint: Optional[CheckpointPolicy] = None,
) -> TimberWolfResult:
    """Run the full two-stage TimberWolfMC flow on a circuit.

    ``tracer`` routes the run's telemetry (stage spans, per-temperature
    annealing snapshots, router events) into the caller's sinks — e.g.
    ``Tracer(FileSink(path))`` for a JSONL trace that
    :mod:`repro.telemetry.report` can turn into the paper's diagnostic
    tables.  With ``collect_trace`` (the default) the same events are
    also kept in memory on ``result.trace_events`` so
    :mod:`repro.flow.report` can include stage timings and router
    statistics; pass ``collect_trace=False`` with no tracer to run with
    telemetry fully disabled.

    ``budget`` bounds the run (wall clock, temperatures, or moves): when
    it runs dry the anneal freezes early and the result is flagged
    ``truncated``.  ``checkpoint`` (a :class:`CheckpointPolicy`) enables
    periodic snapshots plus SIGINT/SIGTERM trapping; an interrupted run
    raises :class:`~repro.resilience.FlowInterrupted` whose
    ``checkpoint_path`` feeds :func:`~repro.flow.resume_place_and_route`.
    """
    config = config if config is not None else TimberWolfConfig()
    control = _build_control(circuit, config, budget, checkpoint)
    return _place_and_route_controlled(circuit, config, tracer, collect_trace, control)


def _place_and_route_controlled(
    circuit: Circuit,
    config: TimberWolfConfig,
    tracer: Optional[Tracer],
    collect_trace: bool,
    control: RunControl,
    stage1_resume: Optional[Dict[str, Any]] = None,
    stage2_resume: Optional[Dict[str, Any]] = None,
    parallel_resume: Optional[Dict[str, Any]] = None,
    resumed_from: Optional[str] = None,
) -> TimberWolfResult:
    """The shared body behind ``place_and_route`` and resume."""
    start = time.monotonic()
    if control.budget is not None:
        control.budget.start()

    mem = MemorySink() if collect_trace else None
    if tracer is None:
        run_tracer = Tracer(mem) if mem is not None else Tracer()
        borrowed = False
    else:
        run_tracer = tracer
        borrowed = True
        if mem is not None:
            run_tracer.add_sink(mem)

    try:
        with use_tracer(run_tracer):
            if control.manager is not None:
                with trap_signals(control.interrupt):
                    stage1, refinement, stage1_metrics = _run_flow(
                        circuit, config, run_tracer, control,
                        stage1_resume, stage2_resume, parallel_resume,
                    )
            else:
                stage1, refinement, stage1_metrics = _run_flow(
                    circuit, config, run_tracer, control,
                    stage1_resume, stage2_resume, parallel_resume,
                )
    finally:
        if borrowed and mem is not None:
            run_tracer.remove_sink(mem)

    stage1_teil, stage1_area, stage1_placement = stage1_metrics
    truncated = stage1.anneal.truncated or (
        refinement is not None and refinement.truncated
    )
    return TimberWolfResult(
        circuit=circuit,
        config=config,
        stage1=stage1,
        refinement=refinement,
        stage1_teil=stage1_teil,
        stage1_chip_area=stage1_area,
        stage1_placement=stage1_placement,
        elapsed_seconds=time.monotonic() - start,
        trace_events=mem.events if mem is not None else None,
        truncated=truncated,
        budget_report=(
            dict(control.budget.report()) if control.budget is not None else None
        ),
        failures=[f.to_dict() for f in control.supervisor.failures],
        resumed_from=resumed_from,
    )


def _run_flow(
    circuit: Circuit,
    config: TimberWolfConfig,
    tracer: Tracer,
    control: RunControl,
    stage1_resume: Optional[Dict[str, Any]] = None,
    stage2_resume: Optional[Dict[str, Any]] = None,
    parallel_resume: Optional[Dict[str, Any]] = None,
) -> Tuple[Stage1Result, Optional[RefinementResult], Tuple]:
    """The instrumented flow body: one span per stage (Table-4 rows).

    ``stage1_resume`` / ``stage2_resume`` / ``parallel_resume`` are
    checkpoint payloads (at most one may be set); the single-chain flow
    threads ``rng`` through both stages so a resumed run replays the
    exact RNG stream of the uninterrupted one.  The multi-chain flow
    (``config.parallel.chains > 1``) gives every chain its own derived
    stream and hands the untouched ``rng`` to stage 2.
    """
    # spawn_seed(seed, 0) == seed: the single-chain stream is exactly
    # the historical random.Random(config.seed) one.
    rng = random.Random(spawn_seed(config.seed, 0))
    multichain = config.parallel.chains > 1 or parallel_resume is not None
    prof = config.enable_profiling
    obs = ObsClient()
    with tracer.span(
        "flow",
        circuit=circuit.name,
        cells=circuit.num_cells,
        nets=circuit.num_nets,
        pins=circuit.num_pins,
        seed=config.seed,
    ):
        start_pass = 0
        if stage2_resume is not None:
            stage1, stage1_metrics, start_pass = _restore_stage2(
                circuit, config, control, rng, stage2_resume, tracer
            )
        else:
            obs.stage("stage1", chains=config.parallel.chains)
            with tracer.span("stage1"), profiled("stage1", prof, tracer):
                if multichain:
                    # Deferred import: multiprocessing machinery, only
                    # touched when K > 1 chains are requested.
                    from ..parallel.multichain import run_multichain_stage1

                    stage1 = run_multichain_stage1(
                        circuit, config, control=control, resume=parallel_resume
                    )
                else:
                    stage1 = run_stage1(
                        circuit, config, rng, control=control, resume=stage1_resume
                    )

            # Record the stage-1 metrics on a *legal* placement so the
            # Table-3 comparison is apples-to-apples with stage 2.
            with tracer.span("stage1.legalize"):
                remove_overlaps(stage1.state, min_gap=circuit.track_spacing)
            stage1_teil = stage1.state.teil()
            stage1_area = stage1.state.chip_area()
            stage1_placement = {
                name: stage1.state.records[stage1.state.index[name]].center
                for name in stage1.state.names
            }
            stage1_metrics = (stage1_teil, stage1_area, stage1_placement)
            if tracer.enabled:
                tracer.event(
                    "stage1.legalized",
                    teil=round(stage1_teil, 2),
                    chip_area=round(stage1_area, 2),
                )

        if control.manager is not None:
            control.manager.stage1_summary = _stage1_summary(
                stage1, stage1_metrics
            )

        refinement = None
        if stage1.anneal.truncated:
            # The budget died inside stage 1: skip stage 2 entirely and
            # hand back the legalized stage-1 placement.
            if tracer.enabled:
                tracer.event("stage2.skipped", reason="budget")
        elif config.refinement_passes > 0:
            obs.stage("stage2", passes=config.refinement_passes)
            with tracer.span("stage2"), profiled("stage2", prof, tracer):
                refinement = run_refinement(
                    circuit, stage1, config, rng,
                    control=control, start_pass=start_pass,
                )
    return stage1, refinement, stage1_metrics


def _restore_stage2(
    circuit: Circuit,
    config: TimberWolfConfig,
    control: RunControl,
    rng: random.Random,
    payload: Dict[str, Any],
    tracer: Tracer,
) -> Tuple[Stage1Result, Tuple, int]:
    """Rebuild the stage-1 artifacts from a stage-2 checkpoint payload
    and position ``rng`` at the captured pass boundary."""
    # Deferred import: stage1 internals, only touched on the resume path.
    from ..annealing.engine import AnnealResult, TemperatureStats
    from ..placement.arraycore import make_placement_state
    from ..placement.stage1 import _core_plan, stage1_cooling

    summary = payload["stage1"]
    plan = _core_plan(circuit, config, control)
    # Stage 2 only consults the limiter (temperature_for_fraction); the
    # adaptive feedback state of the finished stage-1 anneal is
    # irrelevant here.
    _, limiter = stage1_cooling(plan, config)
    state = make_placement_state(config.core, circuit, plan, kappa=config.kappa)
    state.load_state_dict(payload["state"])
    anneal = AnnealResult(
        final_cost=summary["anneal_final_cost"],
        steps=[TemperatureStats(*s) for s in summary["anneal_steps"]],
        truncated=summary["anneal_truncated"],
        stop_reason=summary["anneal_stop_reason"],
    )
    stage1 = Stage1Result(
        state=state, plan=plan, limiter=limiter, anneal=anneal, p2=state.p2
    )
    rng.setstate(_as_rng_state(payload["rng_state"]))
    if control.manager is not None:
        control.manager.stage1_summary = summary
    if tracer.enabled:
        tracer.event(
            "checkpoint.resumed",
            phase="stage2",
            pass_index=payload["pass_index"],
        )
    metrics = (
        summary["teil"],
        summary["chip_area"],
        {name: tuple(c) for name, c in summary["placement"].items()},
    )
    return stage1, metrics, payload["pass_index"]


def _as_rng_state(value):
    """``random.setstate`` demands the exact nested-tuple shape that
    ``getstate`` produced; pickled payloads preserve it, but payloads
    that round-tripped through JSON arrive as lists."""
    if isinstance(value, list):
        return tuple(_as_rng_state(v) for v in value)
    return value
