"""Detailed textual reports for a completed flow run.

``TimberWolfResult.summary()`` is the one-screen view; this module
produces the longer engineering report a user would archive with a run:
per-net routed lengths, the busiest channels with their Eqn-22 widths,
custom-cell decisions, and the annealing trajectory.
"""

from __future__ import annotations

from typing import List

from ..bench.metrics import format_table
from ..channels import region_densities, required_channel_width
from ..netlist import CustomCell
from ..telemetry.report import stage_summary
from .timberwolf import TimberWolfResult


def annealing_trace(result: TimberWolfResult, every: int = 10) -> str:
    """The stage-1 temperature trajectory: T, acceptance rate, cost."""
    steps = result.stage1.anneal.steps
    rows = []
    for i, s in enumerate(steps):
        if i % every == 0 or i == len(steps) - 1:
            rows.append(
                [i, f"{s.temperature:.3g}", f"{s.acceptance_rate:.2f}", round(s.cost_after, 1)]
            )
    return format_table(["step", "T", "accept rate", "cost"], rows)


def net_report(result: TimberWolfResult, top: int = 15) -> str:
    """Longest routed nets (or net spans when routing was skipped)."""
    if result.refinement is not None and result.refinement.passes:
        lengths = result.refinement.final_pass.routing.lengths
        rows = sorted(lengths.items(), key=lambda kv: -kv[1])[:top]
        body = [[net, round(length, 1)] for net, length in rows]
        return format_table(["net", "routed length"], body)
    state = result.state
    rows = [
        (name, xs + ys) for name, (xs, ys) in state.net_spans().items()
    ]
    rows.sort(key=lambda kv: -kv[1])
    body = [[net, round(length, 1)] for net, length in rows[:top]]
    return format_table(["net", "span (HPWL)"], body)


def channel_report(result: TimberWolfResult, top: int = 12) -> str:
    """Busiest channels: density, required width, available width."""
    if result.refinement is None or not result.refinement.passes:
        return "(no refinement pass was run; no channels to report)"
    final = result.refinement.final_pass
    graph = final.graph
    densities = region_densities(graph, final.routing.routes)
    t_s = result.circuit.track_spacing
    ranked = sorted(densities.items(), key=lambda kv: -kv[1])[:top]
    rows = []
    for idx, density in ranked:
        region = graph.regions[idx]
        a, b = region.cells()
        rows.append(
            [
                f"{a}|{b}",
                region.axis,
                density,
                round(required_channel_width(density, t_s), 1),
                round(region.width, 1),
            ]
        )
    return format_table(
        ["channel", "axis", "density", "required w", "available w"], rows
    )


def router_report(result: TimberWolfResult) -> str:
    """Global-router and channel-definition statistics.

    Prefers the run's telemetry trace (per-pass ``channels.defined`` /
    ``router.interchange`` events); falls back to the final refinement
    pass's own artifacts when telemetry was disabled, so the report stays
    available either way.
    """
    if result.refinement is None or not result.refinement.passes:
        return "(no refinement pass was run; no routing to report)"

    events = result.trace_events or []
    defined = [
        e for e in events if e.get("ev") == "event" and e.get("name") == "channels.defined"
    ]
    interchanges = [
        e for e in events if e.get("ev") == "event" and e.get("name") == "router.interchange"
    ]
    rows: List[List[object]] = []
    if defined and interchanges:
        for i, (d, r) in enumerate(zip(defined, interchanges)):
            rows.append(
                [
                    i,
                    d.get("critical_regions"),
                    d.get("free_rects"),
                    r.get("nets_routed"),
                    r.get("unrouted"),
                    round(float(r.get("total_length", 0.0)), 1),
                    r.get("overflow"),
                ]
            )
    else:
        # Telemetry disabled: reconstruct what we can from the stored passes.
        for p in result.refinement.passes:
            rows.append(
                [
                    p.index,
                    len(p.graph.regions),
                    len(p.graph.node_rects),
                    len(p.routing.routes),
                    len(p.routing.unrouted),
                    round(p.routing.total_length, 1),
                    p.overflow,
                ]
            )
    return format_table(
        ["pass", "regions", "free rects", "nets", "unrouted", "length", "overflow"],
        rows,
    )


def stage_timing_report(result: TimberWolfResult) -> str:
    """Per-stage wall/CPU times from the run's trace (Table 4 analogue)."""
    events = result.trace_events
    if not events:
        return (
            "(telemetry disabled; rerun with tracing for per-stage timings)"
        )
    headers, rows = stage_summary(events)
    if not rows:
        return "(trace contains no completed spans)"
    return format_table(headers, rows)


def chip_planning_report(result: TimberWolfResult) -> str:
    """Aspect-ratio / instance / pin-site decisions for every cell that
    had freedom (the chip-planning outputs of §1)."""
    state = result.state
    rows: List[List[object]] = []
    for name in state.names:
        cell = result.circuit.cells[name]
        record = state.records[state.index[name]]
        if isinstance(cell, CustomCell):
            w, h = cell.dimensions(record.aspect_ratio)
            rows.append(
                [name, "custom", f"AR {record.aspect_ratio:.2f} ({w:.0f}x{h:.0f})",
                 len(record.pin_sites)]
            )
        elif cell.num_instances > 1:
            inst = cell.instances[record.instance].name
            rows.append([name, "macro", f"instance {inst!r}", ""])
    if not rows:
        return "(no cells with instance or aspect-ratio freedom)"
    return format_table(["cell", "kind", "decision", "pin groups"], rows)


def full_report(result: TimberWolfResult) -> str:
    """The complete multi-section report."""
    sections = [
        result.summary(),
        "",
        "-- chip planning " + "-" * 40,
        chip_planning_report(result),
        "",
        "-- busiest channels " + "-" * 37,
        channel_report(result),
        "",
        "-- longest nets " + "-" * 41,
        net_report(result),
        "",
        "-- router / channel definition " + "-" * 26,
        router_report(result),
        "",
        "-- stage timings " + "-" * 40,
        stage_timing_report(result),
        "",
        "-- stage-1 annealing trace " + "-" * 30,
        annealing_trace(result),
    ]
    return "\n".join(sections) + "\n"
