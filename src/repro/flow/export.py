"""Machine-readable export of a finished flow.

Downstream tools (detailed routers, analysis scripts, visualizers other
than ours) need the result as data, not as a Python object graph.
``result_to_dict`` flattens a :class:`TimberWolfResult` into plain
JSON-serializable structures: per-cell placements (center, orientation,
instance/aspect, tile geometry), per-pin positions, channel definitions
with their routed densities and required widths, and per-net global
routes as polylines between graph-node positions.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

from ..channels import region_densities, required_channel_width
from ..netlist import CustomCell
from .timberwolf import TimberWolfResult


def result_to_dict(result: TimberWolfResult) -> Dict[str, Any]:
    """Flatten a flow result into JSON-serializable data."""
    state = result.state
    circuit = result.circuit

    cells: List[Dict[str, Any]] = []
    for name in state.names:
        cell = circuit.cells[name]
        record = state.records[state.index[name]]
        shape = state.world_shape(name)
        entry: Dict[str, Any] = {
            "name": name,
            "kind": "custom" if isinstance(cell, CustomCell) else "macro",
            "fixed": cell.is_fixed,
            "center": list(record.center),
            "orientation": record.orientation,
            "tiles": [[t.x1, t.y1, t.x2, t.y2] for t in shape.tiles],
            "pins": {
                pin_name: list(state.pin_position(name, pin_name))
                for pin_name in cell.pins
            },
        }
        if isinstance(cell, CustomCell):
            entry["aspect_ratio"] = record.aspect_ratio
        else:
            entry["instance"] = cell.instances[record.instance].name
        cells.append(entry)

    nets = [
        {
            "name": net.name,
            "pins": [[ref.cell, ref.pin] for ref in net.pins],
            "h_weight": net.h_weight,
            "v_weight": net.v_weight,
        }
        for net in circuit.nets.values()
    ]

    data: Dict[str, Any] = {
        "circuit": circuit.name,
        "track_spacing": circuit.track_spacing,
        "metrics": {
            "teil": result.teil,
            "chip_area": result.chip_area,
            "chip_dimensions": list(result.chip_dimensions),
            "stage1_teil": result.stage1_teil,
            "teil_change_pct": result.teil_change_pct,
            "area_change_pct": result.area_change_pct,
            "mean_stage2_displacement": result.mean_stage2_displacement,
            "routing_overflow": result.routed_overflow,
            "elapsed_seconds": result.elapsed_seconds,
        },
        "cells": cells,
        "nets": nets,
    }

    if result.refinement is not None and result.refinement.passes:
        final = result.refinement.final_pass
        graph = final.graph
        densities = region_densities(graph, final.routing.routes)
        t_s = circuit.track_spacing
        data["channels"] = [
            {
                "index": region.index,
                "cells": list(region.cells()),
                "axis": region.axis,
                "rect": list(region.rect),
                "density": densities.get(region.index, 0),
                "required_width": required_channel_width(
                    densities.get(region.index, 0), t_s
                ),
                "available_width": region.width,
            }
            for region in graph.regions
        ]
        data["routes"] = {
            net: [
                {
                    "from": list(graph.positions[u]),
                    "to": list(graph.positions[v]),
                }
                # Routes are frozensets; sorted segments keep the JSON a
                # function of the route values, not the sets' in-memory
                # layout (which a pickle round-trip through a routing
                # worker is free to permute).
                for u, v in sorted(edges)
            ]
            for net, edges in final.routing.routes.items()
        }
    return data


def export_json(
    result: TimberWolfResult, path: Union[str, Path], indent: int = 2
) -> None:
    """Write the flattened result as a JSON file."""
    Path(path).write_text(json.dumps(result_to_dict(result), indent=indent))
