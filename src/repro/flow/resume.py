"""Resume an interrupted flow run from a checkpoint file.

``resume_place_and_route`` is the inverse of an interrupted
``place_and_route(..., checkpoint=...)``: it validates the checkpoint
(magic, schema, checksums, circuit hash), rebuilds the circuit and
config from the snapshot, and continues the run from the captured
position — mid-anneal for stage-1 checkpoints, at a round boundary
(all chains) for multi-chain ``parallel1`` checkpoints, at a pass
boundary for stage-2 checkpoints.  The continued run replays the exact RNG and
floating-point sequence of the uninterrupted one, so the final
placement and cost are bit-for-bit identical.
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path
from typing import Optional, Union

from ..config import TimberWolfConfig
from ..netlist import Circuit, loads
from ..resilience.budget import Budget
from ..resilience.checkpoint import (
    CheckpointError,
    CheckpointManager,
    CheckpointPolicy,
    read_checkpoint,
)
from ..resilience.control import RunControl
from ..telemetry import Tracer
from .timberwolf import TimberWolfResult, _place_and_route_controlled


def resume_place_and_route(
    path: Union[str, Path],
    tracer: Optional[Tracer] = None,
    collect_trace: bool = True,
    budget: Optional[Budget] = None,
    checkpoint: Optional[CheckpointPolicy] = None,
    expect_circuit_sha: Optional[str] = None,
) -> TimberWolfResult:
    """Continue a flow run from a checkpoint written by a previous run.

    The circuit and configuration come from the snapshot itself — the
    caller only names the file.  ``checkpoint`` re-arms periodic
    checkpointing for the continued run; by default snapshots continue
    into the checkpoint's own directory (at the default cadence — the
    policy itself is not part of the snapshot), so a twice-interrupted
    run keeps making progress.  Pass ``budget`` to
    bound the continued run (the original run's budget does not carry
    over).  ``expect_circuit_sha`` pins the checkpoint to a known
    circuit fingerprint (the service supervisor pins each retry to the
    job's snapshotted circuit).  Raises :class:`CheckpointError` on a
    corrupt, truncated, or stale file, and its
    :class:`~repro.resilience.checkpoint.CheckpointMismatch` subclass
    when the circuit hash does not match.
    """
    path = Path(path)
    header, payload = read_checkpoint(path, expect_circuit_sha=expect_circuit_sha)
    phase = payload.get("phase")
    if phase not in ("stage1", "stage2", "parallel1"):
        raise CheckpointError(f"{path}: unknown checkpoint phase {phase!r}")
    try:
        config = TimberWolfConfig.from_dict(payload["config"])
        circuit = loads(payload["circuit_text"])
    except KeyError as exc:
        raise CheckpointError(f"{path}: checkpoint missing {exc}") from exc

    # Keep the original run's registry identity AND its distributed
    # trace: the checkpoint payload carries both ids, and new
    # checkpoints written by the continued run must carry them too.
    run_id = payload.get("run_id")
    trace_id = payload.get("trace_id")
    if checkpoint is None:
        checkpoint = CheckpointPolicy(
            directory=path.parent, run_id=run_id, trace_id=trace_id
        )
    else:
        if checkpoint.run_id is None and run_id is not None:
            checkpoint = replace(checkpoint, run_id=run_id)
        if checkpoint.trace_id is None and trace_id is not None:
            checkpoint = replace(checkpoint, trace_id=trace_id)
    manager = CheckpointManager(checkpoint, payload["circuit_text"], payload["config"])
    control = RunControl(budget=budget, manager=manager)

    return _place_and_route_controlled(
        circuit,
        config,
        tracer,
        collect_trace,
        control,
        stage1_resume=payload if phase == "stage1" else None,
        stage2_resume=payload if phase == "stage2" else None,
        parallel_resume=payload if phase == "parallel1" else None,
        resumed_from=str(path),
    )
