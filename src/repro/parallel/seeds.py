"""Deterministic per-chain RNG seed derivation.

Multi-chain annealing needs one independent RNG stream per chain, all
derived from the single user-facing ``config.seed``.  Two requirements
shape the helper:

1. *Backward compatibility.*  ``spawn_seed(s, 0)`` must return ``s``
   unchanged: chain 0 (and the single-chain flow, which is "chain 0 of
   1") replays exactly the RNG stream today's serial code produces, so
   existing golden results and old checkpoints stay valid.
2. *Decorrelation.*  Python's Mersenne Twister seeds nearby integers to
   nearby internal states, so ``seed + chain_id`` would hand the chains
   visibly correlated streams.  Distinct ``(chain_id, stream)`` pairs
   are instead pushed through SHA-256, which scatters them uniformly
   over the 64-bit seed space.

``stream`` sub-divides a chain's seed space further: the exchange step
draws its perturbation RNG from ``stream = round_index + 1`` so the
perturbation noise is independent of the chain's move stream (and of
every other round's perturbation).
"""

from __future__ import annotations

import hashlib

#: Domain-separation tag so these seeds can never collide with another
#: subsystem hashing the same integers.
_TAG = b"repro.parallel.spawn_seed"


def spawn_seed(seed: int, chain_id: int, stream: int = 0) -> int:
    """Derive the RNG seed for ``chain_id`` from the run's base ``seed``.

    Identity for ``(chain_id=0, stream=0)`` — chain 0 *is* the serial
    run — and a SHA-256-scattered 64-bit integer for every other
    ``(chain_id, stream)`` pair.  Pure function: the same inputs yield
    the same seed on every platform and Python version.
    """
    if chain_id < 0:
        raise ValueError("chain_id must be non-negative")
    if stream < 0:
        raise ValueError("stream must be non-negative")
    if chain_id == 0 and stream == 0:
        return seed
    material = b"%s:%d:%d:%d" % (_TAG, seed, chain_id, stream)
    digest = hashlib.sha256(material).digest()
    return int.from_bytes(digest[:8], "big")
