"""Multi-chain stage-1 annealing with periodic best-of-K exchange.

K independent stage-1 chains anneal the same circuit from decorrelated
RNG streams (:func:`~repro.parallel.seeds.spawn_seed`).  Every E
temperature decrements (``config.parallel.exchange_period``) the
coordinator gathers all chains, ranks them by cost, and restarts the
worst ⌊K/2⌋ live chains from a *perturbed* copy of the best state —
the multi-start-with-exchange scheme parallel SA floorplanners use to
trade redundant exploration for wall-clock.

Determinism contract
--------------------

The final placement is a pure function of ``(seed, chains,
exchange_period)`` — never of ``workers`` or OS scheduling:

* every chain's RNG stream is derived from ``config.seed`` alone;
* chains interact only at round barriers, where all decisions (ranking,
  loser selection, perturbation) are computed from gathered plain data
  with index-based tie-breaking;
* the exchange perturbation draws from its own derived stream
  (``spawn_seed(seed, chain_id, stream=round+1)``), so it cannot skew
  any chain's move sequence;
* chains ship state between processes via the history-exact
  ``PlacementState.state_dict()`` (the same mechanism checkpoints use),
  so a state loaded in another process continues bit-for-bit.

The serial backend (``workers=1``) runs the same coordinator over
in-process chains; the process backend distributes chains over
persistent worker processes.  Both reconstruct chain state from the
circuit's canonical text form, so their float sequences are identical.

Checkpointing: the coordinator snapshots *all* chains at every round
boundary (phase ``"parallel1"``), after the exchange has been applied.
A SIGTERM that lands mid-round (including mid-exchange) is honored at
the next boundary, after the snapshot — resuming from it replays the
remaining rounds bit-for-bit.
"""

from __future__ import annotations

import multiprocessing as mp
import random
import sys
import traceback
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..annealing import AnnealCursor, Annealer, AnnealResult
from ..annealing.engine import TemperatureStats
from ..config import TimberWolfConfig
from ..netlist import Circuit, dumps, loads
from ..placement.arraycore import make_placement_state
from ..placement.batch import BatchAnnealingState, BatchMoveGenerator
from ..placement.moves import MoveGenerator, PlacementAnnealingState
from ..placement.stage1 import (
    Stage1Result,
    _core_plan,
    calibrate_p2,
    stage1_cooling,
    stage1_stopping,
)
from ..qor.heartbeat import NULL_HEARTBEAT, current_heartbeat, use_heartbeat
from ..resilience.drift import DriftGuard
from ..telemetry import MemorySink, Tracer, current_tracer, use_tracer
from .seeds import spawn_seed
from .workers import reset_worker_signals

#: Fraction of the movable cells the exchange perturbation displaces
#: (1/8), and the displacement radius as a fraction of the core span.
PERTURB_CELL_DIVISOR = 8
PERTURB_SPAN_FRACTION = 0.05


class ChainContext:
    """One annealing chain: placement state + a segmentable annealer.

    Lives wherever its backend puts it (coordinator process or worker).
    The annealer's ``max_temperatures`` is re-bounded per segment, so
    one persistent engine runs the chain in E-step slices with the RNG
    and stopping history carried across slices by the cursor — the
    exact mechanism stage-1 checkpoint resume uses.
    """

    def __init__(
        self,
        circuit: Circuit,
        config: TimberWolfConfig,
        chain_id: int,
        restore: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.chain_id = chain_id
        self.config = config
        rng = random.Random(spawn_seed(config.seed, chain_id))
        plan = _core_plan(circuit, config, None)
        schedule, self.limiter = stage1_cooling(plan, config)
        self.state = make_placement_state(
            config.core, circuit, plan, kappa=config.kappa
        )
        self.cursor: Optional[AnnealCursor] = None
        self.done = False
        self.stop_reason: Optional[str] = None
        if restore is not None:
            # Calibration already happened in the original run; the
            # cursor carries the RNG position.
            self.state.load_state_dict(restore["state"])
            self.cursor = AnnealCursor.from_dict(restore["cursor"])
            self.done = bool(restore.get("done", False))
            self.stop_reason = restore.get("stop_reason")
        else:
            self.state.p2 = calibrate_p2(self.state, rng, config.eta)
        self._batched = config.mover == "batched"
        if self._batched:
            # The batched numpy stream is seeded per chain from the same
            # derivation the chain's engine RNG uses, so chain 0 of a
            # one-chain run equals the single-chain driver exactly.
            self._generator = BatchMoveGenerator(
                self.state,
                self.limiter,
                r_ratio=config.r_ratio,
                batch=config.batch_moves,
                seed=spawn_seed(config.seed, chain_id),
            )
            self._anneal_state = BatchAnnealingState(self.state, self._generator)
            # The kernel session spans segments; the cursor restores the
            # numpy stream on the first resumed segment, and begin()
            # reconstructs the mid-anneal arrays bit-for-bit from the
            # restored records.
            self._generator.begin()
        else:
            self._generator = MoveGenerator(
                self.state,
                self.limiter,
                r_ratio=config.r_ratio,
                selector=config.selector,
            )
            self._anneal_state = PlacementAnnealingState(self.state, self._generator)
        stopping = stage1_stopping(circuit, config, schedule, self.limiter)
        self.annealer = Annealer(
            schedule,
            stopping,
            attempts_per_cell=config.attempts_per_cell,
            max_temperatures=config.max_temperatures,
            rng=rng,
        )

    def run_segment(self, upto: int) -> Dict[str, Any]:
        """Anneal until temperature step ``upto`` (exclusive) or until
        the chain's own stopping criterion fires, whichever is first."""
        if self.done:
            raise RuntimeError(f"chain {self.chain_id} is already done")
        bound = min(upto, self.config.max_temperatures)
        self.annealer.max_temperatures = bound
        prior_steps = len(self.cursor.steps) if self.cursor is not None else 0
        captured: List[Optional[AnnealCursor]] = [None]

        def _capture(step_index, stats, state, make_cursor) -> None:
            captured[0] = make_cursor()

        observers = []
        if self.config.drift_check_every:
            guard = DriftGuard(
                self.config.drift_check_every,
                self.config.drift_tolerance,
                self.config.drift_action,
            )
            observers.append(guard.observer())
        observers.append(_capture)
        result = self.annealer.run(
            self._anneal_state, resume=self.cursor, observers=observers
        )
        if captured[0] is not None:
            self.cursor = captured[0]
        self.done = self.cursor is not None and self.cursor.done
        if not self.done and bound >= self.config.max_temperatures:
            # The global temperature budget, not the segment bound.
            self.done = True
        self.stop_reason = result.stop_reason
        new_steps = result.steps[prior_steps:]
        # The adapter reports the *live* state: during a batched session
        # that is the kernel's arrays (export writes centers through to
        # the records), for serial chains it is the placement state
        # itself — both history-exact, both loadable anywhere.
        return {
            "chain": self.chain_id,
            "cost": self._anneal_state.cost(),
            "done": self.done,
            "stop_reason": self.stop_reason,
            "cursor": self.cursor.to_dict() if self.cursor is not None else None,
            "state": self._anneal_state.state_dict(),
            "attempts": sum(s.attempts for s in new_steps),
            "steps_completed": len(new_steps),
        }

    def exchange(self, best_state: Dict[str, Any], round_index: int) -> Dict[str, Any]:
        """Restart this chain from a perturbed copy of the best state.

        The perturbation RNG is derived from ``(seed, chain_id, round)``
        — independent of the chain's move stream, so the exchange never
        shifts the RNG position the cursor will resume from.  Returns
        the resulting ``state_dict`` (with canonical, freshly-rebuilt
        accumulators) for the coordinator's table and checkpoints.
        """
        state = self.state
        state.load_state_dict(best_state)
        rng = random.Random(
            spawn_seed(self.config.seed, self.chain_id, stream=round_index + 1)
        )
        movable = [i for i, ok in enumerate(state.movable) if ok]
        if movable:
            count = max(1, len(movable) // PERTURB_CELL_DIVISOR)
            dx = state.core.width * PERTURB_SPAN_FRACTION
            dy = state.core.height * PERTURB_SPAN_FRACTION
            for idx in rng.sample(movable, count):
                cx, cy = state.records[idx].center
                state.records[idx].center = state.clamp_to_core(
                    (cx + rng.uniform(-dx, dx), cy + rng.uniform(-dy, dy))
                )
            state.resync()
        if self._batched:
            # The exchange rebuilt the object model underneath the
            # kernel session; re-freeze so the next segment anneals the
            # exchanged placement (deterministic: begin() is a pure
            # function of the placement, so worker count still cannot
            # affect the result).
            self._generator.begin()
        return state.state_dict()

    def snapshot(self) -> Dict[str, Any]:
        """The chain's current state (pre-anneal when no segment ran)."""
        return self._anneal_state.state_dict()


def _traced_segment(context: ChainContext, upto: int, traced: bool) -> Dict[str, Any]:
    """Run one segment under a private tracer; ship the events back so
    the coordinator can merge them (tagged ``chain=<id>``) into the
    run's trace.

    The ambient heartbeat is silenced for the segment so the two
    backends behave identically: worker processes have no ambient
    heartbeat, and per-chain "anneal" beats from serial chains would
    interleave nonsensically.  The coordinator beats per round instead.
    """
    with use_heartbeat(NULL_HEARTBEAT):
        if not traced:
            result = context.run_segment(upto)
            result["events"] = []
            return result
        sink = MemorySink()
        with use_tracer(Tracer(sink)):
            result = context.run_segment(upto)
        result["events"] = sink.events
        return result


class SerialChainBackend:
    """All chains in the coordinator's process (``workers=1``).

    Chains are still built from the circuit's canonical text form —
    exactly what the process backend ships to its workers — so the two
    backends perform identical float sequences.
    """

    def __init__(self, circuit_text: str, config: TimberWolfConfig, traced: bool) -> None:
        self._circuit = loads(circuit_text)
        self._config = config
        self._traced = traced
        self._chains: Dict[int, ChainContext] = {}

    def init_chain(self, chain_id: int, restore: Optional[Dict] = None) -> None:
        self._chains[chain_id] = ChainContext(
            self._circuit, self._config, chain_id, restore
        )

    def run_segments(self, requests: Sequence[Tuple[int, int]]) -> List[Dict]:
        return [
            _traced_segment(self._chains[cid], upto, self._traced)
            for cid, upto in requests
        ]

    def exchange(self, chain_id: int, best_state: Dict, round_index: int) -> Dict:
        return self._chains[chain_id].exchange(best_state, round_index)

    def snapshot(self, chain_id: int) -> Dict:
        return self._chains[chain_id].snapshot()

    def close(self) -> None:
        self._chains.clear()


def _start_method() -> str:
    """Prefer fork (cheap, inherits sys.path) where available."""
    if "fork" in mp.get_all_start_methods():
        return "fork"
    return "spawn"


def _chain_worker_main(conn, circuit_text, config_dict, traced, sys_path) -> None:
    """Worker loop: owns a subset of chains, serves the coordinator's
    init/segment/exchange/snapshot requests over the pipe."""
    reset_worker_signals()
    for entry in sys_path:
        if entry not in sys.path:
            sys.path.insert(0, entry)
    circuit = loads(circuit_text)
    config = TimberWolfConfig.from_dict(config_dict)
    chains: Dict[int, ChainContext] = {}
    while True:
        try:
            message = conn.recv()
        except EOFError:
            break
        op = message[0]
        if op == "close":
            conn.send(("ok", None))
            break
        try:
            if op == "init":
                _, chain_id, restore = message
                chains[chain_id] = ChainContext(circuit, config, chain_id, restore)
                reply = None
            elif op == "segment":
                _, chain_id, upto = message
                reply = _traced_segment(chains[chain_id], upto, traced)
            elif op == "exchange":
                _, chain_id, best_state, round_index = message
                reply = chains[chain_id].exchange(best_state, round_index)
            elif op == "snapshot":
                _, chain_id = message
                reply = chains[chain_id].snapshot()
            else:
                raise ValueError(f"unknown worker op {op!r}")
        except Exception:
            conn.send(("error", traceback.format_exc()))
        else:
            conn.send(("ok", reply))
    conn.close()


class ChainWorkerError(RuntimeError):
    """A chain worker process failed; carries the worker's traceback."""


class ProcessChainBackend:
    """Chains distributed over persistent worker processes.

    Chain ``i`` lives in worker ``i % workers`` for the whole run, so
    its in-memory annealer persists across segments exactly as in the
    serial backend.  The coordinator pipelines one round's segment
    requests to all workers before gathering, so chains on different
    workers anneal concurrently; replies are matched per-pipe in FIFO
    order, which keeps the protocol deterministic.
    """

    def __init__(
        self, circuit_text: str, config: TimberWolfConfig, workers: int, traced: bool
    ) -> None:
        context = mp.get_context(_start_method())
        self._procs = []
        self._conns = []
        self._owner: Dict[int, int] = {}
        for _ in range(workers):
            parent_conn, child_conn = context.Pipe()
            proc = context.Process(
                target=_chain_worker_main,
                args=(
                    child_conn,
                    circuit_text,
                    config.to_dict(),
                    traced,
                    list(sys.path),
                ),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)

    def _recv(self, conn):
        status, value = conn.recv()
        if status == "error":
            raise ChainWorkerError(f"chain worker failed:\n{value}")
        return value

    def _conn(self, chain_id: int):
        return self._conns[self._owner[chain_id]]

    def init_chain(self, chain_id: int, restore: Optional[Dict] = None) -> None:
        self._owner[chain_id] = chain_id % len(self._conns)
        conn = self._conn(chain_id)
        conn.send(("init", chain_id, restore))
        self._recv(conn)

    def run_segments(self, requests: Sequence[Tuple[int, int]]) -> List[Dict]:
        for chain_id, upto in requests:
            self._conn(chain_id).send(("segment", chain_id, upto))
        # Receiving in request order is safe: each pipe's replies arrive
        # in the order its requests were sent.
        return [self._recv(self._conn(chain_id)) for chain_id, _ in requests]

    def exchange(self, chain_id: int, best_state: Dict, round_index: int) -> Dict:
        conn = self._conn(chain_id)
        conn.send(("exchange", chain_id, best_state, round_index))
        return self._recv(conn)

    def snapshot(self, chain_id: int) -> Dict:
        conn = self._conn(chain_id)
        conn.send(("snapshot", chain_id))
        return self._recv(conn)

    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.send(("close",))
            except (BrokenPipeError, OSError):
                pass
        for conn, proc in zip(self._conns, self._procs):
            try:
                if proc.is_alive():
                    conn.poll(2.0)
            except (BrokenPipeError, OSError):
                pass
            conn.close()
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)


def run_multichain_stage1(
    circuit: Circuit,
    config: TimberWolfConfig,
    control=None,
    resume: Optional[Dict[str, Any]] = None,
) -> Stage1Result:
    """Run stage 1 as K chains with periodic best-of-K exchange.

    Drop-in replacement for :func:`repro.placement.stage1.run_stage1`
    when ``config.parallel.chains > 1``.  ``resume`` is a ``parallel1``
    checkpoint payload (all chains at a round boundary); the run
    continues bit-for-bit.  Returns the winning chain's
    :class:`Stage1Result`, reconstructed in the caller's process.
    """
    par = config.parallel
    chains = par.chains
    workers = max(1, min(par.workers, chains))
    tracer = current_tracer()
    heartbeat = current_heartbeat()
    circuit_text = dumps(circuit)

    if workers == 1:
        backend = SerialChainBackend(circuit_text, config, tracer.enabled)
    else:
        backend = ProcessChainBackend(circuit_text, config, workers, tracer.enabled)

    #: chain_id -> {"cursor", "state", "done", "stop_reason", "cost"}
    table: Dict[int, Dict[str, Any]] = {}
    truncated = False
    budget_reason: Optional[str] = None
    try:
        if resume is not None:
            round_index = resume["round"]
            upto = resume["upto"]
            for cid in range(chains):
                entry = resume["chains"][cid]
                table[cid] = dict(entry)
                if not entry["done"]:
                    backend.init_chain(cid, restore=entry)
            if tracer.enabled:
                tracer.event(
                    "checkpoint.resumed", phase="parallel1", round=round_index
                )
        else:
            round_index = 0
            upto = par.exchange_period
            for cid in range(chains):
                backend.init_chain(cid)
            if tracer.enabled:
                tracer.event(
                    "parallel.setup",
                    chains=chains,
                    workers=workers,
                    exchange_period=par.exchange_period,
                )

        while True:
            live = [
                cid for cid in range(chains) if not table.get(cid, {}).get("done")
            ]
            if not live:
                break
            if control is not None:
                budget_reason = control.budget_exhausted()
                if budget_reason is not None:
                    truncated = True
                    break
            results = backend.run_segments([(cid, upto) for cid in live])
            round_attempts = 0
            round_steps = 0
            for res in results:
                cid = res["chain"]
                table[cid] = {
                    "cursor": res["cursor"],
                    "state": res["state"],
                    "done": res["done"],
                    "stop_reason": res["stop_reason"],
                    "cost": res["cost"],
                }
                round_attempts += res["attempts"]
                round_steps = max(round_steps, res["steps_completed"])
                tracer.ingest(res["events"], chain=cid)
            if control is not None and control.budget is not None:
                # The schedule advanced by the longest chain's step count;
                # moves are accounted across all chains.
                control.budget.note_moves(round_attempts)
                for _ in range(round_steps):
                    control.budget.note_temperature()
            if tracer.enabled:
                tracer.event(
                    "parallel.round",
                    round=round_index,
                    upto=upto,
                    costs={cid: round(table[cid]["cost"], 4) for cid in sorted(table)},
                    done=sorted(cid for cid in table if table[cid]["done"]),
                )
            if heartbeat.enabled:
                costed = [
                    cid for cid in table if table[cid]["cost"] is not None
                ]
                leader = (
                    min(costed, key=lambda c: (table[c]["cost"], c))
                    if costed
                    else None
                )
                heartbeat.beat(
                    "parallel",
                    round=round_index,
                    upto=upto,
                    best=leader,
                    cost=round(table[leader]["cost"], 4)
                    if leader is not None
                    else None,
                    chains={
                        str(cid): {
                            "cost": round(table[cid]["cost"], 4)
                            if table[cid]["cost"] is not None
                            else None,
                            "done": table[cid]["done"],
                        }
                        for cid in sorted(table)
                    },
                )
            live = [cid for cid in range(chains) if not table[cid]["done"]]
            if live:
                ranked = sorted(table, key=lambda c: (table[c]["cost"], c))
                best = ranked[0]
                losers = [
                    cid
                    for cid in reversed(ranked)
                    if cid != best and not table[cid]["done"]
                ][: chains // 2]
                for cid in losers:
                    table[cid]["state"] = backend.exchange(
                        cid, table[best]["state"], round_index
                    )
                if losers and tracer.enabled:
                    tracer.event(
                        "parallel.exchange",
                        round=round_index,
                        source=best,
                        targets=sorted(losers),
                        best_cost=round(table[best]["cost"], 4),
                    )
            if control is not None and control.manager is not None:
                payload = {
                    "round": round_index + 1,
                    "upto": upto + par.exchange_period,
                    "chains": {cid: dict(table[cid]) for cid in range(chains)},
                }
                path = control.manager.save(
                    "parallel1", f"parallel-r{round_index:04d}", payload
                )
                if tracer.enabled:
                    tracer.event(
                        "checkpoint.saved",
                        phase="parallel1",
                        round=round_index,
                        path=str(path),
                    )
            if control is not None and control.interrupt.is_set():
                control._raise_interrupted()
            round_index += 1
            upto += par.exchange_period

        if not table:
            # Budget exhausted before the first round: hand back chain
            # 0's initial (post-calibration) placement, truncated.
            table[0] = {
                "cursor": None,
                "state": backend.snapshot(0),
                "done": False,
                "stop_reason": None,
                "cost": None,
            }
    finally:
        backend.close()

    ranked = sorted(
        table,
        key=lambda c: (
            table[c]["cost"] if table[c]["cost"] is not None else float("inf"),
            c,
        ),
    )
    winner = ranked[0]
    entry = table[winner]

    # Reconstruct the winner in this process — identically for both
    # backends, so the result cannot depend on where the chain ran.
    plan = _core_plan(circuit, config, control)
    _, limiter = stage1_cooling(plan, config)
    state = make_placement_state(config.core, circuit, plan, kappa=config.kappa)
    state.load_state_dict(entry["state"])
    steps = (
        [TemperatureStats(*s) for s in entry["cursor"]["steps"]]
        if entry["cursor"] is not None
        else []
    )
    stop_reason = entry["stop_reason"]
    if truncated:
        stop_reason = f"budget:{budget_reason}"
    anneal = AnnealResult(
        final_cost=state.cost(),
        steps=steps,
        truncated=truncated,
        stop_reason=stop_reason,
    )
    if tracer.enabled:
        tracer.event(
            "parallel.winner",
            chain=winner,
            cost=round(anneal.final_cost, 4),
            rounds=round_index,
        )
        tracer.event(
            "stage1.result",
            teil=round(state.teil(), 2),
            chip_area=round(state.chip_area(), 2),
            residual_overlap=round(state.c2_raw(), 2),
            temperatures=anneal.num_temperatures,
        )
    return Stage1Result(
        state=state, plan=plan, limiter=limiter, anneal=anneal, p2=state.p2
    )
