"""The parallel execution layer: process-pool consumers of the flow.

Two consumers share this package:

* :func:`run_multichain_stage1` — K independent stage-1 annealing
  chains with periodic best-of-K exchange, bit-for-bit reproducible
  for a fixed ``(seed, chains, exchange_period)`` regardless of worker
  count (see :mod:`repro.parallel.multichain`).
* :func:`route_nets_parallel` — per-net M-shortest-path fan-out for
  the global router, identical to the serial router (see
  :mod:`repro.parallel.routing`).

:func:`spawn_seed` is the deterministic per-chain seed derivation both
the parallel layer and the serial flow use (chain 0 *is* the serial
stream).  Configuration lives in :class:`repro.config.ParallelConfig`
(``TimberWolfConfig.parallel``).
"""

from .multichain import (
    ChainContext,
    ChainWorkerError,
    ProcessChainBackend,
    SerialChainBackend,
    run_multichain_stage1,
)
from .routing import route_nets_parallel
from .seeds import spawn_seed

__all__ = [
    "ChainContext",
    "ChainWorkerError",
    "ProcessChainBackend",
    "SerialChainBackend",
    "route_nets_parallel",
    "run_multichain_stage1",
    "spawn_seed",
]
