"""Per-net routing fan-out over a process pool.

Phase one of the global router — M-shortest-path enumeration per net —
is embarrassingly parallel: each net's search reads only the (immutable)
channel graph.  The pool workers hold one pickled copy of the graph
each (shipped once via the pool initializer), receive ``(net, groups)``
tasks, and return the per-net alternatives; the parent commits results
in the original sequential net order and runs phase two (the
interchange, which consumes the router's RNG) serially.  The routing is
therefore *identical* to the serial router's, for any worker count.

Two serial-path features intentionally do not cross the process
boundary:

* fault injection (``fault_point``) — injector visit counters are
  per-process, so firing them inside workers would make results depend
  on worker count; per-net faults apply to the serial router only;
* tracing — workers run untraced; the parent emits the per-net
  ``router.net`` / ``router.net_retried`` / ``router.net_failed``
  events itself, in net order, from the returned records.
"""

from __future__ import annotations

import multiprocessing as mp
import sys
from typing import Dict, List, Sequence, Tuple

from ..routing.steiner import m_shortest_routes
from .workers import reset_worker_signals

#: Worker-global channel graph, installed once per worker by the pool
#: initializer so per-task payloads stay small.
_WORKER_GRAPH = None


def _init_worker(graph, sys_path: Sequence[str]) -> None:
    global _WORKER_GRAPH
    reset_worker_signals()
    for entry in sys_path:
        if entry not in sys.path:
            sys.path.insert(0, entry)
    _WORKER_GRAPH = graph


def _route_one(task) -> Dict:
    """Route one net: the serial router's degrade-on-exception ladder
    (full M, then relaxed M//2, then give up) without its fault points.

    Returns a record dict: ``net``, ``alternatives``, and — when the
    full-M search raised — ``error`` (the first failure) plus either
    ``retried`` (relaxed search succeeded) or ``failed`` (it did not).
    """
    net_name, groups, m_routes = task
    graph = _WORKER_GRAPH
    record: Dict = {
        "net": net_name,
        "alternatives": [],
        "error": None,
        "retried": None,
        "failed": None,
    }
    try:
        record["alternatives"] = m_shortest_routes(
            graph.neighbors, groups, m_routes, positions=graph.positions
        )
        return record
    except Exception as exc:
        first = f"{type(exc).__name__}: {exc}"
        record["error"] = first
    relaxed = max(1, m_routes // 2)
    try:
        record["alternatives"] = m_shortest_routes(
            graph.neighbors, groups, relaxed, positions=graph.positions
        )
        record["retried"] = f"rerouted with M={relaxed} after {first}"
    except Exception as exc2:
        record["failed"] = (
            f"{first}; retry with M={relaxed} failed: "
            f"{type(exc2).__name__}: {exc2}"
        )
    return record


def route_nets_parallel(
    graph,
    tasks: Sequence[Tuple[str, Sequence[Sequence[int]]]],
    m_routes: int,
    workers: int,
) -> List[Dict]:
    """Fan phase one out over ``workers`` processes.

    ``tasks`` is the ordered list of ``(net_name, pin_groups)`` the
    serial loop would visit; the result list preserves that order
    exactly (``pool.map`` keeps input order), so the caller's commit
    sequence — and hence the interchange and every downstream float —
    matches the serial router bit-for-bit.
    """
    if not tasks:
        return []
    start = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
    context = mp.get_context(start)
    payload = [(name, groups, m_routes) for name, groups in tasks]
    chunksize = max(1, len(payload) // (workers * 4))
    with context.Pool(
        processes=workers,
        initializer=_init_worker,
        initargs=(graph, list(sys.path)),
    ) as pool:
        return pool.map(_route_one, payload, chunksize=chunksize)
