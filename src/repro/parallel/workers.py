"""Shared worker-process hygiene for the parallel backends."""

from __future__ import annotations

import signal


def reset_worker_signals() -> None:
    """Restore default signal disposition in a freshly started worker.

    Workers forked while the flow's graceful-interrupt trap
    (:func:`repro.resilience.interrupt.trap_signals`) is armed inherit
    its SIGINT/SIGTERM handler — which only sets a coordinator-side
    flag and never exits.  An idle worker blocked on its task queue
    would then survive ``terminate()``, and the parent's unbounded
    ``join()`` (``multiprocessing.Pool._terminate_pool``, or the
    interpreter's at-exit reaper) deadlocks.  Workers take SIGTERM at
    its default (die, so pool teardown works) and ignore SIGINT (a
    terminal Ctrl-C reaches the whole process group; the coordinator
    alone decides how to unwind, via the pipe protocol).
    """
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_IGN)
