"""Greedy constructive placement.

A classical constructive comparator in the spirit of the automatic
placement tools TimberWolfMC was evaluated against: cells are placed one
at a time in decreasing order of connectivity; each cell is put at the
candidate location (on a coarse grid over the core) that minimizes the
half-perimeter wirelength of its nets to the already-placed cells, with
already-occupied space skipped.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Set, Tuple

from ..geometry import TileSet
from ..placement.state import PlacementState
from .base import BaselinePlacer

#: Candidate grid resolution (positions per axis).
GRID_STEPS = 12


class GreedyPlacer(BaselinePlacer):
    """Connectivity-ordered constructive placement."""

    name = "greedy"

    def _assign(self, state: PlacementState, rng: random.Random) -> None:
        circuit = state.circuit
        core = state.core
        n = len(state.names)

        # Order: total net degree (number of net memberships), descending;
        # ties broken by area so big cells land early.
        def connectivity(idx: int) -> Tuple[int, float]:
            name = state.names[idx]
            degree = len(state._cell_nets[idx])
            area = state._local_shape(idx).area
            return (degree, area)

        order = sorted(range(n), key=connectivity, reverse=True)

        xs = [
            core.x1 + (i + 0.5) * core.width / GRID_STEPS for i in range(GRID_STEPS)
        ]
        ys = [
            core.y1 + (j + 0.5) * core.height / GRID_STEPS for j in range(GRID_STEPS)
        ]

        placed: List[int] = []
        placed_shapes: List[TileSet] = []
        # Positions of already placed pins per net (for incremental HPWL).
        net_points: Dict[str, List[Tuple[float, float]]] = {}

        for idx in order:
            shape = state._local_shape(idx).transformed(
                state.records[idx].orientation
            )
            best: Optional[Tuple[float, float, float]] = None  # (cost, x, y)
            for x in xs:
                for y in ys:
                    candidate = shape.translated(x, y)
                    overlap = sum(
                        candidate.overlap_area(p) for p in placed_shapes
                    )
                    cost = self._wirelength_at(state, idx, (x, y), net_points)
                    # Occupied space is strongly, but not infinitely,
                    # penalized: dense circuits must still place everyone.
                    cost += 10.0 * overlap
                    if best is None or cost < best[0]:
                        best = (cost, x, y)
            assert best is not None
            _, x, y = best
            state.records[idx].center = (x, y)
            placed.append(idx)
            placed_shapes.append(shape.translated(x, y))
            for pin_name, pos in self._pin_positions_at(state, idx, (x, y)).items():
                net = circuit.cells[state.names[idx]].pins[pin_name].net
                net_points.setdefault(net, []).append(pos)

        state.rebuild()

    @staticmethod
    def _pin_positions_at(
        state: PlacementState, idx: int, center: Tuple[float, float]
    ) -> Dict[str, Tuple[float, float]]:
        record = state.records[idx]
        old = record.center
        record.center = center
        try:
            return state._pin_positions(idx)
        finally:
            record.center = old

    def _wirelength_at(
        self,
        state: PlacementState,
        idx: int,
        center: Tuple[float, float],
        net_points: Dict[str, List[Tuple[float, float]]],
    ) -> float:
        """HPWL of the cell's nets to already-placed pins, with the cell
        trial-placed at ``center``."""
        pins = self._pin_positions_at(state, idx, center)
        circuit = state.circuit
        name = state.names[idx]
        total = 0.0
        for net_name in state._cell_nets[idx]:
            points = list(net_points.get(net_name, ()))
            for ref in circuit.nets[net_name].pins:
                if ref.cell == name:
                    points.append(pins[ref.pin])
            if len(points) < 2:
                continue
            xs = [p[0] for p in points]
            ys = [p[1] for p in points]
            total += (max(xs) - min(xs)) + (max(ys) - min(ys))
        return total
