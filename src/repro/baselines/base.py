"""Common scaffolding for the baseline placers of Table 4.

Every baseline produces the same artifact as TimberWolfMC — a
``PlacementState`` over the same sized core — so TEIL and chip area are
measured identically.  Baselines finish with the same legalization pass
(overlap-free, one track of clearance), making the area comparison fair.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional

from ..estimator import determine_core
from ..netlist import Circuit
from ..placement.legalize import remove_overlaps
from ..placement.state import PlacementState


@dataclass
class BaselineResult:
    """A baseline placement, measured like a TimberWolfMC result."""

    name: str
    state: PlacementState

    @property
    def teil(self) -> float:
        return self.state.teil()

    @property
    def chip_area(self) -> float:
        return self.state.chip_area()


def route_baseline(
    result: BaselineResult,
    m_routes: int = 8,
    seed: int = 0,
) -> BaselineResult:
    """Globally route a baseline placement and reserve its channel widths.

    TimberWolfMC's reported chip area includes the interconnect space the
    routed design actually needs (Eqn 22).  To compare areas fairly, a
    baseline placement gets the same treatment: channels are defined and
    routed on it, every cell edge is expanded by half its channels'
    required width, and the placement is re-legalized.  The returned
    result's ``chip_area`` is then the baseline's *routed* area.
    """
    from ..channels import cell_edge_expansions
    from ..config import TimberWolfConfig
    from ..placement.compact import compact
    from ..placement.refine import define_and_route

    state = result.state
    circuit = state.circuit
    config = TimberWolfConfig(m_routes=m_routes, seed=seed)
    rng = random.Random(seed)
    graph, routing, _ = define_and_route(circuit, state, config, rng)
    expansions = cell_edge_expansions(graph, routing.routes, circuit.track_spacing)
    state.set_static_expansions(expansions)
    # The same finishing the flow applies: separate the margin-carrying
    # shapes so every channel actually has its width, then compact.
    remove_overlaps(state, use_expanded=True)
    compact(state)
    return BaselineResult(name=result.name, state=state)


class BaselinePlacer(ABC):
    """A placement method TimberWolfMC is compared against."""

    #: Short identifier used in benchmark tables.
    name: str = "baseline"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def place(self, circuit: Circuit) -> BaselineResult:
        """Produce a legal placement of the circuit."""
        plan = determine_core(circuit)
        state = PlacementState(circuit, plan)
        rng = random.Random(self.seed)
        self._assign(state, rng)
        # Baselines are free to ignore pre-placed cells while optimizing;
        # the contract is re-imposed before legalization.
        state.enforce_fixed()
        remove_overlaps(state, min_gap=circuit.track_spacing)
        return BaselineResult(name=self.name, state=state)

    @abstractmethod
    def _assign(self, state: PlacementState, rng: random.Random) -> None:
        """Fill in the state's records (legalization happens afterwards)."""
