"""Slicing-tree floorplanning by simulated annealing (Wong-Liu, DAC'86).

The paper's introduction cites Wong and Liu's floorplanner as the
closest prior annealing work ("A New Algorithm for Floorplan Design"),
noting it cannot handle TimberWolfMC's mixed macro/custom problem.  It
is, however, an excellent *area* baseline: a normalized Polish
expression over the blocks is annealed with the classical three move
types, block shapes come from shape curves (macro orientations, sampled
custom aspect ratios), and the slicing structure guarantees an
overlap-free packing by construction.

Cost = floorplan area + lambda * half-perimeter wirelength estimated
from block centers, matching Wong-Liu's formulation.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..netlist import Circuit, CustomCell, MacroCell
from ..placement.state import PlacementState
from .base import BaselinePlacer

H, V = "H", "V"  # horizontal cut (stack), vertical cut (side by side)

#: Custom-cell aspect ratios sampled onto the shape curve.
CUSTOM_ASPECT_SAMPLES = (0.5, 0.75, 1.0, 1.5, 2.0)


@dataclass(frozen=True)
class Shape:
    """One realizable (width, height) of a block or a slice subtree.

    ``left``/``right`` index the child shapes that realize this one, and
    ``tag`` records the block-level choice (orientation or aspect ratio).
    """

    width: float
    height: float
    left: int = -1
    right: int = -1
    tag: int = 0


def _prune(shapes: List[Shape]) -> List[Shape]:
    """Keep only non-dominated shapes, sorted by increasing width."""
    shapes = sorted(shapes, key=lambda s: (s.width, s.height))
    pruned: List[Shape] = []
    best_h = math.inf
    for s in shapes:
        if s.height < best_h - 1e-12:
            pruned.append(s)
            best_h = s.height
    return pruned


def block_shapes(cell) -> List[Shape]:
    """The shape curve of a single cell.

    Macro cells offer their bounding box and its 90-degree rotation (per
    instance); custom cells offer a few aspect ratios from their range.
    ``tag`` encodes the choice: macros use instance*2 + rotated; customs
    use the sample index.
    """
    shapes: List[Shape] = []
    if isinstance(cell, MacroCell):
        for k, inst in enumerate(cell.instances):
            bbox = inst.shape.bbox
            shapes.append(Shape(bbox.width, bbox.height, tag=k * 2))
            shapes.append(Shape(bbox.height, bbox.width, tag=k * 2 + 1))
    else:
        assert isinstance(cell, CustomCell)
        for i, ar in enumerate(CUSTOM_ASPECT_SAMPLES):
            clamped = cell.aspect.clamp(ar)
            w, h = cell.dimensions(clamped)
            shapes.append(Shape(w, h, tag=i))
    return _prune(shapes)


class PolishExpression:
    """A normalized Polish expression: operands 0..n-1 and H/V operators.

    Normalized means no two identical adjacent operators (skewed slicing
    tree), which together with the balloting property makes the three
    Wong-Liu moves ergodic over slicing structures.
    """

    def __init__(self, tokens: Sequence[object]):
        self.tokens: List[object] = list(tokens)
        self._validate()

    @staticmethod
    def initial(num_blocks: int) -> "PolishExpression":
        """The canonical starting expression 0 1 V 2 V 3 V ... (a row)."""
        if num_blocks < 1:
            raise ValueError("need at least one block")
        tokens: List[object] = [0]
        for b in range(1, num_blocks):
            tokens.extend([b, V if b % 2 else H])
        return PolishExpression(tokens)

    def _validate(self) -> None:
        count = 0
        for i, t in enumerate(self.tokens):
            if isinstance(t, int):
                count += 1
            else:
                if t not in (H, V):
                    raise ValueError(f"bad token {t!r}")
                count -= 1
                if count < 1:
                    raise ValueError("balloting property violated")
                if i + 1 < len(self.tokens) and self.tokens[i + 1] == t:
                    raise ValueError("expression not normalized")
        if count != 1:
            raise ValueError("expression does not reduce to one slice")

    def operand_positions(self) -> List[int]:
        return [i for i, t in enumerate(self.tokens) if isinstance(t, int)]

    def operator_chains(self) -> List[int]:
        """Start indices of maximal operator chains."""
        chains = []
        i = 0
        while i < len(self.tokens):
            if self.tokens[i] in (H, V):
                chains.append(i)
                while i < len(self.tokens) and self.tokens[i] in (H, V):
                    i += 1
            else:
                i += 1
        return chains

    # -- the three Wong-Liu moves (each returns a new expression or None) --

    def swap_adjacent_operands(self, rng: random.Random) -> "PolishExpression":
        """M1: exchange two operands adjacent in the operand sequence."""
        ops = self.operand_positions()
        if len(ops) < 2:
            return self  # single-block floorplan: nothing to swap
        k = rng.randrange(len(ops) - 1)
        i, j = ops[k], ops[k + 1]
        tokens = list(self.tokens)
        tokens[i], tokens[j] = tokens[j], tokens[i]
        return PolishExpression(tokens)

    def complement_chain(self, rng: random.Random) -> "PolishExpression":
        """M2: complement every operator in one maximal chain."""
        chains = self.operator_chains()
        if not chains:
            return self  # single-block floorplan: no operators
        start = chains[rng.randrange(len(chains))]
        tokens = list(self.tokens)
        i = start
        while i < len(tokens) and tokens[i] in (H, V):
            tokens[i] = H if tokens[i] == V else V
            i += 1
        return PolishExpression(tokens)

    def swap_operand_operator(
        self, rng: random.Random, attempts: int = 10
    ) -> Optional["PolishExpression"]:
        """M3: swap an adjacent operand/operator pair, keeping validity."""
        n = len(self.tokens)
        if n < 2:
            return None  # single-block floorplan: no operator to swap with
        for _ in range(attempts):
            i = rng.randrange(n - 1)
            a, b = self.tokens[i], self.tokens[i + 1]
            if isinstance(a, int) == isinstance(b, int):
                continue
            tokens = list(self.tokens)
            tokens[i], tokens[i + 1] = tokens[i + 1], tokens[i]
            try:
                return PolishExpression(tokens)
            except ValueError:
                continue
        return None


@dataclass
class _SliceNode:
    shapes: List[Shape]
    operator: Optional[str] = None  # None = leaf
    block: int = -1
    left: Optional["_SliceNode"] = None
    right: Optional["_SliceNode"] = None


def _combine(left: List[Shape], right: List[Shape], op: str) -> List[Shape]:
    out: List[Shape] = []
    for i, a in enumerate(left):
        for j, b in enumerate(right):
            if op == V:  # side by side
                out.append(
                    Shape(a.width + b.width, max(a.height, b.height), i, j)
                )
            else:  # stacked
                out.append(
                    Shape(max(a.width, b.width), a.height + b.height, i, j)
                )
    return _prune(out)


def evaluate(
    expr: PolishExpression, curves: List[List[Shape]]
) -> Tuple[_SliceNode, Shape]:
    """Build the slicing tree and return (root, minimum-area root shape)."""
    stack: List[_SliceNode] = []
    for token in expr.tokens:
        if isinstance(token, int):
            stack.append(_SliceNode(shapes=curves[token], block=token))
        else:
            right = stack.pop()
            left = stack.pop()
            stack.append(
                _SliceNode(
                    shapes=_combine(left.shapes, right.shapes, token),
                    operator=token,
                    left=left,
                    right=right,
                )
            )
    root = stack.pop()
    best = min(root.shapes, key=lambda s: s.width * s.height)
    return root, best


def realize(
    node: _SliceNode,
    shape: Shape,
    x: float,
    y: float,
    out: Dict[int, Tuple[float, float, Shape]],
) -> None:
    """Assign lower-left positions: out[block] = (x, y, chosen shape)."""
    if node.operator is None:
        out[node.block] = (x, y, shape)
        return
    left_shape = node.left.shapes[shape.left]  # type: ignore[union-attr]
    right_shape = node.right.shapes[shape.right]  # type: ignore[union-attr]
    realize(node.left, left_shape, x, y, out)  # type: ignore[arg-type]
    if node.operator == V:
        realize(node.right, right_shape, x + left_shape.width, y, out)  # type: ignore[arg-type]
    else:
        realize(node.right, right_shape, x, y + left_shape.height, out)  # type: ignore[arg-type]


class SlicingPlacer(BaselinePlacer):
    """Wong-Liu slicing floorplanner as a Table-4 baseline."""

    name = "slicing"

    def __init__(
        self,
        seed: int = 0,
        wirelength_weight: float = 0.5,
        moves_per_temp: int = 60,
        alpha: float = 0.9,
        temperatures: int = 60,
    ) -> None:
        super().__init__(seed)
        self.wirelength_weight = wirelength_weight
        self.moves_per_temp = moves_per_temp
        self.alpha = alpha
        self.temperatures = temperatures

    def _assign(self, state: PlacementState, rng: random.Random) -> None:
        circuit = state.circuit
        n = len(state.names)
        curves = [block_shapes(circuit.cells[name]) for name in state.names]
        expr = PolishExpression.initial(n)

        def cost(e: PolishExpression) -> Tuple[float, _SliceNode, Shape]:
            root, best = evaluate(e, curves)
            area = best.width * best.height
            wl = self._wirelength(state, root, best)
            return area + self.wirelength_weight * wl, root, best

        current_cost, root, best = cost(expr)
        # Starting temperature: accept ~everything initially.
        t = current_cost
        for _ in range(self.temperatures):
            for _ in range(self.moves_per_temp):
                candidate = self._move(expr, rng)
                if candidate is None:
                    continue
                cand_cost, cand_root, cand_best = cost(candidate)
                delta = cand_cost - current_cost
                if delta <= 0 or rng.random() < math.exp(-delta / max(t, 1e-12)):
                    expr = candidate
                    current_cost, root, best = cand_cost, cand_root, cand_best
            t *= self.alpha

        self._write_back(state, root, best)

    @staticmethod
    def _move(
        expr: PolishExpression, rng: random.Random
    ) -> Optional[PolishExpression]:
        roll = rng.random()
        if roll < 0.4:
            return expr.swap_adjacent_operands(rng)
        if roll < 0.7:
            return expr.complement_chain(rng)
        return expr.swap_operand_operator(rng)

    def _wirelength(
        self, state: PlacementState, root: _SliceNode, best: Shape
    ) -> float:
        positions: Dict[int, Tuple[float, float, Shape]] = {}
        realize(root, best, 0.0, 0.0, positions)
        centers = {
            block: (x + s.width / 2.0, y + s.height / 2.0)
            for block, (x, y, s) in positions.items()
        }
        total = 0.0
        for net in state.circuit.nets.values():
            xs: List[float] = []
            ys: List[float] = []
            for cell_name in net.cells():
                cx, cy = centers[state.index[cell_name]]
                xs.append(cx)
                ys.append(cy)
            if len(xs) >= 2:
                total += (max(xs) - min(xs)) + (max(ys) - min(ys))
        return total

    def _write_back(
        self, state: PlacementState, root: _SliceNode, best: Shape
    ) -> None:
        positions: Dict[int, Tuple[float, float, Shape]] = {}
        realize(root, best, 0.0, 0.0, positions)
        # Center the floorplan on the core.
        ox = state.core.center.x - best.width / 2.0
        oy = state.core.center.y - best.height / 2.0
        for block, (x, y, shape) in positions.items():
            record = state.records[block]
            record.center = (
                ox + x + shape.width / 2.0,
                oy + y + shape.height / 2.0,
            )
            cell = state.cell(block)
            if isinstance(cell, MacroCell):
                record.instance = shape.tag // 2
                record.orientation = 1 if shape.tag % 2 else 0
            else:
                assert isinstance(cell, CustomCell)
                ar = cell.aspect.clamp(CUSTOM_ASPECT_SAMPLES[shape.tag])
                record.aspect_ratio = ar
        state.rebuild()
