"""Random placement: the weakest comparator.

Cells are dropped uniformly at random inside the core with random
orientations, then legalized.  This is the distribution the annealer
*starts* from, so the gap between this baseline and TimberWolfMC is the
total value delivered by the optimization.
"""

from __future__ import annotations

import random

from ..geometry import orientation as ori
from ..netlist import MacroCell
from ..placement.state import PlacementState
from .base import BaselinePlacer


class RandomPlacer(BaselinePlacer):
    """Uniform random placement inside the core."""

    name = "random"

    def _assign(self, state: PlacementState, rng: random.Random) -> None:
        core = state.core
        for idx in range(len(state.names)):
            record = state.records[idx]
            record.center = (
                rng.uniform(core.x1, core.x2),
                rng.uniform(core.y1, core.y2),
            )
            record.orientation = rng.randrange(ori.N_ORIENTATIONS)
            cell = state.cell(idx)
            if isinstance(cell, MacroCell) and cell.num_instances > 1:
                record.instance = rng.randrange(cell.num_instances)
        state.rebuild()
