"""Resistive-network (quadratic) placement, after Cheng-Kuh.

The comparator for circuit i1 in Table 4 was "a placement method based
on resistive network optimization" (Cheng & Kuh 1984): model every net
as a clique of unit resistors and find the cell coordinates minimizing
the total squared wirelength.  Without fixed pads the unconstrained
optimum collapses to a point, so — as in practice — weak anchors spread
the solution: each cell is tied to a position on a space-filling grid
with a small spring.  The linear systems (one per axis) are solved with
scipy's sparse Cholesky-free solver, and the analytic solution is then
legalized by the shared shove pass.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List

import numpy as np
from scipy.sparse import lil_matrix
from scipy.sparse.linalg import spsolve

from ..placement.state import PlacementState
from .base import BaselinePlacer

#: Anchor strength as a fraction of the mean Laplacian diagonal — strong
#: enough to actually spread the cells over the grid, weak enough that
#: connectivity still determines the neighborhood structure.
ANCHOR_FRACTION = 0.25

#: Clique-model edge weight for a net with p pins: 1 / (p - 1), so total
#: net weight grows linearly with fanout rather than quadratically.
def _clique_weight(num_pins: int) -> float:
    return 1.0 / max(1, num_pins - 1)


class QuadraticPlacer(BaselinePlacer):
    """Analytic quadratic placement plus legalization."""

    name = "quadratic"

    def _assign(self, state: PlacementState, rng: random.Random) -> None:
        circuit = state.circuit
        n = len(state.names)
        core = state.core

        laplacian = lil_matrix((n, n))
        bx = np.zeros(n)
        by = np.zeros(n)

        # Net cliques between distinct cells.
        for net in circuit.nets.values():
            cells = sorted({state.index[ref.cell] for ref in net.pins})
            if len(cells) < 2:
                continue
            w = _clique_weight(len(cells))
            for a_pos in range(len(cells)):
                for b_pos in range(a_pos + 1, len(cells)):
                    a, b = cells[a_pos], cells[b_pos]
                    laplacian[a, a] += w
                    laplacian[b, b] += w
                    laplacian[a, b] -= w
                    laplacian[b, a] -= w

        # Weak anchors on a grid keep the system nonsingular and spread
        # the cells over the core.  The anchor-to-cell assignment is
        # refined over a few rounds: solve, then re-anchor each cell to
        # the grid point matching its solved position's rank — the usual
        # analytic-placement untangling loop.
        grid = _grid_points(core, n)
        anchors = list(grid)
        rng.shuffle(anchors)
        base = laplacian.tocsr()
        anchor_w = ANCHOR_FRACTION * float(base.diagonal().mean()) or 1.0
        xs = ys = None
        for _ in range(3):
            mat = base.copy().tolil()
            bx[:] = 0.0
            by[:] = 0.0
            for i in range(n):
                ax, ay = anchors[i]
                mat[i, i] += anchor_w
                bx[i] += anchor_w * ax
                by[i] += anchor_w * ay
            mat = mat.tocsr()
            xs = spsolve(mat, bx)
            ys = spsolve(mat, by)
            anchors = _rank_match(grid, xs, ys)

        for i in range(n):
            state.records[i].center = (float(xs[i]), float(ys[i]))
        state.rebuild()


def _rank_match(grid: List[tuple], xs, ys) -> List[tuple]:
    """Re-anchor cells: sort grid points and solved positions row-major
    and pair them up, preserving the solution's relative arrangement."""
    n = len(grid)
    grid_sorted = sorted(range(n), key=lambda g: (grid[g][1], grid[g][0]))
    cells_sorted = sorted(range(n), key=lambda c: (ys[c], xs[c]))
    anchors: List[tuple] = [None] * n  # type: ignore[list-item]
    for g_idx, c_idx in zip(grid_sorted, cells_sorted):
        anchors[c_idx] = grid[g_idx]
    return anchors


def _grid_points(core, count: int) -> List[tuple]:
    """``count`` points on a near-square grid covering the core."""
    cols = max(1, int(math.ceil(math.sqrt(count))))
    rows = max(1, int(math.ceil(count / cols)))
    points = []
    for j in range(rows):
        for i in range(cols):
            if len(points) >= count:
                break
            x = core.x1 + (i + 0.5) * core.width / cols
            y = core.y1 + (j + 0.5) * core.height / rows
            points.append((x, y))
    return points
