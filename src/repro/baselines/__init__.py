"""Baseline placement methods TimberWolfMC is compared against (Table 4)."""

from .base import BaselinePlacer, BaselineResult, route_baseline
from .greedy import GreedyPlacer
from .quadratic import QuadraticPlacer
from .random_place import RandomPlacer
from .slicing import SlicingPlacer

ALL_BASELINES = (RandomPlacer, GreedyPlacer, QuadraticPlacer, SlicingPlacer)

__all__ = [
    "BaselinePlacer",
    "BaselineResult",
    "route_baseline",
    "GreedyPlacer",
    "QuadraticPlacer",
    "RandomPlacer",
    "SlicingPlacer",
    "ALL_BASELINES",
]
