"""Incremental-cost drift guard.

The placement cost terms (C1/C2/C3) are maintained incrementally —
millions of float deltas per run.  A silent bookkeeping bug (or exotic
rounding) would corrupt every acceptance decision *and* every checkpoint
downstream of it.  The guard reconciles the accumulators against a
from-scratch recomputation every K temperatures, publishes the observed
drift as a telemetry gauge, and past a tolerance either warns, resyncs
the accumulators, or raises :class:`DriftError` (configurable via
``TimberWolfConfig.drift_action``).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, List

from ..telemetry import current_tracer

DRIFT_ACTIONS = ("warn", "resync", "raise")


class DriftError(RuntimeError):
    """Incremental cost accumulators drifted past the tolerance."""


@dataclass
class DriftReport:
    """One reconciliation: per-term drift (fresh minus accumulated)."""

    step_index: int
    c1: float
    c2_raw: float
    c3: float
    #: Largest per-term drift normalized by the term's fresh magnitude
    #: (floored at 1.0 so near-zero terms don't divide away the signal).
    max_relative: float


class DriftGuard:
    """An annealer observer that audits the incremental bookkeeping."""

    def __init__(
        self, every: int, tolerance: float = 1e-6, action: str = "warn"
    ) -> None:
        if every < 1:
            raise ValueError("every must be at least 1")
        if tolerance <= 0:
            raise ValueError("tolerance must be positive")
        if action not in DRIFT_ACTIONS:
            raise ValueError(f"action must be one of {DRIFT_ACTIONS}")
        self.every = every
        self.tolerance = tolerance
        self.action = action
        self.reports: List[DriftReport] = []

    def observer(self):
        """The engine-observer callable (``annealing.Annealer`` protocol:
        ``obs(step_index, stats, state, make_cursor)``)."""

        def _observe(step_index, stats, state, make_cursor) -> None:
            if (step_index + 1) % self.every != 0:
                return
            drift_fn = getattr(state, "cost_drift", None)
            if drift_fn is None:
                return
            self.check(step_index, state, drift_fn())

        return _observe

    def check(self, step_index: int, state, drift: Dict[str, float]) -> DriftReport:
        report = DriftReport(
            step_index=step_index,
            c1=drift["c1"],
            c2_raw=drift["c2_raw"],
            c3=drift["c3"],
            max_relative=drift["max_relative"],
        )
        self.reports.append(report)
        tracer = current_tracer()
        if tracer.enabled:
            tracer.gauge(
                "anneal.cost_drift",
                report.max_relative,
                step=step_index,
                c1=report.c1,
                c2_raw=report.c2_raw,
                c3=report.c3,
            )
        if report.max_relative > self.tolerance:
            message = (
                f"incremental cost drift {report.max_relative:.3e} at "
                f"temperature step {step_index} exceeds tolerance "
                f"{self.tolerance:.1e} (c1 {report.c1:+.3e}, "
                f"c2_raw {report.c2_raw:+.3e}, c3 {report.c3:+.3e})"
            )
            if self.action == "raise":
                raise DriftError(message)
            if self.action == "resync":
                state.resync()
                if tracer.enabled:
                    tracer.event("anneal.drift_resync", step=step_index)
            else:
                warnings.warn(message, stacklevel=2)
        return report
