"""Fault-tolerant execution of the TimberWolfMC flow.

Long annealing runs are jobs, not function calls: they get interrupted,
they exceed their time slot, and individual stages hit pathological
inputs.  This package makes the flow survive all three:

* :mod:`~repro.resilience.checkpoint` — versioned, checksummed snapshots
  of the annealer state, written atomically every N temperatures and on
  SIGINT/SIGTERM; resuming continues the schedule bit-for-bit.
* :mod:`~repro.resilience.budget` — wall-clock / temperature / move
  budgets checked inside the annealing loop; exhaustion triggers a
  graceful early freeze (result flagged ``truncated``) instead of a kill.
* :mod:`~repro.resilience.supervisor` — per-stage exception capture with
  recorded failures and graceful degradation.
* :mod:`~repro.resilience.faults` — a deterministic fault-injection
  harness (exceptions, simulated kills, clock jumps) used by
  ``tests/resilience`` to prove the recovery paths.
"""

from .budget import Budget, BudgetReport
from .checkpoint import (
    CHECKPOINT_MAGIC,
    CHECKPOINT_SCHEMA_VERSION,
    CheckpointError,
    CheckpointManager,
    CheckpointMismatch,
    CheckpointPolicy,
    circuit_fingerprint,
    latest_checkpoint,
    read_checkpoint,
    write_checkpoint,
)
from .control import RunControl
from .drift import DriftError, DriftGuard, DriftReport
from .faults import (
    Fault,
    FaultError,
    FaultInjector,
    JumpClock,
    SimulatedKill,
    fault_point,
    faults_from_env,
    inject_faults,
    install_injector,
)
from .interrupt import FlowInterrupted, InterruptFlag, trap_signals
from .supervisor import StageFailure, StageSupervisor

__all__ = [
    "Budget",
    "BudgetReport",
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_SCHEMA_VERSION",
    "CheckpointError",
    "CheckpointManager",
    "CheckpointMismatch",
    "CheckpointPolicy",
    "circuit_fingerprint",
    "latest_checkpoint",
    "read_checkpoint",
    "write_checkpoint",
    "RunControl",
    "DriftError",
    "DriftGuard",
    "DriftReport",
    "Fault",
    "FaultError",
    "FaultInjector",
    "JumpClock",
    "SimulatedKill",
    "fault_point",
    "faults_from_env",
    "inject_faults",
    "install_injector",
    "FlowInterrupted",
    "InterruptFlag",
    "trap_signals",
    "StageFailure",
    "StageSupervisor",
]
