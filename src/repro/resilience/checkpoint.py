"""Checkpoint files: versioned, checksummed, atomically-written snapshots.

File layout (all little pieces validated *before* the payload is
unpickled, so a corrupt or stale file can never feed garbage into
``pickle.loads``)::

    REPROCKPT1\\n                      magic (format + major version)
    {json header}\\n                   schema, circuit/payload checksums
    <pickled payload>                 the snapshot itself

The header carries the schema version, the SHA-256 of the circuit's
canonical text form (so a checkpoint cannot be resumed against a
different netlist), and the SHA-256 + byte length of the payload.  Any
mismatch raises :class:`CheckpointError` with a reason.

Writes go through a temp file in the target directory followed by
``os.replace``, so a crash mid-write can never leave a truncated file
under the final name — the previous checkpoint survives instead.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

CHECKPOINT_MAGIC = b"REPROCKPT1\n"
CHECKPOINT_SCHEMA_VERSION = 1

#: Refuse to parse absurd header lines (a binary file that happens to
#: start with the magic should fail fast, not allocate gigabytes).
_MAX_HEADER_BYTES = 65536


class CheckpointError(RuntimeError):
    """A checkpoint file is corrupt, truncated, stale, or mismatched."""


class CheckpointMismatch(CheckpointError):
    """The checkpoint belongs to a different circuit than expected.

    Distinct from generic corruption so callers can route it
    differently: retrying cannot help (the file is internally valid —
    it is just the wrong one), so ``python -m repro resume`` exits with
    a dedicated status (6) and the service supervisor dead-letters the
    job instead of burning retry attempts.
    """


def circuit_fingerprint(circuit_text: str) -> str:
    """SHA-256 of the circuit's canonical text serialization."""
    return hashlib.sha256(circuit_text.encode("utf-8")).hexdigest()


def write_checkpoint(
    path: Union[str, Path], payload: Dict[str, Any], circuit_text: str
) -> Path:
    """Atomically write ``payload`` as a checkpoint file."""
    path = Path(path)
    body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    header = {
        "schema": CHECKPOINT_SCHEMA_VERSION,
        "phase": payload.get("phase"),
        "circuit_sha256": circuit_fingerprint(circuit_text),
        "payload_sha256": hashlib.sha256(body).hexdigest(),
        "payload_bytes": len(body),
        "created": time.time(),
    }
    blob = CHECKPOINT_MAGIC + json.dumps(header).encode("utf-8") + b"\n" + body
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def read_checkpoint(
    path: Union[str, Path], expect_circuit_sha: Optional[str] = None
) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """Validate and load a checkpoint; returns ``(header, payload)``.

    ``expect_circuit_sha`` additionally pins the checkpoint to a known
    circuit (resume with an explicitly-supplied netlist).
    """
    path = Path(path)
    try:
        blob = path.read_bytes()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    if not blob.startswith(CHECKPOINT_MAGIC):
        raise CheckpointError(f"{path}: not a checkpoint file (bad magic)")
    rest = blob[len(CHECKPOINT_MAGIC):]
    newline = rest.find(b"\n", 0, _MAX_HEADER_BYTES)
    if newline < 0:
        raise CheckpointError(f"{path}: truncated checkpoint (no header)")
    try:
        header = json.loads(rest[:newline].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"{path}: corrupt checkpoint header: {exc}") from exc
    if not isinstance(header, dict):
        raise CheckpointError(f"{path}: corrupt checkpoint header (not an object)")
    schema = header.get("schema")
    if schema != CHECKPOINT_SCHEMA_VERSION:
        raise CheckpointError(
            f"{path}: unsupported checkpoint schema {schema!r} "
            f"(this build reads schema {CHECKPOINT_SCHEMA_VERSION})"
        )
    body = rest[newline + 1:]
    expected_bytes = header.get("payload_bytes")
    if len(body) != expected_bytes:
        raise CheckpointError(
            f"{path}: truncated checkpoint payload "
            f"({len(body)} bytes, header says {expected_bytes})"
        )
    digest = hashlib.sha256(body).hexdigest()
    if digest != header.get("payload_sha256"):
        raise CheckpointError(f"{path}: checkpoint payload checksum mismatch")
    if (
        expect_circuit_sha is not None
        and header.get("circuit_sha256") != expect_circuit_sha
    ):
        raise CheckpointMismatch(
            f"{path}: checkpoint was taken for a different circuit "
            f"(circuit hash mismatch: checkpoint "
            f"{str(header.get('circuit_sha256'))[:12]}, expected "
            f"{expect_circuit_sha[:12]})"
        )
    try:
        payload = pickle.loads(body)
    except Exception as exc:  # checksum passed but content is unloadable
        raise CheckpointError(f"{path}: cannot unpickle checkpoint: {exc}") from exc
    if not isinstance(payload, dict):
        raise CheckpointError(f"{path}: checkpoint payload is not a dict")
    embedded = payload.get("circuit_text")
    if (
        isinstance(embedded, str)
        and circuit_fingerprint(embedded) != header.get("circuit_sha256")
    ):
        raise CheckpointMismatch(
            f"{path}: embedded circuit does not match the header's "
            f"circuit hash (mixed or tampered checkpoint)"
        )
    return header, payload


def latest_checkpoint(directory: Union[str, Path]) -> Optional[Path]:
    """The newest ``*.ckpt`` file in a directory, or None."""
    directory = Path(directory)
    if not directory.is_dir():
        return None
    candidates = sorted(
        directory.glob("*.ckpt"),
        key=lambda p: (p.stat().st_mtime, p.name),
    )
    return candidates[-1] if candidates else None


@dataclass(frozen=True)
class CheckpointPolicy:
    """When and where to checkpoint.

    ``every_temperatures`` is the stage-1 cadence (a snapshot after
    every N completed temperature steps; stage 2 snapshots at pass
    boundaries regardless); ``keep`` bounds disk use by pruning all but
    the newest checkpoints.  ``run_id`` ties checkpoints to the run
    registry, and ``trace_id`` to the distributed trace: both ride in
    every payload, so a resumed run — including a service retry — keeps
    the original run's registry identity AND its trace.
    """

    directory: Union[str, Path]
    every_temperatures: int = 10
    keep: int = 3
    run_id: Optional[str] = None
    trace_id: Optional[str] = None

    def __post_init__(self) -> None:
        if self.every_temperatures < 1:
            raise ValueError("every_temperatures must be at least 1")
        if self.keep < 1:
            raise ValueError("keep must be at least 1")


class CheckpointManager:
    """Names, writes, and prunes the checkpoints of one flow run."""

    def __init__(
        self, policy: CheckpointPolicy, circuit_text: str, config_dict: Dict
    ) -> None:
        self.policy = policy
        self.circuit_text = circuit_text
        self.config_dict = config_dict
        self.directory = Path(policy.directory)
        self.latest: Optional[Path] = None
        #: Stage-1 summary, set by the flow once stage 1 completes so
        #: stage-2 checkpoints can rebuild a Stage1Result on resume.
        self.stage1_summary: Optional[Dict[str, Any]] = None

    def save(self, phase: str, label: str, data: Dict[str, Any]) -> Path:
        payload = {
            "phase": phase,
            "config": self.config_dict,
            "circuit_text": self.circuit_text,
            "run_id": self.policy.run_id,
            "trace_id": self.policy.trace_id,
            **data,
        }
        path = self.directory / f"ckpt-{label}.ckpt"
        write_checkpoint(path, payload, self.circuit_text)
        self.latest = path
        self._prune(just_wrote=path)
        return path

    def save_stage1(self, cursor_dict: Dict, state_dict: Dict) -> Path:
        return self.save(
            "stage1",
            f"stage1-t{cursor_dict['step_index']:04d}",
            {"cursor": cursor_dict, "state": state_dict},
        )

    def save_stage2(
        self, pass_index: int, rng_state, state_dict: Dict
    ) -> Path:
        if self.stage1_summary is None:
            raise RuntimeError("stage-2 checkpoint requires a stage-1 summary")
        return self.save(
            "stage2",
            f"stage2-pass{pass_index:02d}",
            {
                "pass_index": pass_index,
                "rng_state": rng_state,
                "state": state_dict,
                "stage1": self.stage1_summary,
            },
        )

    def _prune(self, just_wrote: Path) -> None:
        files = sorted(
            self.directory.glob("ckpt-*.ckpt"),
            key=lambda p: (p.stat().st_mtime, p.name),
        )
        for stale in files[: max(0, len(files) - self.policy.keep)]:
            if stale == just_wrote:
                continue
            try:
                stale.unlink()
            except OSError:
                pass
