"""Interrupt handling: turn SIGINT/SIGTERM into a checkpoint-and-exit.

The annealing inner loop must not be torn down mid-move, so signals are
converted into a flag that the flow polls at safe boundaries (end of a
temperature step, start of a stage-2 pass).  When the flag is seen, a
final checkpoint is written and :class:`FlowInterrupted` — carrying the
checkpoint path — unwinds the flow.  A second signal while the first is
being honored escalates to the default behavior (the operator really
means it).
"""

from __future__ import annotations

import signal
import threading
from contextlib import contextmanager
from typing import Iterator, Optional, Tuple


class FlowInterrupted(RuntimeError):
    """The flow was stopped early on request; resume from ``checkpoint_path``."""

    def __init__(self, message: str, checkpoint_path: Optional[str] = None) -> None:
        super().__init__(message)
        self.checkpoint_path = checkpoint_path


class InterruptFlag:
    """A latch the signal handler sets and the flow polls."""

    def __init__(self) -> None:
        self._event = threading.Event()
        self.signum: Optional[int] = None

    def set(self, signum: Optional[int] = None) -> None:
        self.signum = signum
        self._event.set()

    def is_set(self) -> bool:
        return self._event.is_set()


@contextmanager
def trap_signals(
    flag: InterruptFlag,
    signums: Tuple[int, ...] = (signal.SIGINT, signal.SIGTERM),
) -> Iterator[InterruptFlag]:
    """Route the given signals into ``flag`` for the duration of the block.

    Only the main thread may install signal handlers; elsewhere (pytest
    workers, embedded use) this degrades to a no-op and interruption
    falls back to the host's semantics.
    """
    if threading.current_thread() is not threading.main_thread():
        yield flag
        return

    previous = {}

    def _handler(signum, frame):
        if flag.is_set():
            # Second signal: restore defaults and re-raise the standard
            # behavior so a stuck run can still be killed.
            for num, old in previous.items():
                signal.signal(num, old)
            raise KeyboardInterrupt(f"second signal {signum} during shutdown")
        flag.set(signum)

    for signum in signums:
        previous[signum] = signal.signal(signum, _handler)
    try:
        yield flag
    finally:
        for signum, old in previous.items():
            try:
                signal.signal(signum, old)
            except (ValueError, OSError):  # interpreter shutting down
                pass
