"""Run budgets: wall-clock, temperature, and move limits for the flow.

A :class:`Budget` is shared by every annealing loop of one
``place_and_route`` call (stage 1 and all stage-2 passes draw from the
same allowance).  The engine checks it every few dozen moves; exhaustion
ends the run gracefully — current statistics are kept, downstream stages
still execute on the best placement so far, and the result is flagged
``truncated`` with a :class:`BudgetReport` explaining which limit bound.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional


class BudgetReport(dict):
    """A plain dict of budget telemetry (used/limit per axis), with the
    binding limit under ``"exhausted"`` (None while within budget)."""

    @property
    def exhausted_reason(self) -> Optional[str]:
        return self.get("exhausted")


class Budget:
    """Deadline for one flow run.  All limits are optional; ``None``
    means unlimited on that axis.

    ``clock`` is injectable so tests can simulate wall-clock jumps
    (:class:`~repro.resilience.faults.JumpClock`); it defaults to
    ``time.monotonic``, which is immune to NTP steps in real runs.
    """

    def __init__(
        self,
        wall_seconds: Optional[float] = None,
        temperatures: Optional[int] = None,
        moves: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if wall_seconds is not None and wall_seconds <= 0:
            raise ValueError("wall_seconds must be positive")
        if temperatures is not None and temperatures < 1:
            raise ValueError("temperatures must be at least 1")
        if moves is not None and moves < 1:
            raise ValueError("moves must be at least 1")
        self.wall_seconds = wall_seconds
        self.temperatures = temperatures
        self.moves = moves
        self._clock = clock
        self._started_at: Optional[float] = None
        self.moves_used = 0
        self.temperatures_used = 0

    def start(self) -> None:
        """Start the wall clock (idempotent; resume keeps the first)."""
        if self._started_at is None:
            self._started_at = self._clock()

    def elapsed(self) -> float:
        if self._started_at is None:
            return 0.0
        return self._clock() - self._started_at

    def note_moves(self, count: int) -> None:
        self.moves_used += count

    def note_temperature(self) -> None:
        self.temperatures_used += 1

    def exhausted(self) -> Optional[str]:
        """The name of the binding limit, or None while within budget."""
        if self.moves is not None and self.moves_used >= self.moves:
            return "moves"
        if (
            self.temperatures is not None
            and self.temperatures_used >= self.temperatures
        ):
            return "temperatures"
        if self.wall_seconds is not None:
            self.start()
            if self.elapsed() >= self.wall_seconds:
                return "wall_seconds"
        return None

    def report(self) -> BudgetReport:
        return BudgetReport(
            wall_seconds=self.wall_seconds,
            elapsed_seconds=round(self.elapsed(), 3),
            temperatures=self.temperatures,
            temperatures_used=self.temperatures_used,
            moves=self.moves,
            moves_used=self.moves_used,
            exhausted=self.exhausted(),
        )

    def to_dict(self) -> Dict:
        """Limits only (for embedding in a checkpoint envelope)."""
        return {
            "wall_seconds": self.wall_seconds,
            "temperatures": self.temperatures,
            "moves": self.moves,
        }
