"""Stage supervision: catch, record, and degrade instead of aborting.

Each non-essential flow stage runs under :meth:`StageSupervisor.run`.
A stage exception is recorded as a :class:`StageFailure` (also emitted
as a ``stage.failure`` trace event), and the supervisor either invokes
the stage's fallback or returns a default — the flow continues on the
best information available.  ``BaseException`` species (kills, keyboard
interrupts, :class:`~repro.resilience.faults.SimulatedKill`) always
propagate: supervision is for stage bugs and pathological inputs, not
for suppressing shutdown.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from ..telemetry import current_tracer


@dataclass
class StageFailure:
    """One recorded stage exception and how the flow degraded."""

    stage: str
    error: str
    action: str  # "fallback" | "skipped"
    traceback: str = field(default="", repr=False)

    def to_dict(self) -> dict:
        return {"stage": self.stage, "error": self.error, "action": self.action}


class StageSupervisor:
    """Collects failures across one flow run."""

    def __init__(self) -> None:
        self.failures: List[StageFailure] = []

    def run(
        self,
        stage: str,
        fn: Callable[[], Any],
        fallback: Optional[Callable[[], Any]] = None,
        default: Any = None,
    ) -> Any:
        """Run a stage body; on exception record it and degrade.

        With ``fallback``, the fallback's result is returned (a fallback
        exception is recorded too, then ``default`` applies).  Without
        one, the stage is recorded as skipped and ``default`` returned.
        """
        try:
            return fn()
        except Exception as exc:
            action = "fallback" if fallback is not None else "skipped"
            self._record(stage, exc, action)
            if fallback is not None:
                try:
                    return fallback()
                except Exception as exc2:
                    self._record(f"{stage}.fallback", exc2, "skipped")
            return default

    def _record(self, stage: str, exc: Exception, action: str) -> None:
        failure = StageFailure(
            stage=stage,
            error=f"{type(exc).__name__}: {exc}",
            action=action,
            traceback=traceback.format_exc(),
        )
        self.failures.append(failure)
        tracer = current_tracer()
        if tracer.enabled:
            tracer.event(
                "stage.failure",
                stage=stage,
                error=failure.error,
                action=action,
            )
