"""Deterministic fault injection for the resilience test harness.

The flow's recovery paths (stage supervision, checkpoint-on-kill, net
fallbacks) are exercised by planting :func:`fault_point` probes at the
interesting sites and arming them from tests::

    with inject_faults(Fault(site="router.route_net", at=3)):
        place_and_route(circuit, config)      # third routed net explodes

Probes are free when no injector is armed: one contextvar read per call,
on cold paths only (never inside the per-move hot loop).

Two failure species are distinguished on purpose:

* ``kind="error"`` raises :class:`FaultError` (an ``Exception``) — the
  supervisor and per-net retry paths are expected to *absorb* it.
* ``kind="kill"`` raises :class:`SimulatedKill`, a ``BaseException``
  like the real ``SystemExit``/``KeyboardInterrupt`` — recovery code
  must let it through, which is exactly what the kill-and-resume tests
  verify.

``REPRO_FAULTS`` (parsed by :func:`faults_from_env`) arms the same
machinery across a process boundary for the CI kill-and-resume job:
``REPRO_FAULTS="anneal.temperature@5:kill"`` simulates an external kill
at the fifth temperature of a subprocess run.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional


class FaultError(RuntimeError):
    """The exception species an armed ``kind="error"`` fault raises."""


class SimulatedKill(BaseException):
    """An injected process-death stand-in.

    Deliberately a ``BaseException``: recovery code written as
    ``except Exception`` must not be able to swallow a kill, the same
    way it cannot swallow ``KeyboardInterrupt``.
    """


@dataclass
class Fault:
    """One armed fault: fire at the ``at``-th visit of ``site``.

    ``at`` is 1-based (``at=1`` fires on the first visit); ``times``
    allows consecutive firings (``times=2`` also fires on visit
    ``at + 1``, which defeats a single-retry recovery path).
    """

    site: str
    at: int = 1
    times: int = 1
    kind: str = "error"  # "error" | "kill"
    message: Optional[str] = None

    def __post_init__(self) -> None:
        if self.at < 1:
            raise ValueError("at is 1-based and must be >= 1")
        if self.times < 1:
            raise ValueError("times must be >= 1")
        if self.kind not in ("error", "kill"):
            raise ValueError(f"unknown fault kind {self.kind!r}")


class FaultInjector:
    """Counts visits per site and raises when an armed fault matches."""

    def __init__(self, faults: List[Fault]) -> None:
        self.faults = list(faults)
        self.hits: Dict[str, int] = {}
        #: (site, visit) pairs that actually fired, for test assertions.
        self.fired: List[tuple] = []

    def visit(self, site: str, **context) -> None:
        count = self.hits.get(site, 0) + 1
        self.hits[site] = count
        for fault in self.faults:
            if fault.site != site:
                continue
            if not (fault.at <= count < fault.at + fault.times):
                continue
            self.fired.append((site, count))
            message = fault.message or (
                f"injected {fault.kind} at {site} (visit {count}, context {context})"
            )
            if fault.kind == "kill":
                raise SimulatedKill(message)
            raise FaultError(message)


_injector: ContextVar[Optional[FaultInjector]] = ContextVar(
    "repro_fault_injector", default=None
)


def fault_point(site: str, **context) -> None:
    """A probe: no-op unless a :class:`FaultInjector` is armed."""
    injector = _injector.get()
    if injector is not None:
        injector.visit(site, **context)


@contextmanager
def inject_faults(*faults: Fault) -> Iterator[FaultInjector]:
    """Arm faults for the duration of the block (contextvar-scoped)."""
    injector = FaultInjector(list(faults))
    token = _injector.set(injector)
    try:
        yield injector
    finally:
        _injector.reset(token)


def install_injector(injector: Optional[FaultInjector]) -> None:
    """Arm an injector for the rest of the process (CLI entry points)."""
    _injector.set(injector)


def faults_from_env(environ=None) -> List[Fault]:
    """Parse the ``REPRO_FAULTS`` spec: comma-separated entries of the
    form ``site@N:kind`` or ``site@N:kind:Message`` (kind defaults to
    ``error``; ``site@N`` alone is accepted)."""
    environ = environ if environ is not None else os.environ
    spec = environ.get("REPRO_FAULTS", "").strip()
    if not spec:
        return []
    faults = []
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        head, _, rest = entry.partition(":")
        site, _, at = head.partition("@")
        kind, _, message = rest.partition(":")
        faults.append(
            Fault(
                site=site,
                at=int(at) if at else 1,
                kind=kind or "error",
                message=message or None,
            )
        )
    return faults


@dataclass
class JumpClock:
    """A controllable monotonic clock for budget tests.

    ``Budget(clock=JumpClock())`` plus ``clock.jump(3600)`` simulates a
    wall-clock jump (suspend/resume, NTP step) without sleeping.
    """

    now: float = 0.0
    tick: float = 0.0
    _calls: int = field(default=0, repr=False)

    def __call__(self) -> float:
        self.now += self.tick
        self._calls += 1
        return self.now

    def jump(self, seconds: float) -> None:
        self.now += seconds
