"""RunControl: the resilience context threaded through one flow run.

One object carries the (optional) budget, the (optional) checkpoint
manager, the interrupt latch, and the stage supervisor, so the flow
layers (``place_and_route`` → ``run_stage1`` / ``run_refinement`` →
``Annealer.run``) share a single source of truth about how the run may
end early.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..telemetry import current_tracer
from .budget import Budget
from .checkpoint import CheckpointManager
from .interrupt import FlowInterrupted, InterruptFlag
from .supervisor import StageSupervisor


@dataclass
class RunControl:
    budget: Optional[Budget] = None
    manager: Optional[CheckpointManager] = None
    interrupt: InterruptFlag = field(default_factory=InterruptFlag)
    supervisor: StageSupervisor = field(default_factory=StageSupervisor)

    @property
    def latest_checkpoint_path(self) -> Optional[str]:
        if self.manager is not None and self.manager.latest is not None:
            return str(self.manager.latest)
        return None

    def _raise_interrupted(self) -> None:
        detail = (
            f"signal {self.interrupt.signum}"
            if self.interrupt.signum is not None
            else "interrupt requested"
        )
        path = self.latest_checkpoint_path
        hint = f"; resume from {path}" if path else ""
        raise FlowInterrupted(f"flow interrupted ({detail}){hint}", path)

    def stage1_observer(self, placement_state):
        """Engine observer for the stage-1 anneal: write a checkpoint
        every N completed temperatures, and convert a pending interrupt
        into checkpoint-then-:class:`FlowInterrupted`."""
        manager = self.manager
        every = manager.policy.every_temperatures if manager is not None else 0

        def _observe(step_index, stats, state, make_cursor) -> None:
            interrupted = self.interrupt.is_set()
            if manager is not None and (
                interrupted or (step_index + 1) % every == 0
            ):
                path = manager.save_stage1(
                    make_cursor().to_dict(), placement_state.state_dict()
                )
                tracer = current_tracer()
                if tracer.enabled:
                    tracer.event(
                        "checkpoint.saved",
                        phase="stage1",
                        step=step_index,
                        path=str(path),
                    )
            if interrupted:
                self._raise_interrupted()

        return _observe

    def interrupt_observer(self):
        """Engine observer for stage-2 anneals: honor a pending interrupt
        promptly.  No mid-anneal snapshot is taken — resume restarts the
        enclosing pass from its boundary checkpoint."""

        def _observe(step_index, stats, state, make_cursor) -> None:
            if self.interrupt.is_set():
                self._raise_interrupted()

        return _observe

    def pass_boundary(self, pass_index: int, rng, placement_state) -> None:
        """Stage-2 pass boundary: snapshot, then honor pending interrupts."""
        if self.manager is not None:
            path = self.manager.save_stage2(
                pass_index, rng.getstate(), placement_state.state_dict()
            )
            tracer = current_tracer()
            if tracer.enabled:
                tracer.event(
                    "checkpoint.saved",
                    phase="stage2",
                    pass_index=pass_index,
                    path=str(path),
                )
        if self.interrupt.is_set():
            self._raise_interrupted()

    def budget_exhausted(self) -> Optional[str]:
        if self.budget is None:
            return None
        return self.budget.exhausted()
