"""Stage 1 of TimberWolfMC (§3): annealing with the dynamic estimator.

The driver wires together: core sizing (§2.2), the Table-1 cooling
schedule scaled by S_T (Eqns 19-21), the range limiter (Eqns 12-14), the
p2 calibration of Eqn 9, and the generate cascade of §3.2.1.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..annealing import (
    AdaptiveCooling,
    AdaptiveRangeLimiter,
    AllOf,
    AnnealCursor,
    Annealer,
    AnnealResult,
    AnyOf,
    CostFloorStop,
    FloorStop,
    RangeLimiter,
    WindowStop,
    stage1_schedule,
)
from ..estimator import CorePlan, determine_core
from ..config import TimberWolfConfig
from ..netlist import Circuit
from ..resilience.drift import DriftGuard
from ..resilience.faults import fault_point
from ..telemetry import current_tracer
from .arraycore import make_placement_state
from .batch import BatchAnnealingState, BatchMoveGenerator
from .moves import MoveGenerator, PlacementAnnealingState
from .state import PlacementState

#: How many random configurations are sampled to calibrate p2 (Eqn 9).
P2_CALIBRATION_SAMPLES = 20

#: Stage-1 temperature floor in units of S_T (the last Table-1 band runs
#: down from S_T * 10, so S_T * 2 is deep in the quench regime).  The run
#: ends once the range-limiter window is at minimum span AND T <= this —
#: on paper-scale cores the window condition is the binding one.
STAGE1_T_FLOOR = 2.0


def calibrate_p2(
    state: PlacementState,
    rng: random.Random,
    eta: float,
    samples: int = P2_CALIBRATION_SAMPLES,
) -> float:
    """Find p2 so that p2 * C2 ~ eta * C1 at T = T∞ (Eqn 9).

    At T∞ virtually every state is accepted, so the averages over random
    configurations stand in for the averages over the high-T ensemble.
    The state is left in the last sampled configuration (a random initial
    placement, which is what stage 1 starts from anyway).
    """
    if samples < 1:
        raise ValueError("need at least one calibration sample")
    c1_total = 0.0
    c2_total = 0.0
    for _ in range(samples):
        state.randomize(rng)
        c1_total += state.c1()
        c2_total += state.c2_raw()
    if c2_total <= 0.0:
        # No overlap in any sample (absurdly sparse core): any p2 works.
        return 1.0
    return eta * c1_total / c2_total


@dataclass
class Stage1Result:
    """Everything stage 1 hands to stage 2."""

    state: PlacementState
    plan: CorePlan
    limiter: RangeLimiter
    anneal: AnnealResult
    p2: float

    @property
    def teil(self) -> float:
        return self.state.teil()

    @property
    def chip_area(self) -> float:
        return self.state.chip_area()

    @property
    def residual_overlap(self) -> float:
        """The paper's residual cell overlapping: C2 (raw area) at T -> T0."""
        return self.state.c2_raw()


def _core_plan(circuit: Circuit, config: TimberWolfConfig, control) -> CorePlan:
    """Core sizing under supervision: an estimator failure degrades to a
    plain-area plan (dynamic interconnect estimation disabled) rather
    than aborting the run."""

    def plan():
        fault_point("estimator.determine_core", circuit=circuit.name)
        return determine_core(
            circuit,
            aspect_ratio=config.core_aspect_ratio,
            profile=config.profile,
            slack=config.core_slack,
            cw_scale=config.estimator_scale,
        )

    def fallback():
        return determine_core(
            circuit,
            aspect_ratio=config.core_aspect_ratio,
            profile=config.profile,
            slack=config.core_slack,
            cw_scale=0.0,
        )

    if control is None:
        return plan()
    result = control.supervisor.run(
        "estimator.determine_core", plan, fallback=fallback
    )
    if result is None:
        raise RuntimeError(
            "core planning failed and has no further fallback: "
            + "; ".join(f.error for f in control.supervisor.failures[-2:])
        )
    return result


def stage1_cooling(plan: CorePlan, config: TimberWolfConfig):
    """The (schedule, limiter) pair for the configured cooling mode.

    ``cooling="table"`` yields the paper's Table-1 schedule with the
    Eqn 12-14 range limiter; ``cooling="adaptive"`` yields the
    VPR-style acceptance-ratio-driven schedule with its clamped
    ``d_limit`` window (the limiter's feedback rides on the schedule's
    ``observe``).  Used by the single-chain driver, the multi-chain
    coordinator, and checkpoint restore so all three agree exactly.
    """
    schedule = stage1_schedule(plan.average_effective_cell_area)
    if config.cooling == "adaptive":
        limiter = AdaptiveRangeLimiter(
            full_span_x=plan.core.width,
            full_span_y=plan.core.height,
            t_infinity=schedule.t_infinity,
        )
        schedule = AdaptiveCooling(
            t_infinity=schedule.t_infinity,
            scale=schedule.scale,
            limiter=limiter,
        )
    else:
        limiter = RangeLimiter(
            full_span_x=plan.core.width,
            full_span_y=plan.core.height,
            t_infinity=schedule.t_infinity,
            rho=config.rho,
        )
    return schedule, limiter


def stage1_stopping(circuit: Circuit, config: TimberWolfConfig, schedule, limiter):
    """The stage-1 stopping criterion for the configured cooling mode.

    Table cooling stops when the window has shrunk to minimum span AND
    the temperature is genuinely cold; adaptive cooling uses the VPR
    rule (T below a small fraction of the per-net cost) with the floor
    criterion as a safety net.
    """
    if config.cooling == "adaptive":
        return AnyOf(
            CostFloorStop(max(len(circuit.nets), 1)),
            FloorStop(schedule.scale * STAGE1_T_FLOOR),
        )
    return AllOf(
        WindowStop(limiter),
        FloorStop(schedule.scale * STAGE1_T_FLOOR),
    )


def run_stage1(
    circuit: Circuit,
    config: Optional[TimberWolfConfig] = None,
    rng: Optional[random.Random] = None,
    control=None,
    resume: Optional[dict] = None,
) -> Stage1Result:
    """Run the full stage-1 annealing on a circuit.

    ``control`` is a :class:`~repro.resilience.control.RunControl`
    carrying the budget / checkpoint / interrupt context.  ``resume``
    is a stage-1 checkpoint payload (``cursor`` + ``state``): the
    anneal continues mid-schedule, bit-for-bit.
    """
    config = config if config is not None else TimberWolfConfig()
    rng = rng if rng is not None else random.Random(config.seed)
    tracer = current_tracer()

    plan = _core_plan(circuit, config, control)
    schedule, limiter = stage1_cooling(plan, config)

    state = make_placement_state(config.core, circuit, plan, kappa=config.kappa)
    cursor: Optional[AnnealCursor] = None
    if resume is not None:
        # p2 and the placement come from the snapshot; the calibration
        # phase already happened in the original run.
        state.load_state_dict(resume["state"])
        cursor = AnnealCursor.from_dict(resume["cursor"])
        if tracer.enabled:
            tracer.event(
                "checkpoint.resumed",
                phase="stage1",
                step=cursor.step_index,
                p2=round(state.p2, 6),
            )
    else:
        with tracer.span("stage1.calibrate_p2", samples=P2_CALIBRATION_SAMPLES):
            state.p2 = calibrate_p2(state, rng, config.eta)
    if tracer.enabled:
        tracer.event(
            "stage1.setup",
            p2=round(state.p2, 6),
            t_infinity=round(schedule.t_infinity, 4),
            core_width=round(plan.core.width, 2),
            core_height=round(plan.core.height, 2),
        )

    batched = config.mover == "batched"
    if batched:
        # The batched mover draws everything from its own numpy stream,
        # seeded from the run seed (spawn_seed(seed, 0) == seed, so the
        # single-chain driver and chain 0 of the coordinator agree).
        generator = BatchMoveGenerator(
            state,
            limiter,
            r_ratio=config.r_ratio,
            batch=config.batch_moves,
            seed=config.seed,
        )
        anneal_state = BatchAnnealingState(state, generator)
    else:
        generator = MoveGenerator(
            state,
            limiter,
            r_ratio=config.r_ratio,
            selector=config.selector,
        )
        anneal_state = PlacementAnnealingState(state, generator)
    stopping = stage1_stopping(circuit, config, schedule, limiter)
    annealer = Annealer(
        schedule,
        stopping,
        attempts_per_cell=config.attempts_per_cell,
        max_temperatures=config.max_temperatures,
        rng=rng,
        eta_floor=schedule.scale * STAGE1_T_FLOOR,
    )
    observers = []
    if config.drift_check_every:
        guard = DriftGuard(
            config.drift_check_every,
            config.drift_tolerance,
            config.drift_action,
        )
        observers.append(guard.observer())
    if control is not None:
        # Checkpoints must capture the *live* placement: during a
        # batched session that is the kernel's arrays, so the observer
        # snapshots through the adapter (the serial path keeps reading
        # the placement state directly — byte-identical to before).
        observers.append(
            control.stage1_observer(anneal_state if batched else state)
        )
    if batched:
        generator.begin()
        try:
            result = annealer.run(
                anneal_state,
                budget=control.budget if control is not None else None,
                resume=cursor,
                observers=observers,
            )
        finally:
            generator.finish()
    else:
        result = annealer.run(
            anneal_state,
            budget=control.budget if control is not None else None,
            resume=cursor,
            observers=observers,
        )
    if tracer.enabled:
        generator.metrics.emit(tracer, "stage1.move_metrics")
        tracer.event(
            "stage1.result",
            teil=round(state.teil(), 2),
            chip_area=round(state.chip_area(), 2),
            residual_overlap=round(state.c2_raw(), 2),
            temperatures=result.num_temperatures,
        )
    return Stage1Result(
        state=state, plan=plan, limiter=limiter, anneal=result, p2=state.p2
    )
