"""The generate function of §3.2.1 — the move cascade of stage 1.

One generate call either displaces a single cell or interchanges a pair
(ratio r of displacements to interchanges, Figure 3).  Each branch is a
cascade of accept-tested attempts:

* displacement to a range-limited point; if rejected, the same
  displacement with the cell's aspect ratio inverted (Figure 2); if that
  is rejected too, a random orientation (or instance) change in place;
* for custom cells, additionally one pin-group move per uncommitted
  group and one aspect-ratio change attempt;
* interchange of two random cells; if rejected, the interchange with
  both aspect ratios inverted.

Every attempt is judged by the Metropolis rule at the current T.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Tuple

from ..annealing import (
    AnnealingState,
    RangeLimiter,
    metropolis_accept,
    select_displacement_dr,
    select_displacement_ds,
)
from ..geometry import orientation as ori
from ..netlist import CustomCell, MacroCell
from ..telemetry import MetricsRegistry
from .state import PlacementState

#: Relative size of a local aspect-ratio perturbation (log-uniform).
_ASPECT_STEP = 0.35

#: Every move kind the §3.2.1 cascade can issue.
MOVE_KINDS = (
    "displace",
    "displace_inverted",
    "orientation",
    "pin_group",
    "aspect",
    "interchange",
    "interchange_inverted",
)


class MoveGenerator:
    """Implements one generate() call over a ``PlacementState``."""

    def __init__(
        self,
        state: PlacementState,
        limiter: RangeLimiter,
        r_ratio: float = 10.0,
        selector: str = "ds",
        orientation_moves: bool = True,
        aspect_moves: bool = True,
        pin_moves: bool = True,
        interchange_moves: bool = True,
        max_pin_groups_per_call: int = 4,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if r_ratio <= 0:
            raise ValueError("r_ratio must be positive")
        self.state = state
        self.limiter = limiter
        self.displacement_probability = r_ratio / (1.0 + r_ratio)
        if selector == "ds":
            self._select = select_displacement_ds
        elif selector == "dr":
            self._select = select_displacement_dr
        else:
            raise ValueError(f"unknown selector {selector!r}")
        self.orientation_moves = orientation_moves
        self.aspect_moves = aspect_moves
        self.pin_moves = pin_moves
        self.interchange_moves = interchange_moves
        self.max_pin_groups_per_call = max_pin_groups_per_call
        self._movable = [
            i for i in range(len(state.names)) if state.movable[i]
        ]
        if not self._movable:
            raise ValueError("no movable cells: nothing to anneal")
        #: Per-move-kind attempt/accept counters, kept in a MetricsRegistry
        #: so the same series the annealer accumulates is exportable to a
        #: trace.  Pre-resolved to (attempts, accepts) Counter pairs so the
        #: per-attempt record stays two plain increments.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._pairs = {
            kind: (
                self.metrics.counter(f"moves.{kind}.attempts"),
                self.metrics.counter(f"moves.{kind}.accepts"),
            )
            for kind in MOVE_KINDS
        }

    @property
    def stats(self) -> Dict[str, List[int]]:
        """Move kind -> [attempts, accepts] (view over the registry)."""
        return {
            kind: [attempts.value, accepts.value]
            for kind, (attempts, accepts) in self._pairs.items()
        }

    def _record(self, kind: str, accepted: bool) -> None:
        attempts, accepts = self._pairs[kind]
        attempts.value += 1
        if accepted:
            accepts.value += 1

    # ------------------------------------------------------------------

    def step(self, temperature: float, rng: random.Random) -> Tuple[int, int]:
        """One generate-and-accept cycle; returns (attempts, accepts)."""
        if not self.interchange_moves or rng.random() < self.displacement_probability:
            return self._displacement_branch(temperature, rng)
        return self._interchange_branch(temperature, rng)

    # ------------------------------------------------------------------

    def _judge(
        self, delta: float, snap, temperature: float, rng: random.Random
    ) -> bool:
        if metropolis_accept(delta, temperature, rng):
            return True
        self.state.restore(snap)
        return False

    def _displacement_branch(
        self, temperature: float, rng: random.Random
    ) -> Tuple[int, int]:
        state = self.state
        idx = self._movable[rng.randrange(len(self._movable))]
        center = state.records[idx].center
        target = state.clamp_to_core(
            self._select(rng, center, self.limiter, temperature)
        )

        attempts, accepts = 0, 0

        # A1: plain displacement.
        delta, snap = state.move_cell(idx, center=target)
        attempts += 1
        accepted = self._judge(delta, snap, temperature, rng)
        self._record("displace", accepted)
        if accepted:
            accepts += 1
        elif self.orientation_moves or self.aspect_moves:
            # A1': the displacement with the aspect ratio inverted (a
            # reorientation for macros, a ratio inversion for customs —
            # skipped entirely in stage 2, where both are frozen).
            delta, snap = state.move_cell_inverted(idx, target)
            attempts += 1
            accepted = self._judge(delta, snap, temperature, rng)
            self._record("displace_inverted", accepted)
            if accepted:
                accepts += 1
            elif self.orientation_moves:
                # A_o: a random orientation (or instance) change in place.
                a, c = self._orientation_attempt(idx, temperature, rng)
                attempts += a
                accepts += c

        cell = state.cell(idx)
        if isinstance(cell, CustomCell):
            if self.pin_moves:
                a, c = self._pin_attempts(idx, temperature, rng)
                attempts += a
                accepts += c
            if self.aspect_moves:
                a, c = self._aspect_attempt(idx, temperature, rng)
                attempts += a
                accepts += c
        return (attempts, accepts)

    def _orientation_attempt(
        self, idx: int, temperature: float, rng: random.Random
    ) -> Tuple[int, int]:
        state = self.state
        cell = state.cell(idx)
        record = state.records[idx]
        if (
            isinstance(cell, MacroCell)
            and cell.num_instances > 1
            and rng.random() < 0.5
        ):
            choices = [k for k in range(cell.num_instances) if k != record.instance]
            delta, snap = state.move_cell(idx, instance=rng.choice(choices))
        else:
            new_o = rng.randrange(ori.N_ORIENTATIONS - 1)
            if new_o >= record.orientation:
                new_o += 1
            delta, snap = state.move_cell(idx, orientation=new_o)
        accepted = self._judge(delta, snap, temperature, rng)
        self._record("orientation", accepted)
        return (1, 1) if accepted else (1, 0)

    def _pin_attempts(
        self, idx: int, temperature: float, rng: random.Random
    ) -> Tuple[int, int]:
        """One site-reassignment attempt per uncommitted group (bounded)."""
        state = self.state
        cell = state.cell(idx)
        assert isinstance(cell, CustomCell)
        groups = state._groups[idx]
        if not groups:
            return (0, 0)
        attempts, accepts = 0, 0
        count = min(len(groups), self.max_pin_groups_per_call)
        for _ in range(count):
            key, members = groups[rng.randrange(len(groups))]
            pins = [cell.pins[m] for m in members]
            allowed = frozenset.intersection(*(p.sides for p in pins))
            if not allowed:
                allowed = pins[0].sides
            side = rng.choice(sorted(allowed))
            start = rng.randrange(cell.sites_per_edge)
            delta, snap = state.move_pin_group(idx, key, side, start)
            attempts += 1
            accepted = self._judge(delta, snap, temperature, rng)
            self._record("pin_group", accepted)
            if accepted:
                accepts += 1
        return (attempts, accepts)

    def _aspect_attempt(
        self, idx: int, temperature: float, rng: random.Random
    ) -> Tuple[int, int]:
        state = self.state
        cell = state.cell(idx)
        assert isinstance(cell, CustomCell)
        record = state.records[idx]
        assert record.aspect_ratio is not None
        new_ar = self._perturb_aspect(cell, record.aspect_ratio, rng)
        if new_ar is None or new_ar == record.aspect_ratio:
            return (0, 0)
        delta, snap = state.move_cell(idx, aspect_ratio=new_ar)
        accepted = self._judge(delta, snap, temperature, rng)
        self._record("aspect", accepted)
        return (1, 1) if accepted else (1, 0)

    @staticmethod
    def _perturb_aspect(
        cell: CustomCell, current: float, rng: random.Random
    ) -> Optional[float]:
        spec = cell.aspect
        # Discrete specs: pick a different allowed value.
        values = getattr(spec, "values", None)
        if values is not None:
            others = [v for v in values if v != current]
            return rng.choice(others) if others else None
        # Continuous specs: a log-uniform local step, clamped to the range.
        factor = math.exp(rng.uniform(-_ASPECT_STEP, _ASPECT_STEP))
        return spec.clamp(current * factor)

    def _interchange_branch(
        self, temperature: float, rng: random.Random
    ) -> Tuple[int, int]:
        state = self.state
        pool = self._movable
        if len(pool) < 2:
            return (0, 0)
        pi = rng.randrange(len(pool))
        pj = rng.randrange(len(pool) - 1)
        if pj >= pi:
            pj += 1
        i, j = pool[pi], pool[pj]
        # A2: plain interchange (not range-limited, per §3.2.2).
        delta, snap = state.swap_cells(i, j)
        accepted = self._judge(delta, snap, temperature, rng)
        self._record("interchange", accepted)
        if accepted:
            return (1, 1)
        # A2': the interchange with both aspect ratios inverted (Figure 2).
        delta, snap = state.swap_cells_inverted(i, j)
        accepted = self._judge(delta, snap, temperature, rng)
        self._record("interchange_inverted", accepted)
        if accepted:
            return (2, 1)
        return (2, 0)


class PlacementAnnealingState(AnnealingState):
    """Adapter presenting a PlacementState + MoveGenerator to the engine."""

    def __init__(self, state: PlacementState, generator: MoveGenerator) -> None:
        self.state = state
        self.generator = generator

    def step(self, temperature: float, rng: random.Random) -> Tuple[int, int]:
        return self.generator.step(temperature, rng)

    def cost(self) -> float:
        return self.state.cost()

    def moves_per_iteration(self) -> int:
        return self.state.moves_per_iteration()

    def state_dict(self) -> Dict:
        return self.state.state_dict()

    def cost_drift(self) -> Dict[str, float]:
        return self.state.cost_drift()

    def resync(self) -> None:
        self.state.resync()

    def telemetry_snapshot(self, temperature: float) -> Dict[str, float]:
        """The placement-specific per-temperature trace fields: the cost
        components of Eqns 6-11 and the §3.2.2 range-limiter window."""
        state = self.state
        limiter = self.generator.limiter
        return {
            "c1": round(state.c1(), 4),
            "c2": round(state.p2 * state.c2_raw(), 4),
            "c2_raw": round(state.c2_raw(), 4),
            "c3": round(state.c3(), 4),
            "window_x": round(limiter.window_x(temperature), 3),
            "window_y": round(limiter.window_y(temperature), 3),
        }
