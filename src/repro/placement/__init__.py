"""Stage-1 placement and stage-2 refinement of TimberWolfMC."""

from .arraycore import (
    PLACEMENT_CORES,
    ArrayPlacementState,
    make_placement_state,
)
from .batch import BatchAnnealingState, BatchKernel, BatchMoveGenerator
from .compact import compact
from .legalize import raw_overlap, remove_overlaps
from .moves import MoveGenerator, PlacementAnnealingState
from .refine import RefinementPass, RefinementResult, run_refinement
from .stage1 import Stage1Result, calibrate_p2, run_stage1
from .state import CellRecord, PlacementState, world_side

__all__ = [
    "PLACEMENT_CORES",
    "ArrayPlacementState",
    "make_placement_state",
    "BatchAnnealingState",
    "BatchKernel",
    "BatchMoveGenerator",
    "compact",
    "MoveGenerator",
    "PlacementAnnealingState",
    "Stage1Result",
    "calibrate_p2",
    "run_stage1",
    "CellRecord",
    "PlacementState",
    "world_side",
]
